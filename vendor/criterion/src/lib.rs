//! Minimal offline stand-in for the `criterion` crate.
//!
//! The workspace's benches were written against real criterion, but the
//! build environment cannot reach crates.io. This shim keeps
//! `cargo bench` compiling and producing useful numbers: each benchmark
//! runs a short warmup, then iterates under a wall-clock budget and
//! reports the mean ns/iter. There is no statistical analysis, HTML
//! report, or comparison against saved baselines.
//!
//! Environment knobs:
//! - `YF_BENCH_MS` — per-benchmark measurement budget in milliseconds
//!   (default 300).

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export so benches may use `criterion::black_box` interchangeably
/// with `std::hint::black_box`.
pub use std::hint::black_box;

fn budget() -> Duration {
    let ms = std::env::var("YF_BENCH_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(300);
    Duration::from_millis(ms)
}

/// Times closures passed to [`Bencher::iter`].
pub struct Bencher {
    budget: Duration,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Runs `f` repeatedly under the time budget, recording elapsed time
    /// and iteration count for the caller's report line.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warmup pass so lazy setup and cold caches don't
        // land in the measurement.
        black_box(f());
        let started = Instant::now();
        let mut iters = 0u64;
        loop {
            let t0 = Instant::now();
            black_box(f());
            self.total += t0.elapsed();
            iters += 1;
            if started.elapsed() >= self.budget || iters >= 1_000_000 {
                break;
            }
        }
        self.iters = iters;
    }

    fn report(&self, id: &str) {
        if self.iters == 0 {
            println!("{id:<40} (no measurement)");
            return;
        }
        let ns = self.total.as_nanos() as f64 / self.iters as f64;
        println!("{id:<40} {ns:>14.1} ns/iter ({} iters)", self.iters);
    }
}

/// Identifies one benchmark within a group, e.g. `yellowfin/10000`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id that is just the parameter, for single-function groups.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// The benchmark driver handed to every `criterion_group!` target.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { budget: budget() }
    }
}

impl Criterion {
    fn run_one(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut b = Bencher {
            budget: self.budget,
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        b.report(id);
    }

    /// Benchmarks a single closure under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        self.run_one(id, &mut f);
        self
    }

    /// Starts a named group; ids inside it are prefixed with the group
    /// name.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks `f` with `input`, labeled `group/id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        self.criterion.run_one(&full, &mut |b| f(b, input));
        self
    }

    /// Benchmarks a closure without an input, labeled `group/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, &mut f);
        self
    }

    /// Ends the group. (Real criterion emits summary output here.)
    pub fn finish(self) {}
}

/// Declares a benchmark group function that runs each target with a
/// fresh default [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a `harness = false` bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts() {
        std::env::set_var("YF_BENCH_MS", "5");
        let mut c = Criterion::default();
        let mut calls = 0u64;
        c.bench_function("counter", |b| {
            b.iter(|| {
                calls += 1;
            });
        });
        assert!(calls > 0);
    }

    #[test]
    fn group_ids_compose() {
        let id = BenchmarkId::new("f", 42);
        assert_eq!(id.id, "f/42");
        let id = BenchmarkId::from_parameter(7);
        assert_eq!(id.id, "7");
    }
}
