//! Minimal offline stand-in for the `proptest` crate.
//!
//! The workspace's property tests were written against real `proptest`,
//! but the build environment cannot reach crates.io. This shim keeps the
//! tests compiling and running by implementing the subset they use:
//!
//! - the [`proptest!`] macro with an optional
//!   `#![proptest_config(...)]` header;
//! - [`test_runner::ProptestConfig::with_cases`];
//! - [`prop_assert!`] / [`prop_assert_eq!`] (plain assertions here —
//!   there is no rejection/shrinking machinery);
//! - [`arbitrary::any`] for primitive types;
//! - [`strategy::Strategy`] for numeric ranges, tuples, and `prop_map`;
//! - [`collection::vec`] with `usize` or range size specs.
//!
//! Case generation is deterministic: the RNG seed is fixed unless
//! `PROPTEST_SEED` is set in the environment, so failures reproduce
//! bit-for-bit in CI. Unlike real proptest, failing cases are *not*
//! shrunk — the panic message reports the case index and seed instead.

pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(...)]`.
    ///
    /// Only the number of cases is honored.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each `#[test]` in the block runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic SplitMix64 generator used for all case generation.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeded from `PROPTEST_SEED` when set, else a fixed constant,
        /// so test runs are reproducible by default.
        pub fn deterministic() -> Self {
            let seed = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|s| s.parse::<u64>().ok())
                .unwrap_or(0x9E37_79B9_7F4A_7C15);
            TestRng { state: seed }
        }

        /// Returns the next 64 uniformly random bits (SplitMix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform integer in `[0, n)`; `n` must be positive.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0, "below(0) is meaningless");
            // Modulo bias is irrelevant at test-generation quality.
            self.next_u64() % n
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Real proptest separates strategies from value trees to support
    /// shrinking; this shim generates final values directly.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value from the strategy.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// A strategy producing a single fixed value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64 + 1;
                    lo + rng.below(span) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, usize);

    macro_rules! signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = self.end.wrapping_sub(self.start) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = hi.wrapping_sub(lo) as u64 + 1;
                    lo.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }

    signed_range_strategy!(i32, i64);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let u = rng.unit_f64() as $t;
                    self.start + (self.end - self.start) * u
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+)),*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy!(
        (A.0, B.1),
        (A.0, B.1, C.2),
        (A.0, B.1, C.2, D.3),
        (A.0, B.1, C.2, D.3, E.4),
        (A.0, B.1, C.2, D.3, E.4, F.5)
    );
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical generation strategy, entry point for
    /// [`any`].
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            // Bounded, finite values: the tests want plausible numbers,
            // not bit-pattern torture.
            (rng.unit_f64() as f32 - 0.5) * 2.0e6
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            (rng.unit_f64() - 0.5) * 2.0e6
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`, e.g. `any::<u64>()`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Element-count specification for [`fn@vec`]: a fixed `usize` or a
    /// (half-open or inclusive) range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with lengths drawn from a
    /// [`SizeRange`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_inclusive - self.size.min) as u64 + 1;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Mirror of real proptest's `prop` path alias used by the prelude
/// (`prop::collection::vec`, ...).
pub mod prop {
    pub use crate::collection;
}

/// Everything a property test needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares property tests. Each `fn` becomes a `#[test]` that draws its
/// arguments from the given strategies `cases` times. No shrinking: a
/// failing case panics immediately with the case index.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config); $($rest)*);
    };
    (@impl ($config:expr);
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut proptest_rng = $crate::test_runner::TestRng::deterministic();
                for proptest_case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(
                        &($strat),
                        &mut proptest_rng,
                    );)*
                    let run = || $body;
                    if let Err(e) = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(run),
                    ) {
                        eprintln!(
                            "proptest case {}/{} failed (set PROPTEST_SEED to vary inputs)",
                            proptest_case + 1,
                            config.cases,
                        );
                        ::std::panic::resume_unwind(e);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @impl ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        );
    };
}

/// Asserts a condition inside a property test (panics on failure; this
/// shim has no rejection machinery).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic();
        for _ in 0..1000 {
            let v = Strategy::generate(&(3usize..7), &mut rng);
            assert!((3..7).contains(&v));
            let f = Strategy::generate(&(-2.0f32..2.0), &mut rng);
            assert!((-2.0..2.0).contains(&f));
            let i = Strategy::generate(&(1usize..=4), &mut rng);
            assert!((1..=4).contains(&i));
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = crate::test_runner::TestRng::deterministic();
        for _ in 0..200 {
            let v = Strategy::generate(&prop::collection::vec(0.0f32..1.0, 2..5), &mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_generates_and_runs(x in 0usize..10, y in any::<bool>()) {
            prop_assert!(x < 10);
            let _ = y;
        }
    }
}
