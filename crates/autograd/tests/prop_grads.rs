//! Property-based gradient checks over random shapes and values.

use proptest::prelude::*;
use yf_autograd::check::gradient_check;
use yf_autograd::Graph;
use yf_tensor::rng::Pcg32;
use yf_tensor::Tensor;

fn tensor_strategy(max_dim: usize) -> impl Strategy<Value = Tensor> {
    ((1..=max_dim), (1..=max_dim), any::<u64>())
        .prop_map(|(r, c, seed)| Tensor::randn(&[r, c], &mut Pcg32::seed(seed)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn matmul_grads_hold_for_random_shapes(
        m in 1usize..5, k in 1usize..5, n in 1usize..5, seed in any::<u64>()
    ) {
        let mut rng = Pcg32::seed(seed);
        let a = Tensor::randn(&[m, k], &mut rng);
        let b = Tensor::randn(&[k, n], &mut rng);
        let report = gradient_check(&[a, b], |g, ids| {
            let c = g.matmul(ids[0], ids[1]);
            g.sum_all(c)
        }, 1e-3);
        prop_assert!(report.max_rel_err < 5e-2, "err={}", report.max_rel_err);
    }

    #[test]
    fn chain_rule_composes(t in tensor_strategy(5)) {
        let report = gradient_check(&[t], |g, ids| {
            let a = g.tanh(ids[0]);
            let b = g.mul(a, a);
            let c = g.sigmoid(b);
            g.mean_all(c)
        }, 1e-3);
        prop_assert!(report.max_rel_err < 5e-2, "err={}", report.max_rel_err);
    }

    #[test]
    fn sum_grad_is_ones(t in tensor_strategy(6)) {
        let mut g = Graph::new();
        let x = g.leaf(t.clone(), true);
        let loss = g.sum_all(x);
        g.backward(loss);
        let grad = g.grad(x).unwrap();
        prop_assert!(grad.data().iter().all(|&v| v == 1.0));
    }

    #[test]
    fn linearity_of_backward(t in tensor_strategy(5), alpha in -3.0f32..3.0) {
        // d(alpha * sum(x)) = alpha * ones
        let mut g = Graph::new();
        let x = g.leaf(t.clone(), true);
        let s = g.sum_all(x);
        let y = g.scale(s, alpha);
        g.backward(y);
        let grad = g.grad(x).unwrap();
        for &v in grad.data() {
            prop_assert!((v - alpha).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_xent_grad_rows_sum_to_zero(
        b in 1usize..5, k in 2usize..6, seed in any::<u64>()
    ) {
        // Softmax gradient rows sum to zero: sum_j (p_j - 1[j=t]) = 0.
        let mut rng = Pcg32::seed(seed);
        let logits = Tensor::randn(&[b, k], &mut rng);
        let targets: Vec<usize> = (0..b).map(|_| rng.below(k as u32) as usize).collect();
        let mut g = Graph::new();
        let l = g.leaf(logits, true);
        let loss = g.softmax_cross_entropy(l, &targets);
        g.backward(loss);
        let grad = g.grad(l).unwrap();
        for r in 0..b {
            let row_sum: f32 = grad.data()[r * k..(r + 1) * k].iter().sum();
            prop_assert!(row_sum.abs() < 1e-5, "row {r} sums to {row_sum}");
        }
    }
}
