//! Property tests: the batch-fused im2col/GEMM convolution kernels must
//! match the retained direct reference loops across random shapes,
//! strides, paddings, groups, and batch sizes — forward and both
//! backward passes — and the cached-columns and re-unroll
//! backward-weight paths must agree bit for bit.

use proptest::prelude::*;
use yf_autograd::conv::{
    self, conv2d_backward_input, conv2d_backward_weight, conv2d_forward, reference,
};
use yf_autograd::ConvSpec;
use yf_tensor::rng::Pcg32;
use yf_tensor::Tensor;

fn close(got: &Tensor, want: &Tensor, tag: &str) -> Result<(), String> {
    if got.shape() != want.shape() {
        return Err(format!(
            "{tag}: shape {:?} vs {:?}",
            got.shape(),
            want.shape()
        ));
    }
    for (i, (g, w)) in got.data().iter().zip(want.data()).enumerate() {
        if (g - w).abs() > 1e-4 * (1.0 + w.abs()) {
            return Err(format!("{tag}[{i}]: {g} vs {w}"));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn conv_matches_reference_kernels(
        b in 1usize..6,
        groups in 1usize..4,
        cin_g in 1usize..4,
        cout_g in 1usize..4,
        h in 1usize..9,
        w in 1usize..9,
        kh in 1usize..4,
        kw in 1usize..4,
        stride in 1usize..3,
        padding in 0usize..3,
        seed in any::<u64>(),
    ) {
        // Keep the output extent positive: padding alone may not save an
        // undersized input.
        let h = h.max(kh);
        let w = w.max(kw);
        let spec = ConvSpec { stride, padding, groups };
        let (cin, cout) = (groups * cin_g, groups * cout_g);
        let mut rng = Pcg32::seed(seed);
        let input = Tensor::randn(&[b, cin, h, w], &mut rng);
        let weight = Tensor::randn(&[cout, cin_g, kh, kw], &mut rng);

        let fwd = conv2d_forward(&input, &weight, spec);
        let fwd_ref = reference::conv2d_forward(&input, &weight, spec);
        prop_assert!(close(&fwd, &fwd_ref, "forward").is_ok(),
            "{:?} b{b} g{groups} {cin}x{h}x{w} k{kh}x{kw}: {:?}",
            spec, close(&fwd, &fwd_ref, "forward"));

        let grad = Tensor::randn(fwd.shape(), &mut rng);
        let di = conv2d_backward_input(input.shape(), &weight, &grad, spec);
        let di_ref = reference::conv2d_backward_input(input.shape(), &weight, &grad, spec);
        prop_assert!(close(&di, &di_ref, "backward_input").is_ok(),
            "{:?}: {:?}", spec, close(&di, &di_ref, "backward_input"));

        let dw = conv2d_backward_weight(&input, weight.shape(), &grad, spec);
        let dw_ref = reference::conv2d_backward_weight(&input, weight.shape(), &grad, spec);
        prop_assert!(close(&dw, &dw_ref, "backward_weight").is_ok(),
            "{:?}: {:?}", spec, close(&dw, &dw_ref, "backward_weight"));
    }

    #[test]
    fn cached_and_reunroll_backward_weight_agree_bitwise(
        b in 1usize..5,
        groups in 1usize..3,
        cin_g in 1usize..4,
        cout_g in 1usize..4,
        h in 2usize..8,
        w in 2usize..8,
        stride in 1usize..3,
        padding in 0usize..2,
        seed in any::<u64>(),
    ) {
        // The cached-columns GEMM and the transparent re-unroll pack
        // identical panels, so their weight gradients are bit-identical.
        let (kh, kw) = (3.min(h), 3.min(w));
        let spec = ConvSpec { stride, padding, groups };
        let (cin, cout) = (groups * cin_g, groups * cout_g);
        let mut rng = Pcg32::seed(seed);
        let input = Tensor::randn(&[b, cin, h, w], &mut rng);
        let weight = Tensor::randn(&[cout, cin_g, kh, kw], &mut rng);
        let mut scratch = yf_tensor::Scratch::new();
        let (out, cache) = conv::conv2d_forward_caching(&input, &weight, spec, &mut scratch);
        // The caching forward itself must match the fused forward
        // bit for bit (both run the same GEMM over equal panels).
        let fused = conv2d_forward(&input, &weight, spec);
        prop_assert_eq!(out.data(), fused.data());
        let grad = Tensor::randn(out.shape(), &mut rng);
        let with_cache = conv::conv2d_backward_weight_cached(
            &input, weight.shape(), &grad, spec, &mut scratch, cache.as_ref());
        let without = conv::conv2d_backward_weight_cached(
            &input, weight.shape(), &grad, spec, &mut scratch, None);
        prop_assert_eq!(with_cache.data(), without.data());
    }

    #[test]
    fn scratch_variants_match_thread_local_variants(
        h in 3usize..8, w in 3usize..8, seed in any::<u64>(),
    ) {
        // The explicit-scratch entry points are what the tape uses; they
        // must agree with the default entry points bit for bit.
        let spec = ConvSpec::same3x3(1);
        let mut rng = Pcg32::seed(seed);
        let input = Tensor::randn(&[2, 3, h, w], &mut rng);
        let weight = Tensor::randn(&[4, 3, 3, 3], &mut rng);
        let mut scratch = yf_tensor::Scratch::new();
        let a = conv::conv2d_forward_with_scratch(&input, &weight, spec, &mut scratch);
        let bt = conv2d_forward(&input, &weight, spec);
        prop_assert_eq!(a.data(), bt.data());
        // The pool now holds the column buffer; a second call must reuse
        // it and still be exact.
        let c = conv::conv2d_forward_with_scratch(&input, &weight, spec, &mut scratch);
        prop_assert_eq!(c.data(), bt.data());
    }
}
