//! Finite-difference validation of every op's backward pass.

use yf_autograd::check::assert_grads_close;
use yf_autograd::{ConvSpec, Graph};
use yf_tensor::rng::Pcg32;
use yf_tensor::Tensor;

const TOL: f64 = 2e-2; // f32 forward + 1e-3 central differences

fn randn(dims: &[usize], seed: u64) -> Tensor {
    Tensor::randn(dims, &mut Pcg32::seed(seed))
}

#[test]
fn add_sub_mul() {
    let a = randn(&[3, 4], 1);
    let b = randn(&[3, 4], 2);
    assert_grads_close(
        &[a.clone(), b.clone()],
        |g, ids| {
            let s = g.add(ids[0], ids[1]);
            let d = g.sub(s, ids[1]);
            let m = g.mul(d, ids[1]);
            g.sum_all(m)
        },
        TOL,
    );
}

#[test]
fn matmul() {
    let a = randn(&[3, 5], 3);
    let b = randn(&[5, 2], 4);
    assert_grads_close(
        &[a, b],
        |g, ids| {
            let c = g.matmul(ids[0], ids[1]);
            g.sum_all(c)
        },
        TOL,
    );
}

#[test]
fn matmul_nt() {
    // y = a bᵀ with b stored [n, k] — the fused-transpose product used by
    // tied output projections.
    let a = randn(&[3, 5], 13);
    let b = randn(&[4, 5], 14);
    assert_grads_close(
        &[a, b],
        |g, ids| {
            let c = g.matmul_nt(ids[0], ids[1]);
            g.sum_all(c)
        },
        TOL,
    );
}

#[test]
fn matmul_mean() {
    let a = randn(&[2, 3], 5);
    let b = randn(&[3, 4], 6);
    assert_grads_close(
        &[a, b],
        |g, ids| {
            let c = g.matmul(ids[0], ids[1]);
            g.mean_all(c)
        },
        TOL,
    );
}

#[test]
fn activations() {
    let x = randn(&[4, 4], 7);
    assert_grads_close(
        std::slice::from_ref(&x),
        |g, ids| {
            let t = g.tanh(ids[0]);
            g.sum_all(t)
        },
        TOL,
    );
    assert_grads_close(
        std::slice::from_ref(&x),
        |g, ids| {
            let s = g.sigmoid(ids[0]);
            g.sum_all(s)
        },
        TOL,
    );
    // Shift away from the ReLU kink so central differences are valid.
    let shifted = x.map(|v| if v.abs() < 0.05 { v + 0.2 } else { v });
    assert_grads_close(
        &[shifted],
        |g, ids| {
            let r = g.relu(ids[0]);
            g.sum_all(r)
        },
        TOL,
    );
}

#[test]
fn bias_broadcasts() {
    let x = randn(&[3, 4], 8);
    let b = randn(&[4], 9);
    assert_grads_close(
        &[x, b],
        |g, ids| {
            let y = g.add_bias(ids[0], ids[1]);
            let sq = g.mul(y, y);
            g.sum_all(sq)
        },
        TOL,
    );
    let x4 = randn(&[2, 3, 2, 2], 10);
    let cb = randn(&[3], 11);
    assert_grads_close(
        &[x4, cb],
        |g, ids| {
            let y = g.add_chan_bias(ids[0], ids[1]);
            let sq = g.mul(y, y);
            g.sum_all(sq)
        },
        TOL,
    );
}

#[test]
fn scale_reshape() {
    let x = randn(&[2, 6], 12);
    assert_grads_close(
        &[x],
        |g, ids| {
            let y = g.scale(ids[0], -2.5);
            let z = g.reshape(y, &[3, 4]);
            let w = g.mul(z, z);
            g.mean_all(w)
        },
        TOL,
    );
}

#[test]
fn slice_and_concat() {
    let x = randn(&[3, 8], 13);
    assert_grads_close(
        std::slice::from_ref(&x),
        |g, ids| {
            let a = g.slice_cols(ids[0], 0, 3);
            let b = g.slice_cols(ids[0], 3, 5);
            let sq_a = g.mul(a, a);
            let cat = g.concat_cols(&[sq_a, b]);
            g.sum_all(cat)
        },
        TOL,
    );
}

#[test]
fn softmax_cross_entropy() {
    let logits = randn(&[4, 5], 14);
    let targets = vec![0, 2, 4, 1];
    assert_grads_close(
        &[logits],
        |g, ids| g.softmax_cross_entropy(ids[0], &targets),
        TOL,
    );
}

#[test]
fn embedding_gather() {
    let weight = randn(&[6, 3], 15);
    let ids_list = vec![0, 5, 2, 2]; // repeated id accumulates
    assert_grads_close(
        &[weight],
        |g, nids| {
            let e = g.embedding(nids[0], &ids_list);
            let sq = g.mul(e, e);
            g.sum_all(sq)
        },
        TOL,
    );
}

#[test]
fn conv2d_basic() {
    let x = randn(&[2, 2, 5, 5], 16);
    let w = randn(&[3, 2, 3, 3], 17);
    assert_grads_close(
        &[x, w],
        |g, ids| {
            let y = g.conv2d(ids[0], ids[1], ConvSpec::same3x3(1));
            let sq = g.mul(y, y);
            g.mean_all(sq)
        },
        TOL,
    );
}

#[test]
fn conv2d_strided_grouped() {
    let x = randn(&[1, 4, 6, 6], 18);
    let w = randn(&[4, 2, 3, 3], 19);
    let spec = ConvSpec {
        stride: 2,
        padding: 1,
        groups: 2,
    };
    assert_grads_close(
        &[x, w],
        |g, ids| {
            let y = g.conv2d(ids[0], ids[1], spec);
            let sq = g.mul(y, y);
            g.mean_all(sq)
        },
        TOL,
    );
}

#[test]
fn conv2d_1x1_projection() {
    let x = randn(&[2, 3, 4, 4], 20);
    let w = randn(&[5, 3, 1, 1], 21);
    let spec = ConvSpec {
        stride: 2,
        padding: 0,
        groups: 1,
    };
    assert_grads_close(
        &[x, w],
        |g, ids| {
            let y = g.conv2d(ids[0], ids[1], spec);
            g.sum_all(y)
        },
        TOL,
    );
}

#[test]
fn batch_norm() {
    let x = randn(&[3, 2, 2, 2], 22);
    let gamma = randn(&[2], 23).map(|v| 1.0 + 0.1 * v);
    let beta = randn(&[2], 24);
    assert_grads_close(
        &[x, gamma, beta],
        |g, ids| {
            let y = g.batch_norm(ids[0], ids[1], ids[2], 1e-3);
            let sq = g.mul(y, y);
            g.sum_all(sq)
        },
        5e-2, // BN backward is the most float-sensitive op
    );
}

#[test]
fn global_avg_pool() {
    let x = randn(&[2, 3, 4, 4], 25);
    assert_grads_close(
        &[x],
        |g, ids| {
            let p = g.global_avg_pool(ids[0]);
            let sq = g.mul(p, p);
            g.sum_all(sq)
        },
        TOL,
    );
}

#[test]
fn shared_leaf_accumulates_from_both_uses() {
    // Weight tying: the same leaf used in two places must receive the sum
    // of both contributions.
    let x = randn(&[3, 3], 26);
    assert_grads_close(
        &[x],
        |g, ids| {
            let a = g.matmul(ids[0], ids[0]); // x @ x
            g.sum_all(a)
        },
        TOL,
    );
}

#[test]
fn lstm_cell_composition() {
    // A full LSTM gate block built from primitive ops.
    let x = randn(&[2, 3], 27);
    let h = randn(&[2, 4], 28);
    let c = randn(&[2, 4], 29);
    let w_ih = randn(&[3, 16], 30).scale(0.5);
    let w_hh = randn(&[4, 16], 31).scale(0.5);
    let b = randn(&[16], 32).scale(0.1);
    assert_grads_close(
        &[x, h, c, w_ih, w_hh, b],
        |g, ids| {
            let (x, h, c, w_ih, w_hh, b) = (ids[0], ids[1], ids[2], ids[3], ids[4], ids[5]);
            let xi = g.matmul(x, w_ih);
            let hh = g.matmul(h, w_hh);
            let pre = g.add(xi, hh);
            let gates = g.add_bias(pre, b);
            let i_g = g.slice_cols(gates, 0, 4);
            let f_g = g.slice_cols(gates, 4, 4);
            let g_g = g.slice_cols(gates, 8, 4);
            let o_g = g.slice_cols(gates, 12, 4);
            let i = g.sigmoid(i_g);
            let f = g.sigmoid(f_g);
            let cand = g.tanh(g_g);
            let o = g.sigmoid(o_g);
            let fc = g.mul(f, c);
            let ig = g.mul(i, cand);
            let c_new = g.add(fc, ig);
            let tc = g.tanh(c_new);
            let h_new = g.mul(o, tc);
            let sq = g.mul(h_new, h_new);
            g.sum_all(sq)
        },
        TOL,
    );
}

#[test]
fn max_pool_2x2() {
    // Shift values apart so the argmax is stable under the FD perturbation.
    let x = randn(&[2, 2, 4, 4], 33).scale(3.0);
    assert_grads_close(
        &[x],
        |g, ids| {
            let p = g.max_pool_2x2(ids[0]);
            let sq = g.mul(p, p);
            g.sum_all(sq)
        },
        TOL,
    );
}

#[test]
fn max_pool_forward_values() {
    let mut g = Graph::new();
    let x = g.constant(Tensor::from_vec(
        vec![
            1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0, 12.0, 13.0, 14.0, 15.0, 16.0,
        ],
        &[1, 1, 4, 4],
    ));
    let p = g.max_pool_2x2(x);
    let vals = g.value(p).data().to_vec();
    assert_eq!(vals, vec![6.0, 8.0, 14.0, 16.0]);
}

#[test]
fn layer_norm() {
    let x = randn(&[3, 6], 34);
    let gamma = randn(&[6], 35).map(|v| 1.0 + 0.2 * v);
    let beta = randn(&[6], 36);
    assert_grads_close(
        &[x, gamma, beta],
        |g, ids| {
            let y = g.layer_norm(ids[0], ids[1], ids[2], 1e-3);
            let sq = g.mul(y, y);
            g.mean_all(sq)
        },
        5e-2,
    );
}

#[test]
fn layer_norm_normalizes_rows() {
    let mut g = Graph::new();
    let x = g.constant(randn(&[4, 8], 37).map(|v| 5.0 * v + 3.0));
    let gamma = g.constant(Tensor::ones(&[8]));
    let beta = g.constant(Tensor::zeros(&[8]));
    let y = g.layer_norm(x, gamma, beta, 1e-5);
    for r in 0..4 {
        let row = &g.value(y).data()[r * 8..(r + 1) * 8];
        let mean: f32 = row.iter().sum::<f32>() / 8.0;
        assert!(mean.abs() < 1e-5, "row {r} mean {mean}");
    }
}

#[test]
fn dropout_scales_and_masks() {
    let mut g = Graph::new();
    let x = g.leaf(Tensor::ones(&[1, 100]), true);
    let y = g.dropout(x, 0.5, 42);
    let vals = g.value(y).data().to_vec();
    let zeros = vals.iter().filter(|&&v| v == 0.0).count();
    let twos = vals.iter().filter(|&&v| (v - 2.0).abs() < 1e-6).count();
    assert_eq!(zeros + twos, 100, "inverted dropout: only 0 or 1/keep");
    assert!((20..80).contains(&zeros), "zeros {zeros}");
    // Gradient flows only through kept units, scaled by 1/keep.
    let loss = g.sum_all(y);
    g.backward(loss);
    let grad = g.grad(x).unwrap();
    for (gv, &v) in grad.data().iter().zip(&vals) {
        assert_eq!(*gv, v, "grad equals mask");
    }
    // keep = 1 is the identity (same node).
    let mut g2 = Graph::new();
    let x2 = g2.leaf(Tensor::ones(&[4]), true);
    assert_eq!(g2.dropout(x2, 1.0, 0), x2);
}

#[test]
fn grad_is_none_for_constants() {
    let mut g = Graph::new();
    let c = g.constant(Tensor::ones(&[2]));
    let x = g.leaf(Tensor::ones(&[2]), true);
    let y = g.mul(c, x);
    let loss = g.sum_all(y);
    g.backward(loss);
    assert!(g.grad(c).is_none());
    assert_eq!(g.grad(x).unwrap().data(), &[1.0, 1.0]);
}

/// Finite-difference checks for the parallelized norm/softmax/pool
/// backward kernels, pinned at 1 and 4 tape threads: the fan-out must
/// change neither the values (the kernels are deterministic at any
/// thread count) nor the gradients.
#[test]
fn parallel_kernels_grad_check_at_1_and_4_threads() {
    for threads in [1usize, 4] {
        let x = randn(&[3, 2, 4, 4], 50);
        let gamma = randn(&[2], 51).map(|v| 1.0 + 0.1 * v);
        let beta = randn(&[2], 52);
        assert_grads_close(
            &[x, gamma, beta],
            |g, ids| {
                g.set_threads(threads);
                let y = g.batch_norm(ids[0], ids[1], ids[2], 1e-3);
                let sq = g.mul(y, y);
                g.sum_all(sq)
            },
            5e-2,
        );

        let x = randn(&[4, 6], 53);
        let gamma = randn(&[6], 54).map(|v| 1.0 + 0.2 * v);
        let beta = randn(&[6], 55);
        assert_grads_close(
            &[x, gamma, beta],
            |g, ids| {
                g.set_threads(threads);
                let y = g.layer_norm(ids[0], ids[1], ids[2], 1e-3);
                let sq = g.mul(y, y);
                g.mean_all(sq)
            },
            5e-2,
        );

        let logits = randn(&[5, 7], 56);
        let targets = vec![0, 6, 3, 2, 2];
        assert_grads_close(
            &[logits],
            |g, ids| {
                g.set_threads(threads);
                g.softmax_cross_entropy(ids[0], &targets)
            },
            TOL,
        );

        // Shift values apart so the argmax is stable under perturbation.
        let x = randn(&[2, 3, 4, 4], 57).scale(3.0);
        assert_grads_close(
            &[x],
            |g, ids| {
                g.set_threads(threads);
                let p = g.max_pool_2x2(ids[0]);
                let sq = g.mul(p, p);
                g.sum_all(sq)
            },
            TOL,
        );

        let x = randn(&[2, 3, 4, 4], 58);
        assert_grads_close(
            &[x],
            |g, ids| {
                g.set_threads(threads);
                let p = g.global_avg_pool(ids[0]);
                let sq = g.mul(p, p);
                g.sum_all(sq)
            },
            TOL,
        );
    }
}

/// A conv tape step at 1 and 4 threads must produce bitwise-identical
/// loss and gradients: every parallel kernel in the pipeline partitions
/// disjoint outputs with a fixed accumulation order.
#[test]
fn conv_tape_is_bitwise_deterministic_across_threads() {
    let x = randn(&[3, 4, 6, 6], 60);
    let w = randn(&[4, 4, 3, 3], 61);
    let run = |threads: usize| {
        let mut g = Graph::new();
        g.set_threads(threads);
        let xi = g.leaf(x.clone(), true);
        let wi = g.leaf(w.clone(), true);
        let y = g.conv2d(xi, wi, ConvSpec::same3x3(1));
        let sq = g.mul(y, y);
        let loss = g.sum_all(sq);
        g.backward(loss);
        (
            g.value(loss).data().to_vec(),
            g.grad(xi).unwrap().data().to_vec(),
            g.grad(wi).unwrap().data().to_vec(),
        )
    };
    assert_eq!(run(1), run(4));
}

#[test]
#[should_panic(expected = "loss must be a single-element node")]
fn backward_requires_scalar() {
    let mut g = Graph::new();
    let x = g.leaf(Tensor::ones(&[2]), true);
    g.backward(x);
}
