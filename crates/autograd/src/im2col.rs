//! Batch-fused im2col/col2im lowering: 2-D convolution as one GEMM per
//! group over the *whole batch*.
//!
//! The whole input `[B, Cin, H, W]` unrolls into one batched column
//! matrix `[Cin * KH * KW, B * Ho * Wo]`: row `r` is the tap
//! `(ic, ky, kx)` with `ic = r / (KH*KW)` a **global** input channel, and
//! column `bi * Ho*Wo + q` is output pixel `q` of batch element `bi`.
//! Group `g` of a grouped convolution owns the contiguous row block
//! `[g * ckk, (g+1) * ckk)` (`ckk = Cin/groups * KH * KW`), so each pass
//! is `groups` GEMMs of full batch width instead of `B * groups` narrow
//! ones — wide enough to feed the GEMM thread partitioner at paper-scale
//! batch sizes.
//!
//! The column matrix usually never exists in memory: [`ColsPackNN`] and
//! [`ColsPackNT`] implement [`yf_tensor::gemm::PackBPanel`], packing
//! column panels for the forward (`cols` as `op(B) = [ckk, B*Ho*Wo]`) and
//! backward-weight (`op(B) = colsᵀ`) GEMMs straight from the input image
//! — the unroll *is* the packing pass the GEMM needed anyway. The
//! materializing [`im2col_batched`] is kept for the tape's column cache
//! (the backward-weight pass reuses the forward's columns) and produces
//! bitwise-identical values, since both paths share [`fill_tap_run`].
//!
//! The unroll walks output rows, not individual taps: each tap row is
//! filled per output row with one bounds computation, so the padding-free
//! interior is `copy_from_slice` runs at stride 1 and a tight gather at
//! larger strides — no per-element padding checks anywhere.
//!
//! [`im2col_batched`] parallelizes across tap rows (each row of the
//! batched matrix is contiguous) and [`col2im_batched`] across the
//! `B * Cin` image planes of the gradient (each plane is written by
//! exactly one worker), both through
//! [`yf_tensor::parallel::chunks_mut`].

use crate::conv::ConvSpec;
use yf_tensor::elementwise::{copy_short, zero_short};
use yf_tensor::gemm::PackBPanel;

/// Geometry of one channel plane's column unroll, shared by the three
/// conv kernels.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ColShape {
    /// Channels per group.
    pub cin_g: usize,
    /// Input spatial extents.
    pub h: usize,
    pub w: usize,
    /// Kernel spatial extents.
    pub kh: usize,
    pub kw: usize,
    /// Output spatial extents.
    pub ho: usize,
    pub wo: usize,
}

impl ColShape {
    /// Output pixels per batch element: one column each.
    pub fn cols(&self) -> usize {
        self.ho * self.wo
    }

    /// The valid output-x range `[lo, hi)` for tap column `kx`, i.e. the
    /// `ox` whose input column `ox*stride + kx - padding` lands in
    /// `[0, w)`. Everything outside is padding.
    fn ox_range(&self, kx: usize, spec: ConvSpec) -> (usize, usize) {
        let lo = if kx >= spec.padding {
            0
        } else {
            (spec.padding - kx).div_ceil(spec.stride)
        };
        let hi = if self.w + spec.padding > kx {
            self.wo
                .min((self.w + spec.padding - kx - 1) / spec.stride + 1)
        } else {
            0
        };
        (lo.min(self.wo), hi.max(lo).min(self.wo))
    }
}

/// Everything the batched unroll needs to locate a (batch, channel) plane
/// and decode a global tap row.
#[derive(Debug, Clone, Copy)]
pub(crate) struct BatchGeom {
    /// Batch elements.
    pub b: usize,
    /// Total input channels (across all groups).
    pub cin: usize,
    pub cs: ColShape,
    pub spec: ConvSpec,
}

impl BatchGeom {
    /// Columns of the batched matrix: `b * ho * wo`.
    pub fn bcols(&self) -> usize {
        self.b * self.cs.cols()
    }

    /// Rows of the batched matrix: `cin * kh * kw`.
    pub fn rows(&self) -> usize {
        self.cin * self.cs.kh * self.cs.kw
    }

    /// Decodes a global tap row into `(ic, ky, kx)`.
    fn tap(&self, r: usize) -> (usize, usize, usize) {
        let taps = self.cs.kh * self.cs.kw;
        let (ic, t) = (r / taps, r % taps);
        (ic, t / self.cs.kw, t % self.cs.kw)
    }

    /// The `[h, w]` input plane of batch `bi`, channel `ic`.
    fn plane<'a>(&self, x: &'a [f32], bi: usize, ic: usize) -> &'a [f32] {
        let hw = self.cs.h * self.cs.w;
        &x[(bi * self.cin + ic) * hw..][..hw]
    }
}

/// One tap of the unroll with its column-validity range precomputed, so
/// the hot packing loops pay the decode and `ox_range` divisions once per
/// tap instead of once per 32-pixel segment.
#[derive(Debug, Clone, Copy)]
struct TapInfo {
    ic: usize,
    ky: usize,
    kx: usize,
    ox_lo: usize,
    ox_hi: usize,
}

impl BatchGeom {
    fn tap_info(&self, r: usize) -> TapInfo {
        let (ic, ky, kx) = self.tap(r);
        let (ox_lo, ox_hi) = self.cs.ox_range(kx, self.spec);
        TapInfo {
            ic,
            ky,
            kx,
            ox_lo,
            ox_hi,
        }
    }
}

/// One maximal single-output-row run of a pixel-column range: pixels
/// `ox0 .. ox0+len` of output row `oy`, batch element `bi`, starting
/// `off` pixels into the range. Precomputed once per packed strip and
/// shared by every tap level of that strip.
#[derive(Debug, Clone, Copy)]
struct PixRun {
    off: usize,
    bi: usize,
    oy: usize,
    ox0: usize,
    len: usize,
}

/// Decomposes the pixel-column range `[j0, j0 + count)` of the batched
/// matrix into per-(batch, output-row) runs.
fn pixel_runs(g: &BatchGeom, j0: usize, count: usize, runs: &mut Vec<PixRun>) {
    runs.clear();
    let owo = g.cs.cols();
    let mut j = j0;
    let end = j0 + count;
    while j < end {
        let (bi, q) = (j / owo, j % owo);
        let (oy, ox0) = (q / g.cs.wo, q % g.cs.wo);
        let len = (g.cs.wo - ox0).min(end - j);
        runs.push(PixRun {
            off: j - j0,
            bi,
            oy,
            ox0,
            len,
        });
        j += len;
    }
}

/// Writes one tap's values over one pixel run into `out` (based at the
/// run's first pixel), spacing consecutive pixels `dstride` slots apart
/// (`1` materializes a row; `nr` fills one column of a packed strip).
///
/// Padding positions are written as zeros; the padding-free interior is a
/// `copy_from_slice` at stride 1 / a tight gather at larger strides.
#[inline]
#[allow(clippy::too_many_arguments)]
fn fill_row_run(
    plane: &[f32],
    cs: ColShape,
    spec: ConvSpec,
    t: TapInfo,
    oy: usize,
    ox0: usize,
    len: usize,
    out: &mut [f32],
    dstride: usize,
) {
    let (st, pad) = (spec.stride, spec.padding);
    let iy = oy * st + t.ky;
    if iy < pad || iy - pad >= cs.h {
        if dstride == 1 {
            zero_short(&mut out[..len]);
        } else {
            for i in 0..len {
                out[i * dstride] = 0.0;
            }
        }
        return;
    }
    let src_row = &plane[(iy - pad) * cs.w..(iy - pad + 1) * cs.w];
    let lo = t.ox_lo.clamp(ox0, ox0 + len);
    let hi = t.ox_hi.clamp(lo, ox0 + len);
    for i in 0..lo - ox0 {
        out[i * dstride] = 0.0;
    }
    for i in hi - ox0..len {
        out[i * dstride] = 0.0;
    }
    // `hi > lo` implies `lo >= ox_lo`, so `lo*st + kx >= pad`.
    if hi > lo {
        if st == 1 {
            // Interior fast path: one contiguous run.
            let i0 = lo + t.kx - pad;
            let src = &src_row[i0..i0 + (hi - lo)];
            if dstride == 1 {
                copy_short(&mut out[lo - ox0..hi - ox0], src);
            } else {
                for (i, &v) in src.iter().enumerate() {
                    out[(lo - ox0 + i) * dstride] = v;
                }
            }
        } else {
            for i in 0..hi - lo {
                out[(lo - ox0 + i) * dstride] = src_row[(lo + i) * st + t.kx - pad];
            }
        }
    }
}

/// Writes one tap's column-matrix row over output pixels `[q0, q1)` of
/// one batch element's `plane` at `dstride` spacing (the whole-row case
/// of [`fill_row_run`], used by the materializing unroll).
#[allow(clippy::too_many_arguments)]
fn fill_tap_run(
    plane: &[f32],
    cs: ColShape,
    spec: ConvSpec,
    t: TapInfo,
    q0: usize,
    q1: usize,
    dst: &mut [f32],
    dstride: usize,
) {
    let mut q = q0;
    while q < q1 {
        let (oy, ox0) = (q / cs.wo, q % cs.wo);
        let len = (cs.wo - ox0).min(q1 - q);
        fill_row_run(
            plane,
            cs,
            spec,
            t,
            oy,
            ox0,
            len,
            &mut dst[(q - q0) * dstride..],
            dstride,
        );
        q += len;
    }
}

/// Materializes the batched column matrix `cols: [rows(), bcols()]` for
/// the whole batch (the tape's column cache and the re-unroll fallback).
///
/// Each tap row of the matrix is one contiguous `bcols()` slice, so the
/// unroll parallelizes across rows with disjoint output chunks.
pub(crate) fn im2col_batched(x: &[f32], g: BatchGeom, cols: &mut [f32], threads: usize) {
    debug_assert_eq!(x.len(), g.b * g.cin * g.cs.h * g.cs.w);
    debug_assert_eq!(cols.len(), g.rows() * g.bcols());
    let owo = g.cs.cols();
    let row_len = g.bcols();
    yf_tensor::parallel::chunks_mut(cols, row_len, threads, |first_row, chunk| {
        for (r_off, row) in chunk.chunks_exact_mut(row_len).enumerate() {
            let t = g.tap_info(first_row + r_off);
            for bi in 0..g.b {
                fill_tap_run(
                    g.plane(x, bi, t.ic),
                    g.cs,
                    g.spec,
                    t,
                    0,
                    owo,
                    &mut row[bi * owo..(bi + 1) * owo],
                    1,
                );
            }
        }
    });
}

/// Forward / backward-input B operand: the virtual batched column matrix
/// in `op(B) = [ckk, B*Ho*Wo]` orientation for one group (`row0` is the
/// group's first global tap row). Panels pack straight from the image —
/// the unroll never materializes.
pub(crate) struct ColsPackNN<'a> {
    pub x: &'a [f32],
    pub g: BatchGeom,
    pub row0: usize,
}

impl PackBPanel for ColsPackNN<'_> {
    fn pack_panel(&self, dst: &mut [f32], nr: usize, col0: usize, nc: usize, pc: usize, kc: usize) {
        // Taps are shared by every strip of the panel; runs are shared by
        // every tap level of one strip — both are precomputed so the hot
        // loop is pure row copies.
        let taps: Vec<TapInfo> = (0..kc)
            .map(|p| self.g.tap_info(self.row0 + pc + p))
            .collect();
        let mut runs = Vec::new();
        for (s, strip) in dst
            .chunks_exact_mut(kc * nr)
            .take(nc.div_ceil(nr))
            .enumerate()
        {
            let j0 = col0 + s * nr;
            let cols = nr.min(col0 + nc - j0);
            pixel_runs(&self.g, j0, cols, &mut runs);
            for (p, &t) in taps.iter().enumerate() {
                let drow = &mut strip[p * nr..(p + 1) * nr];
                for r in &runs {
                    fill_row_run(
                        self.g.plane(self.x, r.bi, t.ic),
                        self.g.cs,
                        self.g.spec,
                        t,
                        r.oy,
                        r.ox0,
                        r.len,
                        &mut drow[r.off..],
                        1,
                    );
                }
                zero_short(&mut drow[cols..]);
            }
        }
    }
}

/// Backward-weight B operand: the virtual batched column matrix in
/// transposed orientation, `op(B) = colsᵀ = [B*Ho*Wo, ckk]`, for one
/// group. Each packed-strip column is one tap; its `kc` pixel levels are
/// written at stride `nr` while the image is read contiguously.
pub(crate) struct ColsPackNT<'a> {
    pub x: &'a [f32],
    pub g: BatchGeom,
    pub row0: usize,
}

impl PackBPanel for ColsPackNT<'_> {
    fn pack_panel(&self, dst: &mut [f32], nr: usize, col0: usize, nc: usize, pc: usize, kc: usize) {
        // The kc pixel levels are the same for every strip and tap of the
        // panel: decompose them into runs once.
        let mut runs = Vec::new();
        pixel_runs(&self.g, pc, kc, &mut runs);
        for (s, strip) in dst
            .chunks_exact_mut(kc * nr)
            .take(nc.div_ceil(nr))
            .enumerate()
        {
            let j0 = col0 + s * nr;
            let cols = nr.min(col0 + nc - j0);
            for c in 0..cols {
                let t = self.g.tap_info(self.row0 + j0 + c);
                for r in &runs {
                    fill_row_run(
                        self.g.plane(self.x, r.bi, t.ic),
                        self.g.cs,
                        self.g.spec,
                        t,
                        r.oy,
                        r.ox0,
                        r.len,
                        &mut strip[r.off * nr + c..],
                        nr,
                    );
                }
            }
            for c in cols..nr {
                for p in 0..kc {
                    strip[p * nr + c] = 0.0;
                }
            }
        }
    }
}

/// Scatter-adds one tap row segment (`src`: `ho*wo` pixels of one batch
/// element) back into that element's image `plane`.
fn scatter_tap_add(
    src: &[f32],
    cs: ColShape,
    spec: ConvSpec,
    ky: usize,
    kx: usize,
    plane: &mut [f32],
) {
    let (st, pad) = (spec.stride, spec.padding);
    let (ox_lo, ox_hi) = cs.ox_range(kx, spec);
    for oy in 0..cs.ho {
        let iy = oy * st + ky;
        if iy < pad || iy - pad >= cs.h {
            continue;
        }
        let seg = &src[oy * cs.wo..(oy + 1) * cs.wo];
        let drow = &mut plane[(iy - pad) * cs.w..(iy - pad + 1) * cs.w];
        if st == 1 {
            let i0 = ox_lo + kx - pad;
            for (slot, &g) in drow[i0..i0 + (ox_hi - ox_lo)]
                .iter_mut()
                .zip(&seg[ox_lo..ox_hi])
            {
                *slot += g;
            }
        } else {
            for (ox, &g) in seg[ox_lo..ox_hi].iter().enumerate() {
                drow[(ox_lo + ox) * st + kx - pad] += g;
            }
        }
    }
}

/// Scatter-adds the batched column-gradient matrix
/// `cols: [rows(), bcols()]` back into the image gradient
/// `dx: [B, Cin, H, W]`: `dx[bi, ic, iy, ix] += cols[(ic,ky,kx),
/// (bi,oy,ox)]` over every tap that read that pixel. Exact adjoint of
/// [`im2col_batched`].
///
/// Each `(bi, ic)` image plane is written by exactly one worker (reading
/// its channel's tap rows at that batch's column offset), so the scatter
/// parallelizes across all `B * Cin` planes with disjoint output chunks
/// and is deterministic at any thread count.
pub(crate) fn col2im_batched(cols: &[f32], g: BatchGeom, dx: &mut [f32], threads: usize) {
    debug_assert_eq!(dx.len(), g.b * g.cin * g.cs.h * g.cs.w);
    debug_assert_eq!(cols.len(), g.rows() * g.bcols());
    let plane_len = g.cs.h * g.cs.w;
    let owo = g.cs.cols();
    let row_len = g.bcols();
    let taps = g.cs.kh * g.cs.kw;
    yf_tensor::parallel::chunks_mut(dx, plane_len, threads, |first_plane, chunk| {
        for (p_off, plane) in chunk.chunks_exact_mut(plane_len).enumerate() {
            let p = first_plane + p_off;
            let (bi, ic) = (p / g.cin, p % g.cin);
            for t in 0..taps {
                let (ky, kx) = (t / g.cs.kw, t % g.cs.kw);
                let src = &cols[(ic * taps + t) * row_len + bi * owo..][..owo];
                scatter_tap_add(src, g.cs, g.spec, ky, kx, plane);
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom(
        b: usize,
        cin: usize,
        h: usize,
        w: usize,
        kh: usize,
        kw: usize,
        spec: ConvSpec,
    ) -> BatchGeom {
        BatchGeom {
            b,
            cin,
            cs: ColShape {
                cin_g: cin / spec.groups,
                h,
                w,
                kh,
                kw,
                ho: spec.out_extent(h, kh),
                wo: spec.out_extent(w, kw),
            },
            spec,
        }
    }

    fn unroll_naive(x: &[f32], g: BatchGeom) -> Vec<f32> {
        let cs = g.cs;
        let owo = cs.cols();
        let mut cols = vec![0.0f32; g.rows() * g.bcols()];
        for bi in 0..g.b {
            for ic in 0..g.cin {
                for ky in 0..cs.kh {
                    for kx in 0..cs.kw {
                        let row = (ic * cs.kh + ky) * cs.kw + kx;
                        for oy in 0..cs.ho {
                            for ox in 0..cs.wo {
                                let iy =
                                    (oy * g.spec.stride + ky) as isize - g.spec.padding as isize;
                                let ix =
                                    (ox * g.spec.stride + kx) as isize - g.spec.padding as isize;
                                if iy < 0 || ix < 0 || iy >= cs.h as isize || ix >= cs.w as isize {
                                    continue;
                                }
                                cols[row * g.bcols() + bi * owo + oy * cs.wo + ox] = x
                                    [((bi * g.cin + ic) * cs.h + iy as usize) * cs.w + ix as usize];
                            }
                        }
                    }
                }
            }
        }
        cols
    }

    #[test]
    fn matches_naive_unroll_across_geometries() {
        for &(b, h, w, kh, kw, stride, padding) in &[
            (1, 5, 5, 3, 3, 1, 1),
            (3, 5, 7, 3, 3, 2, 1),
            (2, 4, 4, 1, 1, 1, 0),
            (2, 6, 6, 3, 3, 1, 0),
            (1, 7, 5, 5, 3, 2, 2),
            (4, 3, 3, 3, 3, 1, 2),
        ] {
            let spec = ConvSpec {
                stride,
                padding,
                groups: 1,
            };
            let g = geom(b, 2, h, w, kh, kw, spec);
            let x: Vec<f32> = (0..b * 2 * h * w).map(|v| v as f32 + 1.0).collect();
            let want = unroll_naive(&x, g);
            for threads in [1usize, 2, 4] {
                let mut got = vec![f32::NAN; want.len()];
                im2col_batched(&x, g, &mut got, threads);
                assert_eq!(
                    got, want,
                    "b{b} h{h} w{w} k{kh}x{kw} s{stride} p{padding} t{threads}"
                );
            }
        }
    }

    #[test]
    fn pack_panels_match_materialized_columns() {
        // Both PackBPanel orientations must deliver exactly what packing
        // the materialized column matrix would: NN strips are row
        // segments, NT strips are column segments of the same matrix.
        let spec = ConvSpec {
            stride: 2,
            padding: 1,
            groups: 1,
        };
        let g = geom(3, 2, 5, 6, 3, 3, spec);
        let x: Vec<f32> = (0..g.b * g.cin * g.cs.h * g.cs.w)
            .map(|v| (v as f32 * 0.61).sin())
            .collect();
        let cols = unroll_naive(&x, g);
        let (rows, bcols) = (g.rows(), g.bcols());
        let nr = 8usize;
        // NN: op(B) = cols, panel over pixel columns.
        let (nc, kc, col0, pc) = (13usize, 7usize, 3usize, 5usize);
        let mut got = vec![f32::NAN; nc.div_ceil(nr) * nr * kc];
        let nn = ColsPackNN { x: &x, g, row0: 0 };
        nn.pack_panel(&mut got, nr, col0, nc, pc, kc);
        for (s, strip) in got.chunks_exact(kc * nr).enumerate() {
            let j0 = col0 + s * nr;
            for p in 0..kc {
                for c in 0..nr {
                    let want = if j0 + c < col0 + nc && j0 + c < bcols {
                        cols[(pc + p) * bcols + j0 + c]
                    } else {
                        0.0
                    };
                    assert_eq!(strip[p * nr + c], want, "nn s{s} p{p} c{c}");
                }
            }
        }
        // NT: op(B) = colsᵀ, panel over tap columns, pixel levels.
        let (nc, kc, col0, pc) = (rows - 2, 9, 1, 4);
        let mut got = vec![f32::NAN; nc.div_ceil(nr) * nr * kc];
        let nt = ColsPackNT { x: &x, g, row0: 1 };
        nt.pack_panel(&mut got, nr, col0, nc, pc, kc);
        for (s, strip) in got.chunks_exact(kc * nr).enumerate() {
            let j0 = col0 + s * nr;
            for p in 0..kc {
                for c in 0..nr {
                    let want = if j0 + c < col0 + nc {
                        cols[(1 + j0 + c) * bcols + pc + p]
                    } else {
                        0.0
                    };
                    assert_eq!(strip[p * nr + c], want, "nt s{s} p{p} c{c}");
                }
            }
        }
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random-ish x, y — over the
        // whole batch at once.
        let spec = ConvSpec {
            stride: 2,
            padding: 1,
            groups: 1,
        };
        let g = geom(2, 3, 5, 6, 3, 3, spec);
        let x: Vec<f32> = (0..g.b * g.cin * g.cs.h * g.cs.w)
            .map(|v| (v as f32 * 0.37).sin())
            .collect();
        let y: Vec<f32> = (0..g.rows() * g.bcols())
            .map(|v| (v as f32 * 0.71).cos())
            .collect();
        let mut cols = vec![0.0f32; y.len()];
        im2col_batched(&x, g, &mut cols, 2);
        let lhs: f64 = cols.iter().zip(&y).map(|(&a, &b)| f64::from(a * b)).sum();
        let mut xt = vec![0.0f32; x.len()];
        col2im_batched(&y, g, &mut xt, 2);
        let rhs: f64 = x.iter().zip(&xt).map(|(&a, &b)| f64::from(a * b)).sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");

        // The parallel scatter is deterministic: per-plane outputs are
        // disjoint, so 1-thread and N-thread results agree bitwise.
        let mut xt1 = vec![0.0f32; x.len()];
        col2im_batched(&y, g, &mut xt1, 1);
        assert_eq!(xt, xt1);
    }
}
