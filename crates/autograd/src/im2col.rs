//! im2col/col2im lowering: 2-D convolution as GEMM.
//!
//! One (batch, group) image slice `[Cin/g, H, W]` unrolls into a column
//! matrix `[Cin/g * KH * KW, Ho * Wo]`; convolution is then a single
//! `[Cout/g, Cin/g*KH*KW] x [Cin/g*KH*KW, Ho*Wo]` matrix product per
//! (batch, group) against the packed GEMM in `yf_tensor::gemm`. Both
//! backward passes are the matching transposed products, with
//! [`col2im_add`] scattering the column gradient back to image layout.
//!
//! The unroll walks output rows, not individual taps: each `(channel, ky,
//! kx)` row of the column matrix is filled per output row with one
//! bounds computation, so the padding-free interior (every row of an
//! unpadded convolution, and all interior rows of a padded one) is
//! `copy_from_slice` runs at stride 1 and a tight gather at larger
//! strides — no per-element padding checks anywhere.
//!
//! Column buffers come from a caller-provided
//! [`Scratch`](yf_tensor::Scratch) pool, so steady-state training reuses
//! one allocation per shape.
//!
//! Both the unroll and the scatter are embarrassingly parallel across
//! input channels (each channel owns a contiguous row block of the
//! column matrix and its own image plane), so both take a thread count
//! and fan out through `yf_tensor::parallel::scoped_chunks_mut` when the
//! caller's column matrix is large enough to pay for it.

use crate::conv::ConvSpec;

/// Geometry of one (batch, group) column unroll, shared by the three
/// conv kernels.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ColShape {
    /// Channels per group.
    pub cin_g: usize,
    /// Input spatial extents.
    pub h: usize,
    pub w: usize,
    /// Kernel spatial extents.
    pub kh: usize,
    pub kw: usize,
    /// Output spatial extents.
    pub ho: usize,
    pub wo: usize,
}

impl ColShape {
    /// Rows of the column matrix: one per (channel, ky, kx) tap.
    pub fn rows(&self) -> usize {
        self.cin_g * self.kh * self.kw
    }

    /// Columns of the column matrix: one per output pixel.
    pub fn cols(&self) -> usize {
        self.ho * self.wo
    }

    /// The valid output-x range `[lo, hi)` for tap column `kx`, i.e. the
    /// `ox` whose input column `ox*stride + kx - padding` lands in
    /// `[0, w)`. Everything outside is padding.
    fn ox_range(&self, kx: usize, spec: ConvSpec) -> (usize, usize) {
        let lo = if kx >= spec.padding {
            0
        } else {
            (spec.padding - kx).div_ceil(spec.stride)
        };
        let hi = if self.w + spec.padding > kx {
            self.wo
                .min((self.w + spec.padding - kx - 1) / spec.stride + 1)
        } else {
            0
        };
        (lo.min(self.wo), hi.max(lo).min(self.wo))
    }
}

/// Unrolls one channel plane `x: [h, w]` into its `kh * kw` rows of the
/// column matrix (`dst: [kh * kw, cols()]`).
fn im2col_channel(plane: &[f32], cs: ColShape, spec: ConvSpec, dst: &mut [f32]) {
    let (st, pad) = (spec.stride, spec.padding);
    let mut dst_rows = dst.chunks_exact_mut(cs.cols());
    for ky in 0..cs.kh {
        for kx in 0..cs.kw {
            let dst = dst_rows.next().expect("cols row count");
            let (ox_lo, ox_hi) = cs.ox_range(kx, spec);
            for oy in 0..cs.ho {
                let iy = oy * st + ky;
                let seg = &mut dst[oy * cs.wo..(oy + 1) * cs.wo];
                if iy < pad || iy - pad >= cs.h {
                    seg.fill(0.0);
                    continue;
                }
                let src = &plane[(iy - pad) * cs.w..(iy - pad + 1) * cs.w];
                seg[..ox_lo].fill(0.0);
                seg[ox_hi..].fill(0.0);
                if st == 1 {
                    // Interior fast path: one contiguous run.
                    let i0 = ox_lo + kx - pad;
                    seg[ox_lo..ox_hi].copy_from_slice(&src[i0..i0 + (ox_hi - ox_lo)]);
                } else {
                    for (ox, slot) in seg[ox_lo..ox_hi].iter_mut().enumerate() {
                        *slot = src[(ox_lo + ox) * st + kx - pad];
                    }
                }
            }
        }
    }
}

/// Unrolls one image slice `x: [cin_g, h, w]` into `cols: [rows(), cols()]`.
///
/// Channel `ic` owns the contiguous row block `[ic*kh*kw, (ic+1)*kh*kw)`
/// of the column matrix, so the unroll parallelizes across channels with
/// disjoint output chunks (`threads` scoped workers; 1 = plain call).
pub(crate) fn im2col_into(
    x: &[f32],
    cs: ColShape,
    spec: ConvSpec,
    cols: &mut [f32],
    threads: usize,
) {
    debug_assert_eq!(x.len(), cs.cin_g * cs.h * cs.w);
    debug_assert_eq!(cols.len(), cs.rows() * cs.cols());
    let per_channel = cs.kh * cs.kw * cs.cols();
    yf_tensor::parallel::scoped_chunks_mut(cols, per_channel, threads, |first_ch, chunk| {
        for (c, dst) in chunk.chunks_exact_mut(per_channel).enumerate() {
            let ic = first_ch + c;
            let plane = &x[ic * cs.h * cs.w..(ic + 1) * cs.h * cs.w];
            im2col_channel(plane, cs, spec, dst);
        }
    });
}

/// Scatter-adds one channel's column rows back into its image plane.
fn col2im_channel(src_rows: &[f32], cs: ColShape, spec: ConvSpec, plane: &mut [f32]) {
    let (st, pad) = (spec.stride, spec.padding);
    let mut src_rows = src_rows.chunks_exact(cs.cols());
    for ky in 0..cs.kh {
        for kx in 0..cs.kw {
            let src = src_rows.next().expect("cols row count");
            let (ox_lo, ox_hi) = cs.ox_range(kx, spec);
            for oy in 0..cs.ho {
                let iy = oy * st + ky;
                if iy < pad || iy - pad >= cs.h {
                    continue;
                }
                let seg = &src[oy * cs.wo..(oy + 1) * cs.wo];
                let drow = &mut plane[(iy - pad) * cs.w..(iy - pad + 1) * cs.w];
                if st == 1 {
                    let i0 = ox_lo + kx - pad;
                    for (slot, &g) in drow[i0..i0 + (ox_hi - ox_lo)]
                        .iter_mut()
                        .zip(&seg[ox_lo..ox_hi])
                    {
                        *slot += g;
                    }
                } else {
                    for (ox, &g) in seg[ox_lo..ox_hi].iter().enumerate() {
                        drow[(ox_lo + ox) * st + kx - pad] += g;
                    }
                }
            }
        }
    }
}

/// Scatter-adds a column matrix back into an image slice:
/// `dx[ic, iy, ix] += cols[(ic,ky,kx), (oy,ox)]` over every tap that read
/// that pixel. Exact adjoint of [`im2col_into`].
///
/// Each channel writes only its own `[h, w]` plane of `dx` (reading its
/// own row block of `cols`), so the scatter parallelizes across channels
/// with disjoint output chunks, mirroring the unroll.
pub(crate) fn col2im_add(
    cols: &[f32],
    cs: ColShape,
    spec: ConvSpec,
    dx: &mut [f32],
    threads: usize,
) {
    debug_assert_eq!(dx.len(), cs.cin_g * cs.h * cs.w);
    debug_assert_eq!(cols.len(), cs.rows() * cs.cols());
    let per_channel = cs.kh * cs.kw * cs.cols();
    let plane_len = cs.h * cs.w;
    yf_tensor::parallel::scoped_chunks_mut(dx, plane_len, threads, |first_ch, chunk| {
        for (c, plane) in chunk.chunks_exact_mut(plane_len).enumerate() {
            let ic = first_ch + c;
            let src_rows = &cols[ic * per_channel..(ic + 1) * per_channel];
            col2im_channel(src_rows, cs, spec, plane);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unroll_naive(x: &[f32], cs: ColShape, spec: ConvSpec) -> Vec<f32> {
        let mut cols = vec![0.0f32; cs.rows() * cs.cols()];
        for ic in 0..cs.cin_g {
            for ky in 0..cs.kh {
                for kx in 0..cs.kw {
                    let row = (ic * cs.kh + ky) * cs.kw + kx;
                    for oy in 0..cs.ho {
                        for ox in 0..cs.wo {
                            let iy = (oy * spec.stride + ky) as isize - spec.padding as isize;
                            let ix = (ox * spec.stride + kx) as isize - spec.padding as isize;
                            if iy < 0 || ix < 0 || iy >= cs.h as isize || ix >= cs.w as isize {
                                continue;
                            }
                            cols[row * cs.cols() + oy * cs.wo + ox] =
                                x[(ic * cs.h + iy as usize) * cs.w + ix as usize];
                        }
                    }
                }
            }
        }
        cols
    }

    #[test]
    fn matches_naive_unroll_across_geometries() {
        for &(h, w, kh, kw, stride, padding) in &[
            (5, 5, 3, 3, 1, 1),
            (5, 7, 3, 3, 2, 1),
            (4, 4, 1, 1, 1, 0),
            (6, 6, 3, 3, 1, 0),
            (7, 5, 5, 3, 2, 2),
            (3, 3, 3, 3, 1, 2),
        ] {
            let spec = ConvSpec {
                stride,
                padding,
                groups: 1,
            };
            let cs = ColShape {
                cin_g: 2,
                h,
                w,
                kh,
                kw,
                ho: spec.out_extent(h, kh),
                wo: spec.out_extent(w, kw),
            };
            let x: Vec<f32> = (0..2 * h * w).map(|v| v as f32 + 1.0).collect();
            let want = unroll_naive(&x, cs, spec);
            for threads in [1usize, 2, 4] {
                let mut got = vec![f32::NAN; want.len()];
                im2col_into(&x, cs, spec, &mut got, threads);
                assert_eq!(
                    got, want,
                    "h{h} w{w} k{kh}x{kw} s{stride} p{padding} t{threads}"
                );
            }
        }
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random-ish x, y.
        let spec = ConvSpec {
            stride: 2,
            padding: 1,
            groups: 1,
        };
        let cs = ColShape {
            cin_g: 3,
            h: 5,
            w: 6,
            kh: 3,
            kw: 3,
            ho: spec.out_extent(5, 3),
            wo: spec.out_extent(6, 3),
        };
        let x: Vec<f32> = (0..cs.cin_g * cs.h * cs.w)
            .map(|v| (v as f32 * 0.37).sin())
            .collect();
        let y: Vec<f32> = (0..cs.rows() * cs.cols())
            .map(|v| (v as f32 * 0.71).cos())
            .collect();
        let mut cols = vec![0.0f32; y.len()];
        im2col_into(&x, cs, spec, &mut cols, 2);
        let lhs: f64 = cols.iter().zip(&y).map(|(&a, &b)| f64::from(a * b)).sum();
        let mut xt = vec![0.0f32; x.len()];
        col2im_add(&y, cs, spec, &mut xt, 2);
        let rhs: f64 = x.iter().zip(&xt).map(|(&a, &b)| f64::from(a * b)).sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");

        // The parallel scatter is deterministic: per-channel outputs are
        // disjoint, so 1-thread and N-thread results agree bitwise.
        let mut xt1 = vec![0.0f32; x.len()];
        col2im_add(&y, cs, spec, &mut xt1, 1);
        assert_eq!(xt, xt1);
    }
}
