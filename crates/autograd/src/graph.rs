//! The tape: nodes, eager forward evaluation, and the public op surface.

use crate::conv::{ColumnCache, ConvSpec};
use crate::norm::{self, BnSaved};
use yf_tensor::Tensor;

/// Identifier of a node on a [`Graph`] tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(pub(crate) usize);

/// How a node was produced; carries whatever the backward pass needs.
#[derive(Debug, Clone)]
pub(crate) enum Op {
    Leaf,
    Add(NodeId, NodeId),
    Sub(NodeId, NodeId),
    Mul(NodeId, NodeId),
    /// `[B, N] + [N]` broadcast along rows.
    AddBias(NodeId, NodeId),
    /// `[B, C, H, W] + [C]` broadcast per channel.
    AddChanBias(NodeId, NodeId),
    MatMul(NodeId, NodeId),
    /// `a · bᵀ` with `b` stored `[n, k]` — the fused-transpose product
    /// used by tied output projections.
    MatMulNT(NodeId, NodeId),
    Relu(NodeId),
    Tanh(NodeId),
    Sigmoid(NodeId),
    Scale(NodeId, f32),
    Reshape(NodeId),
    SumAll(NodeId),
    MeanAll(NodeId),
    /// Column slice of a rank-2 tensor: keeps `[.., start..start+len]`.
    SliceCols {
        input: NodeId,
        start: usize,
        len: usize,
    },
    /// Concatenation of rank-2 tensors along axis 1.
    ConcatCols(Vec<NodeId>),
    /// Mean cross-entropy of `[B, K]` logits against integer targets.
    /// `probs` are the softmax values saved at forward time.
    SoftmaxCrossEntropy {
        logits: NodeId,
        targets: Vec<usize>,
        probs: Tensor,
    },
    /// Row gather: `out[i] = weight[ids[i]]`.
    Embedding {
        weight: NodeId,
        ids: Vec<usize>,
    },
    Conv2d {
        input: NodeId,
        weight: NodeId,
        spec: ConvSpec,
        /// Batched column matrix captured at forward time (when the
        /// weight needs a gradient and the matrix fits the cache budget)
        /// so the weight-gradient pass skips the re-unroll. Shared, so
        /// cloning the op descriptor stays cheap.
        cols: Option<ColumnCache>,
    },
    /// Training-mode batch normalization over `[B, C, H, W]` per channel.
    BatchNorm {
        input: NodeId,
        gamma: NodeId,
        beta: NodeId,
        saved: BnSaved,
    },
    /// `[B, C, H, W] -> [B, C]` spatial mean.
    GlobalAvgPool(NodeId),
    /// 2x2 stride-2 max pooling over `[B, C, H, W]`; `argmax` stores the
    /// flat input offset that won each output cell.
    MaxPool2x2 {
        input: NodeId,
        argmax: Vec<usize>,
    },
    /// Row-wise layer normalization of `[B, N]` with saved statistics.
    LayerNorm {
        input: NodeId,
        gamma: NodeId,
        beta: NodeId,
        /// Per-row `(mean, inv_std)` saved at forward time.
        stats: Vec<(f32, f32)>,
    },
}

#[derive(Debug)]
pub(crate) struct Node {
    pub(crate) op: Op,
    pub(crate) value: Tensor,
    pub(crate) grad: Option<Tensor>,
    pub(crate) requires_grad: bool,
}

/// A define-by-run autodiff tape.
///
/// Values are computed eagerly as ops are recorded; [`Graph::backward`]
/// replays the tape in reverse. A graph is built fresh for every training
/// step (the usual define-by-run pattern), so node storage is reclaimed by
/// dropping the graph.
#[derive(Debug)]
pub struct Graph {
    pub(crate) nodes: Vec<Node>,
    /// Reusable column/packing buffers threaded through the conv kernels,
    /// so repeated forward/backward passes stop allocating per op.
    pub(crate) scratch: yf_tensor::Scratch,
    /// Thread budget handed to the parallel kernels (norms, softmax,
    /// pooling, unrolls). Defaults to the machine width; tests pin it.
    pub(crate) threads: usize,
}

impl Default for Graph {
    fn default() -> Self {
        Graph {
            nodes: Vec::new(),
            scratch: yf_tensor::Scratch::default(),
            threads: yf_tensor::parallel::num_threads(),
        }
    }
}

impl Graph {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Overrides the thread budget for this tape's parallel kernels
    /// (norms, softmax, pooling, conv unrolls). The gradient-check tests
    /// use this to validate the kernels at 1 and N threads; kernels still
    /// gate small tensors down to one thread themselves.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn push(&mut self, op: Op, value: Tensor, requires_grad: bool) -> NodeId {
        self.nodes.push(Node {
            op,
            value,
            grad: None,
            requires_grad,
        });
        NodeId(self.nodes.len() - 1)
    }

    pub(crate) fn rg(&self, id: NodeId) -> bool {
        self.nodes[id.0].requires_grad
    }

    /// The forward value of a node.
    pub fn value(&self, id: NodeId) -> &Tensor {
        &self.nodes[id.0].value
    }

    /// The gradient of a node after [`Graph::backward`], if any was
    /// propagated to it.
    pub fn grad(&self, id: NodeId) -> Option<&Tensor> {
        self.nodes[id.0].grad.as_ref()
    }

    /// Records an input tensor. `trainable` leaves receive gradients.
    pub fn leaf(&mut self, value: Tensor, trainable: bool) -> NodeId {
        self.push(Op::Leaf, value, trainable)
    }

    /// Records a constant (no gradient ever flows into it).
    pub fn constant(&mut self, value: Tensor) -> NodeId {
        self.leaf(value, false)
    }

    fn unary(&mut self, op: Op, input: NodeId, value: Tensor) -> NodeId {
        let rg = self.rg(input);
        self.push(op, value, rg)
    }

    fn binary(&mut self, op: Op, a: NodeId, b: NodeId, value: Tensor) -> NodeId {
        let rg = self.rg(a) || self.rg(b);
        self.push(op, value, rg)
    }

    /// Elementwise sum of two same-shaped nodes.
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).add(self.value(b));
        self.binary(Op::Add(a, b), a, b, v)
    }

    /// Elementwise difference `a - b`.
    pub fn sub(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).sub(self.value(b));
        self.binary(Op::Sub(a, b), a, b, v)
    }

    /// Elementwise product.
    pub fn mul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).mul(self.value(b));
        self.binary(Op::Mul(a, b), a, b, v)
    }

    /// Adds a rank-1 bias `[N]` to every row of a rank-2 `[B, N]` node.
    ///
    /// # Panics
    ///
    /// Panics if shapes are incompatible.
    pub fn add_bias(&mut self, x: NodeId, bias: NodeId) -> NodeId {
        let xv = self.value(x);
        let bv = self.value(bias);
        assert_eq!(xv.shape().len(), 2, "add_bias: x must be rank 2");
        assert_eq!(
            bv.shape(),
            &[xv.shape()[1]],
            "add_bias: bias must match columns"
        );
        let n = xv.shape()[1];
        let mut out = xv.clone();
        for (i, v) in out.data_mut().iter_mut().enumerate() {
            *v += bv.data()[i % n];
        }
        self.binary(Op::AddBias(x, bias), x, bias, out)
    }

    /// Adds a per-channel bias `[C]` to a `[B, C, H, W]` node.
    pub fn add_chan_bias(&mut self, x: NodeId, bias: NodeId) -> NodeId {
        let xv = self.value(x);
        let bv = self.value(bias);
        assert_eq!(xv.shape().len(), 4, "add_chan_bias: x must be rank 4");
        let (c, hw) = (xv.shape()[1], xv.shape()[2] * xv.shape()[3]);
        assert_eq!(bv.shape(), &[c], "add_chan_bias: bias must match channels");
        let mut out = xv.clone();
        for (i, v) in out.data_mut().iter_mut().enumerate() {
            *v += bv.data()[(i / hw) % c];
        }
        self.binary(Op::AddChanBias(x, bias), x, bias, out)
    }

    /// Matrix product of rank-2 nodes.
    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).matmul(self.value(b));
        self.binary(Op::MatMul(a, b), a, b, v)
    }

    /// Fused `a · bᵀ` of rank-2 nodes (`a: [m, k]`, `b: [n, k]`), without
    /// materializing the transpose in either pass — the backward products
    /// are fused-transpose GEMMs too. This is how tied output projections
    /// (`logits = h Eᵀ`) reuse an embedding table.
    pub fn matmul_nt(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).matmul_nt(self.value(b));
        self.binary(Op::MatMulNT(a, b), a, b, v)
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, x: NodeId) -> NodeId {
        let v = self.value(x).map(|v| v.max(0.0));
        self.unary(Op::Relu(x), x, v)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, x: NodeId) -> NodeId {
        let v = self.value(x).map(f32::tanh);
        self.unary(Op::Tanh(x), x, v)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, x: NodeId) -> NodeId {
        let v = self.value(x).map(|v| 1.0 / (1.0 + (-v).exp()));
        self.unary(Op::Sigmoid(x), x, v)
    }

    /// Multiplication by a compile-time constant.
    pub fn scale(&mut self, x: NodeId, alpha: f32) -> NodeId {
        let v = self.value(x).scale(alpha);
        self.unary(Op::Scale(x, alpha), x, v)
    }

    /// Shape change preserving element order.
    pub fn reshape(&mut self, x: NodeId, dims: &[usize]) -> NodeId {
        let v = self.value(x).reshape(dims);
        self.unary(Op::Reshape(x), x, v)
    }

    /// Sum of all elements, as a scalar node.
    pub fn sum_all(&mut self, x: NodeId) -> NodeId {
        let v = Tensor::scalar(self.value(x).sum());
        self.unary(Op::SumAll(x), x, v)
    }

    /// Mean of all elements, as a scalar node.
    pub fn mean_all(&mut self, x: NodeId) -> NodeId {
        let v = Tensor::scalar(self.value(x).mean());
        self.unary(Op::MeanAll(x), x, v)
    }

    /// Keeps columns `start..start+len` of a rank-2 node.
    pub fn slice_cols(&mut self, input: NodeId, start: usize, len: usize) -> NodeId {
        let xv = self.value(input);
        assert_eq!(xv.shape().len(), 2, "slice_cols: must be rank 2");
        let (b, n) = (xv.shape()[0], xv.shape()[1]);
        assert!(start + len <= n, "slice_cols: {start}+{len} > {n}");
        let mut out = Vec::with_capacity(b * len);
        for r in 0..b {
            out.extend_from_slice(&xv.data()[r * n + start..r * n + start + len]);
        }
        let v = Tensor::from_vec(out, &[b, len]);
        self.unary(Op::SliceCols { input, start, len }, input, v)
    }

    /// Concatenates rank-2 nodes along columns.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or row counts differ.
    pub fn concat_cols(&mut self, parts: &[NodeId]) -> NodeId {
        assert!(!parts.is_empty(), "concat_cols: empty input");
        let b = self.value(parts[0]).shape()[0];
        let total: usize = parts.iter().map(|&p| self.value(p).shape()[1]).sum();
        let mut out = Vec::with_capacity(b * total);
        for r in 0..b {
            for &p in parts {
                let pv = self.value(p);
                assert_eq!(pv.shape()[0], b, "concat_cols: ragged rows");
                let n = pv.shape()[1];
                out.extend_from_slice(&pv.data()[r * n..(r + 1) * n]);
            }
        }
        let v = Tensor::from_vec(out, &[b, total]);
        let rg = parts.iter().any(|&p| self.rg(p));
        self.push(Op::ConcatCols(parts.to_vec()), v, rg)
    }

    /// Mean softmax cross-entropy of `[B, K]` logits against integer class
    /// targets. Numerically stabilized by max subtraction; the softmax
    /// probabilities are cached for the backward pass.
    ///
    /// # Panics
    ///
    /// Panics if `targets.len()` differs from the batch size or a target is
    /// out of range.
    pub fn softmax_cross_entropy(&mut self, logits: NodeId, targets: &[usize]) -> NodeId {
        let (loss, probs) = norm::softmax_xent_forward(self.value(logits), targets, self.threads);
        let value = Tensor::scalar(loss);
        let op = Op::SoftmaxCrossEntropy {
            logits,
            targets: targets.to_vec(),
            probs,
        };
        self.unary(op, logits, value)
    }

    /// Row gather from an embedding table `[V, D]`: the output row `i` is
    /// `weight[ids[i]]`, shaped `[ids.len(), D]`.
    ///
    /// # Panics
    ///
    /// Panics if any id is out of range.
    pub fn embedding(&mut self, weight: NodeId, ids: &[usize]) -> NodeId {
        let wv = self.value(weight);
        assert_eq!(wv.shape().len(), 2, "embedding: weight must be rank 2");
        let (v, d) = (wv.shape()[0], wv.shape()[1]);
        let mut out = Vec::with_capacity(ids.len() * d);
        for &id in ids {
            assert!(id < v, "embedding: id {id} out of range {v}");
            out.extend_from_slice(&wv.data()[id * d..(id + 1) * d]);
        }
        let value = Tensor::from_vec(out, &[ids.len(), d]);
        let op = Op::Embedding {
            weight,
            ids: ids.to_vec(),
        };
        self.unary(op, weight, value)
    }

    /// 2-D convolution of `[B, Cin, H, W]` with `[Cout, Cin/groups, KH, KW]`.
    pub fn conv2d(&mut self, input: NodeId, weight: NodeId, spec: ConvSpec) -> NodeId {
        // Detach the scratch pool so the kernel can borrow it mutably
        // while reading node values out of `self`.
        let mut scratch = std::mem::take(&mut self.scratch);
        // Capture the batched column matrix only when a weight gradient
        // will want it back.
        let (v, cols) = if self.rg(weight) {
            crate::conv::conv2d_forward_caching_with_par(
                self.value(input),
                self.value(weight),
                spec,
                &mut scratch,
                self.threads,
            )
        } else {
            let v = crate::conv::conv2d_forward_with_par(
                self.value(input),
                self.value(weight),
                spec,
                &mut scratch,
                self.threads,
            );
            (v, None)
        };
        self.scratch = scratch;
        self.binary(
            Op::Conv2d {
                input,
                weight,
                spec,
                cols,
            },
            input,
            weight,
            v,
        )
    }

    /// Training-mode batch normalization of `[B, C, H, W]` with per-channel
    /// scale `gamma` and shift `beta` (both `[C]`).
    pub fn batch_norm(&mut self, input: NodeId, gamma: NodeId, beta: NodeId, eps: f32) -> NodeId {
        let (v, saved) = norm::batch_norm_forward(
            self.value(input),
            self.value(gamma),
            self.value(beta),
            eps,
            self.threads,
        );
        let rg = self.rg(input) || self.rg(gamma) || self.rg(beta);
        self.push(
            Op::BatchNorm {
                input,
                gamma,
                beta,
                saved,
            },
            v,
            rg,
        )
    }

    /// Spatial mean pooling `[B, C, H, W] -> [B, C]`.
    pub fn global_avg_pool(&mut self, x: NodeId) -> NodeId {
        let v = norm::global_avg_pool_forward(self.value(x), self.threads);
        self.unary(Op::GlobalAvgPool(x), x, v)
    }

    /// 2x2, stride-2 max pooling of `[B, C, H, W]` (even extents).
    ///
    /// # Panics
    ///
    /// Panics unless the input is rank 4 with even spatial extents.
    pub fn max_pool_2x2(&mut self, input: NodeId) -> NodeId {
        let (v, argmax) = norm::max_pool2x2_forward(self.value(input), self.threads);
        self.unary(Op::MaxPool2x2 { input, argmax }, input, v)
    }

    /// Row-wise layer normalization of a `[B, N]` node with learnable
    /// per-column scale `gamma` and shift `beta` (both `[N]`).
    pub fn layer_norm(&mut self, input: NodeId, gamma: NodeId, beta: NodeId, eps: f32) -> NodeId {
        let (v, stats) = norm::layer_norm_forward(
            self.value(input),
            self.value(gamma),
            self.value(beta),
            eps,
            self.threads,
        );
        let rg = self.rg(input) || self.rg(gamma) || self.rg(beta);
        self.push(
            Op::LayerNorm {
                input,
                gamma,
                beta,
                stats,
            },
            v,
            rg,
        )
    }

    /// Inverted dropout: multiplies by a fixed 0/`1/keep` mask generated
    /// from `seed` (deterministic, so a training step can be replayed).
    /// `keep` is the keep-probability; `keep >= 1` is the identity.
    pub fn dropout(&mut self, x: NodeId, keep: f32, seed: u64) -> NodeId {
        assert!(keep > 0.0, "dropout: keep probability must be positive");
        if keep >= 1.0 {
            return x;
        }
        let shape = self.value(x).shape().to_vec();
        let mut rng = yf_tensor::rng::Pcg32::seed_stream(seed, 0xd120);
        let len = self.value(x).len();
        let scale = 1.0 / keep;
        let mask_data: Vec<f32> = (0..len)
            .map(|_| if rng.uniform() < keep { scale } else { 0.0 })
            .collect();
        let mask = self.constant(Tensor::from_vec(mask_data, &shape));
        self.mul(x, mask)
    }

    /// Back-propagates from a scalar `loss` node, filling gradients of all
    /// nodes that require them.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not a scalar (single-element) node.
    pub fn backward(&mut self, loss: NodeId) {
        assert_eq!(
            self.nodes[loss.0].value.len(),
            1,
            "backward: loss must be a single-element node"
        );
        self.nodes[loss.0].grad = Some(Tensor::ones(self.nodes[loss.0].value.shape()));
        for i in (0..=loss.0).rev() {
            if self.nodes[i].grad.is_none() || !self.nodes[i].requires_grad {
                continue;
            }
            self.backprop_node(i);
        }
    }

    pub(crate) fn accumulate(&mut self, id: NodeId, delta: &Tensor) {
        if !self.rg(id) {
            return;
        }
        match &mut self.nodes[id.0].grad {
            Some(g) => g.axpy_in_place(1.0, delta),
            slot @ None => *slot = Some(delta.clone()),
        }
    }
}
