//! 2-D convolution kernels (forward and both backward passes).
//!
//! Shapes follow the PyTorch convention: input `[B, Cin, H, W]`, weight
//! `[Cout, Cin/groups, KH, KW]`, output `[B, Cout, Ho, Wo]`. Grouped
//! convolution (`groups > 1`) supports the ResNeXt ablation of the paper's
//! Appendix J.4.
//!
//! The production kernels lower every pass onto the cache-blocked GEMM in
//! [`yf_tensor::gemm`] via the [`im2col`](crate::im2col) unroll (with a
//! column-buffer-free fast path for 1x1 stride-1 unpadded convolutions).
//! The original direct loops are retained verbatim in [`reference`]; the
//! property tests cross-check the lowered kernels against them across
//! random shapes, strides, paddings, and groups.
//!
//! Each kernel has a `*_with_scratch` variant taking an explicit
//! [`Scratch`] pool (the autograd tape threads its own through) and a
//! plain variant using the thread-local pool, so steady-state training
//! allocates no column buffers either way.

use crate::im2col::{col2im_add, im2col_into, ColShape};
use yf_tensor::{gemm, parallel, Scratch, Tensor};

/// Minimum column-matrix elements per (batch, group) slice before the
/// im2col/col2im pass fans out across channels; below this the scoped
/// thread spawn costs more than the unroll.
const PARALLEL_UNROLL_MIN: usize = 1 << 14;

/// Threads for unrolling a column matrix of `elems` elements.
fn unroll_threads(elems: usize) -> usize {
    if elems >= PARALLEL_UNROLL_MIN {
        parallel::num_threads()
    } else {
        1
    }
}

/// Static parameters of a convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvSpec {
    /// Spatial stride (same for both axes).
    pub stride: usize,
    /// Zero padding (same for both axes).
    pub padding: usize,
    /// Channel groups; `1` is an ordinary convolution.
    pub groups: usize,
}

impl ConvSpec {
    /// A stride-1, unpadded, ungrouped convolution.
    pub fn unit() -> Self {
        ConvSpec {
            stride: 1,
            padding: 0,
            groups: 1,
        }
    }

    /// "Same"-style spec used by 3x3 ResNet convolutions.
    pub fn same3x3(stride: usize) -> Self {
        ConvSpec {
            stride,
            padding: 1,
            groups: 1,
        }
    }

    /// Output spatial extent for an input extent `n` and kernel extent `k`.
    pub fn out_extent(&self, n: usize, k: usize) -> usize {
        (n + 2 * self.padding - k) / self.stride + 1
    }
}

fn dims4(t: &[usize]) -> (usize, usize, usize, usize) {
    (t[0], t[1], t[2], t[3])
}

/// All derived dimensions of one convolution, shape-checked once.
#[derive(Debug, Clone, Copy)]
struct ConvDims {
    b: usize,
    cin: usize,
    cout: usize,
    cout_g: usize,
    /// Weight rows per group flattened: `cin_g * kh * kw`.
    ckk: usize,
    /// Output pixels: `ho * wo`.
    owo: usize,
    ho: usize,
    wo: usize,
    cs: ColShape,
}

impl ConvDims {
    fn new(input_shape: &[usize], weight_shape: &[usize], spec: ConvSpec) -> Self {
        let (b, cin, h, w) = dims4(input_shape);
        let (cout, cin_g, kh, kw) = dims4(weight_shape);
        assert!(
            spec.groups > 0 && spec.stride > 0,
            "conv2d: bad spec {spec:?}"
        );
        assert_eq!(cin % spec.groups, 0, "conv2d: cin {cin} % groups");
        assert_eq!(cout % spec.groups, 0, "conv2d: cout {cout} % groups");
        assert_eq!(cin / spec.groups, cin_g, "conv2d: weight channel mismatch");
        let (ho, wo) = (spec.out_extent(h, kh), spec.out_extent(w, kw));
        ConvDims {
            b,
            cin,
            cout,
            cout_g: cout / spec.groups,
            ckk: cin_g * kh * kw,
            owo: ho * wo,
            ho,
            wo,
            cs: ColShape {
                cin_g,
                h,
                w,
                kh,
                kw,
                ho,
                wo,
            },
        }
    }

    /// Whether the convolution is a pure channel mix (1x1, stride 1, no
    /// padding): the column matrix would equal the input slice, so the
    /// unroll is skipped entirely.
    fn is_pointwise(&self, spec: ConvSpec) -> bool {
        self.cs.kh == 1 && self.cs.kw == 1 && spec.stride == 1 && spec.padding == 0
    }

    /// Flat range of the (batch `bi`, group `g`) input slice.
    fn x_slice(&self, bi: usize, g: usize) -> std::ops::Range<usize> {
        let start = (bi * self.cin + g * self.cs.cin_g) * self.cs.h * self.cs.w;
        start..start + self.cs.cin_g * self.cs.h * self.cs.w
    }

    /// Flat range of the (batch `bi`, group `g`) output slice.
    fn o_slice(&self, bi: usize, g: usize) -> std::ops::Range<usize> {
        let start = (bi * self.cout + g * self.cout_g) * self.owo;
        start..start + self.cout_g * self.owo
    }

    /// Flat range of group `g`'s weight block `[cout_g, ckk]`.
    fn w_slice(&self, g: usize) -> std::ops::Range<usize> {
        let start = g * self.cout_g * self.ckk;
        start..start + self.cout_g * self.ckk
    }
}

/// Forward convolution via im2col + GEMM.
///
/// # Panics
///
/// Panics on rank/shape mismatches or if channel counts are not divisible
/// by `groups`.
pub fn conv2d_forward(input: &Tensor, weight: &Tensor, spec: ConvSpec) -> Tensor {
    Scratch::with_thread_local(|s| conv2d_forward_with_scratch(input, weight, spec, s))
}

/// [`conv2d_forward`] with an explicit scratch pool for column buffers.
pub fn conv2d_forward_with_scratch(
    input: &Tensor,
    weight: &Tensor,
    spec: ConvSpec,
    scratch: &mut Scratch,
) -> Tensor {
    let d = ConvDims::new(input.shape(), weight.shape(), spec);
    let mut out = vec![0.0f32; d.b * d.cout * d.owo];
    let x = input.data();
    let wt = weight.data();
    if d.is_pointwise(spec) {
        for bi in 0..d.b {
            for g in 0..spec.groups {
                gemm::gemm_nn(
                    d.cout_g,
                    d.owo,
                    d.ckk,
                    &wt[d.w_slice(g)],
                    &x[d.x_slice(bi, g)],
                    0.0,
                    &mut out[d.o_slice(bi, g)],
                );
            }
        }
    } else {
        let mut cols = scratch.take(d.ckk * d.owo);
        let threads = unroll_threads(cols.len());
        for bi in 0..d.b {
            for g in 0..spec.groups {
                im2col_into(&x[d.x_slice(bi, g)], d.cs, spec, &mut cols, threads);
                gemm::gemm_nn(
                    d.cout_g,
                    d.owo,
                    d.ckk,
                    &wt[d.w_slice(g)],
                    &cols,
                    0.0,
                    &mut out[d.o_slice(bi, g)],
                );
            }
        }
        scratch.put(cols);
    }
    Tensor::from_vec(out, &[d.b, d.cout, d.ho, d.wo])
}

/// Gradient of the convolution with respect to its input.
pub fn conv2d_backward_input(
    input_shape: &[usize],
    weight: &Tensor,
    grad_out: &Tensor,
    spec: ConvSpec,
) -> Tensor {
    Scratch::with_thread_local(|s| {
        conv2d_backward_input_with_scratch(input_shape, weight, grad_out, spec, s)
    })
}

/// [`conv2d_backward_input`] with an explicit scratch pool.
pub fn conv2d_backward_input_with_scratch(
    input_shape: &[usize],
    weight: &Tensor,
    grad_out: &Tensor,
    spec: ConvSpec,
    scratch: &mut Scratch,
) -> Tensor {
    let d = ConvDims::new(input_shape, weight.shape(), spec);
    debug_assert_eq!(grad_out.shape(), &[d.b, d.cout, d.ho, d.wo]);
    let mut dx = vec![0.0f32; d.b * d.cin * d.cs.h * d.cs.w];
    let go = grad_out.data();
    let wt = weight.data();
    if d.is_pointwise(spec) {
        for bi in 0..d.b {
            for g in 0..spec.groups {
                // dx = Wᵀ · dy, written straight into the image slice.
                gemm::gemm_tn(
                    d.ckk,
                    d.owo,
                    d.cout_g,
                    &wt[d.w_slice(g)],
                    &go[d.o_slice(bi, g)],
                    0.0,
                    &mut dx[d.x_slice(bi, g)],
                );
            }
        }
    } else {
        let mut dcols = scratch.take(d.ckk * d.owo);
        let threads = unroll_threads(dcols.len());
        for bi in 0..d.b {
            for g in 0..spec.groups {
                gemm::gemm_tn(
                    d.ckk,
                    d.owo,
                    d.cout_g,
                    &wt[d.w_slice(g)],
                    &go[d.o_slice(bi, g)],
                    0.0,
                    &mut dcols,
                );
                col2im_add(&dcols, d.cs, spec, &mut dx[d.x_slice(bi, g)], threads);
            }
        }
        scratch.put(dcols);
    }
    Tensor::from_vec(dx, input_shape)
}

/// Gradient of the convolution with respect to its weight.
pub fn conv2d_backward_weight(
    input: &Tensor,
    weight_shape: &[usize],
    grad_out: &Tensor,
    spec: ConvSpec,
) -> Tensor {
    Scratch::with_thread_local(|s| {
        conv2d_backward_weight_with_scratch(input, weight_shape, grad_out, spec, s)
    })
}

/// [`conv2d_backward_weight`] with an explicit scratch pool.
pub fn conv2d_backward_weight_with_scratch(
    input: &Tensor,
    weight_shape: &[usize],
    grad_out: &Tensor,
    spec: ConvSpec,
    scratch: &mut Scratch,
) -> Tensor {
    let d = ConvDims::new(input.shape(), weight_shape, spec);
    debug_assert_eq!(grad_out.shape(), &[d.b, d.cout, d.ho, d.wo]);
    let mut dw = vec![0.0f32; d.cout * d.ckk];
    let x = input.data();
    let go = grad_out.data();
    if d.is_pointwise(spec) {
        for bi in 0..d.b {
            for g in 0..spec.groups {
                // dW += dy · xᵀ, accumulated across the batch.
                gemm::gemm_nt(
                    d.cout_g,
                    d.ckk,
                    d.owo,
                    &go[d.o_slice(bi, g)],
                    &x[d.x_slice(bi, g)],
                    1.0,
                    &mut dw[d.w_slice(g)],
                );
            }
        }
    } else {
        let mut cols = scratch.take(d.ckk * d.owo);
        let threads = unroll_threads(cols.len());
        for bi in 0..d.b {
            for g in 0..spec.groups {
                im2col_into(&x[d.x_slice(bi, g)], d.cs, spec, &mut cols, threads);
                gemm::gemm_nt(
                    d.cout_g,
                    d.ckk,
                    d.owo,
                    &go[d.o_slice(bi, g)],
                    &cols,
                    1.0,
                    &mut dw[d.w_slice(g)],
                );
            }
        }
        scratch.put(cols);
    }
    Tensor::from_vec(dw, weight_shape)
}

/// The seed repository's direct convolution loops, retained verbatim as
/// the ground truth the GEMM-lowered kernels are cross-checked against
/// (and as the perf baseline `perf_report` measures speedups over).
pub mod reference {
    use super::{dims4, ConvSpec};
    use yf_tensor::Tensor;

    /// Direct-loop forward convolution.
    pub fn conv2d_forward(input: &Tensor, weight: &Tensor, spec: ConvSpec) -> Tensor {
        let (b, cin, h, w) = dims4(input.shape());
        let (cout, cin_g, kh, kw) = dims4(weight.shape());
        assert!(
            spec.groups > 0 && spec.stride > 0,
            "conv2d: bad spec {spec:?}"
        );
        assert_eq!(cin % spec.groups, 0, "conv2d: cin {cin} % groups");
        assert_eq!(cout % spec.groups, 0, "conv2d: cout {cout} % groups");
        assert_eq!(cin / spec.groups, cin_g, "conv2d: weight channel mismatch");
        let (ho, wo) = (spec.out_extent(h, kh), spec.out_extent(w, kw));
        let mut out = vec![0.0f32; b * cout * ho * wo];
        let cout_g = cout / spec.groups;
        let x = input.data();
        let wt = weight.data();
        for bi in 0..b {
            for g in 0..spec.groups {
                for ocl in 0..cout_g {
                    let oc = g * cout_g + ocl;
                    for icl in 0..cin_g {
                        let ic = g * cin_g + icl;
                        let x_base = (bi * cin + ic) * h * w;
                        let w_base = (oc * cin_g + icl) * kh * kw;
                        let o_base = (bi * cout + oc) * ho * wo;
                        for oy in 0..ho {
                            let iy0 = oy * spec.stride;
                            for ox in 0..wo {
                                let ix0 = ox * spec.stride;
                                let mut acc = 0.0f32;
                                for ky in 0..kh {
                                    let iy = iy0 + ky;
                                    if iy < spec.padding || iy - spec.padding >= h {
                                        continue;
                                    }
                                    let row = x_base + (iy - spec.padding) * w;
                                    let wrow = w_base + ky * kw;
                                    for kx in 0..kw {
                                        let ix = ix0 + kx;
                                        if ix < spec.padding || ix - spec.padding >= w {
                                            continue;
                                        }
                                        acc += x[row + ix - spec.padding] * wt[wrow + kx];
                                    }
                                }
                                out[o_base + oy * wo + ox] += acc;
                            }
                        }
                    }
                }
            }
        }
        Tensor::from_vec(out, &[b, cout, ho, wo])
    }

    /// Direct-loop gradient with respect to the input.
    pub fn conv2d_backward_input(
        input_shape: &[usize],
        weight: &Tensor,
        grad_out: &Tensor,
        spec: ConvSpec,
    ) -> Tensor {
        let (b, cin, h, w) = dims4(input_shape);
        let (cout, cin_g, kh, kw) = dims4(weight.shape());
        let (_, _, ho, wo) = dims4(grad_out.shape());
        let cout_g = cout / spec.groups;
        let mut dx = vec![0.0f32; b * cin * h * w];
        let go = grad_out.data();
        let wt = weight.data();
        for bi in 0..b {
            for g in 0..spec.groups {
                for ocl in 0..cout_g {
                    let oc = g * cout_g + ocl;
                    for icl in 0..cin_g {
                        let ic = g * cin_g + icl;
                        let x_base = (bi * cin + ic) * h * w;
                        let w_base = (oc * cin_g + icl) * kh * kw;
                        let o_base = (bi * cout + oc) * ho * wo;
                        for oy in 0..ho {
                            let iy0 = oy * spec.stride;
                            for ox in 0..wo {
                                let ix0 = ox * spec.stride;
                                let g_out = go[o_base + oy * wo + ox];
                                if g_out == 0.0 {
                                    continue;
                                }
                                for ky in 0..kh {
                                    let iy = iy0 + ky;
                                    if iy < spec.padding || iy - spec.padding >= h {
                                        continue;
                                    }
                                    let row = x_base + (iy - spec.padding) * w;
                                    let wrow = w_base + ky * kw;
                                    for kx in 0..kw {
                                        let ix = ix0 + kx;
                                        if ix < spec.padding || ix - spec.padding >= w {
                                            continue;
                                        }
                                        dx[row + ix - spec.padding] += g_out * wt[wrow + kx];
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        Tensor::from_vec(dx, input_shape)
    }

    /// Direct-loop gradient with respect to the weight.
    pub fn conv2d_backward_weight(
        input: &Tensor,
        weight_shape: &[usize],
        grad_out: &Tensor,
        spec: ConvSpec,
    ) -> Tensor {
        let (b, cin, h, w) = dims4(input.shape());
        let (cout, cin_g, kh, kw) = dims4(weight_shape);
        let (_, _, ho, wo) = dims4(grad_out.shape());
        let cout_g = cout / spec.groups;
        let mut dw = vec![0.0f32; cout * cin_g * kh * kw];
        let go = grad_out.data();
        let x = input.data();
        for bi in 0..b {
            for g in 0..spec.groups {
                for ocl in 0..cout_g {
                    let oc = g * cout_g + ocl;
                    for icl in 0..cin_g {
                        let ic = g * cin_g + icl;
                        let x_base = (bi * cin + ic) * h * w;
                        let w_base = (oc * cin_g + icl) * kh * kw;
                        let o_base = (bi * cout + oc) * ho * wo;
                        for oy in 0..ho {
                            let iy0 = oy * spec.stride;
                            for ox in 0..wo {
                                let ix0 = ox * spec.stride;
                                let g_out = go[o_base + oy * wo + ox];
                                if g_out == 0.0 {
                                    continue;
                                }
                                for ky in 0..kh {
                                    let iy = iy0 + ky;
                                    if iy < spec.padding || iy - spec.padding >= h {
                                        continue;
                                    }
                                    let row = x_base + (iy - spec.padding) * w;
                                    let wrow = w_base + ky * kw;
                                    for kx in 0..kw {
                                        let ix = ix0 + kx;
                                        if ix < spec.padding || ix - spec.padding >= w {
                                            continue;
                                        }
                                        dw[wrow + kx] += g_out * x[row + ix - spec.padding];
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        Tensor::from_vec(dw, weight_shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yf_tensor::rng::Pcg32;

    #[test]
    fn identity_kernel_passthrough() {
        // 1x1 kernel with weight 1 is the identity map.
        let input = Tensor::from_vec((0..8).map(|v| v as f32).collect(), &[1, 2, 2, 2]);
        let weight = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2, 1, 1]);
        let out = conv2d_forward(&input, &weight, ConvSpec::unit());
        assert_eq!(out.shape(), &[1, 2, 2, 2]);
        assert_eq!(out.data(), input.data());
    }

    #[test]
    fn known_3x3_valid_convolution() {
        // Single channel, 3x3 input, 2x2 averaging-ish kernel.
        let input = Tensor::from_vec(
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0],
            &[1, 1, 3, 3],
        );
        let weight = Tensor::from_vec(vec![1.0, 1.0, 1.0, 1.0], &[1, 1, 2, 2]);
        let out = conv2d_forward(&input, &weight, ConvSpec::unit());
        assert_eq!(out.shape(), &[1, 1, 2, 2]);
        assert_eq!(out.data(), &[12.0, 16.0, 24.0, 28.0]);
    }

    #[test]
    fn padding_preserves_extent() {
        let input = Tensor::ones(&[2, 3, 5, 5]);
        let weight = Tensor::ones(&[4, 3, 3, 3]);
        let out = conv2d_forward(&input, &weight, ConvSpec::same3x3(1));
        assert_eq!(out.shape(), &[2, 4, 5, 5]);
        // Center pixel sees the full 3x3x3 window of ones.
        assert_eq!(out.at(&[0, 0, 2, 2]), 27.0);
        // Corner pixel sees a 2x2x3 window.
        assert_eq!(out.at(&[0, 0, 0, 0]), 12.0);
    }

    #[test]
    fn stride_halves_extent() {
        let input = Tensor::ones(&[1, 1, 8, 8]);
        let weight = Tensor::ones(&[1, 1, 3, 3]);
        let out = conv2d_forward(&input, &weight, ConvSpec::same3x3(2));
        assert_eq!(out.shape(), &[1, 1, 4, 4]);
    }

    #[test]
    fn grouped_conv_blocks_cross_talk() {
        // groups=2: output channel 0 must only see input channel 0.
        let mut input = Tensor::zeros(&[1, 2, 2, 2]);
        for i in 0..4 {
            input.data_mut()[4 + i] = 1.0; // only channel 1 is nonzero
        }
        let weight = Tensor::ones(&[2, 1, 1, 1]);
        let spec = ConvSpec {
            stride: 1,
            padding: 0,
            groups: 2,
        };
        let out = conv2d_forward(&input, &weight, spec);
        assert_eq!(&out.data()[0..4], &[0.0; 4]); // group 0 sees zeros
        assert_eq!(&out.data()[4..8], &[1.0; 4]); // group 1 sees ones
    }

    #[test]
    fn lowered_kernels_match_reference() {
        // A grouped, strided, padded case through all three passes.
        let spec = ConvSpec {
            stride: 2,
            padding: 1,
            groups: 2,
        };
        let mut rng = Pcg32::seed(33);
        let input = Tensor::randn(&[2, 4, 7, 6], &mut rng);
        let weight = Tensor::randn(&[6, 2, 3, 3], &mut rng);
        let out = conv2d_forward(&input, &weight, spec);
        let out_ref = reference::conv2d_forward(&input, &weight, spec);
        assert_eq!(out.shape(), out_ref.shape());
        let grad = Tensor::randn(out.shape(), &mut rng);
        let pairs = [
            (out, out_ref),
            (
                conv2d_backward_input(input.shape(), &weight, &grad, spec),
                reference::conv2d_backward_input(input.shape(), &weight, &grad, spec),
            ),
            (
                conv2d_backward_weight(&input, weight.shape(), &grad, spec),
                reference::conv2d_backward_weight(&input, weight.shape(), &grad, spec),
            ),
        ];
        for (got, want) in &pairs {
            for (g, w) in got.data().iter().zip(want.data()) {
                assert!((g - w).abs() <= 1e-4 * (1.0 + w.abs()), "{g} vs {w}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "channel mismatch")]
    fn wrong_channels_panics() {
        let input = Tensor::ones(&[1, 3, 4, 4]);
        let weight = Tensor::ones(&[2, 2, 3, 3]);
        conv2d_forward(&input, &weight, ConvSpec::unit());
    }
}
