//! 2-D convolution kernels (forward and both backward passes).
//!
//! Shapes follow the PyTorch convention: input `[B, Cin, H, W]`, weight
//! `[Cout, Cin/groups, KH, KW]`, output `[B, Cout, Ho, Wo]`. Grouped
//! convolution (`groups > 1`) supports the ResNeXt ablation of the paper's
//! Appendix J.4.
//!
//! The production kernels are **batch-fused**: every pass lowers onto one
//! GEMM per *group* over the whole batch — the virtual column matrix
//! `[Cin*KH*KW, B*Ho*Wo]` of the `im2col` module — instead of one
//! GEMM per `(batch, group)`. The column matrix is normally never
//! materialized: the im2col unroll implements
//! [`yf_tensor::gemm::PackBPanel`], packing column panels straight from
//! the input image inside the GEMM ([`yf_tensor::gemm::gemm_custom_b`]),
//! so the unroll *is* the packing pass the GEMM needed anyway.
//!
//! The exception is [`conv2d_forward_caching`], which the autograd tape
//! uses: it materializes the batched column matrix once at forward time
//! and returns it as a [`ColumnCache`] (memory-capped via
//! `YF_CONV_CACHE_MB`, default 256 MiB per convolution), so
//! [`conv2d_backward_weight_cached`] can run its `dY · colsᵀ` GEMM over
//! the cached columns instead of re-running the unroll. Both
//! backward-weight paths produce bitwise-identical gradients (the packed
//! panels are equal element for element).
//!
//! Batched operands use the layout `[C, B*Ho*Wo]` (channel rows, batch
//!-major pixel columns); `gather_batched`/`scatter_batched` convert
//! gradients/outputs to and from the tensor layout `[B, C, Ho, Wo]` with
//! plane-sized `memcpy`s, parallel across planes. When `B == 1` the two
//! layouts coincide and both copies are skipped, and a 1x1 stride-1
//! unpadded convolution with `B == 1` degenerates to plain GEMMs on the
//! input itself (no unroll, no copies).
//!
//! Thread fan-out for the unroll/scatter passes is sized by
//! [`yf_tensor::parallel::threads_for`] on the *batched* matrix (the old
//! per-`(batch, group)` threshold starved the partitioner once columns
//! became `B*Ho*Wo` wide); the GEMMs partition internally.
//!
//! Each kernel has a `*_with_scratch` variant taking an explicit
//! [`Scratch`] pool (the autograd tape threads its own through) and a
//! plain variant using the thread-local pool, so the fused paths
//! allocate no column buffers in steady state. The one exception is the
//! column cache: its buffer is owned by the returned [`ColumnCache`]
//! (dropped with the tape, not returned to the pool), so each caching
//! forward allocates it afresh — see ROADMAP's column-cache accounting
//! follow-on for the per-tape budget that would let deep models bound
//! and recycle this. The original direct loops are
//! retained verbatim in [`mod@reference`]; the property tests cross-check the
//! lowered kernels against them across random shapes, strides, paddings,
//! groups, and batch sizes.

use crate::im2col::{col2im_batched, im2col_batched, BatchGeom, ColShape, ColsPackNN, ColsPackNT};
use std::sync::Arc;
use yf_tensor::parallel::{self, Par};
use yf_tensor::{gemm, Scratch, Tensor};

/// Static parameters of a convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvSpec {
    /// Spatial stride (same for both axes).
    pub stride: usize,
    /// Zero padding (same for both axes).
    pub padding: usize,
    /// Channel groups; `1` is an ordinary convolution.
    pub groups: usize,
}

impl ConvSpec {
    /// A stride-1, unpadded, ungrouped convolution.
    pub fn unit() -> Self {
        ConvSpec {
            stride: 1,
            padding: 0,
            groups: 1,
        }
    }

    /// "Same"-style spec used by 3x3 ResNet convolutions.
    pub fn same3x3(stride: usize) -> Self {
        ConvSpec {
            stride,
            padding: 1,
            groups: 1,
        }
    }

    /// Output spatial extent for an input extent `n` and kernel extent `k`.
    pub fn out_extent(&self, n: usize, k: usize) -> usize {
        (n + 2 * self.padding - k) / self.stride + 1
    }
}

fn dims4(t: &[usize]) -> (usize, usize, usize, usize) {
    (t[0], t[1], t[2], t[3])
}

/// All derived dimensions of one convolution, shape-checked once.
#[derive(Debug, Clone, Copy)]
struct ConvDims {
    b: usize,
    cin: usize,
    cout: usize,
    cout_g: usize,
    /// Weight rows per group flattened: `cin_g * kh * kw`.
    ckk: usize,
    /// Output pixels per batch element: `ho * wo`.
    owo: usize,
    ho: usize,
    wo: usize,
    cs: ColShape,
}

impl ConvDims {
    fn new(input_shape: &[usize], weight_shape: &[usize], spec: ConvSpec) -> Self {
        let (b, cin, h, w) = dims4(input_shape);
        let (cout, cin_g, kh, kw) = dims4(weight_shape);
        assert!(
            spec.groups > 0 && spec.stride > 0,
            "conv2d: bad spec {spec:?}"
        );
        assert_eq!(cin % spec.groups, 0, "conv2d: cin {cin} % groups");
        assert_eq!(cout % spec.groups, 0, "conv2d: cout {cout} % groups");
        assert_eq!(cin / spec.groups, cin_g, "conv2d: weight channel mismatch");
        let (ho, wo) = (spec.out_extent(h, kh), spec.out_extent(w, kw));
        ConvDims {
            b,
            cin,
            cout,
            cout_g: cout / spec.groups,
            ckk: cin_g * kh * kw,
            owo: ho * wo,
            ho,
            wo,
            cs: ColShape {
                cin_g,
                h,
                w,
                kh,
                kw,
                ho,
                wo,
            },
        }
    }

    /// Whether the convolution is a pure channel mix (1x1, stride 1, no
    /// padding): the column matrix would equal the input slice, so the
    /// unroll is skipped entirely.
    fn is_pointwise(&self, spec: ConvSpec) -> bool {
        self.cs.kh == 1 && self.cs.kw == 1 && spec.stride == 1 && spec.padding == 0
    }

    /// Columns of the batched matrices: `b * ho * wo`.
    fn bcols(&self) -> usize {
        self.b * self.owo
    }

    /// The batched-unroll geometry.
    fn geom(&self, spec: ConvSpec) -> BatchGeom {
        BatchGeom {
            b: self.b,
            cin: self.cin,
            cs: self.cs,
            spec,
        }
    }

    /// Flat range of the (batch `bi`, group `g`) input slice.
    fn x_slice(&self, bi: usize, g: usize) -> std::ops::Range<usize> {
        let start = (bi * self.cin + g * self.cs.cin_g) * self.cs.h * self.cs.w;
        start..start + self.cs.cin_g * self.cs.h * self.cs.w
    }

    /// Flat range of the (batch `bi`, group `g`) output slice.
    fn o_slice(&self, bi: usize, g: usize) -> std::ops::Range<usize> {
        let start = (bi * self.cout + g * self.cout_g) * self.owo;
        start..start + self.cout_g * self.owo
    }

    /// Flat range of group `g`'s weight block `[cout_g, ckk]`.
    fn w_slice(&self, g: usize) -> std::ops::Range<usize> {
        let start = g * self.cout_g * self.ckk;
        start..start + self.cout_g * self.ckk
    }

    /// Flat range of group `g`'s row block in a batched `[C, bcols]`
    /// matrix with `per_g` rows per group.
    fn g_rows(&self, g: usize, per_g: usize) -> std::ops::Range<usize> {
        let start = g * per_g * self.bcols();
        start..start + per_g * self.bcols()
    }
}

/// The batched column matrix a [`conv2d_forward_caching`] call captured,
/// for reuse by [`conv2d_backward_weight_cached`]. Cheap to clone (the
/// buffer is shared), so the autograd tape stores it inside the op.
#[derive(Debug, Clone)]
pub struct ColumnCache {
    cols: Arc<Vec<f32>>,
}

impl ColumnCache {
    /// Bytes held by the cached column matrix.
    pub fn bytes(&self) -> usize {
        self.cols.len() * std::mem::size_of::<f32>()
    }
}

/// Per-convolution column-cache budget in elements: `YF_CONV_CACHE_MB`
/// MiB (default 256). Column matrices larger than this are not cached;
/// the backward-weight pass transparently re-unrolls instead.
fn cache_budget_elems() -> usize {
    use std::sync::OnceLock;
    static BUDGET: OnceLock<usize> = OnceLock::new();
    *BUDGET.get_or_init(|| {
        // 0 is a valid override (disables column caching entirely);
        // malformed values warn and fall back to the 256 MiB default.
        let mb = yf_tensor::env::usize_knob("YF_CONV_CACHE_MB").unwrap_or(256);
        mb * (1024 * 1024) / std::mem::size_of::<f32>()
    })
}

/// Gathers a `[B, C, Ho, Wo]` tensor into batched layout `[C, B*Ho*Wo]`
/// (parallel across channel rows).
fn gather_batched(src: &[f32], b: usize, c: usize, owo: usize, dst: &mut [f32], threads: usize) {
    let bcols = b * owo;
    parallel::chunks_mut(dst, bcols, threads, |first, chunk| {
        for (o, row) in chunk.chunks_exact_mut(bcols).enumerate() {
            let ch = first + o;
            for bi in 0..b {
                row[bi * owo..(bi + 1) * owo].copy_from_slice(&src[(bi * c + ch) * owo..][..owo]);
            }
        }
    });
}

/// Scatters a batched `[C, B*Ho*Wo]` matrix into `[B, C, Ho, Wo]` layout
/// (parallel across output planes).
fn scatter_batched(src: &[f32], b: usize, c: usize, owo: usize, dst: &mut [f32], threads: usize) {
    let bcols = b * owo;
    parallel::chunks_mut(dst, owo, threads, |first, chunk| {
        for (p, plane) in chunk.chunks_exact_mut(owo).enumerate() {
            let idx = first + p;
            let (bi, ch) = (idx / c, idx % c);
            plane.copy_from_slice(&src[ch * bcols + bi * owo..][..owo]);
        }
    });
}

/// Forward convolution via the batch-fused im2col GEMM.
///
/// # Panics
///
/// Panics on rank/shape mismatches or if channel counts are not divisible
/// by `groups`.
pub fn conv2d_forward(input: &Tensor, weight: &Tensor, spec: ConvSpec) -> Tensor {
    Scratch::with_thread_local(|s| conv2d_forward_with_scratch(input, weight, spec, s))
}

/// [`conv2d_forward`] with an explicit scratch pool for the batched GEMM
/// output buffer.
pub fn conv2d_forward_with_scratch(
    input: &Tensor,
    weight: &Tensor,
    spec: ConvSpec,
    scratch: &mut Scratch,
) -> Tensor {
    forward_impl(input, weight, spec, scratch, false, Par::pool().budget()).0
}

/// [`conv2d_forward`] that additionally materializes and returns the
/// batched column matrix (when it fits the `YF_CONV_CACHE_MB` budget and
/// the convolution actually unrolls), so the caller can hand it to
/// [`conv2d_backward_weight_cached`] and skip the re-unroll there. This
/// is what the autograd tape uses.
pub fn conv2d_forward_caching(
    input: &Tensor,
    weight: &Tensor,
    spec: ConvSpec,
    scratch: &mut Scratch,
) -> (Tensor, Option<ColumnCache>) {
    forward_impl(input, weight, spec, scratch, true, Par::pool().budget())
}

/// [`conv2d_forward_caching`] with an explicit [`Par`] budget (what the
/// tape calls; [`crate::Graph::set_threads`] caps it).
pub fn conv2d_forward_caching_with_par(
    input: &Tensor,
    weight: &Tensor,
    spec: ConvSpec,
    scratch: &mut Scratch,
    par: impl Into<Par>,
) -> (Tensor, Option<ColumnCache>) {
    forward_impl(input, weight, spec, scratch, true, par.into().budget())
}

/// [`conv2d_forward_with_scratch`] with an explicit [`Par`] budget.
pub fn conv2d_forward_with_par(
    input: &Tensor,
    weight: &Tensor,
    spec: ConvSpec,
    scratch: &mut Scratch,
    par: impl Into<Par>,
) -> Tensor {
    forward_impl(input, weight, spec, scratch, false, par.into().budget()).0
}

fn forward_impl(
    input: &Tensor,
    weight: &Tensor,
    spec: ConvSpec,
    scratch: &mut Scratch,
    want_cache: bool,
    threads: usize,
) -> (Tensor, Option<ColumnCache>) {
    let d = ConvDims::new(input.shape(), weight.shape(), spec);
    let mut out = vec![0.0f32; d.b * d.cout * d.owo];
    let x = input.data();
    let wt = weight.data();
    let out_shape = [d.b, d.cout, d.ho, d.wo];
    if d.is_pointwise(spec) && d.b == 1 {
        // The column matrix equals the input slice per group: plain GEMMs,
        // zero copies, nothing worth caching.
        for g in 0..spec.groups {
            gemm::gemm_nn(
                d.cout_g,
                d.owo,
                d.ckk,
                &wt[d.w_slice(g)],
                &x[d.x_slice(0, g)],
                0.0,
                &mut out[d.o_slice(0, g)],
            );
        }
        return (Tensor::from_vec(out, &out_shape), None);
    }
    let geom = d.geom(spec);
    let bcols = d.bcols();
    // Materialize the batched column matrix only when asked to cache it
    // (and it fits the budget and is a real unroll); otherwise the GEMM
    // packs columns straight from the image.
    let cols_len = geom.rows() * bcols;
    let cache = if want_cache && !d.is_pointwise(spec) && cols_len <= cache_budget_elems() {
        let mut cols = scratch.take(cols_len);
        im2col_batched(
            x,
            geom,
            &mut cols,
            threads.min(parallel::threads_for(cols_len)),
        );
        Some(ColumnCache {
            cols: Arc::new(cols),
        })
    } else {
        None
    };
    let run_group_gemms = |dst: &mut [f32], threads: usize| {
        for g in 0..spec.groups {
            let crows = &mut dst[d.g_rows(g, d.cout_g)];
            match &cache {
                Some(c) => gemm::gemm_with_threads(
                    false,
                    false,
                    d.cout_g,
                    bcols,
                    d.ckk,
                    &wt[d.w_slice(g)],
                    &c.cols[d.g_rows(g, d.ckk)],
                    0.0,
                    crows,
                    threads,
                ),
                None => gemm::gemm_custom_b(
                    false,
                    d.cout_g,
                    bcols,
                    d.ckk,
                    &wt[d.w_slice(g)],
                    &ColsPackNN {
                        x,
                        g: geom,
                        row0: g * d.ckk,
                    },
                    0.0,
                    crows,
                    threads,
                ),
            }
        }
    };
    if d.b == 1 {
        // Batched layout [Cout, Ho*Wo] is the output layout.
        run_group_gemms(&mut out, threads);
    } else {
        let mut gbuf = scratch.take(d.cout * bcols);
        run_group_gemms(&mut gbuf, threads);
        let t_out = threads.min(parallel::threads_for(out.len()));
        scatter_batched(&gbuf, d.b, d.cout, d.owo, &mut out, t_out);
        scratch.put(gbuf);
    }
    (Tensor::from_vec(out, &out_shape), cache)
}

/// Gradient of the convolution with respect to its input.
pub fn conv2d_backward_input(
    input_shape: &[usize],
    weight: &Tensor,
    grad_out: &Tensor,
    spec: ConvSpec,
) -> Tensor {
    Scratch::with_thread_local(|s| {
        conv2d_backward_input_with_scratch(input_shape, weight, grad_out, spec, s)
    })
}

/// [`conv2d_backward_input`] with an explicit scratch pool.
pub fn conv2d_backward_input_with_scratch(
    input_shape: &[usize],
    weight: &Tensor,
    grad_out: &Tensor,
    spec: ConvSpec,
    scratch: &mut Scratch,
) -> Tensor {
    conv2d_backward_input_with_par(input_shape, weight, grad_out, spec, scratch, Par::pool())
}

/// [`conv2d_backward_input_with_scratch`] with an explicit [`Par`]
/// budget (what the tape calls; [`crate::Graph::set_threads`] caps it).
pub fn conv2d_backward_input_with_par(
    input_shape: &[usize],
    weight: &Tensor,
    grad_out: &Tensor,
    spec: ConvSpec,
    scratch: &mut Scratch,
    par: impl Into<Par>,
) -> Tensor {
    let threads = par.into().budget();
    let d = ConvDims::new(input_shape, weight.shape(), spec);
    debug_assert_eq!(grad_out.shape(), &[d.b, d.cout, d.ho, d.wo]);
    let mut dx = vec![0.0f32; d.b * d.cin * d.cs.h * d.cs.w];
    let go = grad_out.data();
    let wt = weight.data();
    if d.is_pointwise(spec) && d.b == 1 {
        for g in 0..spec.groups {
            // dx = Wᵀ · dy, written straight into the image slice.
            gemm::gemm_tn(
                d.ckk,
                d.owo,
                d.cout_g,
                &wt[d.w_slice(g)],
                &go[d.o_slice(0, g)],
                0.0,
                &mut dx[d.x_slice(0, g)],
            );
        }
        return Tensor::from_vec(dx, input_shape);
    }
    let geom = d.geom(spec);
    // The GEMM writes the column-gradient matrix and col2im immediately
    // re-reads it, so process the batch in chunks sized to keep that
    // matrix within half of L2 (still one fused GEMM per group per
    // chunk — the GEMM keeps plenty of rows to partition across
    // threads). One chunk covers the whole batch when it fits.
    let rows = geom.rows();
    let chunk_b = {
        let (_, l2, _) = gemm::cache_sizes();
        let target_cols = l2 / (2 * std::mem::size_of::<f32>() * rows.max(1));
        (target_cols / d.owo.max(1)).clamp(1, d.b)
    };
    let plane = d.cs.h * d.cs.w;
    // When B == 1 the batched layout is the gradient's own layout, so no
    // gather buffer is ever needed.
    let mut dy_buf = if d.b > 1 {
        scratch.take(d.cout * chunk_b * d.owo)
    } else {
        Vec::new()
    };
    let mut dcols = scratch.take(rows * chunk_b * d.owo);
    let mut bi = 0;
    while bi < d.b {
        let cb = chunk_b.min(d.b - bi);
        let cg = BatchGeom { b: cb, ..geom };
        let bcols = cb * d.owo;
        let go_chunk = &go[bi * d.cout * d.owo..][..d.cout * bcols];
        let dyb: &[f32] = if d.b == 1 {
            go_chunk
        } else {
            let t_dy = threads.min(parallel::threads_for(d.cout * bcols));
            let dst = &mut dy_buf[..d.cout * bcols];
            gather_batched(go_chunk, cb, d.cout, d.owo, dst, t_dy);
            dst
        };
        // dcols = Wᵀ · dY per group, then one batched scatter back to
        // image layout (parallel across the chunk's planes).
        for g in 0..spec.groups {
            gemm::gemm_with_threads(
                true,
                false,
                d.ckk,
                bcols,
                d.cout_g,
                &wt[d.w_slice(g)],
                &dyb[g * d.cout_g * bcols..][..d.cout_g * bcols],
                0.0,
                &mut dcols[g * d.ckk * bcols..][..d.ckk * bcols],
                threads,
            );
        }
        let dx_chunk = &mut dx[bi * d.cin * plane..][..cb * d.cin * plane];
        let t_dx = threads.min(parallel::threads_for(dx_chunk.len()));
        col2im_batched(&dcols[..rows * bcols], cg, dx_chunk, t_dx);
        bi += cb;
    }
    scratch.put(dcols);
    scratch.put(dy_buf);
    Tensor::from_vec(dx, input_shape)
}

/// Gradient of the convolution with respect to its weight.
pub fn conv2d_backward_weight(
    input: &Tensor,
    weight_shape: &[usize],
    grad_out: &Tensor,
    spec: ConvSpec,
) -> Tensor {
    Scratch::with_thread_local(|s| {
        conv2d_backward_weight_with_scratch(input, weight_shape, grad_out, spec, s)
    })
}

/// [`conv2d_backward_weight`] with an explicit scratch pool.
pub fn conv2d_backward_weight_with_scratch(
    input: &Tensor,
    weight_shape: &[usize],
    grad_out: &Tensor,
    spec: ConvSpec,
    scratch: &mut Scratch,
) -> Tensor {
    conv2d_backward_weight_cached(input, weight_shape, grad_out, spec, scratch, None)
}

/// [`conv2d_backward_weight`] that reuses the forward pass's
/// [`ColumnCache`] when one is supplied (skipping the re-unroll), and
/// transparently falls back to packing columns from the image when the
/// cache is absent. Both paths are bitwise identical.
pub fn conv2d_backward_weight_cached(
    input: &Tensor,
    weight_shape: &[usize],
    grad_out: &Tensor,
    spec: ConvSpec,
    scratch: &mut Scratch,
    cache: Option<&ColumnCache>,
) -> Tensor {
    conv2d_backward_weight_with_par(
        input,
        weight_shape,
        grad_out,
        spec,
        scratch,
        cache,
        Par::pool(),
    )
}

/// [`conv2d_backward_weight_cached`] with an explicit [`Par`] budget
/// (what the tape calls; [`crate::Graph::set_threads`] caps it).
#[allow(clippy::too_many_arguments)]
pub fn conv2d_backward_weight_with_par(
    input: &Tensor,
    weight_shape: &[usize],
    grad_out: &Tensor,
    spec: ConvSpec,
    scratch: &mut Scratch,
    cache: Option<&ColumnCache>,
    par: impl Into<Par>,
) -> Tensor {
    let threads = par.into().budget();
    let d = ConvDims::new(input.shape(), weight_shape, spec);
    debug_assert_eq!(grad_out.shape(), &[d.b, d.cout, d.ho, d.wo]);
    let mut dw = vec![0.0f32; d.cout * d.ckk];
    let x = input.data();
    let go = grad_out.data();
    if d.is_pointwise(spec) && d.b == 1 {
        for g in 0..spec.groups {
            // dW = dy · xᵀ.
            gemm::gemm_nt(
                d.cout_g,
                d.ckk,
                d.owo,
                &go[d.o_slice(0, g)],
                &x[d.x_slice(0, g)],
                0.0,
                &mut dw[d.w_slice(g)],
            );
        }
        return Tensor::from_vec(dw, weight_shape);
    }
    let geom = d.geom(spec);
    let bcols = d.bcols();
    let mut dy_buf = Vec::new();
    let dyb: &[f32] = if d.b == 1 {
        go
    } else {
        dy_buf = scratch.take(d.cout * bcols);
        let t_dy = threads.min(parallel::threads_for(dy_buf.len()));
        gather_batched(go, d.b, d.cout, d.owo, &mut dy_buf, t_dy);
        &dy_buf
    };
    let cached_cols = cache.and_then(|c| {
        // A stale cache (different shape) is ignored, never misused.
        (c.cols.len() == geom.rows() * bcols).then_some(&c.cols)
    });
    for g in 0..spec.groups {
        // dW_g = dY_g · cols_gᵀ over the whole batch.
        match cached_cols {
            Some(cols) => gemm::gemm_with_threads(
                false,
                true,
                d.cout_g,
                d.ckk,
                bcols,
                &dyb[d.g_rows(g, d.cout_g)],
                &cols[d.g_rows(g, d.ckk)],
                0.0,
                &mut dw[d.w_slice(g)],
                threads,
            ),
            None => gemm::gemm_custom_b(
                false,
                d.cout_g,
                d.ckk,
                bcols,
                &dyb[d.g_rows(g, d.cout_g)],
                &ColsPackNT {
                    x,
                    g: geom,
                    row0: g * d.ckk,
                },
                0.0,
                &mut dw[d.w_slice(g)],
                threads,
            ),
        }
    }
    scratch.put(dy_buf);
    Tensor::from_vec(dw, weight_shape)
}

/// The seed repository's direct convolution loops, retained verbatim as
/// the ground truth the GEMM-lowered kernels are cross-checked against
/// (and as the perf baseline `perf_report` measures speedups over).
pub mod reference {
    use super::{dims4, ConvSpec};
    use yf_tensor::Tensor;

    /// Direct-loop forward convolution.
    pub fn conv2d_forward(input: &Tensor, weight: &Tensor, spec: ConvSpec) -> Tensor {
        let (b, cin, h, w) = dims4(input.shape());
        let (cout, cin_g, kh, kw) = dims4(weight.shape());
        assert!(
            spec.groups > 0 && spec.stride > 0,
            "conv2d: bad spec {spec:?}"
        );
        assert_eq!(cin % spec.groups, 0, "conv2d: cin {cin} % groups");
        assert_eq!(cout % spec.groups, 0, "conv2d: cout {cout} % groups");
        assert_eq!(cin / spec.groups, cin_g, "conv2d: weight channel mismatch");
        let (ho, wo) = (spec.out_extent(h, kh), spec.out_extent(w, kw));
        let mut out = vec![0.0f32; b * cout * ho * wo];
        let cout_g = cout / spec.groups;
        let x = input.data();
        let wt = weight.data();
        for bi in 0..b {
            for g in 0..spec.groups {
                for ocl in 0..cout_g {
                    let oc = g * cout_g + ocl;
                    for icl in 0..cin_g {
                        let ic = g * cin_g + icl;
                        let x_base = (bi * cin + ic) * h * w;
                        let w_base = (oc * cin_g + icl) * kh * kw;
                        let o_base = (bi * cout + oc) * ho * wo;
                        for oy in 0..ho {
                            let iy0 = oy * spec.stride;
                            for ox in 0..wo {
                                let ix0 = ox * spec.stride;
                                let mut acc = 0.0f32;
                                for ky in 0..kh {
                                    let iy = iy0 + ky;
                                    if iy < spec.padding || iy - spec.padding >= h {
                                        continue;
                                    }
                                    let row = x_base + (iy - spec.padding) * w;
                                    let wrow = w_base + ky * kw;
                                    for kx in 0..kw {
                                        let ix = ix0 + kx;
                                        if ix < spec.padding || ix - spec.padding >= w {
                                            continue;
                                        }
                                        acc += x[row + ix - spec.padding] * wt[wrow + kx];
                                    }
                                }
                                out[o_base + oy * wo + ox] += acc;
                            }
                        }
                    }
                }
            }
        }
        Tensor::from_vec(out, &[b, cout, ho, wo])
    }

    /// Direct-loop gradient with respect to the input.
    pub fn conv2d_backward_input(
        input_shape: &[usize],
        weight: &Tensor,
        grad_out: &Tensor,
        spec: ConvSpec,
    ) -> Tensor {
        let (b, cin, h, w) = dims4(input_shape);
        let (cout, cin_g, kh, kw) = dims4(weight.shape());
        let (_, _, ho, wo) = dims4(grad_out.shape());
        let cout_g = cout / spec.groups;
        let mut dx = vec![0.0f32; b * cin * h * w];
        let go = grad_out.data();
        let wt = weight.data();
        for bi in 0..b {
            for g in 0..spec.groups {
                for ocl in 0..cout_g {
                    let oc = g * cout_g + ocl;
                    for icl in 0..cin_g {
                        let ic = g * cin_g + icl;
                        let x_base = (bi * cin + ic) * h * w;
                        let w_base = (oc * cin_g + icl) * kh * kw;
                        let o_base = (bi * cout + oc) * ho * wo;
                        for oy in 0..ho {
                            let iy0 = oy * spec.stride;
                            for ox in 0..wo {
                                let ix0 = ox * spec.stride;
                                let g_out = go[o_base + oy * wo + ox];
                                if g_out == 0.0 {
                                    continue;
                                }
                                for ky in 0..kh {
                                    let iy = iy0 + ky;
                                    if iy < spec.padding || iy - spec.padding >= h {
                                        continue;
                                    }
                                    let row = x_base + (iy - spec.padding) * w;
                                    let wrow = w_base + ky * kw;
                                    for kx in 0..kw {
                                        let ix = ix0 + kx;
                                        if ix < spec.padding || ix - spec.padding >= w {
                                            continue;
                                        }
                                        dx[row + ix - spec.padding] += g_out * wt[wrow + kx];
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        Tensor::from_vec(dx, input_shape)
    }

    /// Direct-loop gradient with respect to the weight.
    pub fn conv2d_backward_weight(
        input: &Tensor,
        weight_shape: &[usize],
        grad_out: &Tensor,
        spec: ConvSpec,
    ) -> Tensor {
        let (b, cin, h, w) = dims4(input.shape());
        let (cout, cin_g, kh, kw) = dims4(weight_shape);
        let (_, _, ho, wo) = dims4(grad_out.shape());
        let cout_g = cout / spec.groups;
        let mut dw = vec![0.0f32; cout * cin_g * kh * kw];
        let go = grad_out.data();
        let x = input.data();
        for bi in 0..b {
            for g in 0..spec.groups {
                for ocl in 0..cout_g {
                    let oc = g * cout_g + ocl;
                    for icl in 0..cin_g {
                        let ic = g * cin_g + icl;
                        let x_base = (bi * cin + ic) * h * w;
                        let w_base = (oc * cin_g + icl) * kh * kw;
                        let o_base = (bi * cout + oc) * ho * wo;
                        for oy in 0..ho {
                            let iy0 = oy * spec.stride;
                            for ox in 0..wo {
                                let ix0 = ox * spec.stride;
                                let g_out = go[o_base + oy * wo + ox];
                                if g_out == 0.0 {
                                    continue;
                                }
                                for ky in 0..kh {
                                    let iy = iy0 + ky;
                                    if iy < spec.padding || iy - spec.padding >= h {
                                        continue;
                                    }
                                    let row = x_base + (iy - spec.padding) * w;
                                    let wrow = w_base + ky * kw;
                                    for kx in 0..kw {
                                        let ix = ix0 + kx;
                                        if ix < spec.padding || ix - spec.padding >= w {
                                            continue;
                                        }
                                        dw[wrow + kx] += g_out * x[row + ix - spec.padding];
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        Tensor::from_vec(dw, weight_shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yf_tensor::rng::Pcg32;

    #[test]
    fn identity_kernel_passthrough() {
        // 1x1 kernel with weight 1 is the identity map.
        let input = Tensor::from_vec((0..8).map(|v| v as f32).collect(), &[1, 2, 2, 2]);
        let weight = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2, 1, 1]);
        let out = conv2d_forward(&input, &weight, ConvSpec::unit());
        assert_eq!(out.shape(), &[1, 2, 2, 2]);
        assert_eq!(out.data(), input.data());
    }

    #[test]
    fn known_3x3_valid_convolution() {
        // Single channel, 3x3 input, 2x2 averaging-ish kernel.
        let input = Tensor::from_vec(
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0],
            &[1, 1, 3, 3],
        );
        let weight = Tensor::from_vec(vec![1.0, 1.0, 1.0, 1.0], &[1, 1, 2, 2]);
        let out = conv2d_forward(&input, &weight, ConvSpec::unit());
        assert_eq!(out.shape(), &[1, 1, 2, 2]);
        assert_eq!(out.data(), &[12.0, 16.0, 24.0, 28.0]);
    }

    #[test]
    fn padding_preserves_extent() {
        let input = Tensor::ones(&[2, 3, 5, 5]);
        let weight = Tensor::ones(&[4, 3, 3, 3]);
        let out = conv2d_forward(&input, &weight, ConvSpec::same3x3(1));
        assert_eq!(out.shape(), &[2, 4, 5, 5]);
        // Center pixel sees the full 3x3x3 window of ones.
        assert_eq!(out.at(&[0, 0, 2, 2]), 27.0);
        // Corner pixel sees a 2x2x3 window.
        assert_eq!(out.at(&[0, 0, 0, 0]), 12.0);
    }

    #[test]
    fn stride_halves_extent() {
        let input = Tensor::ones(&[1, 1, 8, 8]);
        let weight = Tensor::ones(&[1, 1, 3, 3]);
        let out = conv2d_forward(&input, &weight, ConvSpec::same3x3(2));
        assert_eq!(out.shape(), &[1, 1, 4, 4]);
    }

    #[test]
    fn grouped_conv_blocks_cross_talk() {
        // groups=2: output channel 0 must only see input channel 0.
        let mut input = Tensor::zeros(&[1, 2, 2, 2]);
        for i in 0..4 {
            input.data_mut()[4 + i] = 1.0; // only channel 1 is nonzero
        }
        let weight = Tensor::ones(&[2, 1, 1, 1]);
        let spec = ConvSpec {
            stride: 1,
            padding: 0,
            groups: 2,
        };
        let out = conv2d_forward(&input, &weight, spec);
        assert_eq!(&out.data()[0..4], &[0.0; 4]); // group 0 sees zeros
        assert_eq!(&out.data()[4..8], &[1.0; 4]); // group 1 sees ones
    }

    #[test]
    fn lowered_kernels_match_reference() {
        // A grouped, strided, padded, batched case through all three
        // passes.
        let spec = ConvSpec {
            stride: 2,
            padding: 1,
            groups: 2,
        };
        let mut rng = Pcg32::seed(33);
        let input = Tensor::randn(&[3, 4, 7, 6], &mut rng);
        let weight = Tensor::randn(&[6, 2, 3, 3], &mut rng);
        let out = conv2d_forward(&input, &weight, spec);
        let out_ref = reference::conv2d_forward(&input, &weight, spec);
        assert_eq!(out.shape(), out_ref.shape());
        let grad = Tensor::randn(out.shape(), &mut rng);
        let pairs = [
            (out, out_ref),
            (
                conv2d_backward_input(input.shape(), &weight, &grad, spec),
                reference::conv2d_backward_input(input.shape(), &weight, &grad, spec),
            ),
            (
                conv2d_backward_weight(&input, weight.shape(), &grad, spec),
                reference::conv2d_backward_weight(&input, weight.shape(), &grad, spec),
            ),
        ];
        for (got, want) in &pairs {
            for (g, w) in got.data().iter().zip(want.data()) {
                assert!((g - w).abs() <= 1e-4 * (1.0 + w.abs()), "{g} vs {w}");
            }
        }
    }

    #[test]
    fn cached_and_fallback_backward_weight_agree_bitwise() {
        // The cached-columns GEMM and the fused re-unroll pack identical
        // panels, so the weight gradients must agree bit for bit.
        let spec = ConvSpec {
            stride: 2,
            padding: 1,
            groups: 2,
        };
        let mut rng = Pcg32::seed(77);
        let input = Tensor::randn(&[4, 4, 9, 7], &mut rng);
        let weight = Tensor::randn(&[6, 2, 3, 3], &mut rng);
        let mut scratch = Scratch::new();
        let (out, cache) = conv2d_forward_caching(&input, &weight, spec, &mut scratch);
        let cache = cache.expect("column matrix fits the default budget");
        assert!(cache.bytes() > 0);
        let grad = Tensor::randn(out.shape(), &mut rng);
        let with_cache = conv2d_backward_weight_cached(
            &input,
            weight.shape(),
            &grad,
            spec,
            &mut scratch,
            Some(&cache),
        );
        let without =
            conv2d_backward_weight_cached(&input, weight.shape(), &grad, spec, &mut scratch, None);
        assert_eq!(with_cache.data(), without.data());
    }

    #[test]
    fn caching_forward_matches_fused_forward_bitwise() {
        let spec = ConvSpec::same3x3(1);
        let mut rng = Pcg32::seed(78);
        let input = Tensor::randn(&[3, 3, 8, 8], &mut rng);
        let weight = Tensor::randn(&[5, 3, 3, 3], &mut rng);
        let mut scratch = Scratch::new();
        let (cached, cache) = conv2d_forward_caching(&input, &weight, spec, &mut scratch);
        assert!(cache.is_some());
        let fused = conv2d_forward(&input, &weight, spec);
        assert_eq!(cached.data(), fused.data());
    }

    #[test]
    fn pointwise_never_caches() {
        let mut rng = Pcg32::seed(79);
        let input = Tensor::randn(&[2, 4, 5, 5], &mut rng);
        let weight = Tensor::randn(&[3, 4, 1, 1], &mut rng);
        let mut scratch = Scratch::new();
        let (_, cache) = conv2d_forward_caching(&input, &weight, ConvSpec::unit(), &mut scratch);
        assert!(cache.is_none(), "1x1 stride-1 convs skip the column cache");
    }

    #[test]
    #[should_panic(expected = "channel mismatch")]
    fn wrong_channels_panics() {
        let input = Tensor::ones(&[1, 3, 4, 4]);
        let weight = Tensor::ones(&[2, 2, 3, 3]);
        conv2d_forward(&input, &weight, ConvSpec::unit());
    }
}
