//! Reverse-mode, define-by-run automatic differentiation over
//! [`yf_tensor::Tensor`].
//!
//! A [`Graph`] is a tape: every operation eagerly computes its value and
//! records how to back-propagate through it. Calling [`Graph::backward`] on
//! a scalar loss fills the gradient of every trainable leaf. The op set is
//! exactly what the paper's model zoo needs — dense algebra, 2-D
//! convolution (with stride, padding and groups for the ResNeXt variant),
//! batch normalization, embeddings, LSTM gate plumbing and a fused
//! softmax-cross-entropy loss.
//!
//! # Example
//!
//! ```
//! use yf_autograd::Graph;
//! use yf_tensor::Tensor;
//!
//! let mut g = Graph::new();
//! let x = g.leaf(Tensor::from_vec(vec![2.0], &[1]), true);
//! let y = g.mul(x, x); // y = x^2
//! let loss = g.sum_all(y);
//! g.backward(loss);
//! assert_eq!(g.grad(x).unwrap().data(), &[4.0]); // dy/dx = 2x
//! ```

mod backward;
pub mod check;
pub mod conv;
mod graph;
mod im2col;
pub mod norm;

pub use conv::ConvSpec;
pub use graph::{Graph, NodeId};
