//! Normalization, softmax, and pooling kernels (forward and backward),
//! parallelized on [`yf_tensor::parallel`].
//!
//! These are the model zoo's non-GEMM hot loops: training-mode batch
//! normalization, row-wise layer normalization, fused
//! softmax-cross-entropy, 2x2 max pooling, and global average pooling.
//! Every kernel takes a [`Par`] budget (the tape passes its own; tests
//! pin 1 vs N; plain `usize` converts for back-compat) and clamps it
//! with [`Par::chunks_for`] so small tensors never pay a dispatch; the
//! fan-out itself lands on the persistent worker pool.
//!
//! Parallel structure: reductions fan out over their *output* rows (one
//! worker per block of channels, rows, or columns, each accumulating
//! serially in a fixed order), and elementwise phases fan out over
//! disjoint planes/rows of the output. Every output element is produced
//! by exactly one worker with a deterministic accumulation order, so
//! results are **bitwise identical at any thread count**.
//!
//! The batch-norm statistics are a *fused single-pass* reduction: one
//! sweep accumulates both the sum and the sum of squares in `f64`
//! (`var = E[x²] − mean²`), replacing the seed's two passes over the
//! batch. The seed-era scalar loops are retained verbatim in
//! [`mod@reference`] for cross-checking and as `perf_report`'s baseline
//! column.

use yf_tensor::parallel::{chunks_mut, chunks_mut2, Par};
use yf_tensor::Tensor;

/// Per-channel statistics saved by the batch-norm forward pass for the
/// backward pass.
#[derive(Debug, Clone)]
pub struct BnSaved {
    /// Per-channel batch mean.
    pub mean: Vec<f32>,
    /// Per-channel inverse standard deviation `1/sqrt(var + eps)`.
    pub inv_std: Vec<f32>,
}

impl BnSaved {
    /// Batch variance per channel, recovered from the saved inverse std
    /// (exposed for tests; training-mode BN needs only `inv_std`).
    #[cfg(test)]
    pub fn variance(&self, eps: f32) -> Vec<f32> {
        self.inv_std
            .iter()
            .map(|&is| 1.0 / (is * is) - eps)
            .collect()
    }
}

fn dims4(t: &Tensor) -> (usize, usize, usize, usize) {
    let s = t.shape();
    (s[0], s[1], s[2], s[3])
}

/// Normalizes `[B, C, H, W]` per channel over the batch and spatial axes.
///
/// # Panics
///
/// Panics unless `x` is rank 4 and `gamma`/`beta` are `[C]`.
pub fn batch_norm_forward(
    x: &Tensor,
    gamma: &Tensor,
    beta: &Tensor,
    eps: f32,
    par: impl Into<Par>,
) -> (Tensor, BnSaved) {
    assert_eq!(x.shape().len(), 4, "batch_norm: input must be rank 4");
    let (b, c, h, w) = dims4(x);
    assert_eq!(gamma.shape(), &[c], "batch_norm: gamma must be [C]");
    assert_eq!(beta.shape(), &[c], "batch_norm: beta must be [C]");
    let hw = h * w;
    let n = (b * hw) as f64;
    let xd = x.data();
    let t = par.into().chunks_for(x.len());
    // Fused single-pass statistics: one sweep per channel accumulates sum
    // and sum-of-squares in f64, each channel owned by one worker.
    let mut stats = vec![(0.0f32, 0.0f32); c];
    chunks_mut(&mut stats, 1, t, |first, chunk| {
        for (off, slot) in chunk.iter_mut().enumerate() {
            let ci = first + off;
            let (mut s, mut ss) = (0.0f64, 0.0f64);
            for bi in 0..b {
                for &v in &xd[(bi * c + ci) * hw..][..hw] {
                    let v = f64::from(v);
                    s += v;
                    ss += v * v;
                }
            }
            let mean = s / n;
            let var = (ss / n - mean * mean).max(0.0);
            *slot = (mean as f32, (1.0 / (var + f64::from(eps)).sqrt()) as f32);
        }
    });
    let mut out = vec![0.0f32; x.len()];
    let (gd, bd) = (gamma.data(), beta.data());
    let stats_ref = &stats;
    chunks_mut(&mut out, hw, t, |first, chunk| {
        for (p, plane) in chunk.chunks_exact_mut(hw).enumerate() {
            let ci = (first + p) % c;
            let (m, is) = stats_ref[ci];
            let (g, bt) = (gd[ci], bd[ci]);
            for (o, &v) in plane.iter_mut().zip(&xd[(first + p) * hw..][..hw]) {
                *o = g * (v - m) * is + bt;
            }
        }
    });
    let (mean, inv_std) = stats.into_iter().unzip();
    (Tensor::from_vec(out, x.shape()), BnSaved { mean, inv_std })
}

/// Batch-norm backward pass: returns `(dx, dgamma, dbeta)`.
///
/// Uses the standard closed form: with `x_hat = (x - mean) * inv_std`,
/// `dx = gamma * inv_std / N * (N * dy - sum(dy) - x_hat * sum(dy * x_hat))`.
pub fn batch_norm_backward(
    x: &Tensor,
    gamma: &Tensor,
    saved: &BnSaved,
    grad_out: &Tensor,
    par: impl Into<Par>,
) -> (Tensor, Tensor, Tensor) {
    let (b, c, h, w) = dims4(x);
    let hw = h * w;
    let n = (b * hw) as f32;
    let (xd, god) = (x.data(), grad_out.data());
    let t = par.into().chunks_for(x.len());
    // Fused per-channel reduction of (sum dy, sum dy*x_hat), one worker
    // per block of channels, batch-major accumulation order.
    let mut sums = vec![(0.0f32, 0.0f32); c];
    chunks_mut(&mut sums, 1, t, |first, chunk| {
        for (off, slot) in chunk.iter_mut().enumerate() {
            let ci = first + off;
            let (m, is) = (saved.mean[ci], saved.inv_std[ci]);
            let (mut sum_dy, mut sum_dy_xhat) = (0.0f32, 0.0f32);
            for bi in 0..b {
                let base = (bi * c + ci) * hw;
                for k in 0..hw {
                    let dy = god[base + k];
                    let xhat = (xd[base + k] - m) * is;
                    sum_dy += dy;
                    sum_dy_xhat += dy * xhat;
                }
            }
            *slot = (sum_dy, sum_dy_xhat);
        }
    });
    let mut dx = vec![0.0f32; x.len()];
    let gd = gamma.data();
    let sums_ref = &sums;
    chunks_mut(&mut dx, hw, t, |first, chunk| {
        for (p, plane) in chunk.chunks_exact_mut(hw).enumerate() {
            let ci = (first + p) % c;
            let (m, is, g) = (saved.mean[ci], saved.inv_std[ci], gd[ci]);
            let (sum_dy, sum_dy_xhat) = sums_ref[ci];
            let k1 = g * is / n;
            let base = (first + p) * hw;
            for (k, slot) in plane.iter_mut().enumerate() {
                let dy = god[base + k];
                let xhat = (xd[base + k] - m) * is;
                *slot = k1 * (n * dy - sum_dy - xhat * sum_dy_xhat);
            }
        }
    });
    let (dbeta, dgamma): (Vec<f32>, Vec<f32>) = sums.into_iter().unzip();
    (
        Tensor::from_vec(dx, x.shape()),
        Tensor::from_vec(dgamma, &[c]),
        Tensor::from_vec(dbeta, &[c]),
    )
}

/// Row-wise layer normalization of `[B, N]`; returns the output and the
/// per-row `(mean, inv_std)` statistics for the backward pass.
///
/// # Panics
///
/// Panics unless `x` is rank 2 and `gamma`/`beta` are `[N]`.
pub fn layer_norm_forward(
    x: &Tensor,
    gamma: &Tensor,
    beta: &Tensor,
    eps: f32,
    par: impl Into<Par>,
) -> (Tensor, Vec<(f32, f32)>) {
    assert_eq!(x.shape().len(), 2, "layer_norm: input must be rank 2");
    let (b, n) = (x.shape()[0], x.shape()[1]);
    assert_eq!(gamma.shape(), &[n], "layer_norm: gamma must be [N]");
    assert_eq!(beta.shape(), &[n], "layer_norm: beta must be [N]");
    let (xd, gd, bd) = (x.data(), gamma.data(), beta.data());
    let t = par.into().chunks_for(x.len());
    let mut out = vec![0.0f32; b * n];
    let mut stats = vec![(0.0f32, 0.0f32); b];
    // One pass: each worker owns a block of rows and produces both the
    // normalized row and its statistics.
    chunks_mut2(&mut out, n, &mut stats, 1, t, |first, oc, sc| {
        for (r_off, (orow, stat)) in oc.chunks_exact_mut(n).zip(sc.iter_mut()).enumerate() {
            let row = &xd[(first + r_off) * n..][..n];
            let mean = row.iter().sum::<f32>() / n as f32;
            let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n as f32;
            let inv_std = 1.0 / (var + eps).sqrt();
            *stat = (mean, inv_std);
            for ((o, &v), (&g, &bt)) in orow.iter_mut().zip(row).zip(gd.iter().zip(bd)) {
                *o = g * (v - mean) * inv_std + bt;
            }
        }
    });
    (Tensor::from_vec(out, &[b, n]), stats)
}

/// Layer-norm backward pass: returns `(dx, dgamma, dbeta)`.
pub fn layer_norm_backward(
    x: &Tensor,
    gamma: &Tensor,
    stats: &[(f32, f32)],
    grad_out: &Tensor,
    par: impl Into<Par>,
) -> (Tensor, Tensor, Tensor) {
    let (b, n) = (x.shape()[0], x.shape()[1]);
    let (xd, gd, god) = (x.data(), gamma.data(), grad_out.data());
    let t = par.into().chunks_for(x.len());
    // dx: one worker per block of rows, each row's two reductions
    // computed in-worker (same order as the scalar loop).
    let mut dx = vec![0.0f32; b * n];
    chunks_mut(&mut dx, n, t, |first, chunk| {
        for (r_off, drow) in chunk.chunks_exact_mut(n).enumerate() {
            let r = first + r_off;
            let (mean, inv_std) = stats[r];
            let row = &xd[r * n..][..n];
            let gr = &god[r * n..][..n];
            let (mut sum_dy, mut sum_dy_xhat) = (0.0f32, 0.0f32);
            for j in 0..n {
                let xhat = (row[j] - mean) * inv_std;
                let dy = gr[j] * gd[j];
                sum_dy += dy;
                sum_dy_xhat += dy * xhat;
            }
            let nf = n as f32;
            for (j, slot) in drow.iter_mut().enumerate() {
                let xhat = (row[j] - mean) * inv_std;
                let dy = gr[j] * gd[j];
                *slot = inv_std / nf * (nf * dy - sum_dy - xhat * sum_dy_xhat);
            }
        }
    });
    // dgamma/dbeta: column reductions over the batch, one worker per
    // block of columns. Rows stay the outer loop (contiguous reads of
    // the worker's column block per row) and each column accumulates in
    // row order, so the result is independent of the block partition.
    let mut dgb = vec![(0.0f32, 0.0f32); n];
    chunks_mut(&mut dgb, 1, t, |first, chunk| {
        for r in 0..b {
            let (mean, inv_std) = stats[r];
            let row = &xd[r * n + first..][..chunk.len()];
            let gr = &god[r * n + first..][..chunk.len()];
            for ((slot, &xv), &g) in chunk.iter_mut().zip(row).zip(gr) {
                let xhat = (xv - mean) * inv_std;
                slot.0 += g * xhat;
                slot.1 += g;
            }
        }
    });
    let (dgamma, dbeta): (Vec<f32>, Vec<f32>) = dgb.into_iter().unzip();
    (
        Tensor::from_vec(dx, &[b, n]),
        Tensor::from_vec(dgamma, &[n]),
        Tensor::from_vec(dbeta, &[n]),
    )
}

/// Mean softmax cross-entropy of `[B, K]` logits against integer class
/// targets; returns the scalar loss and the softmax probabilities (saved
/// for the backward pass). Numerically stabilized by max subtraction.
///
/// # Panics
///
/// Panics if `targets.len()` differs from the batch size or a target is
/// out of range.
pub fn softmax_xent_forward(
    logits: &Tensor,
    targets: &[usize],
    par: impl Into<Par>,
) -> (f32, Tensor) {
    assert_eq!(
        logits.shape().len(),
        2,
        "softmax_xent: logits must be rank 2"
    );
    let (b, k) = (logits.shape()[0], logits.shape()[1]);
    assert_eq!(targets.len(), b, "softmax_xent: target count mismatch");
    for (r, &t) in targets.iter().enumerate() {
        assert!(t < k, "softmax_xent: target {t} out of range {k} (row {r})");
    }
    let ld = logits.data();
    let t = par.into().chunks_for(logits.len());
    let mut probs = vec![0.0f32; b * k];
    chunks_mut(&mut probs, k, t, |first, chunk| {
        for (r_off, prow) in chunk.chunks_exact_mut(k).enumerate() {
            let row = &ld[(first + r_off) * k..][..k];
            let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut z = 0.0f32;
            for (p, &v) in prow.iter_mut().zip(row) {
                let e = (v - m).exp();
                *p = e;
                z += e;
            }
            for p in prow.iter_mut() {
                *p /= z;
            }
        }
    });
    // The loss reduction reads one probability per row — not worth a fan
    // out.
    let mut loss = 0.0f64;
    for (r, &tgt) in targets.iter().enumerate() {
        loss -= f64::from(probs[r * k + tgt].max(1e-30).ln());
    }
    ((loss / b as f64) as f32, Tensor::from_vec(probs, &[b, k]))
}

/// Softmax-cross-entropy backward: `d loss / d logit = upstream *
/// (softmax - onehot) / B`, parallel over rows.
pub fn softmax_xent_backward(
    probs: &Tensor,
    targets: &[usize],
    upstream: f32,
    par: impl Into<Par>,
) -> Tensor {
    let (b, k) = (probs.shape()[0], probs.shape()[1]);
    let pd = probs.data();
    let scale = upstream / b as f32;
    let t = par.into().chunks_for(probs.len());
    if t <= 1 {
        // Serial fast path: build the buffer in one pass (no zero
        // prefill), then fix the target elements. Bitwise identical to
        // the parallel path below.
        let mut dl: Vec<f32> = pd.iter().map(|&p| p * scale).collect();
        for (r, &tgt) in targets.iter().enumerate() {
            dl[r * k + tgt] = (pd[r * k + tgt] - 1.0) * scale;
        }
        return Tensor::from_vec(dl, probs.shape());
    }
    let mut dl = vec![0.0f32; b * k];
    chunks_mut(&mut dl, k, t, |first, chunk| {
        for (r_off, drow) in chunk.chunks_exact_mut(k).enumerate() {
            let r = first + r_off;
            let prow = &pd[r * k..][..k];
            // Branchless row: scale everything, then one target fixup
            // (recomputed as `(p - 1) * scale` so the result is bitwise
            // what the per-element onehot subtraction produces).
            for (slot, &pv) in drow.iter_mut().zip(prow) {
                *slot = pv * scale;
            }
            let tgt = targets[r];
            drow[tgt] = (prow[tgt] - 1.0) * scale;
        }
    });
    Tensor::from_vec(dl, probs.shape())
}

/// 2x2, stride-2 max pooling of `[B, C, H, W]` (even extents); returns
/// the pooled tensor and the flat input offset that won each output cell.
///
/// # Panics
///
/// Panics unless the input is rank 4 with even spatial extents.
pub fn max_pool2x2_forward(x: &Tensor, par: impl Into<Par>) -> (Tensor, Vec<usize>) {
    assert_eq!(x.shape().len(), 4, "max_pool: input must be rank 4");
    let (b, c, h, w) = dims4(x);
    assert!(h % 2 == 0 && w % 2 == 0, "max_pool: extents must be even");
    let (ho, wo) = (h / 2, w / 2);
    let owo = ho * wo;
    let xd = x.data();
    let t = par.into().chunks_for(x.len());
    let mut out = vec![f32::NEG_INFINITY; b * c * owo];
    let mut argmax = vec![0usize; b * c * owo];
    chunks_mut2(&mut out, owo, &mut argmax, owo, t, |first, oc, ac| {
        for (p, (oplane, aplane)) in oc
            .chunks_exact_mut(owo)
            .zip(ac.chunks_exact_mut(owo))
            .enumerate()
        {
            let in_base = (first + p) * h * w;
            for oy in 0..ho {
                for ox in 0..wo {
                    let o = oy * wo + ox;
                    for (dy, dx) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
                        let i = in_base + (2 * oy + dy) * w + 2 * ox + dx;
                        if xd[i] > oplane[o] {
                            oplane[o] = xd[i];
                            aplane[o] = i;
                        }
                    }
                }
            }
        }
    });
    (Tensor::from_vec(out, &[b, c, ho, wo]), argmax)
}

/// Max-pool backward: routes each output gradient to the input cell that
/// won the forward max, parallel across input planes (each plane's
/// argmax entries point only into that plane).
pub fn max_pool2x2_backward(
    input_shape: &[usize],
    argmax: &[usize],
    grad_out: &Tensor,
    par: impl Into<Par>,
) -> Tensor {
    let (b, c, h, w) = (
        input_shape[0],
        input_shape[1],
        input_shape[2],
        input_shape[3],
    );
    let hw = h * w;
    let owo = hw / 4;
    let god = grad_out.data();
    let t = par.into().chunks_for(b * c * hw);
    let mut dx = vec![0.0f32; b * c * hw];
    if t <= 1 {
        // Serial fast path: one flat scatter, no per-plane re-basing.
        for (&src, &g) in argmax.iter().zip(god) {
            dx[src] += g;
        }
        return Tensor::from_vec(dx, input_shape);
    }
    chunks_mut(&mut dx, hw, t, |first, chunk| {
        for (p, plane) in chunk.chunks_exact_mut(hw).enumerate() {
            let plane_idx = first + p;
            let in_base = plane_idx * hw;
            let out_base = plane_idx * owo;
            let (am, gr) = (&argmax[out_base..][..owo], &god[out_base..][..owo]);
            for (&src, &g) in am.iter().zip(gr) {
                plane[src - in_base] += g;
            }
        }
    });
    Tensor::from_vec(dx, input_shape)
}

/// Spatial mean pooling `[B, C, H, W] -> [B, C]`, parallel across planes.
///
/// # Panics
///
/// Panics unless the input is rank 4.
pub fn global_avg_pool_forward(x: &Tensor, par: impl Into<Par>) -> Tensor {
    assert_eq!(x.shape().len(), 4, "global_avg_pool: must be rank 4");
    let (b, c, h, w) = dims4(x);
    let hw = h * w;
    let xd = x.data();
    let t = par.into().chunks_for(x.len());
    let mut out = vec![0.0f32; b * c];
    chunks_mut(&mut out, 1, t, |first, chunk| {
        for (p, slot) in chunk.iter_mut().enumerate() {
            let base = (first + p) * hw;
            *slot = xd[base..base + hw].iter().sum::<f32>() / hw as f32;
        }
    });
    Tensor::from_vec(out, &[b, c])
}

/// Global-average-pool backward: spreads each channel gradient uniformly
/// over its plane, parallel across planes.
pub fn global_avg_pool_backward(
    input_shape: &[usize],
    grad_out: &Tensor,
    par: impl Into<Par>,
) -> Tensor {
    let (b, c, h, w) = (
        input_shape[0],
        input_shape[1],
        input_shape[2],
        input_shape[3],
    );
    let hw = h * w;
    let god = grad_out.data();
    let t = par.into().chunks_for(b * c * hw);
    let mut dx = vec![0.0f32; b * c * hw];
    chunks_mut(&mut dx, hw, t, |first, chunk| {
        for (p, plane) in chunk.chunks_exact_mut(hw).enumerate() {
            plane.fill(god[first + p] / hw as f32);
        }
    });
    Tensor::from_vec(dx, input_shape)
}

/// The seed repository's scalar loops for every kernel in this module,
/// retained verbatim for cross-checking and as the perf baseline
/// `perf_report` measures speedups over.
pub mod reference {
    use super::{dims4, BnSaved};
    use yf_tensor::Tensor;

    /// Two-pass scalar batch-norm forward.
    pub fn batch_norm_forward(
        x: &Tensor,
        gamma: &Tensor,
        beta: &Tensor,
        eps: f32,
    ) -> (Tensor, BnSaved) {
        let (b, c, h, w) = dims4(x);
        let hw = h * w;
        let n = (b * hw) as f32;
        let mut mean = vec![0.0f32; c];
        let mut var = vec![0.0f32; c];
        for bi in 0..b {
            for (ci, m) in mean.iter_mut().enumerate() {
                let base = (bi * c + ci) * hw;
                for &v in &x.data()[base..base + hw] {
                    *m += v;
                }
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        for bi in 0..b {
            for (ci, vr) in var.iter_mut().enumerate() {
                let base = (bi * c + ci) * hw;
                for &v in &x.data()[base..base + hw] {
                    let d = v - mean[ci];
                    *vr += d * d;
                }
            }
        }
        for v in &mut var {
            *v /= n;
        }
        let inv_std: Vec<f32> = var.iter().map(|&v| 1.0 / (v + eps).sqrt()).collect();
        let mut out = vec![0.0f32; x.len()];
        for bi in 0..b {
            for ci in 0..c {
                let base = (bi * c + ci) * hw;
                let (m, is, g, bt) = (mean[ci], inv_std[ci], gamma.data()[ci], beta.data()[ci]);
                for (o, &v) in out[base..base + hw]
                    .iter_mut()
                    .zip(&x.data()[base..base + hw])
                {
                    *o = g * (v - m) * is + bt;
                }
            }
        }
        (Tensor::from_vec(out, x.shape()), BnSaved { mean, inv_std })
    }

    /// Scalar batch-norm backward.
    pub fn batch_norm_backward(
        x: &Tensor,
        gamma: &Tensor,
        saved: &BnSaved,
        grad_out: &Tensor,
    ) -> (Tensor, Tensor, Tensor) {
        let (b, c, h, w) = dims4(x);
        let hw = h * w;
        let n = (b * hw) as f32;
        let mut sum_dy = vec![0.0f32; c];
        let mut sum_dy_xhat = vec![0.0f32; c];
        for bi in 0..b {
            for ci in 0..c {
                let base = (bi * c + ci) * hw;
                let (m, is) = (saved.mean[ci], saved.inv_std[ci]);
                for k in 0..hw {
                    let dy = grad_out.data()[base + k];
                    let xhat = (x.data()[base + k] - m) * is;
                    sum_dy[ci] += dy;
                    sum_dy_xhat[ci] += dy * xhat;
                }
            }
        }
        let mut dx = vec![0.0f32; x.len()];
        for bi in 0..b {
            for ci in 0..c {
                let base = (bi * c + ci) * hw;
                let (m, is, g) = (saved.mean[ci], saved.inv_std[ci], gamma.data()[ci]);
                let k1 = g * is / n;
                for k in 0..hw {
                    let dy = grad_out.data()[base + k];
                    let xhat = (x.data()[base + k] - m) * is;
                    dx[base + k] = k1 * (n * dy - sum_dy[ci] - xhat * sum_dy_xhat[ci]);
                }
            }
        }
        (
            Tensor::from_vec(dx, x.shape()),
            Tensor::from_vec(sum_dy_xhat, &[c]),
            Tensor::from_vec(sum_dy, &[c]),
        )
    }

    /// Scalar row-wise layer-norm forward.
    pub fn layer_norm_forward(
        x: &Tensor,
        gamma: &Tensor,
        beta: &Tensor,
        eps: f32,
    ) -> (Tensor, Vec<(f32, f32)>) {
        let (b, n) = (x.shape()[0], x.shape()[1]);
        let (gv, bv) = (gamma.data(), beta.data());
        let mut out = vec![0.0f32; b * n];
        let mut stats = Vec::with_capacity(b);
        for r in 0..b {
            let row = &x.data()[r * n..(r + 1) * n];
            let mean = row.iter().sum::<f32>() / n as f32;
            let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n as f32;
            let inv_std = 1.0 / (var + eps).sqrt();
            stats.push((mean, inv_std));
            for j in 0..n {
                out[r * n + j] = gv[j] * (row[j] - mean) * inv_std + bv[j];
            }
        }
        (Tensor::from_vec(out, &[b, n]), stats)
    }

    /// Scalar layer-norm backward.
    pub fn layer_norm_backward(
        x: &Tensor,
        gamma: &Tensor,
        stats: &[(f32, f32)],
        grad_out: &Tensor,
    ) -> (Tensor, Tensor, Tensor) {
        let (b, n) = (x.shape()[0], x.shape()[1]);
        let (xd, gv, god) = (x.data(), gamma.data(), grad_out.data());
        let mut dx = vec![0.0f32; b * n];
        let mut dgamma = vec![0.0f32; n];
        let mut dbeta = vec![0.0f32; n];
        for r in 0..b {
            let (mean, inv_std) = stats[r];
            let row = &xd[r * n..(r + 1) * n];
            let gr = &god[r * n..(r + 1) * n];
            let mut sum_dy = 0.0f32;
            let mut sum_dy_xhat = 0.0f32;
            for j in 0..n {
                let xhat = (row[j] - mean) * inv_std;
                let dy = gr[j] * gv[j];
                sum_dy += dy;
                sum_dy_xhat += dy * xhat;
                dgamma[j] += gr[j] * xhat;
                dbeta[j] += gr[j];
            }
            let nf = n as f32;
            for j in 0..n {
                let xhat = (row[j] - mean) * inv_std;
                let dy = gr[j] * gv[j];
                dx[r * n + j] = inv_std / nf * (nf * dy - sum_dy - xhat * sum_dy_xhat);
            }
        }
        (
            Tensor::from_vec(dx, &[b, n]),
            Tensor::from_vec(dgamma, &[n]),
            Tensor::from_vec(dbeta, &[n]),
        )
    }

    /// Scalar fused softmax-cross-entropy forward.
    pub fn softmax_xent_forward(logits: &Tensor, targets: &[usize]) -> (f32, Tensor) {
        let (b, k) = (logits.shape()[0], logits.shape()[1]);
        let mut probs = vec![0.0f32; b * k];
        let mut loss = 0.0f64;
        for r in 0..b {
            let row = &logits.data()[r * k..(r + 1) * k];
            let t = targets[r];
            let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut z = 0.0f32;
            for (j, &v) in row.iter().enumerate() {
                let e = (v - m).exp();
                probs[r * k + j] = e;
                z += e;
            }
            for p in &mut probs[r * k..(r + 1) * k] {
                *p /= z;
            }
            loss -= f64::from(probs[r * k + t].max(1e-30).ln());
        }
        ((loss / b as f64) as f32, Tensor::from_vec(probs, &[b, k]))
    }

    /// Scalar softmax-cross-entropy backward.
    pub fn softmax_xent_backward(probs: &Tensor, targets: &[usize], upstream: f32) -> Tensor {
        let (b, k) = (probs.shape()[0], probs.shape()[1]);
        let mut dl = probs.data().to_vec();
        for (r, &t) in targets.iter().enumerate() {
            dl[r * k + t] -= 1.0;
        }
        let scale = upstream / b as f32;
        for v in &mut dl {
            *v *= scale;
        }
        Tensor::from_vec(dl, probs.shape())
    }

    /// Scalar 2x2 max-pool forward.
    pub fn max_pool2x2_forward(x: &Tensor) -> (Tensor, Vec<usize>) {
        let (b, c, h, w) = dims4(x);
        let (ho, wo) = (h / 2, w / 2);
        let mut out = vec![f32::NEG_INFINITY; b * c * ho * wo];
        let mut argmax = vec![0usize; b * c * ho * wo];
        let xd = x.data();
        for bc in 0..b * c {
            let in_base = bc * h * w;
            let out_base = bc * ho * wo;
            for oy in 0..ho {
                for ox in 0..wo {
                    let o = out_base + oy * wo + ox;
                    for (dy, dx) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
                        let i = in_base + (2 * oy + dy) * w + 2 * ox + dx;
                        if xd[i] > out[o] {
                            out[o] = xd[i];
                            argmax[o] = i;
                        }
                    }
                }
            }
        }
        (Tensor::from_vec(out, &[b, c, ho, wo]), argmax)
    }

    /// Scalar max-pool backward (argmax scatter).
    pub fn max_pool2x2_backward(
        input_shape: &[usize],
        argmax: &[usize],
        grad_out: &Tensor,
    ) -> Tensor {
        let mut dx = vec![0.0f32; input_shape.iter().product()];
        for (o, &src) in argmax.iter().enumerate() {
            dx[src] += grad_out.data()[o];
        }
        Tensor::from_vec(dx, input_shape)
    }

    /// Scalar global-average-pool forward.
    pub fn global_avg_pool_forward(x: &Tensor) -> Tensor {
        let (b, c, h, w) = dims4(x);
        let hw = h * w;
        let mut out = vec![0.0f32; b * c];
        for bi in 0..b {
            for ci in 0..c {
                let base = (bi * c + ci) * hw;
                out[bi * c + ci] = x.data()[base..base + hw].iter().sum::<f32>() / hw as f32;
            }
        }
        Tensor::from_vec(out, &[b, c])
    }

    /// Scalar global-average-pool backward.
    pub fn global_avg_pool_backward(input_shape: &[usize], grad_out: &Tensor) -> Tensor {
        let (b, c, h, w) = (
            input_shape[0],
            input_shape[1],
            input_shape[2],
            input_shape[3],
        );
        let hw = (h * w) as f32;
        let mut dx = vec![0.0f32; b * c * h * w];
        for bi in 0..b {
            for ci in 0..c {
                let g = grad_out.data()[bi * c + ci] / hw;
                let base = (bi * c + ci) * h * w;
                for slot in &mut dx[base..base + h * w] {
                    *slot = g;
                }
            }
        }
        Tensor::from_vec(dx, input_shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yf_tensor::rng::Pcg32;

    #[test]
    fn output_is_normalized() {
        let mut rng = Pcg32::seed(21);
        let x = Tensor::randn(&[4, 3, 2, 2], &mut rng).map(|v| 3.0 * v + 1.0);
        let gamma = Tensor::ones(&[3]);
        let beta = Tensor::zeros(&[3]);
        let (y, _) = batch_norm_forward(&x, &gamma, &beta, 1e-5, 1);
        // Per-channel mean ~0, variance ~1.
        let hw = 4;
        for ci in 0..3 {
            let mut vals = Vec::new();
            for bi in 0..4 {
                let base = (bi * 3 + ci) * hw;
                vals.extend_from_slice(&y.data()[base..base + hw]);
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 =
                vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "channel {ci} mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "channel {ci} var {var}");
        }
    }

    #[test]
    fn gamma_beta_affine() {
        let mut rng = Pcg32::seed(22);
        let x = Tensor::randn(&[2, 1, 2, 2], &mut rng);
        let gamma = Tensor::from_vec(vec![2.0], &[1]);
        let beta = Tensor::from_vec(vec![-1.0], &[1]);
        let (y, _) = batch_norm_forward(&x, &gamma, &beta, 1e-5, 1);
        let mean: f32 = y.data().iter().sum::<f32>() / y.len() as f32;
        assert!((mean - -1.0).abs() < 1e-4, "beta shifts the mean: {mean}");
    }

    #[test]
    fn saved_variance_round_trips() {
        let x = Tensor::from_vec(vec![1.0, 3.0, 1.0, 3.0], &[1, 1, 2, 2]);
        let (_, saved) = batch_norm_forward(&x, &Tensor::ones(&[1]), &Tensor::zeros(&[1]), 1e-5, 1);
        let var = saved.variance(1e-5);
        assert!((var[0] - 1.0).abs() < 1e-4, "variance {}", var[0]);
    }

    fn close(a: &[f32], b: &[f32], tol: f32, tag: &str) {
        assert_eq!(a.len(), b.len(), "{tag}: length");
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x - y).abs() <= tol * (1.0 + y.abs()),
                "{tag}[{i}]: {x} vs {y}"
            );
        }
    }

    #[test]
    fn batch_norm_matches_reference_at_any_thread_count() {
        let mut rng = Pcg32::seed(31);
        let x = Tensor::randn(&[3, 5, 4, 4], &mut rng).map(|v| 2.0 * v - 0.5);
        let gamma = Tensor::randn(&[5], &mut rng).map(|v| 1.0 + 0.1 * v);
        let beta = Tensor::randn(&[5], &mut rng);
        let grad = Tensor::randn(&[3, 5, 4, 4], &mut rng);
        let (y_ref, s_ref) = reference::batch_norm_forward(&x, &gamma, &beta, 1e-5);
        let (dx_ref, dg_ref, db_ref) = reference::batch_norm_backward(&x, &gamma, &s_ref, &grad);
        let mut first: Option<Vec<Vec<f32>>> = None;
        for threads in [1, 2, 4] {
            let (y, s) = batch_norm_forward(&x, &gamma, &beta, 1e-5, threads);
            // The fused f64 single-pass stats differ from the seed's
            // two-pass f32 stats only at rounding level.
            close(y.data(), y_ref.data(), 1e-4, "bn fwd");
            close(&s.mean, &s_ref.mean, 1e-5, "bn mean");
            close(&s.inv_std, &s_ref.inv_std, 1e-4, "bn inv_std");
            let (dx, dg, db) = batch_norm_backward(&x, &gamma, &s, &grad, threads);
            close(dx.data(), dx_ref.data(), 1e-3, "bn dx");
            close(dg.data(), dg_ref.data(), 1e-3, "bn dgamma");
            close(db.data(), db_ref.data(), 1e-3, "bn dbeta");
            // Thread count must not change a single bit.
            let bits = vec![
                y.data().to_vec(),
                dx.data().to_vec(),
                dg.data().to_vec(),
                db.data().to_vec(),
            ];
            match &first {
                None => first = Some(bits),
                Some(want) => assert!(*want == bits, "bn not deterministic at t{threads}"),
            }
        }
    }

    #[test]
    fn layer_norm_matches_reference_bitwise() {
        let mut rng = Pcg32::seed(32);
        let x = Tensor::randn(&[7, 9], &mut rng);
        let gamma = Tensor::randn(&[9], &mut rng).map(|v| 1.0 + 0.2 * v);
        let beta = Tensor::randn(&[9], &mut rng);
        let grad = Tensor::randn(&[7, 9], &mut rng);
        let (y_ref, s_ref) = reference::layer_norm_forward(&x, &gamma, &beta, 1e-5);
        let (dx_ref, dg_ref, db_ref) = reference::layer_norm_backward(&x, &gamma, &s_ref, &grad);
        for threads in [1, 2, 4] {
            let (y, s) = layer_norm_forward(&x, &gamma, &beta, 1e-5, threads);
            assert_eq!(y.data(), y_ref.data(), "ln fwd t{threads}");
            assert_eq!(s, s_ref, "ln stats t{threads}");
            let (dx, dg, db) = layer_norm_backward(&x, &gamma, &s, &grad, threads);
            assert_eq!(dx.data(), dx_ref.data(), "ln dx t{threads}");
            assert_eq!(dg.data(), dg_ref.data(), "ln dgamma t{threads}");
            assert_eq!(db.data(), db_ref.data(), "ln dbeta t{threads}");
        }
    }

    #[test]
    fn softmax_xent_matches_reference_bitwise() {
        let mut rng = Pcg32::seed(33);
        let logits = Tensor::randn(&[6, 11], &mut rng);
        let targets = vec![0, 10, 3, 7, 7, 1];
        let (loss_ref, probs_ref) = reference::softmax_xent_forward(&logits, &targets);
        let dl_ref = reference::softmax_xent_backward(&probs_ref, &targets, 0.7);
        for threads in [1, 2, 4] {
            let (loss, probs) = softmax_xent_forward(&logits, &targets, threads);
            assert_eq!(loss, loss_ref, "xent loss t{threads}");
            assert_eq!(probs.data(), probs_ref.data(), "xent probs t{threads}");
            let dl = softmax_xent_backward(&probs, &targets, 0.7, threads);
            assert_eq!(dl.data(), dl_ref.data(), "xent grad t{threads}");
        }
    }

    #[test]
    fn pooling_matches_reference_bitwise() {
        let mut rng = Pcg32::seed(34);
        let x = Tensor::randn(&[3, 4, 6, 8], &mut rng);
        let (p_ref, am_ref) = reference::max_pool2x2_forward(&x);
        let gpool = Tensor::randn(p_ref.shape(), &mut rng);
        let dmax_ref = reference::max_pool2x2_backward(x.shape(), &am_ref, &gpool);
        let gap_ref = reference::global_avg_pool_forward(&x);
        let ggap = Tensor::randn(gap_ref.shape(), &mut rng);
        let dgap_ref = reference::global_avg_pool_backward(x.shape(), &ggap);
        for threads in [1, 2, 4] {
            let (p, am) = max_pool2x2_forward(&x, threads);
            assert_eq!(p.data(), p_ref.data(), "maxpool fwd t{threads}");
            assert_eq!(am, am_ref, "maxpool argmax t{threads}");
            let dmax = max_pool2x2_backward(x.shape(), &am, &gpool, threads);
            assert_eq!(dmax.data(), dmax_ref.data(), "maxpool bwd t{threads}");
            let gap = global_avg_pool_forward(&x, threads);
            assert_eq!(gap.data(), gap_ref.data(), "gap fwd t{threads}");
            let dgap = global_avg_pool_backward(x.shape(), &ggap, threads);
            assert_eq!(dgap.data(), dgap_ref.data(), "gap bwd t{threads}");
        }
    }
}
