//! Training-mode batch normalization (forward and backward).

use yf_tensor::Tensor;

/// Per-channel statistics saved by the forward pass for the backward pass.
#[derive(Debug, Clone)]
pub(crate) struct BnSaved {
    /// Per-channel batch mean.
    pub mean: Vec<f32>,
    /// Per-channel inverse standard deviation `1/sqrt(var + eps)`.
    pub inv_std: Vec<f32>,
}

impl BnSaved {
    /// Batch variance per channel, recovered from the saved inverse std
    /// (exposed for tests; training-mode BN needs only `inv_std`).
    #[cfg(test)]
    pub fn variance(&self, eps: f32) -> Vec<f32> {
        self.inv_std
            .iter()
            .map(|&is| 1.0 / (is * is) - eps)
            .collect()
    }
}

/// Normalizes `[B, C, H, W]` per channel over the batch and spatial axes.
pub(crate) fn batch_norm_forward(
    x: &Tensor,
    gamma: &Tensor,
    beta: &Tensor,
    eps: f32,
) -> (Tensor, BnSaved) {
    assert_eq!(x.shape().len(), 4, "batch_norm: input must be rank 4");
    let (b, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
    assert_eq!(gamma.shape(), &[c], "batch_norm: gamma must be [C]");
    assert_eq!(beta.shape(), &[c], "batch_norm: beta must be [C]");
    let hw = h * w;
    let n = (b * hw) as f32;
    let mut mean = vec![0.0f32; c];
    let mut var = vec![0.0f32; c];
    for bi in 0..b {
        for (ci, m) in mean.iter_mut().enumerate() {
            let base = (bi * c + ci) * hw;
            for &v in &x.data()[base..base + hw] {
                *m += v;
            }
        }
    }
    for m in &mut mean {
        *m /= n;
    }
    for bi in 0..b {
        for (ci, vr) in var.iter_mut().enumerate() {
            let base = (bi * c + ci) * hw;
            for &v in &x.data()[base..base + hw] {
                let d = v - mean[ci];
                *vr += d * d;
            }
        }
    }
    for v in &mut var {
        *v /= n;
    }
    let inv_std: Vec<f32> = var.iter().map(|&v| 1.0 / (v + eps).sqrt()).collect();
    let mut out = vec![0.0f32; x.len()];
    for bi in 0..b {
        for ci in 0..c {
            let base = (bi * c + ci) * hw;
            let (m, is, g, bt) = (mean[ci], inv_std[ci], gamma.data()[ci], beta.data()[ci]);
            for (o, &v) in out[base..base + hw]
                .iter_mut()
                .zip(&x.data()[base..base + hw])
            {
                *o = g * (v - m) * is + bt;
            }
        }
    }
    (Tensor::from_vec(out, x.shape()), BnSaved { mean, inv_std })
}

/// Backward pass: returns `(dx, dgamma, dbeta)`.
///
/// Uses the standard closed form: with `x_hat = (x - mean) * inv_std`,
/// `dx = gamma * inv_std / N * (N * dy - sum(dy) - x_hat * sum(dy * x_hat))`.
pub(crate) fn batch_norm_backward(
    x: &Tensor,
    gamma: &Tensor,
    saved: &BnSaved,
    grad_out: &Tensor,
) -> (Tensor, Tensor, Tensor) {
    let (b, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
    let hw = h * w;
    let n = (b * hw) as f32;
    let mut sum_dy = vec![0.0f32; c];
    let mut sum_dy_xhat = vec![0.0f32; c];
    for bi in 0..b {
        for ci in 0..c {
            let base = (bi * c + ci) * hw;
            let (m, is) = (saved.mean[ci], saved.inv_std[ci]);
            for k in 0..hw {
                let dy = grad_out.data()[base + k];
                let xhat = (x.data()[base + k] - m) * is;
                sum_dy[ci] += dy;
                sum_dy_xhat[ci] += dy * xhat;
            }
        }
    }
    let mut dx = vec![0.0f32; x.len()];
    for bi in 0..b {
        for ci in 0..c {
            let base = (bi * c + ci) * hw;
            let (m, is, g) = (saved.mean[ci], saved.inv_std[ci], gamma.data()[ci]);
            let k1 = g * is / n;
            for k in 0..hw {
                let dy = grad_out.data()[base + k];
                let xhat = (x.data()[base + k] - m) * is;
                dx[base + k] = k1 * (n * dy - sum_dy[ci] - xhat * sum_dy_xhat[ci]);
            }
        }
    }
    (
        Tensor::from_vec(dx, x.shape()),
        Tensor::from_vec(sum_dy_xhat, &[c]),
        Tensor::from_vec(sum_dy, &[c]),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use yf_tensor::rng::Pcg32;

    #[test]
    fn output_is_normalized() {
        let mut rng = Pcg32::seed(21);
        let x = Tensor::randn(&[4, 3, 2, 2], &mut rng).map(|v| 3.0 * v + 1.0);
        let gamma = Tensor::ones(&[3]);
        let beta = Tensor::zeros(&[3]);
        let (y, _) = batch_norm_forward(&x, &gamma, &beta, 1e-5);
        // Per-channel mean ~0, variance ~1.
        let hw = 4;
        for ci in 0..3 {
            let mut vals = Vec::new();
            for bi in 0..4 {
                let base = (bi * 3 + ci) * hw;
                vals.extend_from_slice(&y.data()[base..base + hw]);
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 =
                vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "channel {ci} mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "channel {ci} var {var}");
        }
    }

    #[test]
    fn gamma_beta_affine() {
        let mut rng = Pcg32::seed(22);
        let x = Tensor::randn(&[2, 1, 2, 2], &mut rng);
        let gamma = Tensor::from_vec(vec![2.0], &[1]);
        let beta = Tensor::from_vec(vec![-1.0], &[1]);
        let (y, _) = batch_norm_forward(&x, &gamma, &beta, 1e-5);
        let mean: f32 = y.data().iter().sum::<f32>() / y.len() as f32;
        assert!((mean - -1.0).abs() < 1e-4, "beta shifts the mean: {mean}");
    }

    #[test]
    fn saved_variance_round_trips() {
        let x = Tensor::from_vec(vec![1.0, 3.0, 1.0, 3.0], &[1, 1, 2, 2]);
        let (_, saved) = batch_norm_forward(&x, &Tensor::ones(&[1]), &Tensor::zeros(&[1]), 1e-5);
        let var = saved.variance(1e-5);
        assert!((var[0] - 1.0).abs() < 1e-4, "variance {}", var[0]);
    }
}
