//! Vector-Jacobian products for every op on the tape.

use crate::conv::{conv2d_backward_input_with_par, conv2d_backward_weight_with_par};
use crate::graph::{Graph, Op};
use crate::norm;
use yf_tensor::Tensor;

impl Graph {
    /// Propagates the gradient sitting on node `i` into its inputs.
    pub(crate) fn backprop_node(&mut self, i: usize) {
        let grad = self.nodes[i]
            .grad
            .clone()
            .expect("backprop_node called without gradient");
        // Clone the op descriptor: it is small (ids + saved small tensors)
        // and lets us mutate the node table freely below.
        let op = self.nodes[i].op.clone();
        match op {
            Op::Leaf => {}
            Op::Add(a, b) => {
                self.accumulate(a, &grad);
                self.accumulate(b, &grad);
            }
            Op::Sub(a, b) => {
                self.accumulate(a, &grad);
                let neg = grad.scale(-1.0);
                self.accumulate(b, &neg);
            }
            Op::Mul(a, b) => {
                if self.rg(a) {
                    let da = grad.mul(self.value(b));
                    self.accumulate(a, &da);
                }
                if self.rg(b) {
                    let db = grad.mul(self.value(a));
                    self.accumulate(b, &db);
                }
            }
            Op::AddBias(x, bias) => {
                self.accumulate(x, &grad);
                if self.rg(bias) {
                    let n = self.value(bias).len();
                    let mut db = vec![0.0f32; n];
                    for (idx, &g) in grad.data().iter().enumerate() {
                        db[idx % n] += g;
                    }
                    self.accumulate(bias, &Tensor::from_vec(db, &[n]));
                }
            }
            Op::AddChanBias(x, bias) => {
                self.accumulate(x, &grad);
                if self.rg(bias) {
                    let c = self.value(bias).len();
                    let shape = self.value(x).shape().to_vec();
                    let hw = shape[2] * shape[3];
                    let mut db = vec![0.0f32; c];
                    for (idx, &g) in grad.data().iter().enumerate() {
                        db[(idx / hw) % c] += g;
                    }
                    self.accumulate(bias, &Tensor::from_vec(db, &[c]));
                }
            }
            Op::MatMul(a, b) => {
                // Both products read the transposed operand through the
                // GEMM packing layer — nothing is materialized.
                if self.rg(a) {
                    let da = grad.matmul_nt(self.value(b));
                    self.accumulate(a, &da);
                }
                if self.rg(b) {
                    let db = self.value(a).matmul_tn(&grad);
                    self.accumulate(b, &db);
                }
            }
            Op::MatMulNT(a, b) => {
                // y = a bᵀ with a: [m, k], b: [n, k], grad: [m, n].
                if self.rg(a) {
                    let da = grad.matmul(self.value(b));
                    self.accumulate(a, &da);
                }
                if self.rg(b) {
                    let db = grad.matmul_tn(self.value(a));
                    self.accumulate(b, &db);
                }
            }
            Op::Relu(x) => {
                let mask = self.value(x).map(|v| if v > 0.0 { 1.0 } else { 0.0 });
                let dx = grad.mul(&mask);
                self.accumulate(x, &dx);
            }
            Op::Tanh(x) => {
                // d tanh = 1 - tanh^2; the node's own value is tanh(x).
                let y = &self.nodes[i].value;
                let dx = grad.mul(&y.map(|t| 1.0 - t * t));
                self.accumulate(x, &dx);
            }
            Op::Sigmoid(x) => {
                let y = &self.nodes[i].value;
                let dx = grad.mul(&y.map(|s| s * (1.0 - s)));
                self.accumulate(x, &dx);
            }
            Op::Scale(x, alpha) => {
                let dx = grad.scale(alpha);
                self.accumulate(x, &dx);
            }
            Op::Reshape(x) => {
                let dx = grad.reshape(self.value(x).shape());
                self.accumulate(x, &dx);
            }
            Op::SumAll(x) => {
                let g = grad.data()[0];
                let dx = Tensor::full(self.value(x).shape(), g);
                self.accumulate(x, &dx);
            }
            Op::MeanAll(x) => {
                let n = self.value(x).len() as f32;
                let g = grad.data()[0] / n;
                let dx = Tensor::full(self.value(x).shape(), g);
                self.accumulate(x, &dx);
            }
            Op::SliceCols { input, start, len } => {
                let shape = self.value(input).shape().to_vec();
                let (b, n) = (shape[0], shape[1]);
                let mut dx = vec![0.0f32; b * n];
                for r in 0..b {
                    let src = &grad.data()[r * len..(r + 1) * len];
                    dx[r * n + start..r * n + start + len].copy_from_slice(src);
                }
                self.accumulate(input, &Tensor::from_vec(dx, &[b, n]));
            }
            Op::ConcatCols(parts) => {
                let b = grad.shape()[0];
                let total = grad.shape()[1];
                let mut col = 0;
                for &p in &parts {
                    let n = self.value(p).shape()[1];
                    if self.rg(p) {
                        let mut dp = Vec::with_capacity(b * n);
                        for r in 0..b {
                            dp.extend_from_slice(
                                &grad.data()[r * total + col..r * total + col + n],
                            );
                        }
                        self.accumulate(p, &Tensor::from_vec(dp, &[b, n]));
                    }
                    col += n;
                }
            }
            Op::SoftmaxCrossEntropy {
                logits,
                targets,
                probs,
            } => {
                // d loss / d logit = (softmax - onehot) / B, scaled by the
                // upstream scalar gradient.
                let dl =
                    norm::softmax_xent_backward(&probs, &targets, grad.data()[0], self.threads);
                self.accumulate(logits, &dl);
            }
            Op::Embedding { weight, ids } => {
                if self.rg(weight) {
                    let (v, d) = {
                        let w = self.value(weight);
                        (w.shape()[0], w.shape()[1])
                    };
                    let mut dw = vec![0.0f32; v * d];
                    for (row, &id) in ids.iter().enumerate() {
                        let src = &grad.data()[row * d..(row + 1) * d];
                        for (slot, &g) in dw[id * d..(id + 1) * d].iter_mut().zip(src) {
                            *slot += g;
                        }
                    }
                    self.accumulate(weight, &Tensor::from_vec(dw, &[v, d]));
                }
            }
            Op::Conv2d {
                input,
                weight,
                spec,
                cols,
            } => {
                // Reuse the tape's scratch pool across both backward
                // kernels (and across steps when the graph is reused).
                let mut scratch = std::mem::take(&mut self.scratch);
                if self.rg(input) {
                    let di = conv2d_backward_input_with_par(
                        self.value(input).shape(),
                        self.value(weight),
                        &grad,
                        spec,
                        &mut scratch,
                        self.threads,
                    );
                    self.accumulate(input, &di);
                }
                if self.rg(weight) {
                    // Reuse the forward's cached columns when present;
                    // otherwise the GEMM re-unrolls from the image.
                    let dw = conv2d_backward_weight_with_par(
                        self.value(input),
                        self.value(weight).shape(),
                        &grad,
                        spec,
                        &mut scratch,
                        cols.as_ref(),
                        self.threads,
                    );
                    self.accumulate(weight, &dw);
                }
                self.scratch = scratch;
            }
            Op::BatchNorm {
                input,
                gamma,
                beta,
                saved,
            } => {
                let (dx, dgamma, dbeta) = norm::batch_norm_backward(
                    self.value(input),
                    self.value(gamma),
                    &saved,
                    &grad,
                    self.threads,
                );
                self.accumulate(input, &dx);
                self.accumulate(gamma, &dgamma);
                self.accumulate(beta, &dbeta);
            }
            Op::MaxPool2x2 { input, argmax } => {
                let shape = self.value(input).shape().to_vec();
                let dx = norm::max_pool2x2_backward(&shape, &argmax, &grad, self.threads);
                self.accumulate(input, &dx);
            }
            Op::LayerNorm {
                input,
                gamma,
                beta,
                stats,
            } => {
                let (dx, dgamma, dbeta) = norm::layer_norm_backward(
                    self.value(input),
                    self.value(gamma),
                    &stats,
                    &grad,
                    self.threads,
                );
                self.accumulate(input, &dx);
                self.accumulate(gamma, &dgamma);
                self.accumulate(beta, &dbeta);
            }
            Op::GlobalAvgPool(x) => {
                let shape = self.value(x).shape().to_vec();
                let dx = norm::global_avg_pool_backward(&shape, &grad, self.threads);
                self.accumulate(x, &dx);
            }
        }
    }
}
