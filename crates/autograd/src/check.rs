//! Finite-difference gradient checking.
//!
//! Every autograd op in this crate is validated against central
//! differences. The checker is public so downstream crates (layers,
//! models) can verify their own compositions.

use crate::graph::{Graph, NodeId};
use yf_tensor::Tensor;

/// Result of a gradient check: the largest relative error observed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CheckReport {
    /// max |analytic - numeric| / max(1, |analytic|, |numeric|)
    pub max_rel_err: f64,
}

/// Compares the analytic gradient of `build` with central finite
/// differences, perturbing each element of each input in turn.
///
/// `build` receives a fresh graph plus the leaf ids for `inputs` (recorded
/// as trainable, in order) and must return a scalar loss node.
///
/// # Panics
///
/// Panics if `build` returns a non-scalar node.
pub fn gradient_check(
    inputs: &[Tensor],
    build: impl Fn(&mut Graph, &[NodeId]) -> NodeId,
    eps: f32,
) -> CheckReport {
    // Analytic pass.
    let mut g = Graph::new();
    let ids: Vec<NodeId> = inputs.iter().map(|t| g.leaf(t.clone(), true)).collect();
    let loss = build(&mut g, &ids);
    g.backward(loss);
    let analytic: Vec<Tensor> = ids
        .iter()
        .map(|&id| {
            g.grad(id)
                .cloned()
                .unwrap_or_else(|| Tensor::zeros(g.value(id).shape()))
        })
        .collect();

    let eval = |perturbed: &[Tensor]| -> f64 {
        let mut g = Graph::new();
        let ids: Vec<NodeId> = perturbed.iter().map(|t| g.leaf(t.clone(), true)).collect();
        let loss = build(&mut g, &ids);
        f64::from(g.value(loss).data()[0])
    };

    let mut max_rel_err = 0.0f64;
    for (ti, tensor) in inputs.iter().enumerate() {
        for ei in 0..tensor.len() {
            let mut plus = inputs.to_vec();
            plus[ti].data_mut()[ei] += eps;
            let mut minus = inputs.to_vec();
            minus[ti].data_mut()[ei] -= eps;
            let numeric = (eval(&plus) - eval(&minus)) / (2.0 * f64::from(eps));
            let a = f64::from(analytic[ti].data()[ei]);
            let denom = 1.0f64.max(a.abs()).max(numeric.abs());
            let rel = (a - numeric).abs() / denom;
            max_rel_err = max_rel_err.max(rel);
        }
    }
    CheckReport { max_rel_err }
}

/// Asserts that the gradient check passes within `tol`.
///
/// # Panics
///
/// Panics (with the measured error) if the check fails.
pub fn assert_grads_close(
    inputs: &[Tensor],
    build: impl Fn(&mut Graph, &[NodeId]) -> NodeId,
    tol: f64,
) {
    let report = gradient_check(inputs, build, 1e-3);
    assert!(
        report.max_rel_err < tol,
        "gradient check failed: max relative error {} >= {tol}",
        report.max_rel_err
    );
}
