//! Sequential text generators (PTB / TinyShakespeare / WSJ substitutes).
//!
//! Three generators produce `(input, target)` language-modeling batches in
//! the layout of `yf_nn::LmBatch` (targets are inputs shifted by one):
//!
//! - [`MarkovText`]: an order-2 character Markov chain with a sparse,
//!   seeded transition table — the TinyShakespeare stand-in.
//! - [`ZipfBigramText`]: Zipf-distributed word frequencies modulated by a
//!   seeded bigram affinity — the Penn TreeBank stand-in.
//! - [`CfgParseText`]: strings sampled from a probabilistic CFG with
//!   explicit bracket tokens — the WSJ "parsing as language modeling"
//!   stand-in (Choe & Charniak), with a bracket-F1 validation metric.

use yf_tensor::rng::Pcg32;

/// A language-model minibatch specification shared by the generators.
#[derive(Debug, Clone, Copy)]
pub struct LmSample {
    /// Number of sequences.
    pub batch: usize,
    /// Tokens per sequence (inputs; targets are shifted by one).
    pub time: usize,
}

/// Common interface of the text generators.
pub trait TextSource {
    /// Vocabulary size.
    fn vocab(&self) -> usize;

    /// Generates one sequence of `len + 1` token ids (so that a length
    /// `len` input and its shifted target can be cut from it).
    fn sequence(&mut self, len: usize) -> Vec<usize>;

    /// Builds `(inputs, targets)` of `spec.batch * spec.time` tokens each.
    fn lm_arrays(&mut self, spec: LmSample) -> (Vec<usize>, Vec<usize>) {
        let mut inputs = Vec::with_capacity(spec.batch * spec.time);
        let mut targets = Vec::with_capacity(spec.batch * spec.time);
        for _ in 0..spec.batch {
            let seq = self.sequence(spec.time);
            debug_assert_eq!(seq.len(), spec.time + 1);
            inputs.extend_from_slice(&seq[..spec.time]);
            targets.extend_from_slice(&seq[1..]);
        }
        (inputs, targets)
    }
}

/// Order-2 character Markov chain over a small alphabet.
#[derive(Debug, Clone)]
pub struct MarkovText {
    vocab: usize,
    /// Sparse transition weights: for each (prev2, prev1) pair a small set
    /// of preferred successors.
    table: Vec<Vec<f32>>,
    rng: Pcg32,
}

impl MarkovText {
    /// Creates a chain over `vocab` symbols with `branching` preferred
    /// successors per context.
    ///
    /// # Panics
    ///
    /// Panics if `vocab < 2` or `branching` is 0.
    pub fn new(vocab: usize, branching: usize, seed: u64) -> Self {
        assert!(vocab >= 2, "markov: vocab too small");
        assert!(branching > 0, "markov: branching must be positive");
        let mut init = Pcg32::seed_stream(seed, 0x3333);
        let mut table = Vec::with_capacity(vocab * vocab);
        for _ in 0..vocab * vocab {
            // Mostly-uniform floor plus a few strong preferred successors:
            // gives low-entropy structure a small LSTM can learn.
            let mut row = vec![0.02f32; vocab];
            for _ in 0..branching {
                let k = init.below(vocab as u32) as usize;
                row[k] += 1.0;
            }
            table.push(row);
        }
        MarkovText {
            vocab,
            table,
            rng: Pcg32::seed_stream(seed, 0x4444),
        }
    }

    /// Per-symbol empirical entropy of a long generated stream, in nats
    /// (useful for sanity-checking that the task is learnable).
    pub fn empirical_unigram_entropy(&mut self, samples: usize) -> f64 {
        let seq = self.sequence(samples);
        let mut counts = vec![0usize; self.vocab];
        for &s in &seq {
            counts[s] += 1;
        }
        let n = seq.len() as f64;
        counts
            .iter()
            .filter(|&&c| c > 0)
            .map(|&c| {
                let p = c as f64 / n;
                -p * p.ln()
            })
            .sum()
    }
}

impl TextSource for MarkovText {
    fn vocab(&self) -> usize {
        self.vocab
    }

    fn sequence(&mut self, len: usize) -> Vec<usize> {
        let mut out = Vec::with_capacity(len + 1);
        let mut p2 = self.rng.below(self.vocab as u32) as usize;
        let mut p1 = self.rng.below(self.vocab as u32) as usize;
        for _ in 0..len + 1 {
            let row = &self.table[p2 * self.vocab + p1];
            let next = self.rng.categorical(row);
            out.push(next);
            p2 = p1;
            p1 = next;
        }
        out
    }
}

/// Zipf-distributed words with bigram affinity (PTB substitute).
#[derive(Debug, Clone)]
pub struct ZipfBigramText {
    vocab: usize,
    /// Zipf weights per word.
    unigram: Vec<f32>,
    /// Each word prefers a successor "topic block".
    successor_block: Vec<usize>,
    block: usize,
    rng: Pcg32,
}

impl ZipfBigramText {
    /// Creates the generator; `exponent` is the Zipf slope (~1.0 for
    /// natural language).
    ///
    /// # Panics
    ///
    /// Panics if `vocab < 4`.
    pub fn new(vocab: usize, exponent: f32, seed: u64) -> Self {
        assert!(vocab >= 4, "zipf: vocab too small");
        let mut init = Pcg32::seed_stream(seed, 0x5555);
        let unigram: Vec<f32> = (1..=vocab).map(|r| (r as f32).powf(-exponent)).collect();
        let block = (vocab / 4).max(1);
        let successor_block = (0..vocab)
            .map(|_| init.below((vocab / block).max(1) as u32) as usize)
            .collect();
        ZipfBigramText {
            vocab,
            unigram,
            successor_block,
            block,
            rng: Pcg32::seed_stream(seed, 0x6666),
        }
    }
}

impl TextSource for ZipfBigramText {
    fn vocab(&self) -> usize {
        self.vocab
    }

    fn sequence(&mut self, len: usize) -> Vec<usize> {
        let mut out = Vec::with_capacity(len + 1);
        let mut prev = self.rng.below(self.vocab as u32) as usize;
        let mut weights = vec![0.0f32; self.vocab];
        for _ in 0..len + 1 {
            let blk = self.successor_block[prev];
            let lo = blk * self.block;
            let hi = ((blk + 1) * self.block).min(self.vocab);
            for (w, u) in weights.iter_mut().zip(&self.unigram) {
                *w = 0.3 * u;
            }
            for (w, u) in weights[lo..hi].iter_mut().zip(&self.unigram[lo..hi]) {
                *w += 2.0 * u;
            }
            let next = self.rng.categorical(&weights);
            out.push(next);
            prev = next;
        }
        out
    }
}

/// Token ids reserved by [`CfgParseText`].
pub mod parse_tokens {
    /// Opening bracket `(`.
    pub const OPEN: usize = 0;
    /// Closing bracket `)`.
    pub const CLOSE: usize = 1;
    /// First non-bracket token id.
    pub const FIRST_WORD: usize = 2;
}

/// Balanced-bracket strings from a probabilistic CFG (WSJ substitute).
///
/// Grammar: `S -> ( L )` where `L` is a sequence of 1-3 children, each a
/// terminal word or (with decaying probability by depth) another `S`.
/// Linearized with explicit bracket tokens, this is exactly the
/// "parsing as language modeling" encoding of Choe & Charniak that the
/// paper's WSJ experiments use.
#[derive(Debug, Clone)]
pub struct CfgParseText {
    vocab: usize,
    max_depth: usize,
    rng: Pcg32,
}

impl CfgParseText {
    /// Creates the generator with `words` terminal symbols.
    ///
    /// # Panics
    ///
    /// Panics if `words == 0` or `max_depth == 0`.
    pub fn new(words: usize, max_depth: usize, seed: u64) -> Self {
        assert!(words > 0, "cfg: need at least one word");
        assert!(max_depth > 0, "cfg: max_depth must be positive");
        CfgParseText {
            vocab: parse_tokens::FIRST_WORD + words,
            max_depth,
            rng: Pcg32::seed_stream(seed, 0x7777),
        }
    }

    fn emit(&mut self, out: &mut Vec<usize>, depth: usize) {
        out.push(parse_tokens::OPEN);
        let children = 1 + self.rng.below(3) as usize;
        for _ in 0..children {
            let recurse = depth < self.max_depth && self.rng.uniform() < 0.35;
            if recurse {
                self.emit(out, depth + 1);
            } else {
                let w = self
                    .rng
                    .below((self.vocab - parse_tokens::FIRST_WORD) as u32)
                    as usize;
                out.push(parse_tokens::FIRST_WORD + w);
            }
        }
        out.push(parse_tokens::CLOSE);
    }

    /// Bracket F1 between predictions and targets, counting only the
    /// bracket tokens (precision/recall of predicting `(` and `)` at the
    /// right positions under teacher forcing). This is the validation
    /// surrogate for the paper's parse F1.
    pub fn bracket_f1(predictions: &[usize], targets: &[usize]) -> f64 {
        assert_eq!(predictions.len(), targets.len(), "bracket_f1: lengths");
        let is_bracket = |t: usize| t == parse_tokens::OPEN || t == parse_tokens::CLOSE;
        let mut tp = 0usize;
        let mut pred_brackets = 0usize;
        let mut true_brackets = 0usize;
        for (&p, &t) in predictions.iter().zip(targets) {
            if is_bracket(p) {
                pred_brackets += 1;
            }
            if is_bracket(t) {
                true_brackets += 1;
            }
            if is_bracket(p) && p == t {
                tp += 1;
            }
        }
        if pred_brackets == 0 || true_brackets == 0 {
            return 0.0;
        }
        let precision = tp as f64 / pred_brackets as f64;
        let recall = tp as f64 / true_brackets as f64;
        if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        }
    }
}

impl TextSource for CfgParseText {
    fn vocab(&self) -> usize {
        self.vocab
    }

    fn sequence(&mut self, len: usize) -> Vec<usize> {
        let mut out = Vec::with_capacity(len + 1);
        while out.len() < len + 1 {
            self.emit(&mut out, 0);
        }
        out.truncate(len + 1);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markov_tokens_in_range_and_deterministic() {
        let mut a = MarkovText::new(20, 3, 5);
        let mut b = MarkovText::new(20, 3, 5);
        let sa = a.sequence(100);
        assert_eq!(sa.len(), 101);
        assert!(sa.iter().all(|&t| t < 20));
        assert_eq!(sa, b.sequence(100));
    }

    #[test]
    fn markov_has_learnable_structure() {
        // The chain is order-2: conditioned on the two previous symbols,
        // the next-token entropy must be well below uniform (otherwise an
        // LSTM could not learn anything).
        let v = 16usize;
        let mut gen = MarkovText::new(v, 2, 6);
        let seq = gen.sequence(60_000);
        let mut cond_counts = vec![0usize; v * v * v];
        for w in seq.windows(3) {
            cond_counts[(w[0] * v + w[1]) * v + w[2]] += 1;
        }
        let mut h = 0.0f64;
        let total = (seq.len() - 2) as f64;
        for ctx in 0..v * v {
            let row = &cond_counts[ctx * v..(ctx + 1) * v];
            let n: usize = row.iter().sum();
            if n == 0 {
                continue;
            }
            for &c in row {
                if c > 0 {
                    let p = c as f64 / n as f64;
                    h -= (n as f64 / total) * p * p.ln();
                }
            }
        }
        let uniform = (v as f64).ln();
        assert!(
            h < 0.7 * uniform,
            "order-2 entropy {h} too close to uniform {uniform}"
        );
    }

    #[test]
    fn lm_arrays_are_shifted() {
        let mut gen = MarkovText::new(10, 2, 7);
        let (inputs, targets) = gen.lm_arrays(LmSample { batch: 3, time: 8 });
        assert_eq!(inputs.len(), 24);
        assert_eq!(targets.len(), 24);
        // Within each row, target[t] should equal input[t+1].
        for r in 0..3 {
            for t in 0..7 {
                assert_eq!(targets[r * 8 + t], inputs[r * 8 + t + 1]);
            }
        }
    }

    #[test]
    fn zipf_is_skewed() {
        let mut gen = ZipfBigramText::new(50, 1.0, 8);
        let seq = gen.sequence(20_000);
        let mut counts = vec![0usize; 50];
        for &t in &seq {
            counts[t] += 1;
        }
        // Top word should be much more frequent than the median word.
        let mut sorted = counts.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        assert!(
            sorted[0] > 5 * sorted[25].max(1),
            "head {} vs median {}",
            sorted[0],
            sorted[25]
        );
    }

    #[test]
    fn cfg_brackets_are_balanced_in_full_trees() {
        let mut gen = CfgParseText::new(10, 4, 9);
        let mut out = Vec::new();
        gen.emit(&mut out, 0);
        let mut depth = 0i64;
        for &t in &out {
            if t == parse_tokens::OPEN {
                depth += 1;
            } else if t == parse_tokens::CLOSE {
                depth -= 1;
            }
            assert!(depth >= 0, "negative depth");
        }
        assert_eq!(depth, 0, "unbalanced tree");
    }

    #[test]
    fn bracket_f1_bounds() {
        let t = vec![0, 2, 3, 1, 0, 4, 1];
        assert!((CfgParseText::bracket_f1(&t, &t) - 1.0).abs() < 1e-12);
        let all_words = vec![2; 7];
        assert_eq!(CfgParseText::bracket_f1(&all_words, &t), 0.0);
        let half = vec![0, 2, 3, 2, 2, 4, 1];
        let f1 = CfgParseText::bracket_f1(&half, &t);
        assert!(f1 > 0.0 && f1 < 1.0, "partial F1 {f1}");
    }

    #[test]
    #[should_panic(expected = "vocab too small")]
    fn markov_tiny_vocab_panics() {
        MarkovText::new(1, 1, 0);
    }
}
