//! Synthetic translation task and BLEU-4 (IWSLT'14 De-En substitute).
//!
//! Sources are random token strings; the "translation" is a deterministic
//! bijection — reverse the sequence and permute the vocabulary — which an
//! encoder-decoder must actually learn end-to-end (it is not learnable by
//! a unigram model). BLEU-4 with brevity penalty is implemented in full
//! so Table 1 reports the same metric family as the paper.

use yf_tensor::rng::Pcg32;

/// Reserved ids for the translation task.
pub mod special {
    /// Beginning-of-sequence marker fed to the decoder.
    pub const BOS: usize = 0;
    /// First content token id.
    pub const FIRST_WORD: usize = 1;
}

/// A seeded generator of (source, target) pairs.
#[derive(Debug, Clone)]
pub struct TranslationTask {
    vocab: usize,
    permutation: Vec<usize>,
    len: usize,
    rng: Pcg32,
}

impl TranslationTask {
    /// Creates the task: `words` content tokens, sequences of `len`.
    ///
    /// # Panics
    ///
    /// Panics if `words < 2` or `len == 0`.
    pub fn new(words: usize, len: usize, seed: u64) -> Self {
        assert!(words >= 2, "translation: need at least two words");
        assert!(len > 0, "translation: empty sequences");
        let mut init = Pcg32::seed_stream(seed, 0x8888);
        // Random permutation of the content vocabulary (Fisher-Yates).
        let mut permutation: Vec<usize> = (0..words).collect();
        for i in (1..words).rev() {
            let j = init.below((i + 1) as u32) as usize;
            permutation.swap(i, j);
        }
        TranslationTask {
            vocab: special::FIRST_WORD + words,
            permutation,
            len,
            rng: Pcg32::seed_stream(seed, 0x9999),
        }
    }

    /// Total vocabulary (content words + specials).
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Sequence length.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Always false (sequences are non-empty by construction).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The reference translation of `src`: reversed and token-mapped.
    pub fn translate(&self, src: &[usize]) -> Vec<usize> {
        src.iter()
            .rev()
            .map(|&t| special::FIRST_WORD + self.permutation[t - special::FIRST_WORD])
            .collect()
    }

    /// Samples one source sentence.
    pub fn source(&mut self) -> Vec<usize> {
        (0..self.len)
            .map(|_| {
                special::FIRST_WORD
                    + self.rng.below((self.vocab - special::FIRST_WORD) as u32) as usize
            })
            .collect()
    }

    /// Builds a teacher-forced batch in `yf_nn::SeqBatch` array layout:
    /// `(src, tgt_in, tgt_out)` flattened row-major.
    pub fn batch_arrays(&mut self, n: usize) -> (Vec<usize>, Vec<usize>, Vec<usize>) {
        let mut src = Vec::with_capacity(n * self.len);
        let mut tgt_in = Vec::with_capacity(n * self.len);
        let mut tgt_out = Vec::with_capacity(n * self.len);
        for _ in 0..n {
            let s = self.source();
            let t = self.translate(&s);
            tgt_in.push(special::BOS);
            tgt_in.extend_from_slice(&t[..self.len - 1]);
            tgt_out.extend_from_slice(&t);
            src.extend_from_slice(&s);
        }
        (src, tgt_in, tgt_out)
    }
}

/// Corpus-level BLEU-4 with brevity penalty (Papineni et al. 2002),
/// computed over token-id sequences.
///
/// Returns a value in `[0, 1]`; multiply by 100 for the conventional
/// score. N-gram orders with no candidate n-grams contribute smoothing
/// count 0 (standard "add-epsilon-free" corpus BLEU: if any order has
/// zero matches the score is 0, as in the reference implementation).
pub fn bleu4(candidates: &[Vec<usize>], references: &[Vec<usize>]) -> f64 {
    assert_eq!(
        candidates.len(),
        references.len(),
        "bleu4: corpus size mismatch"
    );
    let mut cand_len = 0usize;
    let mut ref_len = 0usize;
    let mut matches = [0usize; 4];
    let mut totals = [0usize; 4];
    for (cand, reference) in candidates.iter().zip(references) {
        cand_len += cand.len();
        ref_len += reference.len();
        for n in 1..=4usize {
            if cand.len() < n {
                continue;
            }
            let mut ref_counts = std::collections::HashMap::new();
            if reference.len() >= n {
                for w in reference.windows(n) {
                    *ref_counts.entry(w).or_insert(0usize) += 1;
                }
            }
            for w in cand.windows(n) {
                totals[n - 1] += 1;
                if let Some(c) = ref_counts.get_mut(w) {
                    if *c > 0 {
                        *c -= 1;
                        matches[n - 1] += 1;
                    }
                }
            }
        }
    }
    let mut log_precision = 0.0f64;
    for n in 0..4 {
        if totals[n] == 0 || matches[n] == 0 {
            return 0.0;
        }
        log_precision += (matches[n] as f64 / totals[n] as f64).ln() / 4.0;
    }
    let bp = if cand_len >= ref_len {
        1.0
    } else if cand_len == 0 {
        0.0
    } else {
        (1.0 - ref_len as f64 / cand_len as f64).exp()
    };
    bp * log_precision.exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn translation_is_a_learnable_bijection() {
        let task = TranslationTask::new(10, 5, 3);
        let src = vec![1, 2, 3, 4, 5];
        let tgt = task.translate(&src);
        assert_eq!(tgt.len(), 5);
        // Bijection: translating two different sources differs.
        let tgt2 = task.translate(&[5, 4, 3, 2, 1]);
        assert_ne!(tgt, tgt2);
        // Reversal: last source token determines first target token.
        let t_last = task.translate(&[1, 1, 1, 1, 9]);
        let t_last2 = task.translate(&[2, 2, 2, 2, 9]);
        assert_eq!(t_last[0], t_last2[0]);
    }

    #[test]
    fn batch_arrays_layout() {
        let mut task = TranslationTask::new(8, 4, 5);
        let (src, tgt_in, tgt_out) = task.batch_arrays(3);
        assert_eq!(src.len(), 12);
        assert_eq!(tgt_in.len(), 12);
        assert_eq!(tgt_out.len(), 12);
        for r in 0..3 {
            assert_eq!(tgt_in[r * 4], special::BOS);
            // tgt_in is tgt_out shifted right by one.
            assert_eq!(&tgt_in[r * 4 + 1..(r + 1) * 4], &tgt_out[r * 4..r * 4 + 3]);
        }
    }

    #[test]
    fn bleu_perfect_match_is_one() {
        let c = vec![vec![1, 2, 3, 4, 5]];
        assert!((bleu4(&c, &c) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bleu_no_overlap_is_zero() {
        let c = vec![vec![1, 2, 3, 4, 5]];
        let r = vec![vec![6, 7, 8, 9, 10]];
        assert_eq!(bleu4(&c, &r), 0.0);
    }

    #[test]
    fn bleu_brevity_penalty_kicks_in() {
        // Candidate is a perfect prefix but shorter: BP < 1.
        let c = vec![vec![1, 2, 3, 4]];
        let r = vec![vec![1, 2, 3, 4, 5, 6, 7, 8]];
        let score = bleu4(&c, &r);
        assert!(score > 0.0 && score < 0.5, "score {score}");
    }

    #[test]
    fn bleu_clips_repeated_ngrams() {
        // Candidate repeats a reference word more often than it occurs.
        let c = vec![vec![1, 1, 1, 1, 1]];
        let r = vec![vec![1, 2, 3, 4, 5]];
        // Only one unigram match allowed; 4-grams won't match at all -> 0.
        assert_eq!(bleu4(&c, &r), 0.0);
    }

    #[test]
    fn bleu_hand_computed_value() {
        // Candidate shares the 5-token prefix of a 6-token reference.
        // p1 = 5/5, p2 = 4/4, p3 = 3/3, p4 = 2/2, BP = exp(1 - 6/5).
        let c = vec![vec![1, 2, 3, 4, 5]];
        let r = vec![vec![1, 2, 3, 4, 5, 6]];
        let expected = (1.0f64 - 6.0 / 5.0).exp();
        assert!((bleu4(&c, &r) - expected).abs() < 1e-12);
    }
}
