//! Synthetic workload generators substituting the paper's datasets.
//!
//! The evaluation of the paper runs on CIFAR10/100, Penn TreeBank,
//! TinyShakespeare, WSJ and IWSLT'14 De-En — none of which can be
//! downloaded in this reproduction environment. Each generator here is a
//! seeded, procedurally generated stand-in that preserves the *properties
//! the optimizer study depends on*: class-conditional image structure
//! with pixel noise ([`images`]), Zipfian/Markov sequential structure for
//! the language models ([`text`]), bracket-balanced strings for
//! parsing-as-language-modeling ([`text::CfgParseText`]), a bijective
//! token-level translation task with a real BLEU-4 metric
//! ([`translation`]), and the analytical toy objectives of Sections 2-3
//! ([`toy`]).
//!
//! Everything is deterministic given a seed, so every figure regenerated
//! by `yf-bench` is bit-reproducible.

pub mod images;
pub mod text;
pub mod toy;
pub mod translation;
