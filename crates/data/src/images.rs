//! Class-conditional synthetic image generator (CIFAR substitute).
//!
//! Each class gets a fixed "prototype" built from two structured parts —
//! a random frequency grating and a soft blob — plus per-sample pixel
//! noise and a random gain. A conv-BN-ReLU network has to learn localized
//! oriented filters to separate the classes, which exercises the same
//! optimization landscape family as small-image classification.

use yf_tensor::rng::Pcg32;
use yf_tensor::Tensor;

/// A seeded generator of labelled synthetic images.
#[derive(Debug, Clone)]
pub struct SyntheticImages {
    classes: usize,
    channels: usize,
    size: usize,
    noise: f32,
    prototypes: Vec<Vec<f32>>, // one [channels * size * size] image per class
    rng: Pcg32,
}

impl SyntheticImages {
    /// Creates a generator for `classes` classes of `size x size` images
    /// with `channels` channels and additive Gaussian `noise`.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(classes: usize, channels: usize, size: usize, noise: f32, seed: u64) -> Self {
        assert!(classes > 0 && channels > 0 && size > 0, "empty image spec");
        let mut rng = Pcg32::seed_stream(seed, 0x1111);
        let mut prototypes = Vec::with_capacity(classes);
        for _ in 0..classes {
            let mut proto = vec![0.0f32; channels * size * size];
            // Oriented grating: frequency and phase per channel.
            for c in 0..channels {
                let fx = rng.uniform_in(0.5, 3.0);
                let fy = rng.uniform_in(0.5, 3.0);
                let phase = rng.uniform_in(0.0, std::f32::consts::TAU);
                // Soft blob center.
                let (bx, by) = (
                    rng.uniform_in(0.2, 0.8) * size as f32,
                    rng.uniform_in(0.2, 0.8) * size as f32,
                );
                let sigma = rng.uniform_in(0.15, 0.35) * size as f32;
                for y in 0..size {
                    for x in 0..size {
                        let g = (std::f32::consts::TAU * (fx * x as f32 + fy * y as f32)
                            / size as f32
                            + phase)
                            .sin();
                        let d2 = (x as f32 - bx).powi(2) + (y as f32 - by).powi(2);
                        let blob = (-d2 / (2.0 * sigma * sigma)).exp();
                        proto[(c * size + y) * size + x] = 0.6 * g + 0.8 * blob;
                    }
                }
            }
            prototypes.push(proto);
        }
        SyntheticImages {
            classes,
            channels,
            size,
            noise,
            prototypes,
            rng,
        }
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Image shape as `[channels, size, size]`.
    pub fn image_shape(&self) -> [usize; 3] {
        [self.channels, self.size, self.size]
    }

    /// Samples a batch: images `[n, C, H, W]` and labels.
    pub fn batch(&mut self, n: usize) -> (Tensor, Vec<usize>) {
        let pixels = self.channels * self.size * self.size;
        let mut data = Vec::with_capacity(n * pixels);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let class = self.rng.below(self.classes as u32) as usize;
            labels.push(class);
            let gain = self.rng.uniform_in(0.7, 1.3);
            for &p in &self.prototypes[class] {
                data.push(gain * p + self.noise * self.rng.normal());
            }
        }
        (
            Tensor::from_vec(data, &[n, self.channels, self.size, self.size]),
            labels,
        )
    }

    /// A fixed validation batch drawn from an independent stream (same
    /// prototypes, different noise), so repeated calls with the same `n`
    /// and `seed` return identical data.
    pub fn validation_batch(&self, n: usize, seed: u64) -> (Tensor, Vec<usize>) {
        let mut clone = self.clone();
        clone.rng = Pcg32::seed_stream(seed, 0x2222);
        clone.batch(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_label_range() {
        let mut gen = SyntheticImages::new(10, 3, 8, 0.3, 1);
        let (images, labels) = gen.batch(16);
        assert_eq!(images.shape(), &[16, 3, 8, 8]);
        assert_eq!(labels.len(), 16);
        assert!(labels.iter().all(|&l| l < 10));
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = SyntheticImages::new(4, 1, 6, 0.1, 7);
        let mut b = SyntheticImages::new(4, 1, 6, 0.1, 7);
        let (ia, la) = a.batch(8);
        let (ib, lb) = b.batch(8);
        assert_eq!(ia, ib);
        assert_eq!(la, lb);
    }

    #[test]
    fn classes_are_separated_above_noise() {
        // Distance between class prototypes must exceed the noise floor,
        // otherwise the workload would be unlearnable.
        let gen = SyntheticImages::new(3, 1, 8, 0.2, 9);
        let d01: f32 = gen.prototypes[0]
            .iter()
            .zip(&gen.prototypes[1])
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>()
            .sqrt();
        let noise_norm = 0.2 * (64.0f32).sqrt();
        assert!(d01 > noise_norm, "separation {d01} vs noise {noise_norm}");
    }

    #[test]
    fn validation_batch_is_stable() {
        let gen = SyntheticImages::new(4, 2, 6, 0.1, 11);
        let (va, la) = gen.validation_batch(8, 99);
        let (vb, lb) = gen.validation_batch(8, 99);
        assert_eq!(va, vb);
        assert_eq!(la, lb);
    }

    #[test]
    fn all_classes_eventually_sampled() {
        let mut gen = SyntheticImages::new(5, 1, 4, 0.1, 13);
        let (_, labels) = gen.batch(200);
        let mut seen = [false; 5];
        for l in labels {
            seen[l] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
