//! Analytical toy objectives from Sections 2-3 of the paper.

use yf_tensor::rng::Pcg32;

/// A one-dimensional objective with gradient and (generalized) curvature.
pub trait Objective1d {
    /// Function value.
    fn value(&self, x: f64) -> f64;
    /// Derivative.
    fn grad(&self, x: f64) -> f64;
    /// The minimizer the generalized curvature is defined against.
    fn minimizer(&self) -> f64;

    /// Generalized curvature of Definition 2: `h(x) = f'(x) / (x - x*)`.
    fn generalized_curvature(&self, x: f64) -> f64 {
        let d = x - self.minimizer();
        if d.abs() < 1e-300 {
            0.0
        } else {
            self.grad(x) / d
        }
    }
}

/// The non-convex toy objective of Figure 3(a): two quadratic pieces with
/// curvatures `h_small` (outer) and `h_large` (inner well), glued at
/// `|x| = boundary` so the function and derivative stay continuous.
///
/// Its generalized condition number with respect to the minimum at 0 is
/// `h_large / h_small` (1000 in the paper's example).
#[derive(Debug, Clone, Copy)]
pub struct PiecewiseQuadratic {
    /// Curvature of the outer region.
    pub h_small: f64,
    /// Curvature of the inner well.
    pub h_large: f64,
    /// Radius of the inner well.
    pub boundary: f64,
}

impl PiecewiseQuadratic {
    /// The paper's Figure 3(a) instance: curvatures 1 and 1000.
    ///
    /// The inner well is narrow (radius 0.01) so that over the plotted
    /// domain `[-20, 20]` the generalized curvature actually spans
    /// (nearly) the full `[1, 1000]` range — with a wide well, the
    /// generalized curvature far from the minimum never gets close to
    /// `h_small` and the effective GCN is much smaller than 1000.
    pub fn figure3() -> Self {
        PiecewiseQuadratic {
            h_small: 1.0,
            h_large: 1000.0,
            boundary: 0.01,
        }
    }

    /// Generalized condition number with respect to the minimum.
    pub fn gcn(&self) -> f64 {
        self.h_large / self.h_small
    }
}

impl Objective1d for PiecewiseQuadratic {
    fn value(&self, x: f64) -> f64 {
        let a = x.abs();
        if a <= self.boundary {
            0.5 * self.h_large * x * x
        } else {
            // Matched so that value and derivative are continuous at the
            // boundary: slope there is h_large * boundary.
            let vb = 0.5 * self.h_large * self.boundary * self.boundary;
            let slope = self.h_large * self.boundary;
            // Quadratic with curvature h_small continuing from (b, vb).
            vb + slope * (a - self.boundary) + 0.5 * self.h_small * (a - self.boundary).powi(2)
        }
    }

    fn grad(&self, x: f64) -> f64 {
        let a = x.abs();
        let s = x.signum();
        if a <= self.boundary {
            self.h_large * x
        } else {
            s * (self.h_large * self.boundary + self.h_small * (a - self.boundary))
        }
    }

    fn minimizer(&self) -> f64 {
        0.0
    }
}

/// The noisy quadratic model of Eq. 10: `f(x) = (1/n) sum_i h/2 (x-c_i)^2`
/// with `sum_i c_i = 0`. Sampling a component index and differentiating
/// gives an unbiased gradient `h (x - c_i)` whose variance is
/// `h^2 Var(c)`.
#[derive(Debug, Clone)]
pub struct NoisyQuadratic {
    /// Common curvature.
    pub h: f64,
    centers: Vec<f64>,
    rng: Pcg32,
}

impl NoisyQuadratic {
    /// Builds the model with `n` centers of standard deviation `spread`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn new(h: f64, n: usize, spread: f64, seed: u64) -> Self {
        assert!(n >= 2, "noisy quadratic: need >= 2 components");
        let mut init = Pcg32::seed_stream(seed, 0xaaaa);
        let mut centers: Vec<f64> = (0..n).map(|_| f64::from(init.normal()) * spread).collect();
        // Enforce sum c_i = 0 exactly so the optimum is x* = 0.
        let mean: f64 = centers.iter().sum::<f64>() / n as f64;
        for c in &mut centers {
            *c -= mean;
        }
        NoisyQuadratic {
            h,
            centers,
            rng: Pcg32::seed_stream(seed, 0xbbbb),
        }
    }

    /// Full-batch gradient `h * x`.
    pub fn full_grad(&self, x: f64) -> f64 {
        self.h * x
    }

    /// A stochastic gradient from one uniformly sampled component.
    pub fn stochastic_grad(&mut self, x: f64) -> f64 {
        let i = self.rng.below(self.centers.len() as u32) as usize;
        self.h * (x - self.centers[i])
    }

    /// The gradient variance `C = E (g - E g)^2 = h^2 Var(c)`.
    pub fn gradient_variance(&self) -> f64 {
        let n = self.centers.len() as f64;
        let var_c: f64 = self.centers.iter().map(|c| c * c).sum::<f64>() / n;
        self.h * self.h * var_c
    }
}

/// A diagonal multidimensional quadratic `f(x) = 1/2 sum h_i x_i^2` with
/// optional additive Gaussian gradient noise — the multidimensional test
/// bed for the tuner.
#[derive(Debug, Clone)]
pub struct DiagonalQuadratic {
    /// Per-coordinate curvatures.
    pub curvatures: Vec<f64>,
    noise_std: f64,
    rng: Pcg32,
}

impl DiagonalQuadratic {
    /// Creates the objective.
    pub fn new(curvatures: Vec<f64>, noise_std: f64, seed: u64) -> Self {
        DiagonalQuadratic {
            curvatures,
            noise_std,
            rng: Pcg32::seed_stream(seed, 0xcccc),
        }
    }

    /// Log-spaced curvatures between `h_min` and `h_max`.
    pub fn log_spaced(dim: usize, h_min: f64, h_max: f64, noise_std: f64, seed: u64) -> Self {
        assert!(dim >= 2, "diagonal quadratic: dim >= 2");
        let curvatures = (0..dim)
            .map(|i| {
                let t = i as f64 / (dim - 1) as f64;
                (h_min.ln() + t * (h_max.ln() - h_min.ln())).exp()
            })
            .collect();
        DiagonalQuadratic::new(curvatures, noise_std, seed)
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.curvatures.len()
    }

    /// Loss at `x`.
    pub fn loss(&self, x: &[f32]) -> f64 {
        x.iter()
            .zip(&self.curvatures)
            .map(|(&x, &h)| 0.5 * h * f64::from(x) * f64::from(x))
            .sum()
    }

    /// Noisy gradient at `x`.
    pub fn grad(&mut self, x: &[f32]) -> Vec<f32> {
        x.iter()
            .zip(&self.curvatures)
            .map(|(&x, &h)| (h * f64::from(x)) as f32 + self.noise_std as f32 * self.rng.normal())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn piecewise_is_continuous_at_boundary() {
        let f = PiecewiseQuadratic::figure3();
        let b = f.boundary;
        let eps = 1e-9;
        assert!((f.value(b - eps) - f.value(b + eps)).abs() < 1e-4);
        assert!((f.grad(b - eps) - f.grad(b + eps)).abs() < 1e-4);
        // Symmetric.
        assert!((f.value(-2.0) - f.value(2.0)).abs() < 1e-12);
        assert!((f.grad(-2.0) + f.grad(2.0)).abs() < 1e-12);
    }

    #[test]
    fn piecewise_generalized_curvature_range() {
        let f = PiecewiseQuadratic::figure3();
        // Inside the well: h(x) = 1000. Far outside: approaches h_small
        // (from above) but never goes below it.
        assert!((f.generalized_curvature(f.boundary / 2.0) - 1000.0).abs() < 1e-9);
        let far = f.generalized_curvature(20.0);
        assert!(far > 1.0 && far < 2.0, "far curvature {far}");
        // GCN matches the curvature ratio.
        assert_eq!(f.gcn(), 1000.0);
    }

    #[test]
    fn gradient_descent_on_piecewise_decreases() {
        let f = PiecewiseQuadratic::figure3();
        let mut x = 15.0;
        for _ in 0..50 {
            x -= 1e-3 * f.grad(x);
        }
        assert!(x.abs() < 15.0);
        assert!(f.value(x) < f.value(15.0));
    }

    #[test]
    fn noisy_quadratic_variance_matches_formula() {
        let mut nq = NoisyQuadratic::new(2.0, 500, 1.5, 4);
        let x = 0.7;
        let analytic = nq.gradient_variance();
        let n = 200_000;
        let mut mean = 0.0f64;
        let mut m2 = 0.0f64;
        for _ in 0..n {
            let g = nq.stochastic_grad(x);
            mean += g;
            m2 += g * g;
        }
        mean /= n as f64;
        let var = m2 / n as f64 - mean * mean;
        assert!(
            (var - analytic).abs() / analytic < 0.05,
            "variance {var} vs analytic {analytic}"
        );
        // Unbiasedness.
        assert!((mean - nq.full_grad(x)).abs() < 0.05);
    }

    #[test]
    fn diagonal_quadratic_log_spacing() {
        let dq = DiagonalQuadratic::log_spaced(5, 1.0, 16.0, 0.0, 1);
        assert!((dq.curvatures[0] - 1.0).abs() < 1e-9);
        assert!((dq.curvatures[4] - 16.0).abs() < 1e-9);
        assert!((dq.curvatures[2] - 4.0).abs() < 1e-9, "geometric middle");
    }

    #[test]
    fn diagonal_quadratic_noiseless_grad() {
        let mut dq = DiagonalQuadratic::new(vec![2.0, 3.0], 0.0, 2);
        let g = dq.grad(&[1.0, -1.0]);
        assert!((g[0] - 2.0).abs() < 1e-6);
        assert!((g[1] + 3.0).abs() < 1e-6);
    }
}
