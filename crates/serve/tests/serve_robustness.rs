//! Robustness matrix for the serve subsystem: concurrency parity,
//! SIGKILL durability, protocol abuse, and backpressure shedding.
//!
//! The load-bearing contract is determinism: every hosted session is a
//! pure function of its spec and measurement stream, so each test
//! compares served [`Hyper`] streams bitwise against an in-process
//! [`Session`] replaying the same frames.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::Duration;
use yf_serve::{
    Authority, Client, FilterSpec, MeasureReply, OpenSpec, Outcome, ServeConfig, Server,
    ServerFrame, Session,
};
use yf_tensor::rng::Pcg32;

const DIM: usize = 16;
const OPTIMIZERS: [&str; 4] = ["yellowfin", "momentum", "adam", "rmsprop"];

fn spec(name: &str, optimizer: &str) -> OpenSpec {
    OpenSpec {
        session: name.to_string(),
        optimizer: optimizer.to_string(),
        value: 0.1,
        dim: DIM,
        authority: Authority::default(),
        filter: FilterSpec::default(),
    }
}

/// A deterministic per-session measurement stream, with an occasional
/// exploding gradient so the quality filter's rejections are part of
/// the replayed trajectory.
fn stream(seed: u64, frames: usize) -> Vec<(f32, Vec<f32>)> {
    let mut rng = Pcg32::seed_stream(seed, 0x5e);
    (0..frames)
        .map(|i| {
            let scale = if i % 13 == 12 { 1e7 } else { 1.0 };
            let loss = rng.uniform();
            let grads = (0..DIM).map(|_| scale * (rng.uniform() - 0.5)).collect();
            (loss, grads)
        })
        .collect()
}

/// The uninterrupted in-process reference for one session.
fn reference(open: &OpenSpec, frames: &[(f32, Vec<f32>)]) -> Vec<Outcome> {
    let mut session = Session::new(open.clone()).unwrap();
    frames
        .iter()
        .enumerate()
        .map(|(i, (loss, grads))| session.measure(i as u64, *loss, grads).unwrap())
        .collect()
}

fn reply_matches(reply: &MeasureReply, want: &Outcome, context: &str) {
    match (reply, want) {
        (
            MeasureReply::Tuned { hyper, clamped },
            Outcome::Tuned {
                hyper: w,
                clamped: wc,
            },
        ) => {
            assert_eq!(hyper.lr.to_bits(), w.lr.to_bits(), "{context}: lr");
            assert_eq!(
                hyper.momentum.to_bits(),
                w.momentum.to_bits(),
                "{context}: momentum"
            );
            assert_eq!(
                hyper.grad_scale.to_bits(),
                w.grad_scale.to_bits(),
                "{context}: grad_scale"
            );
            assert_eq!(clamped, wc, "{context}: clamped");
        }
        (MeasureReply::Rejected { reason }, Outcome::Rejected { reason: w }) => {
            assert_eq!(reason, w, "{context}: rejection reason");
        }
        (got, want) => panic!("{context}: got {got:?}, reference says {want:?}"),
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("yf-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn eight_concurrent_sessions_serve_bitwise_reference_streams() {
    // Eight clients stream interleaved frames into one server; every
    // session's served stream must match its in-process reference
    // bit-for-bit despite the shared compute permits and concurrent
    // combine calls.
    let dir = temp_dir("concurrent");
    let server = Server::start(ServeConfig {
        snapshot_dir: Some(dir.clone()),
        permits: 4,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();
    let handles: Vec<_> = (0..8)
        .map(|i| {
            std::thread::spawn(move || {
                let open = spec(&format!("c{i}"), OPTIMIZERS[i % OPTIMIZERS.len()]);
                let frames = stream(100 + i as u64, 50);
                let want = reference(&open, &frames);
                let mut client = Client::connect(addr).unwrap();
                assert_eq!(client.open(open.clone()).unwrap(), 0);
                for (step, (loss, grads)) in frames.iter().enumerate() {
                    let reply = client
                        .measure(&open.session, step as u64, *loss, grads)
                        .unwrap();
                    reply_matches(&reply, &want[step], &format!("session c{i} step {step}"));
                }
                client.close_session(&open.session).unwrap();
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

fn spawn_server_bin(dir: &std::path::Path) -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_yf-serve"))
        .env("YF_SERVE_ADDR", "127.0.0.1:0")
        .env("YF_SERVE_SNAPSHOT_DIR", dir)
        .env("YF_NUM_THREADS", "2")
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .unwrap();
    let mut line = String::new();
    BufReader::new(child.stdout.take().unwrap())
        .read_line(&mut line)
        .unwrap();
    let addr = line
        .trim()
        .rsplit(' ')
        .next()
        .expect("listen line ends with the address")
        .to_string();
    assert!(
        line.starts_with("yf-serve listening on "),
        "unexpected banner: {line:?}"
    );
    (child, addr)
}

#[test]
fn sigkilled_server_resumes_every_session_bitwise() {
    // The acceptance bar: 8 concurrent sessions, the server SIGKILL'd
    // mid-stream, restarted from its snapshot directory — and every
    // resumed session's subsequent Hyper stream is bitwise identical to
    // an uninterrupted run.
    const TOTAL: usize = 60;
    const BEFORE_KILL: usize = 25;
    let dir = temp_dir("sigkill");
    std::fs::create_dir_all(&dir).unwrap();
    let (mut child, addr) = spawn_server_bin(&dir);

    // Phase 1: stream the first chunk of every session concurrently.
    let handles: Vec<_> = (0..8)
        .map(|i| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let open = spec(&format!("k{i}"), OPTIMIZERS[i % OPTIMIZERS.len()]);
                let frames = stream(200 + i as u64, TOTAL);
                let mut client = Client::connect(addr.as_str()).unwrap();
                assert_eq!(client.open(open).unwrap(), 0);
                for (step, (loss, grads)) in frames.iter().enumerate().take(BEFORE_KILL) {
                    client
                        .measure(&format!("k{i}"), step as u64, *loss, grads)
                        .unwrap();
                }
                // No close: the connection dies with the server.
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    // SIGKILL mid-stream: no drain, no flush, nothing graceful. Every
    // acknowledged measurement was sealed before its reply, so the
    // snapshots on disk are complete up to step BEFORE_KILL.
    child.kill().unwrap();
    child.wait().unwrap();

    // Phase 2: a fresh server process over the same snapshot directory.
    let (mut child, addr) = spawn_server_bin(&dir);
    let handles: Vec<_> = (0..8)
        .map(|i| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let open = spec(&format!("k{i}"), OPTIMIZERS[i % OPTIMIZERS.len()]);
                let frames = stream(200 + i as u64, TOTAL);
                let want = reference(&open, &frames);
                let mut client = Client::connect(addr.as_str()).unwrap();
                let resume = client.open(open.clone()).unwrap();
                assert_eq!(
                    resume, BEFORE_KILL as u64,
                    "session k{i} must resume exactly where its snapshot sealed"
                );
                for (step, (loss, grads)) in frames.iter().enumerate().skip(resume as usize) {
                    let reply = client
                        .measure(&open.session, step as u64, *loss, grads)
                        .unwrap();
                    reply_matches(
                        &reply,
                        &want[step],
                        &format!("resumed session k{i} step {step}"),
                    );
                }
                client.close_session(&open.session).unwrap();
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    child.kill().unwrap();
    child.wait().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn dropped_connection_detaches_sessions_and_reconnect_resumes() {
    // A client that vanishes (no close frame) must not strand its
    // session: the server detaches it with a snapshot and a later
    // connection resumes it bit-exactly.
    let dir = temp_dir("reconnect");
    let server = Server::start(ServeConfig {
        snapshot_dir: Some(dir.clone()),
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();
    let open = spec("drop", "yellowfin");
    let frames = stream(777, 40);
    let want = reference(&open, &frames);

    let mut client = Client::connect(addr).unwrap();
    assert_eq!(client.open(open.clone()).unwrap(), 0);
    for (step, (loss, grads)) in frames.iter().enumerate().take(18) {
        client.measure("drop", step as u64, *loss, grads).unwrap();
    }
    drop(client); // hang up without closing the session

    // The server detaches on reader EOF; retry until the session is
    // re-openable (attached sessions refuse a second connection).
    let mut client = Client::connect(addr).unwrap();
    let mut resume = None;
    for _ in 0..100 {
        match client.open(open.clone()) {
            Ok(step) => {
                resume = Some(step);
                break;
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    let resume = resume.expect("session must detach after the connection drops");
    assert_eq!(resume, 18);
    for (step, (loss, grads)) in frames.iter().enumerate().skip(18) {
        let reply = client.measure("drop", step as u64, *loss, grads).unwrap();
        reply_matches(&reply, &want[step], &format!("reconnected step {step}"));
    }
    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn duplicated_measure_frames_are_answered_idempotently() {
    // A network that duplicates frames (or a client re-sending after a
    // lost reply) must not double-advance the session: the re-sent
    // previous step is answered from the cached verdict, bitwise equal
    // to the first reply, and the trajectory continues unperturbed.
    let server = Server::start(ServeConfig::default()).unwrap();
    let stream_tcp = TcpStream::connect(server.local_addr()).unwrap();
    let mut reader = BufReader::new(stream_tcp.try_clone().unwrap());
    let mut writer = stream_tcp;
    let mut send = |frame: &yf_serve::ClientFrame| {
        writeln!(writer, "{}", frame.to_line()).unwrap();
        writer.flush().unwrap();
    };
    let recv = |reader: &mut BufReader<TcpStream>| -> ServerFrame {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        ServerFrame::from_line(line.trim_end()).unwrap()
    };

    let open = spec("dup", "yellowfin");
    let frames = stream(31, 6);
    let want = reference(&open, &frames);
    send(&yf_serve::ClientFrame::Open {
        spec: open,
        wire: yf_serve::WireDialect::Json,
    });
    assert!(matches!(
        recv(&mut reader),
        ServerFrame::Opened { step: 0, .. }
    ));

    let measure = |step: usize| yf_serve::ClientFrame::Measure {
        session: "dup".to_string(),
        step: step as u64,
        loss: frames[step].0,
        grads: frames[step].1.clone(),
    };
    send(&measure(0));
    let first = recv(&mut reader);
    // The same frame again: answered from the cache, not re-processed.
    send(&measure(0));
    let replayed = recv(&mut reader);
    assert_eq!(first, replayed, "replayed verdict must be bitwise cached");
    // The replay window is one step deep (the client keeps at most one
    // frame in flight): once step 1 advances the session, a duplicate
    // of step 0 is answered with an error — but still never applied.
    send(&measure(1));
    let second = recv(&mut reader);
    send(&measure(0));
    assert!(
        matches!(recv(&mut reader), ServerFrame::Error { .. }),
        "a two-back duplicate falls outside the replay window"
    );
    match (&second, &want[1]) {
        (ServerFrame::Tuned { step, .. }, _) => assert_eq!(*step, 1),
        (ServerFrame::Rejected { step, .. }, _) => assert_eq!(*step, 1),
        (other, w) => panic!("step 1: got {other:?}, want {w:?}"),
    }
    // The rest of the stream still matches the uninterrupted reference.
    for (step, want) in want.iter().enumerate().skip(2) {
        send(&measure(step));
        match (recv(&mut reader), want) {
            (
                ServerFrame::Tuned { hyper, clamped, .. },
                Outcome::Tuned {
                    hyper: w,
                    clamped: wc,
                },
            ) => {
                assert_eq!(hyper.lr.to_bits(), w.lr.to_bits(), "step {step}");
                assert_eq!(clamped, *wc, "step {step}");
            }
            (ServerFrame::Rejected { .. }, Outcome::Rejected { .. }) => {}
            (other, w) => panic!("step {step}: got {other:?}, want {w:?}"),
        }
    }
}

#[test]
fn a_second_open_takes_the_session_over_and_fences_the_old_writer() {
    // A client behind a blackholed connection never sees EOF, so the
    // server may still consider its session attached when the client's
    // replacement connection re-opens it. The newest open wins: the old
    // connection's frames are fenced off with an error (never applied to
    // the session) and the new connection proceeds in lockstep.
    let server = Server::start(ServeConfig::default()).unwrap();
    let addr = server.local_addr();
    let open = spec("fence", "momentum");
    let frames = stream(97, 10);
    let want = reference(&open, &frames);

    let mut a = Client::connect(addr).unwrap();
    assert_eq!(a.open(open.clone()).unwrap(), 0);
    for (step, (loss, grads)) in frames.iter().enumerate().take(4) {
        a.measure("fence", step as u64, *loss, grads).unwrap();
    }

    // B takes over while A still holds its (stale) attachment.
    let mut b = Client::connect(addr).unwrap();
    assert_eq!(b.open(open.clone()).unwrap(), 4, "takeover resumes at 4");

    // A's next frame must be fenced, not double-drive the session.
    let (loss, grads) = &frames[4];
    match a.measure("fence", 4, *loss, grads) {
        Err(yf_serve::ClientError::Server(msg)) => {
            assert!(msg.contains("taken over"), "unexpected fence error: {msg}")
        }
        Ok(reply) => panic!("fenced writer must error, got {reply:?}"),
        Err(other) => panic!("expected a server error, got {other}"),
    }

    // B's stream continues bitwise on the reference trajectory.
    for (step, (loss, grads)) in frames.iter().enumerate().skip(4) {
        let reply = b.measure("fence", step as u64, *loss, grads).unwrap();
        reply_matches(&reply, &want[step], &format!("takeover step {step}"));
    }
    b.close_session("fence").unwrap();
}

#[test]
fn malformed_frames_answer_with_an_error_and_the_connection_survives() {
    let server = Server::start(ServeConfig::default()).unwrap();
    let stream = TcpStream::connect(server.local_addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;

    let mut roundtrip = |line: &str| -> ServerFrame {
        writeln!(writer, "{line}").unwrap();
        writer.flush().unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        ServerFrame::from_line(reply.trim_end()).unwrap()
    };

    for garbage in [
        "this is not json",
        "{\"type\":\"measure\"}",
        "{\"type\":\"warp\",\"session\":\"x\"}",
        "{\"type\":\"open\",\"session\":\"\",\"optimizer\":\"sgd\",\"value\":\"3dcccccd\",\"dim\":\"4\"}",
    ] {
        match roundtrip(garbage) {
            ServerFrame::Error { .. } => {}
            other => panic!("expected an error frame for {garbage:?}, got {other:?}"),
        }
    }
    // The connection is still serviceable after every rejected frame.
    match roundtrip("{\"type\":\"ping\",\"token\":41}") {
        ServerFrame::Pong { token } => assert_eq!(token, 41),
        other => panic!("expected pong, got {other:?}"),
    }
}

#[test]
fn slow_readers_are_shed_and_the_server_stays_healthy() {
    // A client that writes frames but never reads replies must be
    // disconnected once its bounded outbound queue fills — not allowed
    // to wedge a compute permit or grow an unbounded buffer.
    let server = Server::start(ServeConfig {
        outbound_queue: 2,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();

    let slow = TcpStream::connect(addr).unwrap();
    slow.set_nodelay(true).unwrap();
    let mut writer = slow.try_clone().unwrap();
    let ping = "{\"type\":\"ping\",\"token\":7}\n";
    let mut shed = false;
    for _ in 0..2_000_000 {
        if writer.write_all(ping.as_bytes()).is_err() {
            shed = true;
            break;
        }
    }
    assert!(shed, "the unread connection must eventually be shed");

    // The server survives the shedding and serves new clients.
    let mut client = Client::connect(addr).unwrap();
    client.ping(9).unwrap();
    let open = spec("after-shed", "momentum");
    assert_eq!(client.open(open).unwrap(), 0);
    let (loss, grads) = &stream(5, 1)[0];
    assert!(matches!(
        client.measure("after-shed", 0, *loss, grads).unwrap(),
        MeasureReply::Tuned { .. }
    ));
}
