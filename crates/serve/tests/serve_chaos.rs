//! Chaos matrix for the serve protocol: a [`ChaosProxy`] sits between
//! client and server and injects one reproducible fault schedule per
//! test — delays, dropped connections, blackholes, corrupted frames,
//! duplicates, and mixes — while the client reconnects and replays.
//!
//! The headline contract under test: for any fault schedule that
//! eventually lets the client reconnect, the served [`Hyper`] stream is
//! **bitwise identical** to the fault-free in-process reference. The
//! pieces that make that true (deadlines, the one-step idempotent
//! replay window, takeover fencing, stale-reply skipping) are each
//! pinned individually in `serve_robustness.rs`; here they run as a
//! system against live faults.
//!
//! The `env_selected_chaos_preserves_the_trajectory` case reads
//! `YF_CHAOS` so CI can sweep the fault matrix without recompiling; it
//! skips (passes) when the knob is unset.

use std::time::Duration;
use yf_serve::{
    Authority, ChaosProxy, ChaosSpec, Client, ClientConfig, FilterSpec, MeasureReply, OpenSpec,
    Outcome, ServeConfig, Server, Session,
};
use yf_tensor::rng::Pcg32;

const DIM: usize = 12;
const FRAMES: usize = 40;

fn spec(name: &str) -> OpenSpec {
    OpenSpec {
        session: name.to_string(),
        optimizer: "yellowfin".to_string(),
        value: 0.1,
        dim: DIM,
        authority: Authority::default(),
        filter: FilterSpec::default(),
    }
}

/// Deterministic measurement stream with occasional exploding gradients
/// so filter rejections are part of the replayed trajectory.
fn stream(seed: u64) -> Vec<(f32, Vec<f32>)> {
    let mut rng = Pcg32::seed_stream(seed, 0x5e);
    (0..FRAMES)
        .map(|i| {
            let scale = if i % 13 == 12 { 1e7 } else { 1.0 };
            let loss = rng.uniform();
            let grads = (0..DIM).map(|_| scale * (rng.uniform() - 0.5)).collect();
            (loss, grads)
        })
        .collect()
}

fn reference(open: &OpenSpec, frames: &[(f32, Vec<f32>)]) -> Vec<Outcome> {
    let mut session = Session::new(open.clone()).unwrap();
    frames
        .iter()
        .enumerate()
        .map(|(i, (loss, grads))| session.measure(i as u64, *loss, grads).unwrap())
        .collect()
}

fn assert_reply(reply: &MeasureReply, want: &Outcome, context: &str) {
    match (reply, want) {
        (
            MeasureReply::Tuned { hyper, clamped },
            Outcome::Tuned {
                hyper: w,
                clamped: wc,
            },
        ) => {
            assert_eq!(hyper.lr.to_bits(), w.lr.to_bits(), "{context}: lr");
            assert_eq!(
                hyper.momentum.to_bits(),
                w.momentum.to_bits(),
                "{context}: momentum"
            );
            assert_eq!(
                hyper.grad_scale.to_bits(),
                w.grad_scale.to_bits(),
                "{context}: grad_scale"
            );
            assert_eq!(clamped, wc, "{context}: clamped");
        }
        (MeasureReply::Rejected { reason }, Outcome::Rejected { reason: w }) => {
            assert_eq!(reason, w, "{context}: rejection reason");
        }
        (got, want) => panic!("{context}: got {got:?}, reference says {want:?}"),
    }
}

/// Client deadlines tight enough that a blackholed reply degrades into
/// a fast reconnect instead of a ten-second stall.
fn tight_deadlines() -> ClientConfig {
    ClientConfig {
        connect_timeout: Duration::from_secs(2),
        read_timeout: Duration::from_millis(400),
        write_timeout: Duration::from_secs(2),
        ..ClientConfig::from_env()
    }
}

/// Drives one full session through a chaos proxy armed with `chaos`,
/// reconnecting (through the proxy) and replaying on every transport
/// failure, and asserts the served stream is bitwise identical to the
/// fault-free reference.
fn trajectory_survives(chaos: &str, seed: u64) {
    let server = Server::start(ServeConfig::default()).unwrap();
    let mut chaos_spec = ChaosSpec::parse(chaos).unwrap();
    chaos_spec.delay = Duration::from_millis(30);
    let proxy = ChaosProxy::start(server.local_addr(), chaos_spec).unwrap();
    let cfg = tight_deadlines();

    let open = spec(&format!("chaos-{seed}"));
    let frames = stream(seed);
    let want = reference(&open, &frames);

    let mut client = Client::connect_with(proxy.local_addr(), &cfg).unwrap();
    assert_eq!(client.open(open.clone()).unwrap(), 0);
    for (step, (loss, grads)) in frames.iter().enumerate() {
        let mut budget = 50;
        let reply = loop {
            match client.measure(&open.session, step as u64, *loss, grads) {
                Ok(reply) => break reply,
                Err(e) => {
                    budget -= 1;
                    assert!(budget > 0, "step {step}: fault never cleared ({e})");
                    // Reconnect through the proxy and re-open; the
                    // server may already have applied this step (reply
                    // lost in flight), in which case the re-send below
                    // is answered from the idempotent cache.
                    std::thread::sleep(Duration::from_millis(20));
                    let Ok(mut next) = Client::connect_with(proxy.local_addr(), &cfg) else {
                        continue;
                    };
                    match next.open(open.clone()) {
                        Ok(at) => {
                            assert!(
                                at == step as u64 || at == step as u64 + 1,
                                "step {step}: server re-opened at {at}"
                            );
                            client = next;
                        }
                        Err(_) => continue,
                    }
                }
            }
        };
        assert_reply(&reply, &want[step], &format!("chaos {chaos:?} step {step}"));
    }
    client.close_session(&open.session).unwrap();
    drop(proxy);
}

#[test]
fn delays_in_both_directions_are_pure_latency() {
    trajectory_survives("delay:5,delay:12:s2c", 1001);
}

#[test]
fn a_dropped_connection_reconnects_and_replays_bitwise() {
    trajectory_survives("drop:7", 1002);
}

#[test]
fn duplicated_frames_in_both_directions_never_double_advance() {
    // c2s duplicate: the server answers the replay from its idempotent
    // cache; s2c duplicate: the client skips the stale extra reply.
    trajectory_survives("duplicate:6,duplicate:19:s2c", 1003);
}

#[test]
fn corrupted_frames_in_both_directions_are_survivable() {
    // A corrupted request draws an error frame (nothing applied); a
    // corrupted reply poisons the connection and forces a reconnect.
    trajectory_survives("corrupt:8,corrupt:21:s2c", 1004);
}

#[test]
fn a_blackholed_reply_stream_times_out_into_a_reconnect() {
    // No EOF, no error — replies just stop. The read deadline turns the
    // stall into a reconnect, and takeover fencing evicts the wedged
    // attachment server-side.
    trajectory_survives("blackhole:10:s2c", 1005);
}

#[test]
fn a_blackholed_request_stream_times_out_into_a_reconnect() {
    trajectory_survives("blackhole:9", 1006);
}

#[test]
fn mixed_chaos_still_replays_to_the_reference_bits() {
    trajectory_survives("drop:4,duplicate:11,delay:17:s2c,corrupt:26", 1007);
}

#[test]
fn env_selected_chaos_preserves_the_trajectory() {
    // CI sweeps the matrix by exporting YF_CHAOS (see the serve
    // robustness job); unset, the case is a cheap pass.
    let Some(chaos) = std::env::var("YF_CHAOS").ok().filter(|s| !s.is_empty()) else {
        return;
    };
    trajectory_survives(&chaos, 1010);
}
