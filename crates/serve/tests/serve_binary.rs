//! The binary wire fast path, end to end: negotiation, bit-exact
//! parity with the JSON dialect, delta encoding on slowly-varying
//! gradients, measurement pipelining, and typed recovery from
//! un-reconstructable delta frames.
//!
//! The acceptance pin for the fast path is the first test: a session
//! driven over the binary dialect (deltas and all) serves a Hyper
//! stream bitwise identical to the same stream served over JSON —
//! the dialect changes the bytes on the wire, never the trajectory.

use std::io::{BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;
use yf_serve::proto;
use yf_serve::{
    Authority, Client, ClientConfig, FilterSpec, MeasureReply, OpenSpec, Outcome, ServeConfig,
    Server, ServerFrame, Session, WireDialect,
};
use yf_tensor::rng::Pcg32;
use yf_wire::binary::{self, RawFrame};

const DIM: usize = 16;

fn spec(name: &str, optimizer: &str) -> OpenSpec {
    OpenSpec {
        session: name.to_string(),
        optimizer: optimizer.to_string(),
        value: 0.1,
        dim: DIM,
        authority: Authority::default(),
        filter: FilterSpec::default(),
    }
}

fn cfg(wire: WireDialect, window: usize) -> ClientConfig {
    ClientConfig {
        wire,
        window,
        ..ClientConfig::default()
    }
}

/// A deterministic measurement stream with occasional outliers so
/// filter rejections are part of the compared trajectory.
fn stream(seed: u64, frames: usize) -> Vec<(f32, Vec<f32>)> {
    let mut rng = Pcg32::seed_stream(seed, 0x5e);
    (0..frames)
        .map(|i| {
            let scale = if i % 13 == 12 { 1e7 } else { 1.0 };
            let loss = rng.uniform();
            let grads = (0..DIM).map(|_| scale * (rng.uniform() - 0.5)).collect();
            (loss, grads)
        })
        .collect()
}

/// A slowly-varying stream: each step perturbs a couple of coordinates
/// of the previous gradient, so most XORed bit patterns are zero and
/// the delta encoder wins.
fn sparse_stream(seed: u64, frames: usize) -> Vec<(f32, Vec<f32>)> {
    let mut rng = Pcg32::seed_stream(seed, 0xde);
    let mut grads: Vec<f32> = (0..DIM).map(|_| rng.uniform() - 0.5).collect();
    (0..frames)
        .map(|_| {
            for _ in 0..2 {
                let i = (rng.uniform() * DIM as f32) as usize % DIM;
                grads[i] += 0.01 * (rng.uniform() - 0.5);
            }
            (rng.uniform(), grads.clone())
        })
        .collect()
}

fn reference(open: &OpenSpec, frames: &[(f32, Vec<f32>)]) -> Vec<Outcome> {
    let mut session = Session::new(open.clone()).unwrap();
    frames
        .iter()
        .enumerate()
        .map(|(i, (loss, grads))| session.measure(i as u64, *loss, grads).unwrap())
        .collect()
}

fn reply_matches(reply: &MeasureReply, want: &Outcome, context: &str) {
    match (reply, want) {
        (
            MeasureReply::Tuned { hyper, clamped },
            Outcome::Tuned {
                hyper: w,
                clamped: wc,
            },
        ) => {
            assert_eq!(hyper.lr.to_bits(), w.lr.to_bits(), "{context}: lr");
            assert_eq!(
                hyper.momentum.to_bits(),
                w.momentum.to_bits(),
                "{context}: momentum"
            );
            assert_eq!(
                hyper.grad_scale.to_bits(),
                w.grad_scale.to_bits(),
                "{context}: grad_scale"
            );
            assert_eq!(clamped, wc, "{context}: clamped");
        }
        (MeasureReply::Rejected { reason }, Outcome::Rejected { reason: w }) => {
            assert_eq!(reason, w, "{context}: rejection reason");
        }
        (got, want) => panic!("{context}: got {got:?}, reference says {want:?}"),
    }
}

#[test]
fn binary_dialect_serves_a_bitwise_identical_hyper_stream() {
    // The acceptance pin: the same measurement stream through a JSON
    // connection, a binary connection, and the in-process reference
    // yields three bitwise-identical verdict streams.
    let server = Server::start(ServeConfig {
        snapshot_dir: None,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();
    for optimizer in ["yellowfin", "adam"] {
        let frames = stream(91, 40);
        let json_spec = spec(&format!("parity-json-{optimizer}"), optimizer);
        let bin_spec = spec(&format!("parity-bin-{optimizer}"), optimizer);
        let want = reference(&json_spec, &frames);

        let mut json_client = Client::connect_with(addr, &cfg(WireDialect::Json, 1)).unwrap();
        let mut bin_client = Client::connect_with(addr, &cfg(WireDialect::Binary, 1)).unwrap();
        assert_eq!(json_client.open(json_spec.clone()).unwrap(), 0);
        assert_eq!(bin_client.open(bin_spec.clone()).unwrap(), 0);
        assert_eq!(json_client.wire(), WireDialect::Json);
        assert_eq!(
            bin_client.wire(),
            WireDialect::Binary,
            "server must accept the requested fast path"
        );

        for (i, (loss, grads)) in frames.iter().enumerate() {
            let step = i as u64;
            let context = format!("{optimizer} step {step}");
            let via_json = json_client
                .measure(&json_spec.session, step, *loss, grads)
                .unwrap();
            let via_bin = bin_client
                .measure(&bin_spec.session, step, *loss, grads)
                .unwrap();
            reply_matches(&via_json, &want[i], &format!("{context} (json)"));
            reply_matches(&via_bin, &want[i], &format!("{context} (binary)"));
        }
    }
}

#[test]
fn slowly_varying_gradients_ride_the_delta_path_bit_exactly() {
    let server = Server::start(ServeConfig {
        snapshot_dir: None,
        ..ServeConfig::default()
    })
    .unwrap();
    let open = spec("delta-parity", "yellowfin");
    let frames = sparse_stream(7, 50);
    let want = reference(&open, &frames);
    let mut client =
        Client::connect_with(server.local_addr(), &cfg(WireDialect::Binary, 1)).unwrap();
    client.open(open.clone()).unwrap();
    for (i, (loss, grads)) in frames.iter().enumerate() {
        let reply = client
            .measure(&open.session, i as u64, *loss, grads)
            .unwrap();
        reply_matches(&reply, &want[i], &format!("step {i}"));
    }
    assert!(
        client.deltas_sent() > 30,
        "a slowly-varying stream should mostly ship deltas, sent {}",
        client.deltas_sent()
    );
}

#[test]
fn windowed_pipelining_matches_the_lock_step_stream() {
    // A client running 8 submissions ahead must collect exactly the
    // verdicts its lock-step twin sees, in step order.
    let server = Server::start(ServeConfig {
        snapshot_dir: None,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();
    let frames = stream(23, 60);
    let lock_spec = spec("pipeline-lock", "yellowfin");
    let pipe_spec = spec("pipeline-wide", "yellowfin");
    let want = reference(&lock_spec, &frames);

    let mut lock = Client::connect_with(addr, &cfg(WireDialect::Binary, 1)).unwrap();
    let mut pipe = Client::connect_with(addr, &cfg(WireDialect::Binary, 8)).unwrap();
    lock.open(lock_spec.clone()).unwrap();
    pipe.open(pipe_spec.clone()).unwrap();

    let mut piped: Vec<(u64, MeasureReply)> = Vec::new();
    for (i, (loss, grads)) in frames.iter().enumerate() {
        let step = i as u64;
        let reply = lock
            .measure(&lock_spec.session, step, *loss, grads)
            .unwrap();
        reply_matches(&reply, &want[i], &format!("lock-step {i}"));
        piped.extend(
            pipe.submit_measure(&pipe_spec.session, step, *loss, grads)
                .unwrap(),
        );
        assert!(pipe.in_flight() <= 8, "window must bound send-ahead");
    }
    piped.extend(pipe.drain_verdicts().unwrap());
    assert_eq!(pipe.in_flight(), 0);

    assert_eq!(piped.len(), frames.len(), "every submission answered");
    for (i, (step, reply)) in piped.iter().enumerate() {
        assert_eq!(*step, i as u64, "verdicts arrive in step order");
        reply_matches(reply, &want[i], &format!("piped step {i}"));
    }
}

#[test]
fn bogus_delta_frames_get_typed_errors_and_full_frames_recover() {
    // Raw-socket poke at the server's delta reconstruction: a delta
    // frame with no base on the server must come back as a survivable
    // error frame, after which a full measure frame heals the stream.
    let server = Server::start(ServeConfig {
        snapshot_dir: None,
        ..ServeConfig::default()
    })
    .unwrap();
    let open = spec("delta-abuse", "yellowfin");
    let want = reference(&open, &stream(5, 2));

    let stream_tcp = TcpStream::connect(server.local_addr()).unwrap();
    stream_tcp
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut reader = BufReader::new(stream_tcp.try_clone().unwrap());
    let mut writer = stream_tcp;
    let mut recv = || -> ServerFrame {
        match binary::read_frame(&mut reader).unwrap().unwrap() {
            RawFrame::Line(line) => ServerFrame::from_line(&line).unwrap(),
            RawFrame::Binary(raw) => {
                let (tag, payload) = binary::decode(&raw).unwrap();
                ServerFrame::from_binary(tag, payload).unwrap()
            }
        }
    };

    writeln!(
        writer,
        "{}",
        yf_serve::ClientFrame::Open {
            spec: open.clone(),
            wire: WireDialect::Binary,
        }
        .to_line()
    )
    .unwrap();
    assert!(matches!(
        recv(),
        ServerFrame::Opened {
            step: 0,
            wire: WireDialect::Binary,
            ..
        }
    ));

    // Step 0 as a delta: the server has no base yet.
    let zeros = vec![0.0f32; DIM];
    let runs = binary::delta_encode(&zeros, &zeros);
    writer
        .write_all(&proto::encode_grad_delta(&open.session, 0, 0.5, DIM, &runs))
        .unwrap();
    match recv() {
        ServerFrame::Error { message, .. } => {
            assert!(
                message.contains("full measure frame"),
                "error should steer the client to the fallback, got {message:?}"
            );
        }
        other => panic!("expected a survivable error frame, got {other:?}"),
    }

    // The connection survives; full frames serve the reference stream.
    let frames = stream(5, 2);
    for (i, (loss, grads)) in frames.iter().enumerate() {
        writer
            .write_all(&proto::encode_measure(
                &open.session,
                i as u64,
                *loss,
                grads,
            ))
            .unwrap();
        match recv() {
            ServerFrame::Tuned { hyper, clamped, .. } => reply_matches(
                &MeasureReply::Tuned { hyper, clamped },
                &want[i],
                &format!("recovery step {i}"),
            ),
            ServerFrame::Rejected { reason, .. } => reply_matches(
                &MeasureReply::Rejected { reason },
                &want[i],
                &format!("recovery step {i}"),
            ),
            other => panic!("recovery step {i}: unexpected {other:?}"),
        }
    }

    // A malformed delta (wrong base step) after a good frame is also
    // survivable: the base is at step 1, so a delta claiming step 5
    // cannot reconstruct.
    let runs = binary::delta_encode(&frames[1].1, &frames[1].1);
    writer
        .write_all(&proto::encode_grad_delta(&open.session, 5, 0.5, DIM, &runs))
        .unwrap();
    match recv() {
        ServerFrame::Error { message, .. } => {
            assert!(message.contains("full measure frame"), "got {message:?}");
        }
        other => panic!("expected error for wrong-base delta, got {other:?}"),
    }
}
