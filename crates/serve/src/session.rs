//! One hosted tuning session: optimizer, quality filter, authority
//! state, and the deterministic measure → tune → clamp pipeline.
//!
//! A session is a pure function of its spec and the measurement stream
//! it has processed: every frame advances the step counter exactly once
//! (accepted *or* rejected — rejections update the filter envelope, so
//! they are part of the trajectory), and each accepted frame runs the
//! same sharded observe/combine pipeline an in-process trainer would.
//! That determinism is the whole restart story — resume from a
//! snapshot, replay the measurement stream from the snapshot's step,
//! and the served [`Hyper`] stream is bitwise identical to an
//! uninterrupted run.

use crate::filter::QualityFilter;
use crate::proto::OpenSpec;
use crate::registry::build_optimizer;
use crate::snapshot::SessionSnapshot;
use yf_optim::sharded::observe_sharded;
use yf_optim::{Hyper, Optimizer};
use yf_tensor::reduce;

/// The server's verdict on one measurement.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// Accepted: the authority-clamped hyperparameters for this step.
    Tuned { hyper: Hyper, clamped: bool },
    /// Rejected by the quality filter; the step still advanced.
    Rejected { reason: String },
}

/// One live tuning session.
pub struct Session {
    spec: OpenSpec,
    opt: Box<dyn Optimizer>,
    filter: QualityFilter,
    step: u64,
    last: Option<Hyper>,
    /// The verdict on the most recent processed measurement, kept for
    /// idempotent replay: a client that lost the reply (reconnect,
    /// duplicated frame) re-sends step `step - 1` and gets this back
    /// without the session advancing — the key invariant that a retry
    /// can never double-advance a trajectory.
    last_outcome: Option<Outcome>,
    /// The measure phase needs a params buffer only for its length (the
    /// registry optimizers tune from gradient statistics alone), so
    /// every session reuses one zeros vector.
    zeros: Vec<f32>,
}

impl Session {
    /// A fresh session from a validated spec.
    ///
    /// # Errors
    ///
    /// A human-readable reason (bad spec or unknown optimizer), relayed
    /// to the client as an `error` frame.
    pub fn new(spec: OpenSpec) -> Result<Session, String> {
        spec.validate()?;
        let opt = build_optimizer(&spec.optimizer, spec.value)
            .ok_or_else(|| format!("unknown optimizer {:?}", spec.optimizer))?;
        let filter = QualityFilter::new(spec.filter);
        let zeros = vec![0.0; spec.dim];
        Ok(Session {
            spec,
            opt,
            filter,
            step: 0,
            last: None,
            last_outcome: None,
            zeros,
        })
    }

    /// The spec this session was opened with.
    pub fn spec(&self) -> &OpenSpec {
        &self.spec
    }

    /// The next measurement index this session expects.
    pub fn step(&self) -> u64 {
        self.step
    }

    /// Processes one measurement: screens it, feeds accepted gradients
    /// through the sharded observe/combine pipeline, clamps the tuned
    /// proposal through the authority limits, and advances the step.
    ///
    /// Re-sending the immediately previous step (`self.step() - 1`) is
    /// idempotent: the cached verdict is returned and the session does
    /// not advance. That is exactly the frame a reconnecting client
    /// replays when the server processed its measurement but the reply
    /// was lost.
    ///
    /// # Errors
    ///
    /// Protocol errors (step or dimension mismatch) that leave the
    /// session untouched — the client must resend the right frame.
    pub fn measure(&mut self, step: u64, loss: f32, grads: &[f32]) -> Result<Outcome, String> {
        if self.step > 0 && step == self.step - 1 {
            if let Some(outcome) = &self.last_outcome {
                return Ok(outcome.clone());
            }
            return Err(format!(
                "step {step} was already processed and its verdict is gone (pre-upgrade snapshot)"
            ));
        }
        if step != self.step {
            return Err(format!("expected step {}, got {step}", self.step));
        }
        if grads.len() != self.spec.dim {
            return Err(format!(
                "expected {} gradient elements, got {}",
                self.spec.dim,
                grads.len()
            ));
        }
        // The same blocked reduction the tuner uses internally, so the
        // filter judges exactly the h = ||g||^2 the tuner would see.
        let h = reduce::tree_reduce(&reduce::block_sumsq(grads));
        let outcome = match self.filter.admit(f64::from(loss), h) {
            Err(reason) => Outcome::Rejected {
                reason: reason.to_string(),
            },
            Ok(()) => {
                let tuned = observe_sharded(self.opt.as_mut(), &self.zeros, grads, 1);
                let (hyper, clamped) = self.spec.authority.clamp(self.last, tuned);
                self.last = Some(hyper);
                Outcome::Tuned { hyper, clamped }
            }
        };
        self.step += 1;
        self.last_outcome = Some(outcome.clone());
        Ok(outcome)
    }

    /// Captures the session's complete resumable state.
    pub fn snapshot(&self) -> SessionSnapshot {
        SessionSnapshot {
            spec: self.spec.clone(),
            step: self.step,
            last: self.last,
            last_outcome: self.last_outcome.clone(),
            gate_state: self.filter.save_state(),
            opt_state: self.opt.checkpoint_state(),
        }
    }

    /// Rebuilds a session from a snapshot; the continuation is bitwise
    /// identical to the session that wrote it.
    ///
    /// # Errors
    ///
    /// A human-readable reason when the snapshot is internally
    /// inconsistent (its spec no longer validates, or a state block
    /// fails to restore).
    pub fn restore(snap: SessionSnapshot) -> Result<Session, String> {
        let mut session = Session::new(snap.spec)?;
        session.filter = QualityFilter::restore_state(&snap.gate_state)?;
        if let Some(text) = &snap.opt_state {
            session
                .opt
                .restore_checkpoint(text)
                .map_err(|e| e.to_string())?;
        }
        session.step = snap.step;
        session.last = snap.last;
        session.last_outcome = snap.last_outcome;
        Ok(session)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::authority::Authority;
    use crate::filter::FilterSpec;
    use yf_tensor::rng::Pcg32;

    fn spec(optimizer: &str) -> OpenSpec {
        OpenSpec {
            session: "t".to_string(),
            optimizer: optimizer.to_string(),
            value: 0.1,
            dim: 8,
            authority: Authority::default(),
            filter: FilterSpec::default(),
        }
    }

    fn grad(rng: &mut Pcg32, dim: usize, scale: f32) -> Vec<f32> {
        (0..dim).map(|_| scale * (rng.uniform() - 0.5)).collect()
    }

    #[test]
    fn serves_the_same_hypers_as_an_in_process_tuner() {
        // A session with a wide-open authority envelope must relay the
        // raw observe_sharded stream bit-for-bit.
        let mut wide = spec("yellowfin");
        wide.value = 1.0;
        wide.authority.max_lr_step = 1e6;
        wide.authority.max_momentum_step = 1.0;
        wide.authority.lr_max = 1e6;
        let mut session = Session::new(wide.clone()).unwrap();
        let mut reference = build_optimizer("yellowfin", 1.0).unwrap();
        let zeros = vec![0.0f32; wide.dim];
        let mut rng = Pcg32::seed(7);
        for step in 0..40 {
            let g = grad(&mut rng, wide.dim, 1.0);
            let want = observe_sharded(reference.as_mut(), &zeros, &g, 1);
            match session.measure(step, 0.5, &g).unwrap() {
                Outcome::Tuned { hyper, .. } => {
                    assert_eq!(hyper.lr.to_bits(), want.lr.to_bits(), "step {step}");
                    assert_eq!(hyper.momentum.to_bits(), want.momentum.to_bits());
                }
                Outcome::Rejected { reason } => panic!("step {step} rejected: {reason}"),
            }
        }
    }

    #[test]
    fn step_and_dimension_mismatches_leave_the_session_untouched() {
        let mut s = Session::new(spec("momentum")).unwrap();
        assert!(s.measure(3, 0.5, &[0.1; 8]).is_err());
        assert!(s.measure(0, 0.5, &[0.1; 4]).is_err());
        assert_eq!(s.step(), 0, "failed frames must not advance the step");
        assert!(s.measure(0, 0.5, &[0.1; 8]).is_ok());
        assert_eq!(s.step(), 1);
    }

    #[test]
    fn replaying_the_previous_step_returns_the_cached_verdict_without_advancing() {
        let mut s = Session::new(spec("yellowfin")).unwrap();
        let mut rng = Pcg32::seed(5);
        let g0 = grad(&mut rng, 8, 1.0);
        let first = s.measure(0, 0.5, &g0).unwrap();
        assert_eq!(s.step(), 1);
        // A duplicated or replayed frame for step 0: same verdict, no
        // advance — even with different (late, mangled) payload bytes.
        let replay = s.measure(0, 9.9, &[0.0; 8]).unwrap();
        assert_eq!(replay, first);
        assert_eq!(s.step(), 1, "replay must not advance the session");
        // The trajectory continues exactly as if no replay happened,
        // and the replay cache survives a snapshot/restore cycle.
        let g1 = grad(&mut rng, 8, 1.0);
        let second = s.measure(1, 0.5, &g1).unwrap();
        let mut restored = Session::restore(s.snapshot()).unwrap();
        assert_eq!(restored.measure(1, 0.5, &g1).unwrap(), second);
        assert_eq!(restored.step(), 2);
        // Steps further back than the cache are still errors.
        assert!(restored.measure(0, 0.5, &g0).is_err());
    }

    #[test]
    fn rejected_measurements_advance_the_step() {
        let mut s = Session::new(spec("yellowfin")).unwrap();
        assert!(matches!(
            s.measure(0, f32::NAN, &[0.1; 8]).unwrap(),
            Outcome::Rejected { .. }
        ));
        assert_eq!(s.step(), 1);
        assert!(matches!(
            s.measure(1, 0.5, &[0.1; 8]).unwrap(),
            Outcome::Tuned { .. }
        ));
    }

    #[test]
    fn snapshot_resume_is_bitwise_identical() {
        for optimizer in ["yellowfin", "momentum", "adam"] {
            let mut a = Session::new(spec(optimizer)).unwrap();
            let mut rng = Pcg32::seed(11);
            let stream: Vec<Vec<f32>> = (0..60)
                .map(|i| grad(&mut rng, 8, if i % 13 == 12 { 1e6 } else { 1.0 }))
                .collect();
            for (i, g) in stream.iter().enumerate().take(25) {
                a.measure(i as u64, 0.5, g).unwrap();
            }
            let mut b = Session::restore(a.snapshot()).unwrap();
            assert_eq!(b.step(), 25);
            for (i, g) in stream.iter().enumerate().skip(25) {
                let x = a.measure(i as u64, 0.5, g).unwrap();
                let y = b.measure(i as u64, 0.5, g).unwrap();
                match (&x, &y) {
                    (Outcome::Tuned { hyper: hx, .. }, Outcome::Tuned { hyper: hy, .. }) => {
                        assert_eq!(hx.lr.to_bits(), hy.lr.to_bits(), "{optimizer} step {i}");
                        assert_eq!(hx.momentum.to_bits(), hy.momentum.to_bits());
                        assert_eq!(hx.grad_scale.to_bits(), hy.grad_scale.to_bits());
                    }
                    _ => assert_eq!(x, y, "{optimizer} step {i}"),
                }
            }
        }
    }

    #[test]
    fn authority_keeps_the_served_stream_inside_the_envelope() {
        let mut s = Session::new(spec("yellowfin")).unwrap();
        let a = Authority::default();
        let mut rng = Pcg32::seed(3);
        let mut prev: Option<Hyper> = None;
        for step in 0..50 {
            let g = grad(&mut rng, 8, 1.0);
            if let Outcome::Tuned { hyper, .. } = s.measure(step, 0.5, &g).unwrap() {
                assert!(hyper.lr >= a.lr_min && hyper.lr <= a.lr_max);
                assert!(hyper.momentum >= a.momentum_min && hyper.momentum <= a.momentum_max);
                if let Some(p) = prev {
                    assert!(hyper.lr <= p.lr * (1.0 + a.max_lr_step) * (1.0 + 1e-6));
                    assert!(hyper.momentum <= p.momentum + a.max_momentum_step + 1e-6);
                }
                prev = Some(hyper);
            }
        }
        assert!(prev.is_some(), "at least one measurement must be accepted");
    }
}
