//! The server-side optimizer registry.
//!
//! Sessions name their optimizer on the wire; this resolves the name to
//! a boxed instance. The name set and the meaning of the grid value
//! mirror the fleet registry (`yf-experiments`) — the serve crate sits
//! *below* the experiments crate in the dependency graph, so the tuner
//! constructors are repeated here rather than imported — and a test in
//! the experiments crate pins the two registries to the same name set.

use yellowfin::{YellowFin, YellowFinConfig};
use yf_optim::{AdaGrad, Adam, MomentumSgd, Optimizer, RmsProp, Sgd};

/// The names [`build_optimizer`] resolves, in registry order.
pub const OPTIMIZER_NAMES: [&str; 7] = [
    "sgd",
    "momentum",
    "nesterov",
    "adam",
    "adagrad",
    "rmsprop",
    "yellowfin",
];

/// Builds a session optimizer from its wire name and grid value (the
/// learning rate, or the Appendix J.4 lr factor for `"yellowfin"`).
/// `None` for unknown names.
pub fn build_optimizer(name: &str, value: f32) -> Option<Box<dyn Optimizer>> {
    Some(match name {
        "sgd" => Box::new(Sgd::new(value)),
        "momentum" => Box::new(MomentumSgd::new(value, 0.9)),
        "nesterov" => Box::new(MomentumSgd::nesterov(value, 0.9)),
        "adam" => Box::new(Adam::new(value)),
        "adagrad" => Box::new(AdaGrad::new(value)),
        "rmsprop" => Box::new(RmsProp::new(value)),
        "yellowfin" => Box::new(YellowFin::new(YellowFinConfig {
            lr_factor: f64::from(value),
            ..YellowFinConfig::default()
        })),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_name_resolves() {
        for name in OPTIMIZER_NAMES {
            assert!(build_optimizer(name, 0.1).is_some(), "{name}");
        }
        assert!(build_optimizer("nope", 0.1).is_none());
    }

    #[test]
    fn yellowfin_is_self_tuning_and_checkpointable() {
        let opt = build_optimizer("yellowfin", 1.0).unwrap();
        assert!(opt.is_self_tuning());
        assert!(opt.checkpoint_state().is_some());
    }
}
