//! Deterministic network-fault injection: a chaos TCP proxy.
//!
//! [`ChaosProxy`] sits between a line-protocol client and its upstream
//! server (the serve protocol or the fleet TCP transport — anything
//! newline-framed) and injects faults from a [`ChaosSpec`] at exact
//! frame indices, the same philosophy as the fleet's `YF_FAULT` process
//! faults: every failure lands at a reproducible point in the stream,
//! so a test that survives it once survives it every run.
//!
//! The spec grammar mirrors `YF_FAULT`:
//!
//! ```text
//! YF_CHAOS=kind:frame[:dir[:conn]][,kind:frame[:dir[:conn]]...]
//! ```
//!
//! where `kind` is one of `delay` (hold the frame `delay_ms`, then
//! forward), `drop` (sever both sides of the connection), `blackhole`
//! (swallow this and every later frame in that direction while holding
//! the connection open — the partition case, no EOF to help the peer),
//! `corrupt` (forward the frame with deterministic damage), or
//! `duplicate` (forward the frame twice); `frame` is the zero-based
//! index in that direction's frame stream; `dir` is `c2s` (default) or
//! `s2c`. Every fault fires exactly once.
//!
//! A "frame" is one unit of the mixed wire dialect — a text line *or*
//! a complete [`yf_wire::binary`] frame — so chaos schedules hit the
//! binary fast path at the same indices they hit the JSON path.
//!
//! Without `conn`, frame indices count per direction across *all*
//! proxied connections (a client that reconnects keeps advancing the
//! same counters), which keeps schedules deterministic for
//! single-client traffic. With `conn` — a zero-based index in
//! accept order — the fault targets frame `frame` *of that specific
//! connection*, counted from its own first frame, which makes
//! multi-connection fleet/serve schedules precisely targetable.

use std::io::{self, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;
use yf_tensor::env;
use yf_wire::binary::{self, RawFrame};

/// What to do to the selected frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosKind {
    /// Hold the frame for the spec's delay, then forward it intact.
    Delay,
    /// Sever the connection (both directions) at this frame.
    Drop,
    /// Swallow this frame and every later one in this direction, while
    /// keeping the connection open: a silent partition, no EOF.
    Blackhole,
    /// Forward the frame with deterministic damage (truncated and
    /// garbage-terminated), exercising the peer's decoder error path.
    Corrupt,
    /// Forward the frame twice.
    Duplicate,
}

/// Which direction of the proxied stream a fault applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosDir {
    /// Client → server frames.
    C2s,
    /// Server → client frames.
    S2c,
}

/// One scheduled fault: a kind, a frame index, a direction, and
/// optionally a specific connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosFault {
    /// What happens.
    pub kind: ChaosKind,
    /// Zero-based frame index in `dir`'s stream at which it happens —
    /// counted globally across connections when `conn` is `None`, or
    /// from the targeted connection's own first frame otherwise.
    pub frame: u64,
    /// The stream it happens to.
    pub dir: ChaosDir,
    /// Targeted connection, as a zero-based index in the proxy's accept
    /// order; `None` keeps the original global counting.
    pub conn: Option<u64>,
}

/// A full chaos schedule: the faults plus the delay used by
/// [`ChaosKind::Delay`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosSpec {
    /// The scheduled faults; each fires exactly once.
    pub faults: Vec<ChaosFault>,
    /// How long a `delay` fault holds its frame.
    pub delay: Duration,
}

impl ChaosSpec {
    /// Parses the `kind:frame[:dir[:conn]]` comma list.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first malformed entry.
    pub fn parse(text: &str) -> Result<ChaosSpec, String> {
        let mut faults = Vec::new();
        for part in text.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let mut fields = part.split(':');
            let kind = match fields.next().unwrap_or("") {
                "delay" => ChaosKind::Delay,
                "drop" => ChaosKind::Drop,
                "blackhole" => ChaosKind::Blackhole,
                "corrupt" => ChaosKind::Corrupt,
                "duplicate" => ChaosKind::Duplicate,
                other => return Err(format!("unknown chaos kind {other:?} in {part:?}")),
            };
            let frame = fields
                .next()
                .ok_or_else(|| format!("chaos fault {part:?} is missing its frame index"))?
                .parse::<u64>()
                .map_err(|_| format!("bad frame index in chaos fault {part:?}"))?;
            let dir = match fields.next() {
                None => ChaosDir::C2s,
                Some("c2s") => ChaosDir::C2s,
                Some("s2c") => ChaosDir::S2c,
                Some(other) => return Err(format!("bad chaos direction {other:?} in {part:?}")),
            };
            let conn = match fields.next() {
                None => None,
                Some(raw) => Some(
                    raw.parse::<u64>()
                        .map_err(|_| format!("bad connection index in chaos fault {part:?}"))?,
                ),
            };
            if fields.next().is_some() {
                return Err(format!("trailing fields in chaos fault {part:?}"));
            }
            faults.push(ChaosFault {
                kind,
                frame,
                dir,
                conn,
            });
        }
        if faults.is_empty() {
            return Err("empty chaos spec".to_string());
        }
        Ok(ChaosSpec {
            faults,
            delay: Duration::from_millis(50),
        })
    }

    /// Reads `YF_CHAOS` (and `YF_CHAOS_DELAY_MS` for the delay-fault
    /// hold time) with the workspace's hardened warn-and-default
    /// parsing: unset means no chaos, malformed warns and means no
    /// chaos.
    pub fn from_env() -> Option<ChaosSpec> {
        let mut spec = env::parse_with("YF_CHAOS", |raw| ChaosSpec::parse(raw).ok())?;
        if let Some(ms) = env::parse_with("YF_CHAOS_DELAY_MS", |raw| raw.trim().parse::<u64>().ok())
        {
            spec.delay = Duration::from_millis(ms);
        }
        Some(spec)
    }
}

/// Counters and one-shot flags shared by every pump thread.
struct ProxyState {
    spec: ChaosSpec,
    /// One "already fired" flag per fault.
    fired: Vec<AtomicBool>,
    /// Frames seen so far, per direction, across all connections.
    c2s_frames: AtomicU64,
    s2c_frames: AtomicU64,
    /// Accept-order connection ids, handed to each pump pair.
    next_conn: AtomicU64,
}

impl ProxyState {
    /// Claims the fault (if any) scheduled at this frame of `dir`:
    /// `global` is the direction's cross-connection frame index,
    /// `local` the index within connection `conn`. One-shot: the first
    /// pump to claim a fault owns it.
    fn claim(&self, dir: ChaosDir, global: u64, conn: u64, local: u64) -> Option<ChaosKind> {
        for (i, f) in self.spec.faults.iter().enumerate() {
            if f.dir != dir {
                continue;
            }
            let hit = match f.conn {
                None => f.frame == global,
                Some(c) => c == conn && f.frame == local,
            };
            if hit && !self.fired[i].swap(true, Ordering::SeqCst) {
                return Some(f.kind);
            }
        }
        None
    }
}

/// The running man-in-the-middle. Listens on an ephemeral loopback
/// port; every accepted connection is paired with a fresh upstream
/// connection and pumped line-by-line in both directions through the
/// fault schedule. Dropping the proxy stops the accept loop; live
/// pumped connections die with their sockets.
pub struct ChaosProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Starts the proxy in front of `upstream`.
    ///
    /// # Errors
    ///
    /// Propagates listener bind failures.
    pub fn start(upstream: SocketAddr, spec: ChaosSpec) -> io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let fired = spec.faults.iter().map(|_| AtomicBool::new(false)).collect();
        let state = Arc::new(ProxyState {
            spec,
            fired,
            c2s_frames: AtomicU64::new(0),
            s2c_frames: AtomicU64::new(0),
            next_conn: AtomicU64::new(0),
        });
        let accept = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("yf-chaos-accept".to_string())
                .spawn(move || accept_loop(&listener, upstream, &state, &stop))
                .expect("chaos: spawning accept thread")
        };
        Ok(ChaosProxy {
            addr,
            stop,
            accept: Some(accept),
        })
    }

    /// The address clients should dial instead of the upstream's.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept so it observes the stop flag; the
        // wake connection is dropped unproxied.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    upstream: SocketAddr,
    state: &Arc<ProxyState>,
    stop: &Arc<AtomicBool>,
) {
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        // Blocking accept (no poll latency); the proxy's Drop wakes it
        // with a throwaway connection, caught by the flag re-check.
        match listener.accept() {
            Ok((client, _)) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                let _ = client.set_nodelay(true);
                // A fresh upstream connection per proxied client, so
                // drop faults sever exactly one logical connection.
                let Ok(server) = TcpStream::connect(upstream) else {
                    let _ = client.shutdown(Shutdown::Both);
                    continue;
                };
                let _ = server.set_nodelay(true);
                let (Ok(client2), Ok(server2)) = (client.try_clone(), server.try_clone()) else {
                    continue;
                };
                let conn = state.next_conn.fetch_add(1, Ordering::SeqCst);
                let st = Arc::clone(state);
                let _ = std::thread::Builder::new()
                    .name("yf-chaos-c2s".to_string())
                    .spawn(move || pump(client, server, ChaosDir::C2s, conn, &st));
                let st = Arc::clone(state);
                let _ = std::thread::Builder::new()
                    .name("yf-chaos-s2c".to_string())
                    .spawn(move || pump(server2, client2, ChaosDir::S2c, conn, &st));
            }
            Err(_) => return,
        }
    }
}

/// Deterministic frame damage for [`ChaosKind::Corrupt`], dialect
/// aware. A text line is cut in half and terminated with bytes no
/// frame codec accepts. A binary frame keeps its header intact — so
/// the peer's length-prefixed reader stays in sync — and gets one
/// payload byte flipped (the checksum byte, for an empty payload): the
/// decoder reports a typed checksum failure and the stream survives.
fn corrupt(frame: &[u8]) -> Vec<u8> {
    if frame.first() == Some(&binary::MAGIC[0]) {
        let mut out = frame.to_vec();
        let i = if out.len() > binary::HEADER_LEN + binary::TRAILER_LEN {
            let payload = out.len() - binary::HEADER_LEN - binary::TRAILER_LEN;
            binary::HEADER_LEN + payload / 2
        } else {
            out.len() - 1
        };
        out[i] ^= 0xA5;
        return out;
    }
    let body = String::from_utf8_lossy(frame);
    let body = body.trim_end_matches(['\n', '\r']);
    let keep = body
        .char_indices()
        .nth(body.chars().count() / 2)
        .map_or(0, |(i, _)| i);
    format!("{}#chaos-corrupt#\n", &body[..keep]).into_bytes()
}

/// Pumps mixed-dialect traffic (text lines and binary frames) from
/// `from` to `to`, applying the fault schedule for `dir`. Exits
/// (shutting both sockets down) on EOF, unframable traffic, or error
/// from either side.
fn pump(from: TcpStream, mut to: TcpStream, dir: ChaosDir, conn: u64, state: &Arc<ProxyState>) {
    let counter = match dir {
        ChaosDir::C2s => &state.c2s_frames,
        ChaosDir::S2c => &state.s2c_frames,
    };
    let mut reader = BufReader::new(match from.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut stalled = false;
    let mut local = 0u64;
    loop {
        let bytes: Vec<u8> = match binary::read_frame(&mut reader) {
            Ok(None) | Err(_) => break,
            Ok(Some(RawFrame::Binary(raw))) => raw,
            Ok(Some(RawFrame::Line(line))) => {
                let mut b = line.into_bytes();
                b.push(b'\n');
                b
            }
        };
        let n = counter.fetch_add(1, Ordering::SeqCst);
        let ln = local;
        local += 1;
        if stalled {
            // Blackholed: swallow silently, keep the socket open.
            continue;
        }
        let forwarded = match state.claim(dir, n, conn, ln) {
            None => to.write_all(&bytes),
            Some(ChaosKind::Delay) => {
                std::thread::sleep(state.spec.delay);
                to.write_all(&bytes)
            }
            Some(ChaosKind::Drop) => {
                let _ = from.shutdown(Shutdown::Both);
                let _ = to.shutdown(Shutdown::Both);
                return;
            }
            Some(ChaosKind::Blackhole) => {
                stalled = true;
                continue;
            }
            Some(ChaosKind::Corrupt) => to.write_all(&corrupt(&bytes)),
            Some(ChaosKind::Duplicate) => to.write_all(&bytes).and_then(|()| to.write_all(&bytes)),
        };
        if forwarded.is_err() {
            break;
        }
    }
    let _ = from.shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader, Write};

    fn spec(text: &str) -> ChaosSpec {
        ChaosSpec::parse(text).unwrap()
    }

    /// A trivial upstream echo server: one line in, the same line out.
    fn echo_server() -> (SocketAddr, JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            while let Ok((stream, _)) = listener.accept() {
                std::thread::spawn(move || {
                    let mut reader = BufReader::new(stream.try_clone().unwrap());
                    let mut writer = stream;
                    let mut line = String::new();
                    loop {
                        line.clear();
                        match reader.read_line(&mut line) {
                            Ok(0) | Err(_) => return,
                            Ok(_) => {
                                if writer.write_all(line.as_bytes()).is_err() {
                                    return;
                                }
                            }
                        }
                    }
                });
            }
        });
        (addr, handle)
    }

    #[test]
    fn spec_grammar_round_trips() {
        let s = spec("delay:4,drop:7:s2c, duplicate:9:c2s");
        assert_eq!(s.faults.len(), 3);
        assert_eq!(
            s.faults[0],
            ChaosFault {
                kind: ChaosKind::Delay,
                frame: 4,
                dir: ChaosDir::C2s,
                conn: None,
            }
        );
        assert_eq!(s.faults[1].dir, ChaosDir::S2c);
        assert!(ChaosSpec::parse("").is_err());
        assert!(ChaosSpec::parse("detonate:3").is_err());
        assert!(ChaosSpec::parse("drop").is_err());
        assert!(ChaosSpec::parse("drop:x").is_err());
        assert!(ChaosSpec::parse("drop:1:sideways").is_err());
        assert!(ChaosSpec::parse("drop:1:c2s:extra").is_err());
    }

    #[test]
    fn spec_grammar_accepts_per_connection_targets() {
        let s = spec("drop:2:s2c:1,corrupt:0:c2s:3");
        assert_eq!(
            s.faults[0],
            ChaosFault {
                kind: ChaosKind::Drop,
                frame: 2,
                dir: ChaosDir::S2c,
                conn: Some(1),
            }
        );
        assert_eq!(s.faults[1].conn, Some(3));
        assert!(ChaosSpec::parse("drop:1:c2s:first").is_err());
        assert!(ChaosSpec::parse("drop:1:c2s:0:extra").is_err());
    }

    #[test]
    fn from_env_warns_and_defaults_on_garbage() {
        std::env::set_var("YF_CHAOS_TEST_SENTINEL", "1");
        std::env::remove_var("YF_CHAOS");
        assert_eq!(ChaosSpec::from_env(), None, "unset means no chaos");
        std::env::set_var("YF_CHAOS", "explode:now");
        assert_eq!(ChaosSpec::from_env(), None, "malformed warns and defaults");
        std::env::set_var("YF_CHAOS", "drop:3:s2c");
        std::env::set_var("YF_CHAOS_DELAY_MS", "5");
        let s = ChaosSpec::from_env().unwrap();
        assert_eq!(s.faults[0].frame, 3);
        assert_eq!(s.delay, Duration::from_millis(5));
        std::env::remove_var("YF_CHAOS");
        std::env::remove_var("YF_CHAOS_DELAY_MS");
        std::env::remove_var("YF_CHAOS_TEST_SENTINEL");
    }

    #[test]
    fn duplicate_and_corrupt_and_drop_fire_once_at_their_frames() {
        let (upstream, _server) = echo_server();
        let proxy = ChaosProxy::start(upstream, spec("duplicate:1,corrupt:3,drop:5")).unwrap();
        let stream = TcpStream::connect(proxy.local_addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        let mut got = Vec::new();
        // Frames 0..=4; frame 1 duplicates, frame 3 corrupts, frame 5
        // (the 6th send) hits drop.
        for i in 0..5 {
            writeln!(writer, "frame-{i}").unwrap();
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            got.push(line.trim().to_string());
        }
        // The duplicate of frame-1 is still queued; read it.
        let mut dup = String::new();
        reader.read_line(&mut dup).unwrap();
        assert_eq!(got[0], "frame-0");
        assert_eq!(got[1], "frame-1");
        assert!(
            got.contains(&"frame-1".to_string()),
            "duplicate forwarded twice"
        );
        assert!(
            got.iter()
                .chain(std::iter::once(&dup.trim().to_string()))
                .any(|l| l.contains("#chaos-corrupt#")),
            "corrupt frame surfaced: {got:?} + {dup:?}"
        );
        writeln!(writer, "frame-5").unwrap();
        let mut line = String::new();
        // Dropped: the connection dies instead of echoing.
        assert!(matches!(reader.read_line(&mut line), Ok(0) | Err(_)));
    }

    #[test]
    fn per_connection_faults_hit_the_targeted_connection_only() {
        let (upstream, _server) = echo_server();
        // Corrupt frame 1 of connection 1 (accept order). Connection 0
        // sends the same frame indices and must sail through.
        let proxy = ChaosProxy::start(upstream, spec("corrupt:1:c2s:1")).unwrap();

        let first = TcpStream::connect(proxy.local_addr()).unwrap();
        let mut first_reader = BufReader::new(first.try_clone().unwrap());
        let mut first_writer = first;
        // Drive connection 0 past frame 1 before opening connection 1,
        // so accept order (and global counters) are deterministic.
        for i in 0..3 {
            writeln!(first_writer, "a-{i}").unwrap();
            let mut line = String::new();
            first_reader.read_line(&mut line).unwrap();
            assert_eq!(
                line.trim(),
                format!("a-{i}"),
                "untargeted connection intact"
            );
        }

        let second = TcpStream::connect(proxy.local_addr()).unwrap();
        let mut second_reader = BufReader::new(second.try_clone().unwrap());
        let mut second_writer = second;
        writeln!(second_writer, "b-0").unwrap();
        let mut line = String::new();
        second_reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim(), "b-0", "frame 0 of conn 1 unharmed");
        writeln!(second_writer, "b-1").unwrap();
        line.clear();
        second_reader.read_line(&mut line).unwrap();
        assert!(
            line.contains("#chaos-corrupt#"),
            "frame 1 of conn 1 corrupted, got {line:?}"
        );
    }

    #[test]
    fn binary_frames_are_pumped_whole_and_corrupt_keeps_them_framable() {
        let (upstream, _server) = echo_server();
        // The echo server above is line-based; binary frames need a
        // frame-echo upstream instead.
        let _ = upstream;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let upstream = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            while let Ok((stream, _)) = listener.accept() {
                std::thread::spawn(move || {
                    let mut reader = BufReader::new(stream.try_clone().unwrap());
                    let mut writer = stream;
                    loop {
                        match binary::read_frame(&mut reader) {
                            Ok(Some(RawFrame::Binary(raw))) => {
                                if writer.write_all(&raw).is_err() {
                                    return;
                                }
                            }
                            Ok(Some(RawFrame::Line(line))) => {
                                if writeln!(writer, "{line}").is_err() {
                                    return;
                                }
                            }
                            Ok(None) | Err(_) => return,
                        }
                    }
                });
            }
        });
        let proxy = ChaosProxy::start(upstream, spec("corrupt:1:s2c")).unwrap();
        let stream = TcpStream::connect(proxy.local_addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;

        // Frame 0: a binary frame through an undamaged path, plus a
        // JSON line after it — both must arrive intact and in order.
        let sent = binary::frame(7, b"mixed-dialect payload");
        writer.write_all(&sent).unwrap();
        writeln!(writer, "a line between frames").unwrap();
        match binary::read_frame(&mut reader).unwrap() {
            Some(RawFrame::Binary(raw)) => {
                assert_eq!(raw, sent, "binary frame forwarded verbatim");
            }
            other => panic!("expected binary frame, got {other:?}"),
        }
        // s2c frame 1 (this echoed line) is corrupted — but as a *line*,
        // since that is its dialect.
        match binary::read_frame(&mut reader).unwrap() {
            Some(RawFrame::Line(line)) => assert!(line.contains("#chaos-corrupt#")),
            other => panic!("expected corrupted line, got {other:?}"),
        }

        // A corrupted *binary* frame keeps its framing: flip the spec
        // around by corrupting via the helper directly and checking the
        // decoder's verdict is a typed checksum failure.
        let damaged = corrupt(&sent);
        assert_eq!(damaged.len(), sent.len(), "framing preserved");
        assert_eq!(&damaged[..binary::HEADER_LEN], &sent[..binary::HEADER_LEN]);
        match binary::decode(&damaged) {
            Err(yf_wire::binary::BinError::BadChecksum { .. }) => {}
            other => panic!("expected BadChecksum, got {other:?}"),
        }
    }

    #[test]
    fn blackhole_swallows_from_its_frame_but_keeps_the_connection() {
        let (upstream, _server) = echo_server();
        let proxy = ChaosProxy::start(upstream, spec("blackhole:1")).unwrap();
        let stream = TcpStream::connect(proxy.local_addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_millis(200)))
            .unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        writeln!(writer, "before").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim(), "before");
        writeln!(writer, "vanishes").unwrap();
        line.clear();
        // The frame is swallowed: the read must time out, not see EOF.
        let err = reader.read_line(&mut line).unwrap_err();
        assert!(
            matches!(
                err.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            ),
            "expected a silent stall, got {err:?}"
        );
    }
}
