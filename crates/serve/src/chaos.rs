//! Deterministic network-fault injection: a chaos TCP proxy.
//!
//! [`ChaosProxy`] sits between a line-protocol client and its upstream
//! server (the serve protocol or the fleet TCP transport — anything
//! newline-framed) and injects faults from a [`ChaosSpec`] at exact
//! frame indices, the same philosophy as the fleet's `YF_FAULT` process
//! faults: every failure lands at a reproducible point in the stream,
//! so a test that survives it once survives it every run.
//!
//! The spec grammar mirrors `YF_FAULT`:
//!
//! ```text
//! YF_CHAOS=kind:frame[:dir][,kind:frame[:dir]...]
//! ```
//!
//! where `kind` is one of `delay` (hold the frame `delay_ms`, then
//! forward), `drop` (sever both sides of the connection), `blackhole`
//! (swallow this and every later frame in that direction while holding
//! the connection open — the partition case, no EOF to help the peer),
//! `corrupt` (forward the frame with deterministic line damage), or
//! `duplicate` (forward the frame twice); `frame` is the zero-based
//! index in that direction's frame stream; `dir` is `c2s` (default) or
//! `s2c`. Every fault fires exactly once.
//!
//! Frame indices count per direction across *all* proxied connections
//! (a client that reconnects keeps advancing the same counters), which
//! keeps schedules deterministic for the single-client traffic the
//! serve and fleet tests drive. Concurrent connections interleave
//! nondeterministically; point chaos tests at one connection at a time.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;
use yf_tensor::env;

/// What to do to the selected frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosKind {
    /// Hold the frame for the spec's delay, then forward it intact.
    Delay,
    /// Sever the connection (both directions) at this frame.
    Drop,
    /// Swallow this frame and every later one in this direction, while
    /// keeping the connection open: a silent partition, no EOF.
    Blackhole,
    /// Forward the frame with deterministic damage (truncated and
    /// garbage-terminated), exercising the peer's decoder error path.
    Corrupt,
    /// Forward the frame twice.
    Duplicate,
}

/// Which direction of the proxied stream a fault applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosDir {
    /// Client → server frames.
    C2s,
    /// Server → client frames.
    S2c,
}

/// One scheduled fault: a kind, a frame index, and a direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosFault {
    /// What happens.
    pub kind: ChaosKind,
    /// Zero-based frame index in `dir`'s stream at which it happens.
    pub frame: u64,
    /// The stream it happens to.
    pub dir: ChaosDir,
}

/// A full chaos schedule: the faults plus the delay used by
/// [`ChaosKind::Delay`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosSpec {
    /// The scheduled faults; each fires exactly once.
    pub faults: Vec<ChaosFault>,
    /// How long a `delay` fault holds its frame.
    pub delay: Duration,
}

impl ChaosSpec {
    /// Parses the `kind:frame[:dir]` comma list.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first malformed entry.
    pub fn parse(text: &str) -> Result<ChaosSpec, String> {
        let mut faults = Vec::new();
        for part in text.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let mut fields = part.split(':');
            let kind = match fields.next().unwrap_or("") {
                "delay" => ChaosKind::Delay,
                "drop" => ChaosKind::Drop,
                "blackhole" => ChaosKind::Blackhole,
                "corrupt" => ChaosKind::Corrupt,
                "duplicate" => ChaosKind::Duplicate,
                other => return Err(format!("unknown chaos kind {other:?} in {part:?}")),
            };
            let frame = fields
                .next()
                .ok_or_else(|| format!("chaos fault {part:?} is missing its frame index"))?
                .parse::<u64>()
                .map_err(|_| format!("bad frame index in chaos fault {part:?}"))?;
            let dir = match fields.next() {
                None => ChaosDir::C2s,
                Some("c2s") => ChaosDir::C2s,
                Some("s2c") => ChaosDir::S2c,
                Some(other) => return Err(format!("bad chaos direction {other:?} in {part:?}")),
            };
            if fields.next().is_some() {
                return Err(format!("trailing fields in chaos fault {part:?}"));
            }
            faults.push(ChaosFault { kind, frame, dir });
        }
        if faults.is_empty() {
            return Err("empty chaos spec".to_string());
        }
        Ok(ChaosSpec {
            faults,
            delay: Duration::from_millis(50),
        })
    }

    /// Reads `YF_CHAOS` (and `YF_CHAOS_DELAY_MS` for the delay-fault
    /// hold time) with the workspace's hardened warn-and-default
    /// parsing: unset means no chaos, malformed warns and means no
    /// chaos.
    pub fn from_env() -> Option<ChaosSpec> {
        let mut spec = env::parse_with("YF_CHAOS", |raw| ChaosSpec::parse(raw).ok())?;
        if let Some(ms) = env::parse_with("YF_CHAOS_DELAY_MS", |raw| raw.trim().parse::<u64>().ok())
        {
            spec.delay = Duration::from_millis(ms);
        }
        Some(spec)
    }
}

/// Counters and one-shot flags shared by every pump thread.
struct ProxyState {
    spec: ChaosSpec,
    /// One "already fired" flag per fault.
    fired: Vec<AtomicBool>,
    /// Frames seen so far, per direction, across all connections.
    c2s_frames: AtomicU64,
    s2c_frames: AtomicU64,
}

impl ProxyState {
    /// Claims the fault (if any) scheduled for frame `n` of `dir`.
    /// One-shot: the first pump to claim a fault owns it.
    fn claim(&self, dir: ChaosDir, n: u64) -> Option<ChaosKind> {
        for (i, f) in self.spec.faults.iter().enumerate() {
            if f.dir == dir && f.frame == n && !self.fired[i].swap(true, Ordering::SeqCst) {
                return Some(f.kind);
            }
        }
        None
    }
}

/// The running man-in-the-middle. Listens on an ephemeral loopback
/// port; every accepted connection is paired with a fresh upstream
/// connection and pumped line-by-line in both directions through the
/// fault schedule. Dropping the proxy stops the accept loop; live
/// pumped connections die with their sockets.
pub struct ChaosProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Starts the proxy in front of `upstream`.
    ///
    /// # Errors
    ///
    /// Propagates listener bind failures.
    pub fn start(upstream: SocketAddr, spec: ChaosSpec) -> io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let fired = spec.faults.iter().map(|_| AtomicBool::new(false)).collect();
        let state = Arc::new(ProxyState {
            spec,
            fired,
            c2s_frames: AtomicU64::new(0),
            s2c_frames: AtomicU64::new(0),
        });
        let accept = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("yf-chaos-accept".to_string())
                .spawn(move || accept_loop(&listener, upstream, &state, &stop))
                .expect("chaos: spawning accept thread")
        };
        Ok(ChaosProxy {
            addr,
            stop,
            accept: Some(accept),
        })
    }

    /// The address clients should dial instead of the upstream's.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    upstream: SocketAddr,
    state: &Arc<ProxyState>,
    stop: &Arc<AtomicBool>,
) {
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((client, _)) => {
                let _ = client.set_nodelay(true);
                // A fresh upstream connection per proxied client, so
                // drop faults sever exactly one logical connection.
                let Ok(server) = TcpStream::connect(upstream) else {
                    let _ = client.shutdown(Shutdown::Both);
                    continue;
                };
                let _ = server.set_nodelay(true);
                let (Ok(client2), Ok(server2)) = (client.try_clone(), server.try_clone()) else {
                    continue;
                };
                let st = Arc::clone(state);
                let _ = std::thread::Builder::new()
                    .name("yf-chaos-c2s".to_string())
                    .spawn(move || pump(client, server, ChaosDir::C2s, &st));
                let st = Arc::clone(state);
                let _ = std::thread::Builder::new()
                    .name("yf-chaos-s2c".to_string())
                    .spawn(move || pump(server2, client2, ChaosDir::S2c, &st));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => return,
        }
    }
}

/// Deterministic frame damage for [`ChaosKind::Corrupt`]: cut the line
/// in half and terminate it with bytes no frame codec accepts.
fn corrupt(line: &str) -> String {
    let body = line.trim_end_matches(['\n', '\r']);
    let keep = body
        .char_indices()
        .nth(body.chars().count() / 2)
        .map_or(0, |(i, _)| i);
    format!("{}#chaos-corrupt#\n", &body[..keep])
}

/// Pumps newline-framed traffic from `from` to `to`, applying the
/// fault schedule for `dir`. Exits (shutting both sockets down) on EOF
/// or error from either side.
fn pump(from: TcpStream, mut to: TcpStream, dir: ChaosDir, state: &Arc<ProxyState>) {
    let counter = match dir {
        ChaosDir::C2s => &state.c2s_frames,
        ChaosDir::S2c => &state.s2c_frames,
    };
    let mut reader = BufReader::new(match from.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut stalled = false;
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        if !line.ends_with('\n') {
            line.push('\n');
        }
        let n = counter.fetch_add(1, Ordering::SeqCst);
        if stalled {
            // Blackholed: swallow silently, keep the socket open.
            continue;
        }
        let forwarded = match state.claim(dir, n) {
            None => to.write_all(line.as_bytes()),
            Some(ChaosKind::Delay) => {
                std::thread::sleep(state.spec.delay);
                to.write_all(line.as_bytes())
            }
            Some(ChaosKind::Drop) => {
                let _ = from.shutdown(Shutdown::Both);
                let _ = to.shutdown(Shutdown::Both);
                return;
            }
            Some(ChaosKind::Blackhole) => {
                stalled = true;
                continue;
            }
            Some(ChaosKind::Corrupt) => to.write_all(corrupt(&line).as_bytes()),
            Some(ChaosKind::Duplicate) => to
                .write_all(line.as_bytes())
                .and_then(|()| to.write_all(line.as_bytes())),
        };
        if forwarded.is_err() {
            break;
        }
    }
    let _ = from.shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader, Write};

    fn spec(text: &str) -> ChaosSpec {
        ChaosSpec::parse(text).unwrap()
    }

    /// A trivial upstream echo server: one line in, the same line out.
    fn echo_server() -> (SocketAddr, JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            while let Ok((stream, _)) = listener.accept() {
                std::thread::spawn(move || {
                    let mut reader = BufReader::new(stream.try_clone().unwrap());
                    let mut writer = stream;
                    let mut line = String::new();
                    loop {
                        line.clear();
                        match reader.read_line(&mut line) {
                            Ok(0) | Err(_) => return,
                            Ok(_) => {
                                if writer.write_all(line.as_bytes()).is_err() {
                                    return;
                                }
                            }
                        }
                    }
                });
            }
        });
        (addr, handle)
    }

    #[test]
    fn spec_grammar_round_trips() {
        let s = spec("delay:4,drop:7:s2c, duplicate:9:c2s");
        assert_eq!(s.faults.len(), 3);
        assert_eq!(
            s.faults[0],
            ChaosFault {
                kind: ChaosKind::Delay,
                frame: 4,
                dir: ChaosDir::C2s
            }
        );
        assert_eq!(s.faults[1].dir, ChaosDir::S2c);
        assert!(ChaosSpec::parse("").is_err());
        assert!(ChaosSpec::parse("detonate:3").is_err());
        assert!(ChaosSpec::parse("drop").is_err());
        assert!(ChaosSpec::parse("drop:x").is_err());
        assert!(ChaosSpec::parse("drop:1:sideways").is_err());
        assert!(ChaosSpec::parse("drop:1:c2s:extra").is_err());
    }

    #[test]
    fn from_env_warns_and_defaults_on_garbage() {
        std::env::set_var("YF_CHAOS_TEST_SENTINEL", "1");
        std::env::remove_var("YF_CHAOS");
        assert_eq!(ChaosSpec::from_env(), None, "unset means no chaos");
        std::env::set_var("YF_CHAOS", "explode:now");
        assert_eq!(ChaosSpec::from_env(), None, "malformed warns and defaults");
        std::env::set_var("YF_CHAOS", "drop:3:s2c");
        std::env::set_var("YF_CHAOS_DELAY_MS", "5");
        let s = ChaosSpec::from_env().unwrap();
        assert_eq!(s.faults[0].frame, 3);
        assert_eq!(s.delay, Duration::from_millis(5));
        std::env::remove_var("YF_CHAOS");
        std::env::remove_var("YF_CHAOS_DELAY_MS");
        std::env::remove_var("YF_CHAOS_TEST_SENTINEL");
    }

    #[test]
    fn duplicate_and_corrupt_and_drop_fire_once_at_their_frames() {
        let (upstream, _server) = echo_server();
        let proxy = ChaosProxy::start(upstream, spec("duplicate:1,corrupt:3,drop:5")).unwrap();
        let stream = TcpStream::connect(proxy.local_addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        let mut got = Vec::new();
        // Frames 0..=4; frame 1 duplicates, frame 3 corrupts, frame 5
        // (the 6th send) hits drop.
        for i in 0..5 {
            writeln!(writer, "frame-{i}").unwrap();
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            got.push(line.trim().to_string());
        }
        // The duplicate of frame-1 is still queued; read it.
        let mut dup = String::new();
        reader.read_line(&mut dup).unwrap();
        assert_eq!(got[0], "frame-0");
        assert_eq!(got[1], "frame-1");
        assert!(
            got.contains(&"frame-1".to_string()),
            "duplicate forwarded twice"
        );
        assert!(
            got.iter()
                .chain(std::iter::once(&dup.trim().to_string()))
                .any(|l| l.contains("#chaos-corrupt#")),
            "corrupt frame surfaced: {got:?} + {dup:?}"
        );
        writeln!(writer, "frame-5").unwrap();
        let mut line = String::new();
        // Dropped: the connection dies instead of echoing.
        assert!(matches!(reader.read_line(&mut line), Ok(0) | Err(_)));
    }

    #[test]
    fn blackhole_swallows_from_its_frame_but_keeps_the_connection() {
        let (upstream, _server) = echo_server();
        let proxy = ChaosProxy::start(upstream, spec("blackhole:1")).unwrap();
        let stream = TcpStream::connect(proxy.local_addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_millis(200)))
            .unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        writeln!(writer, "before").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim(), "before");
        writeln!(writer, "vanishes").unwrap();
        line.clear();
        // The frame is swallowed: the read must time out, not see EOF.
        let err = reader.read_line(&mut line).unwrap_err();
        assert!(
            matches!(
                err.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            ),
            "expected a silent stall, got {err:?}"
        );
    }
}
