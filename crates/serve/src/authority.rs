//! The authority-limit layer: the server never relays a tuned update
//! that leaves the client's declared safety envelope.
//!
//! The tuner proposes, the authority disposes. Each session declares a
//! maximum per-update excursion (fractional for the learning rate,
//! absolute for momentum) and hard absolute bounds; every [`Hyper`] the
//! tuner produces is clamped against the *previously applied* values
//! before it reaches the wire. The tuner's internal statistics are not
//! fed the clamped values — its own EMAs already smooth the proposal
//! stream — so the clamp is a pure output filter and replaying the same
//! measurements always reproduces the same clamped stream bit-for-bit.

use yf_optim::Hyper;

/// Per-session limits on how far — and how fast — the served
/// hyperparameters may move.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Authority {
    /// Max fractional learning-rate change per update: the served lr
    /// stays within `prev * (1 ± max_lr_step)`.
    pub max_lr_step: f32,
    /// Max absolute momentum change per update.
    pub max_momentum_step: f32,
    /// Hard learning-rate floor (must be positive: the excursion window
    /// is multiplicative, so lr can never be allowed to reach zero).
    pub lr_min: f32,
    /// Hard learning-rate ceiling.
    pub lr_max: f32,
    /// Hard momentum floor.
    pub momentum_min: f32,
    /// Hard momentum ceiling (below 1: heavy ball diverges at 1).
    pub momentum_max: f32,
}

impl Default for Authority {
    fn default() -> Self {
        Authority {
            max_lr_step: 0.5,
            max_momentum_step: 0.1,
            lr_min: 1e-8,
            lr_max: 10.0,
            momentum_min: 0.0,
            momentum_max: 0.9999,
        }
    }
}

impl Authority {
    /// Validates the envelope; rejected specs never build a session.
    ///
    /// # Errors
    ///
    /// A human-readable reason, relayed to the client as an `error`
    /// frame.
    pub fn validate(&self) -> Result<(), String> {
        let all = [
            self.max_lr_step,
            self.max_momentum_step,
            self.lr_min,
            self.lr_max,
            self.momentum_min,
            self.momentum_max,
        ];
        if all.iter().any(|v| !v.is_finite()) {
            return Err("authority limits must be finite".to_string());
        }
        if self.max_lr_step < 0.0 || self.max_momentum_step < 0.0 {
            return Err("authority excursions must be non-negative".to_string());
        }
        if !(self.lr_min > 0.0 && self.lr_min <= self.lr_max) {
            return Err("authority needs 0 < lr_min <= lr_max".to_string());
        }
        if !(self.momentum_min <= self.momentum_max && self.momentum_max < 1.0) {
            return Err("authority needs momentum_min <= momentum_max < 1".to_string());
        }
        Ok(())
    }

    /// The six limits as raw bit patterns, for bitwise spec matching.
    pub fn bits(&self) -> [u32; 6] {
        [
            self.max_lr_step.to_bits(),
            self.max_momentum_step.to_bits(),
            self.lr_min.to_bits(),
            self.lr_max.to_bits(),
            self.momentum_min.to_bits(),
            self.momentum_max.to_bits(),
        ]
    }

    /// Clamps a tuned proposal against the previously applied values
    /// (excursion limits) and the absolute bounds. Returns the applied
    /// hyperparameters and whether the proposal was altered. Non-finite
    /// proposals never pass: they collapse to the previous value (or the
    /// floor on the first update).
    pub fn clamp(&self, prev: Option<Hyper>, tuned: Hyper) -> (Hyper, bool) {
        let mut lr = tuned.lr;
        let mut momentum = tuned.momentum;
        if !lr.is_finite() {
            lr = prev.map_or(self.lr_min, |p| p.lr);
        }
        if !momentum.is_finite() {
            momentum = prev.map_or(self.momentum_min, |p| p.momentum);
        }
        if let Some(p) = prev {
            // prev is always inside the absolute bounds (it came out of
            // this clamp), so the excursion window is well-ordered.
            lr = lr.clamp(
                p.lr * (1.0 - self.max_lr_step).max(0.0),
                p.lr * (1.0 + self.max_lr_step),
            );
            momentum = momentum.clamp(
                p.momentum - self.max_momentum_step,
                p.momentum + self.max_momentum_step,
            );
        }
        lr = lr.clamp(self.lr_min, self.lr_max);
        momentum = momentum.clamp(self.momentum_min, self.momentum_max);
        let out = Hyper {
            lr,
            momentum,
            grad_scale: tuned.grad_scale,
        };
        let clamped = out.lr.to_bits() != tuned.lr.to_bits()
            || out.momentum.to_bits() != tuned.momentum.to_bits();
        (out, clamped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_update_sees_only_absolute_bounds() {
        let a = Authority::default();
        let (h, clamped) = a.clamp(None, Hyper::new(100.0, 0.5));
        assert_eq!(h.lr, a.lr_max);
        assert_eq!(h.momentum, 0.5);
        assert!(clamped);
        let (h, clamped) = a.clamp(None, Hyper::new(0.1, 0.9));
        assert_eq!((h.lr, h.momentum), (0.1, 0.9));
        assert!(!clamped);
    }

    #[test]
    fn excursions_are_limited_per_update() {
        let a = Authority::default();
        let prev = Hyper::new(0.1, 0.5);
        // A 10x lr jump is cut to +50%; a 0.4 momentum jump to +0.1.
        let (h, clamped) = a.clamp(Some(prev), Hyper::new(1.0, 0.9));
        assert_eq!(h.lr, 0.1 * 1.5);
        assert_eq!(h.momentum, 0.6);
        assert!(clamped);
        // A collapse to (near) zero is cut to -50% / -0.1.
        let (h, _) = a.clamp(Some(prev), Hyper::new(1e-9, 0.0));
        assert_eq!(h.lr, 0.05);
        assert_eq!(h.momentum, 0.4);
    }

    #[test]
    fn in_envelope_proposals_pass_bit_exactly() {
        let a = Authority::default();
        let prev = Hyper::new(0.1, 0.5);
        let tuned = Hyper {
            lr: 0.12,
            momentum: 0.55,
            grad_scale: 0.25,
        };
        let (h, clamped) = a.clamp(Some(prev), tuned);
        assert!(!clamped);
        assert_eq!(h.lr.to_bits(), tuned.lr.to_bits());
        assert_eq!(h.momentum.to_bits(), tuned.momentum.to_bits());
        assert_eq!(h.grad_scale.to_bits(), tuned.grad_scale.to_bits());
    }

    #[test]
    fn non_finite_proposals_collapse_to_previous() {
        let a = Authority::default();
        let prev = Hyper::new(0.1, 0.5);
        let (h, clamped) = a.clamp(Some(prev), Hyper::new(f32::NAN, f32::INFINITY));
        assert_eq!(h.lr, 0.1);
        assert_eq!(h.momentum, 0.5);
        assert!(clamped);
        let (h, _) = a.clamp(None, Hyper::new(f32::NAN, f32::NAN));
        assert_eq!(h.lr, a.lr_min);
        assert_eq!(h.momentum, a.momentum_min);
    }

    #[test]
    fn validation_rejects_degenerate_envelopes() {
        let mut a = Authority::default();
        assert!(a.validate().is_ok());
        a.lr_min = 0.0;
        assert!(a.validate().is_err());
        a = Authority::default();
        a.momentum_max = 1.0;
        assert!(a.validate().is_err());
        a = Authority::default();
        a.max_lr_step = f32::NAN;
        assert!(a.validate().is_err());
    }
}
