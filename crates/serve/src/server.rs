//! The multi-session tuner server.
//!
//! One listener, one lightweight reader thread per connection, and a
//! bounded set of compute permits shared by every connection: a frame
//! is parsed on its connection's thread, but the measure → tune → clamp
//! pipeline only runs while holding one of `permits` slots, so a burst
//! of sessions cannot oversubscribe the machine the kernel pool is
//! sized for. Replies travel through a bounded per-connection outbound
//! queue drained by a writer thread; a client that stops reading fills
//! its queue and is shed (disconnected) rather than allowed to wedge a
//! compute thread — its sessions detach with a final snapshot and
//! resume on reconnect.
//!
//! Sessions outlive connections: a dropped or shed connection detaches
//! its sessions (snapshotting each), a reconnecting client re-opens a
//! session by name — taking it over (epoch fencing) even when the
//! server has not yet noticed the old connection die, as in a silent
//! partition — and replays its last unacknowledged measurement, which
//! the session answers idempotently from its cached verdict instead of
//! double-advancing. An idle detached session is
//! eventually reaped by the background sweeper (snapshot first), and a
//! `drain` frame — or [`Server::drain`] — snapshots everything and
//! shuts the server down. With `snapshot_every = 1` (the default) every
//! processed measurement is sealed to disk before its reply is queued,
//! so even SIGKILL loses nothing: the restarted server re-opens every
//! session at its snapshot step and the replayed stream continues
//! bit-exactly.

use crate::proto::{self, BinMeasure, ClientFrame, OpenSpec, ServerFrame, WireDialect};
use crate::session::{Outcome, Session};
use crate::snapshot::{self, SessionSnapshot};
use std::collections::HashMap;
use std::io::{self, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, TrySendError};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use yf_tensor::{env, parallel};
use yf_wire::binary::{self, RawFrame};
use yf_wire::fsio::{self, SealedFileError};

/// Server tuning knobs. [`ServeConfig::from_env`] layers the
/// `YF_SERVE_*` environment variables over these defaults with the
/// workspace's warn-and-default parsing.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address (`host:port`; port 0 picks a free port).
    pub addr: String,
    /// Where sealed session snapshots live; `None` disables durability
    /// (sessions die with the process).
    pub snapshot_dir: Option<PathBuf>,
    /// Max concurrently hosted sessions.
    pub max_sessions: usize,
    /// Compute permits: measurements processed at once, across all
    /// connections.
    pub permits: usize,
    /// Outbound frames buffered per connection before the client is
    /// shed as too slow.
    pub outbound_queue: usize,
    /// Detached sessions idle longer than this are reaped.
    pub idle_timeout: Duration,
    /// Cadence of the idle-reaper sweep.
    pub reap_tick: Duration,
    /// Snapshot every Nth processed measurement (1 = every measurement;
    /// 0 = only on detach, close, reap, and drain).
    pub snapshot_every: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            snapshot_dir: None,
            max_sessions: 64,
            permits: parallel::num_threads().max(1),
            outbound_queue: 256,
            idle_timeout: Duration::from_secs(300),
            reap_tick: Duration::from_millis(500),
            snapshot_every: 1,
        }
    }
}

impl ServeConfig {
    /// The defaults with every `YF_SERVE_*` override applied (hardened
    /// parsing: malformed values warn on stderr and fall back).
    pub fn from_env() -> ServeConfig {
        let mut cfg = ServeConfig::default();
        if let Some(addr) = env::parse_with("YF_SERVE_ADDR", |raw| {
            let t = raw.trim();
            (!t.is_empty()).then(|| t.to_string())
        }) {
            cfg.addr = addr;
        }
        if let Some(dir) = env::parse_with("YF_SERVE_SNAPSHOT_DIR", |raw| {
            let t = raw.trim();
            (!t.is_empty()).then(|| PathBuf::from(t))
        }) {
            cfg.snapshot_dir = Some(dir);
        }
        if let Some(n) = env::positive_usize("YF_SERVE_MAX_SESSIONS") {
            cfg.max_sessions = n;
        }
        if let Some(n) = env::positive_usize("YF_SERVE_PERMITS") {
            cfg.permits = n;
        }
        if let Some(n) = env::positive_usize("YF_SERVE_QUEUE") {
            cfg.outbound_queue = n;
        }
        if let Some(secs) = env::parse_with("YF_SERVE_IDLE_SECS", |raw| {
            raw.trim().parse::<u64>().ok().filter(|&n| n > 0)
        }) {
            cfg.idle_timeout = Duration::from_secs(secs);
        }
        if let Some(ms) = env::parse_with("YF_SERVE_REAP_MILLIS", |raw| {
            raw.trim().parse::<u64>().ok().filter(|&n| n > 0)
        }) {
            cfg.reap_tick = Duration::from_millis(ms);
        }
        if let Some(n) = env::parse_with("YF_SERVE_SNAPSHOT_EVERY", |raw| {
            raw.trim().parse::<u64>().ok()
        }) {
            cfg.snapshot_every = n;
        }
        cfg
    }
}

/// A counting semaphore bounding concurrent measurement processing.
struct Semaphore {
    count: Mutex<usize>,
    cv: Condvar,
}

struct Permit<'a>(&'a Semaphore);

impl Semaphore {
    fn new(count: usize) -> Semaphore {
        Semaphore {
            count: Mutex::new(count),
            cv: Condvar::new(),
        }
    }

    fn acquire(&self) -> Permit<'_> {
        let mut n = self.count.lock().expect("semaphore lock");
        while *n == 0 {
            n = self.cv.wait(n).expect("semaphore lock");
        }
        *n -= 1;
        Permit(self)
    }
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        *self.0.count.lock().expect("semaphore lock") += 1;
        self.0.cv.notify_one();
    }
}

/// One hosted session plus its server-side bookkeeping.
struct Entry {
    session: Session,
    /// Attached to a live connection (a session is driven by at most
    /// one connection at a time).
    attached: bool,
    /// Attachment epoch, bumped every time a new connection takes the
    /// session over. A connection may only drive the session while its
    /// recorded epoch matches — frames from a superseded connection
    /// (one a client abandoned after a partition, which the server may
    /// not have noticed yet) are fenced off with an error instead of
    /// corrupting the trajectory.
    epoch: u64,
    last_active: Instant,
    /// The gradient of the last measurement that *advanced* the
    /// session, keyed by its step: the reconstruction base for
    /// `grad_delta` frames. Deliberately not part of the snapshot —
    /// after a restart (or resume-from-snapshot) the base is gone and
    /// the client's first advancing frame must be a full gradient.
    /// Never set from an idempotent cached-verdict replay: replayed
    /// frames may legally carry garbage payloads.
    prev: Option<(u64, Vec<f32>)>,
}

struct Shared {
    cfg: ServeConfig,
    /// The bound address; drain wakes the blocking accept loop by
    /// dialling it.
    addr: SocketAddr,
    /// Lock order: `sessions` before any `Entry` lock. Threads holding
    /// only an `Entry` lock must never take `sessions`.
    sessions: Mutex<HashMap<String, Arc<Mutex<Entry>>>>,
    compute: Semaphore,
    draining: AtomicBool,
}

impl Shared {
    fn snapshot_path(&self, name: &str) -> Option<PathBuf> {
        self.cfg
            .snapshot_dir
            .as_ref()
            .map(|dir| dir.join(format!("{name}.session")))
    }

    /// Seals a session's state to disk (atomic replace); failures are
    /// reported but never take the session down.
    fn write_snapshot(&self, entry: &Entry) {
        let Some(path) = self.snapshot_path(&entry.session.spec().session) else {
            return;
        };
        let text = snapshot::encode(&entry.session.snapshot());
        if let Err(e) = fsio::write_sealed(&path, &text) {
            eprintln!("yf-serve: snapshot {} failed: {e}", path.display());
        }
    }

    /// Reads a session's sealed snapshot. `None` when no file exists;
    /// `Some(Err)` for torn or malformed files.
    fn load_snapshot(&self, name: &str) -> Option<Result<SessionSnapshot, String>> {
        let path = self.snapshot_path(name)?;
        match fsio::read_sealed(&path) {
            Ok(text) => Some(snapshot::decode(&text).map_err(|e| e.to_string())),
            Err(SealedFileError::Missing(_)) => None,
            Err(e) => Some(Err(e.to_string())),
        }
    }
}

/// The running server. Dropping it does *not* stop the threads; call
/// [`Server::drain`] (or send a `drain` frame) and then
/// [`Server::wait`].
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    reaper: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds the listener and spawns the accept loop and the idle
    /// reaper.
    ///
    /// # Errors
    ///
    /// Propagates bind/FS errors (bad address, uncreatable snapshot
    /// directory).
    pub fn start(cfg: ServeConfig) -> io::Result<Server> {
        if let Some(dir) = &cfg.snapshot_dir {
            std::fs::create_dir_all(dir)?;
        }
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            compute: Semaphore::new(cfg.permits.max(1)),
            cfg,
            addr,
            sessions: Mutex::new(HashMap::new()),
            draining: AtomicBool::new(false),
        });
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("yf-serve-accept".to_string())
                .spawn(move || accept_loop(&listener, &shared))
                .expect("serve: spawning accept thread")
        };
        let reaper = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("yf-serve-reaper".to_string())
                .spawn(move || reaper_loop(&shared))
                .expect("serve: spawning reaper thread")
        };
        Ok(Server {
            shared,
            addr,
            accept: Some(accept),
            reaper: Some(reaper),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful drain: stop accepting, snapshot and unload every
    /// session. Returns the number of sessions snapshotted.
    pub fn drain(&self) -> u64 {
        drain_all(&self.shared)
    }

    /// Blocks until the server has drained and its background threads
    /// exited. Connection reader threads are not joined — they die with
    /// their sockets or the process.
    pub fn wait(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.reaper.take() {
            let _ = h.join();
        }
    }
}

/// Blocking accept: connections are handed off the instant the kernel
/// delivers them (no poll interval — the 20ms nonblocking poll this
/// replaces cost every fresh connection ~10ms before its `open` was
/// even read). Drain wakes the block by dialling the listener itself;
/// the wake connection is recognized by the draining flag and dropped.
fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        if shared.draining.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.draining.load(Ordering::SeqCst) {
                    return;
                }
                let _ = stream.set_nodelay(true);
                let shared = Arc::clone(shared);
                let _ = std::thread::Builder::new()
                    .name("yf-serve-conn".to_string())
                    .spawn(move || handle_connection(&shared, stream));
            }
            Err(e) => {
                eprintln!("yf-serve: accept failed: {e}");
                std::thread::sleep(Duration::from_millis(100));
            }
        }
    }
}

fn reaper_loop(shared: &Arc<Shared>) {
    loop {
        if shared.draining.load(Ordering::SeqCst) {
            return;
        }
        std::thread::sleep(shared.cfg.reap_tick);
        reap_idle(shared);
    }
}

/// Sweeps detached sessions idle past the timeout: snapshot, then
/// unload. Runs entirely under the map lock, with `try_lock` per entry
/// (a contended entry is mid-measurement, hence not idle).
fn reap_idle(shared: &Shared) {
    let mut map = shared.sessions.lock().expect("serve sessions lock");
    let now = Instant::now();
    let mut reap: Vec<String> = Vec::new();
    for (name, entry) in map.iter() {
        if let Ok(e) = entry.try_lock() {
            if !e.attached && now.duration_since(e.last_active) > shared.cfg.idle_timeout {
                shared.write_snapshot(&e);
                reap.push(name.clone());
            }
        }
    }
    for name in reap {
        map.remove(&name);
    }
}

/// Snapshots and unloads every session, stops the accept loop.
fn drain_all(shared: &Shared) -> u64 {
    shared.draining.store(true, Ordering::SeqCst);
    // Wake the blocking accept loop so it observes the flag; the
    // connection itself is never served.
    let _ = TcpStream::connect(shared.addr);
    let entries: Vec<Arc<Mutex<Entry>>> = {
        let mut map = shared.sessions.lock().expect("serve sessions lock");
        map.drain().map(|(_, v)| v).collect()
    };
    let mut count = 0;
    for entry in entries {
        let e = entry.lock().expect("serve entry lock");
        shared.write_snapshot(&e);
        count += 1;
    }
    count
}

fn handle_connection(shared: &Arc<Shared>, stream: TcpStream) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let Ok(mut write_half) = stream.try_clone() else {
        return;
    };
    // Replies are pre-encoded bytes (a JSON line with its newline, or a
    // complete binary frame), so the writer thread stays
    // dialect-oblivious.
    let (tx, rx) = sync_channel::<Vec<u8>>(shared.cfg.outbound_queue.max(1));
    let writer = std::thread::Builder::new()
        .name("yf-serve-writer".to_string())
        .spawn(move || {
            while let Ok(bytes) = rx.recv() {
                // A failed write (EPIPE/ECONNRESET from a vanished
                // client) sheds only this connection; the process keeps
                // serving. The binary ignores SIGPIPE explicitly so the
                // error path here is the only path.
                if write_half.write_all(&bytes).is_err() {
                    break;
                }
            }
            let _ = write_half.shutdown(Shutdown::Both);
        })
        .expect("serve: spawning writer thread");

    // Session name → attachment epoch, for every session this
    // connection currently drives. The epoch fences this connection's
    // frames off once another connection takes a session over.
    let mut owned: HashMap<String, u64> = HashMap::new();
    let mut reader = BufReader::new(read_half);
    // The mixed-dialect reader: a 0xF5 byte starts a binary frame,
    // anything else a JSON line. Unframable binary traffic cannot be
    // re-synchronized, so an Err ends the connection like any other
    // transport failure.
    'conn: while let Ok(Some(frame)) = binary::read_frame(&mut reader) {
        let reply = match frame {
            RawFrame::Line(line) => {
                if line.trim().is_empty() {
                    continue;
                }
                json_reply(&process_line(shared, &mut owned, &line))
            }
            RawFrame::Binary(raw) => process_binary(shared, &owned, &raw),
        };
        match tx.try_send(reply) {
            Ok(()) => {}
            Err(TrySendError::Full(_)) => {
                // Slow client: its outbound queue is full, so it is not
                // reading. Shed it rather than block a reader thread;
                // its sessions snapshot below and resume on reconnect.
                eprintln!(
                    "yf-serve: shedding slow client ({} queued frames)",
                    shared.cfg.outbound_queue
                );
                break 'conn;
            }
            Err(TrySendError::Disconnected(_)) => break 'conn,
        }
    }
    drop(tx);
    detach_owned(shared, &owned);
    let _ = stream.shutdown(Shutdown::Both);
    let _ = writer.join();
}

/// Detaches (and snapshots) every session a closing connection still
/// drives. Sessions another connection has taken over (epoch advanced)
/// are left alone — they belong to their new driver.
fn detach_owned(shared: &Shared, owned: &HashMap<String, u64>) {
    for (name, &epoch) in owned {
        let entry = {
            let map = shared.sessions.lock().expect("serve sessions lock");
            map.get(name).cloned()
        };
        if let Some(entry) = entry {
            let mut e = entry.lock().expect("serve entry lock");
            if e.epoch != epoch {
                continue;
            }
            e.attached = false;
            e.last_active = Instant::now();
            shared.write_snapshot(&e);
        }
    }
}

fn error(session: Option<&str>, message: impl Into<String>) -> ServerFrame {
    ServerFrame::Error {
        session: session.map(String::from),
        message: message.into(),
    }
}

/// Encodes a reply as a JSON line, newline included.
fn json_reply(frame: &ServerFrame) -> Vec<u8> {
    let mut bytes = frame.to_line().into_bytes();
    bytes.push(b'\n');
    bytes
}

/// The gradient payload of one measurement, before reconstruction.
enum GradPayload<'a> {
    /// The full flat gradient.
    Full(&'a [f32]),
    /// An XOR/RLE delta against the previous step's gradient; `dim` is
    /// the client's claimed dimension, checked against the base.
    Delta { dim: usize, runs: &'a [u8] },
}

/// Handles one binary frame. Data replies mirror the request's dialect
/// (binary in, binary out); error frames have no binary encoding and
/// travel as JSON in either dialect.
fn process_binary(shared: &Shared, owned: &HashMap<String, u64>, raw: &[u8]) -> Vec<u8> {
    let decoded = binary::decode(raw)
        .map_err(proto::ProtoError::from)
        .and_then(|(tag, payload)| proto::decode_bin_measure(tag, payload));
    let reply = match &decoded {
        Err(e) => error(None, e.to_string()),
        Ok(BinMeasure::Full {
            session,
            step,
            loss,
            grads,
        }) => process_measure(
            shared,
            owned,
            session,
            *step,
            *loss,
            GradPayload::Full(grads),
        ),
        Ok(BinMeasure::Delta {
            session,
            step,
            loss,
            dim,
            runs,
        }) => process_measure(
            shared,
            owned,
            session,
            *step,
            *loss,
            GradPayload::Delta { dim: *dim, runs },
        ),
    };
    reply.to_binary().unwrap_or_else(|| json_reply(&reply))
}

fn process_line(shared: &Shared, owned: &mut HashMap<String, u64>, line: &str) -> ServerFrame {
    let frame = match ClientFrame::from_line(line) {
        Ok(f) => f,
        Err(e) => return error(None, e.to_string()),
    };
    match frame {
        ClientFrame::Open { spec, wire } => process_open(shared, owned, spec, wire),
        ClientFrame::Measure {
            session,
            step,
            loss,
            grads,
        } => process_measure(
            shared,
            owned,
            &session,
            step,
            loss,
            GradPayload::Full(&grads),
        ),
        ClientFrame::Close { session } => process_close(shared, owned, &session),
        ClientFrame::Ping { token } => {
            // The heartbeat: keep this connection's sessions warm.
            let map = shared.sessions.lock().expect("serve sessions lock");
            for (name, &epoch) in owned.iter() {
                if let Some(entry) = map.get(name) {
                    let mut e = entry.lock().expect("serve entry lock");
                    if e.epoch == epoch {
                        e.last_active = Instant::now();
                    }
                }
            }
            ServerFrame::Pong { token }
        }
        ClientFrame::Drain => ServerFrame::Draining {
            sessions: drain_all(shared),
        },
    }
}

fn process_open(
    shared: &Shared,
    owned: &mut HashMap<String, u64>,
    spec: OpenSpec,
    wire: WireDialect,
) -> ServerFrame {
    // The server speaks both dialects on every connection, so the
    // capability negotiation is simply an echo: whatever the client
    // requested is what it gets.
    let name = spec.session.clone();
    if shared.draining.load(Ordering::SeqCst) {
        return error(Some(&name), "server is draining");
    }
    if let Err(e) = spec.validate() {
        return error(Some(&name), e);
    }
    let mut map = shared.sessions.lock().expect("serve sessions lock");
    if let Some(entry) = map.get(&name) {
        // Live session: re-attach (reconnect). If another connection
        // still looks attached — typically a partitioned predecessor
        // the server has not seen EOF from yet — the newest open wins:
        // the epoch advances and the old connection's frames are fenced
        // off at their next measure.
        let mut e = entry.lock().expect("serve entry lock");
        if !e.session.spec().matches(&spec) {
            return error(Some(&name), "spec does not match the live session");
        }
        if e.attached {
            e.epoch += 1;
        }
        e.attached = true;
        e.last_active = Instant::now();
        let step = e.session.step();
        let epoch = e.epoch;
        drop(e);
        owned.insert(name.clone(), epoch);
        return ServerFrame::Opened {
            session: name,
            step,
            wire,
        };
    }
    if map.len() >= shared.cfg.max_sessions {
        return error(
            Some(&name),
            format!("session limit reached ({})", shared.cfg.max_sessions),
        );
    }
    let session = match shared.load_snapshot(&name) {
        // A sealed snapshot exists: this open is a resume.
        Some(Ok(snap)) => {
            if !snap.spec.matches(&spec) {
                return error(Some(&name), "spec does not match the session snapshot");
            }
            match Session::restore(snap) {
                Ok(s) => s,
                Err(e) => return error(Some(&name), format!("snapshot restore failed: {e}")),
            }
        }
        Some(Err(e)) => return error(Some(&name), format!("unreadable snapshot: {e}")),
        None => match Session::new(spec) {
            Ok(s) => s,
            Err(e) => return error(Some(&name), e),
        },
    };
    let step = session.step();
    map.insert(
        name.clone(),
        Arc::new(Mutex::new(Entry {
            session,
            attached: true,
            epoch: 0,
            last_active: Instant::now(),
            prev: None,
        })),
    );
    owned.insert(name.clone(), 0);
    ServerFrame::Opened {
        session: name,
        step,
        wire,
    }
}

fn process_measure(
    shared: &Shared,
    owned: &HashMap<String, u64>,
    session: &str,
    step: u64,
    loss: f32,
    payload: GradPayload<'_>,
) -> ServerFrame {
    let Some(&epoch) = owned.get(session) else {
        return error(Some(session), "session not open on this connection");
    };
    let entry = {
        let map = shared.sessions.lock().expect("serve sessions lock");
        map.get(session).cloned()
    };
    let Some(entry) = entry else {
        return error(Some(session), "session no longer hosted");
    };
    // The compute permit bounds how many measurements the whole server
    // processes at once, independent of connection count.
    let _permit = shared.compute.acquire();
    let mut e = entry.lock().expect("serve entry lock");
    if e.epoch != epoch {
        return error(
            Some(session),
            "session was taken over by another connection",
        );
    }
    if shared.draining.load(Ordering::SeqCst) {
        return error(Some(session), "server is draining");
    }
    // Reconstruct a delta payload against the previous advancing
    // step's gradient. Every failure mode is a typed error frame the
    // client answers by re-sending the step as a full gradient — the
    // session itself never sees a bad reconstruction.
    let reconstructed: Vec<f32>;
    let grads: &[f32] = match payload {
        GradPayload::Full(g) => g,
        GradPayload::Delta { dim, runs } => {
            let Some((base_step, base)) = &e.prev else {
                return error(
                    Some(session),
                    "no delta base on the server: send a full measure frame",
                );
            };
            if base_step + 1 != step {
                return error(
                    Some(session),
                    format!(
                        "delta base is at step {base_step}, cannot reconstruct step {step}: \
                         send a full measure frame"
                    ),
                );
            }
            if base.len() != dim {
                return error(
                    Some(session),
                    format!(
                        "delta dim {dim} does not match the session dim {}",
                        base.len()
                    ),
                );
            }
            match binary::delta_decode(base, runs) {
                Ok(g) => {
                    reconstructed = g;
                    &reconstructed
                }
                Err(err) => return error(Some(session), format!("bad delta frame: {err}")),
            }
        }
    };
    match e.session.measure(step, loss, grads) {
        Err(msg) => error(Some(session), msg),
        Ok(outcome) => {
            e.last_active = Instant::now();
            // Update the delta base only when this measurement actually
            // advanced the session. An idempotent cached-verdict replay
            // (step == session.step - 1 on arrival) may carry an
            // arbitrary payload and must never become a base.
            if e.session.step() == step + 1 {
                e.prev = Some((step, grads.to_vec()));
            }
            let every = shared.cfg.snapshot_every;
            if every > 0 && e.session.step() % every == 0 {
                shared.write_snapshot(&e);
            }
            match outcome {
                Outcome::Tuned { hyper, clamped } => ServerFrame::Tuned {
                    session: session.to_string(),
                    step,
                    hyper,
                    clamped,
                },
                Outcome::Rejected { reason } => ServerFrame::Rejected {
                    session: session.to_string(),
                    step,
                    reason,
                },
            }
        }
    }
}

fn process_close(shared: &Shared, owned: &mut HashMap<String, u64>, session: &str) -> ServerFrame {
    let Some(epoch) = owned.remove(session) else {
        return error(Some(session), "session not open on this connection");
    };
    let mut map = shared.sessions.lock().expect("serve sessions lock");
    if let Some(entry) = map.get(session).cloned() {
        let e = entry.lock().expect("serve entry lock");
        if e.epoch != epoch {
            // Taken over: the session now belongs to its new driver and
            // this close only drops our claim on it.
            return ServerFrame::Closed {
                session: session.to_string(),
            };
        }
        // Final snapshot: a closed session can be re-opened later and
        // resumes from here.
        shared.write_snapshot(&e);
        drop(e);
        map.remove(session);
    }
    ServerFrame::Closed {
        session: session.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn semaphore_bounds_concurrency() {
        let sem = Arc::new(Semaphore::new(2));
        let active = Arc::new(Mutex::new((0usize, 0usize))); // (now, peak)
        let mut handles = Vec::new();
        for _ in 0..8 {
            let sem = Arc::clone(&sem);
            let active = Arc::clone(&active);
            handles.push(std::thread::spawn(move || {
                let _p = sem.acquire();
                {
                    let mut a = active.lock().unwrap();
                    a.0 += 1;
                    a.1 = a.1.max(a.0);
                }
                std::thread::sleep(Duration::from_millis(5));
                active.lock().unwrap().0 -= 1;
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let (now, peak) = *active.lock().unwrap();
        assert_eq!(now, 0);
        assert!(peak <= 2, "peak concurrency {peak} exceeded the permits");
    }

    #[test]
    fn env_overrides_use_hardened_parsing() {
        // Unique variable names: the test harness runs in one process.
        std::env::set_var("YF_SERVE_MAX_SESSIONS", "3");
        std::env::set_var("YF_SERVE_PERMITS", "not-a-number");
        std::env::set_var("YF_SERVE_IDLE_SECS", "7");
        std::env::set_var("YF_SERVE_SNAPSHOT_EVERY", "0");
        let cfg = ServeConfig::from_env();
        assert_eq!(cfg.max_sessions, 3);
        assert_eq!(
            cfg.permits,
            ServeConfig::default().permits,
            "malformed falls back"
        );
        assert_eq!(cfg.idle_timeout, Duration::from_secs(7));
        assert_eq!(cfg.snapshot_every, 0, "zero means snapshot-on-detach only");
        std::env::remove_var("YF_SERVE_MAX_SESSIONS");
        std::env::remove_var("YF_SERVE_PERMITS");
        std::env::remove_var("YF_SERVE_IDLE_SECS");
        std::env::remove_var("YF_SERVE_SNAPSHOT_EVERY");
    }
}
