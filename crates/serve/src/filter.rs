//! The data-quality filter: measurements a session refuses to learn
//! from.
//!
//! Remote measurement streams carry hazards an in-process trainer never
//! sees — a client that hit a NaN loss, a torn gradient buffer, a
//! diverging replica reporting gradient norms orders of magnitude off.
//! Feeding those into the tuner's EMAs would poison every later
//! decision, so each session screens measurements through a
//! [`yellowfin::OutlierGate`] seeded from the paper's adaptive-clipping
//! threshold (Eq. 35): the gate's growth-limited curvature envelope
//! tracks the healthy h = ||g||^2 range, and anything beyond
//! `tolerance^2 * h_max` is rejected. Rejected-but-finite spikes still
//! nudge the envelope, so a genuine regime change re-admits within a
//! few steps instead of rejecting forever.

use yellowfin::OutlierGate;

/// Configuration of a session's quality gate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FilterSpec {
    /// Sliding-window width of the curvature envelope (steps).
    pub window: usize,
    /// EMA smoothing of the envelope extrema.
    pub beta: f64,
    /// Rejection threshold: gradient norms beyond `tolerance * sqrt(h_max)`
    /// (i.e. squared norms beyond `tolerance^2 * h_max`) are outliers.
    pub tolerance: f64,
}

impl Default for FilterSpec {
    fn default() -> Self {
        FilterSpec {
            window: 20,
            beta: 0.999,
            tolerance: 10.0,
        }
    }
}

impl FilterSpec {
    /// Validates the configuration; rejected specs never build a
    /// session.
    ///
    /// # Errors
    ///
    /// A human-readable reason, relayed to the client as an `error`
    /// frame.
    pub fn validate(&self) -> Result<(), String> {
        if self.window == 0 {
            return Err("filter window must be positive".to_string());
        }
        if !(self.beta.is_finite() && 0.0 < self.beta && self.beta < 1.0) {
            return Err("filter beta must be in (0, 1)".to_string());
        }
        if !(self.tolerance.is_finite() && self.tolerance > 0.0) {
            return Err("filter tolerance must be a positive finite value".to_string());
        }
        Ok(())
    }

    /// The configuration as raw bit patterns, for bitwise spec matching.
    pub fn bits(&self) -> (u64, u64, u64) {
        (
            self.window as u64,
            self.beta.to_bits(),
            self.tolerance.to_bits(),
        )
    }
}

/// A session's stateful measurement screen.
#[derive(Debug)]
pub struct QualityFilter {
    gate: OutlierGate,
}

impl QualityFilter {
    /// A fresh filter (envelope uninitialized: the first finite
    /// measurement is always admitted and seeds it).
    pub fn new(spec: FilterSpec) -> QualityFilter {
        QualityFilter {
            gate: OutlierGate::new(spec.window, spec.beta, spec.tolerance),
        }
    }

    /// Screens one measurement. `Ok` admits it into the tuner; `Err`
    /// names the rejection reason. Finite outliers still update the
    /// growth-limited envelope (see module docs); non-finite
    /// measurements touch nothing.
    ///
    /// # Errors
    ///
    /// The static rejection reason, relayed in the `rejected` frame.
    pub fn admit(&mut self, loss: f64, squared_norm: f64) -> Result<(), &'static str> {
        if !loss.is_finite() {
            return Err("non-finite loss");
        }
        if !squared_norm.is_finite() {
            return Err("non-finite gradient norm");
        }
        if !self.gate.admit(squared_norm) {
            return Err("gradient-norm outlier");
        }
        Ok(())
    }

    /// Serializes the gate state for the session snapshot.
    pub fn save_state(&self) -> String {
        self.gate.save_state()
    }

    /// Rebuilds the filter from [`QualityFilter::save_state`] output.
    ///
    /// # Errors
    ///
    /// A human-readable reason when the state text is malformed.
    pub fn restore_state(text: &str) -> Result<QualityFilter, String> {
        OutlierGate::restore_state(text)
            .map(|gate| QualityFilter { gate })
            .map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn screens_hazards_and_admits_healthy_measurements() {
        let mut f = QualityFilter::new(FilterSpec::default());
        assert_eq!(f.admit(f64::NAN, 1.0), Err("non-finite loss"));
        assert_eq!(f.admit(0.5, f64::INFINITY), Err("non-finite gradient norm"));
        for step in 0..30 {
            assert_eq!(f.admit(0.5, 1.0 + 0.01 * f64::from(step)), Ok(()));
        }
        assert_eq!(f.admit(0.5, 1e9), Err("gradient-norm outlier"));
        assert_eq!(f.admit(0.5, 1.2), Ok(()), "healthy stream continues");
    }

    #[test]
    fn state_round_trip_preserves_judgments() {
        let mut a = QualityFilter::new(FilterSpec::default());
        for step in 0..25 {
            let _ = a.admit(0.5, 2.0 + (f64::from(step) * 0.7).sin());
        }
        let mut b = QualityFilter::restore_state(&a.save_state()).unwrap();
        for step in 0..40 {
            let h = if step % 9 == 8 { 1e8 } else { 2.5 };
            assert_eq!(a.admit(0.25, h), b.admit(0.25, h), "step {step}");
        }
    }

    #[test]
    fn validation_rejects_bad_specs() {
        assert!(FilterSpec::default().validate().is_ok());
        assert!(FilterSpec {
            window: 0,
            ..FilterSpec::default()
        }
        .validate()
        .is_err());
        assert!(FilterSpec {
            beta: 1.0,
            ..FilterSpec::default()
        }
        .validate()
        .is_err());
        assert!(FilterSpec {
            tolerance: 0.0,
            ..FilterSpec::default()
        }
        .validate()
        .is_err());
    }
}
