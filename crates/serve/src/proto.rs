//! The serve wire protocol: line-delimited JSON frames in the shared
//! [`yf_wire`] dialect (floats as hex bit patterns, one frame per line),
//! plus a binary fast path for the data plane.
//!
//! A client opens named sessions over one TCP connection and streams
//! per-step measurements; the server answers each accepted measurement
//! with the tuned, authority-clamped [`Hyper`] for that step. Frames are
//! self-describing (`"type"` field, or the binary magic byte), so one
//! connection freely interleaves traffic for many sessions.
//!
//! Client → server: `open`, `measure`, `close`, `ping`, `drain`.
//! Server → client: `opened`, `hyper`, `rejected`, `closed`, `pong`,
//! `draining`, `error`.
//!
//! ## Dialects
//!
//! Control frames (everything except `measure`/`hyper`/`rejected`)
//! always travel as JSON lines — they are rare, small, and worth
//! keeping greppable. The *data plane* has two encodings, negotiated
//! per connection at `open`:
//!
//! - **json** (default): the PR 8 line protocol, hex-bit floats.
//! - **binary**: [`yf_wire::binary`] frames with raw little-endian f32
//!   bit patterns — `measure` ([`TAG_MEASURE`]), `grad_delta`
//!   ([`TAG_GRAD_DELTA`], XOR/RLE against the previous step's
//!   gradient), `hyper` ([`TAG_TUNED`]) and `rejected`
//!   ([`TAG_REJECTED`]).
//!
//! A client requests the binary dialect with `"wire":"binary"` in its
//! `open` frame; the server echoes the dialect it will actually speak
//! in `opened`. Peers that never send the field get byte-identical
//! PR 8 behavior. The server answers each data frame in the dialect
//! the frame arrived in, so negotiation is a client-side capability
//! probe, not a mode switch.

use crate::authority::Authority;
use crate::filter::FilterSpec;
use std::fmt;
use yf_optim::Hyper;
use yf_tensor::env;
use yf_wire::binary::{self, BinError, Builder, Cursor};
use yf_wire::hex::{f32_hex, f32_row, f32_unhex, f32_unrow, f64_hex, f64_unhex, HexError};
use yf_wire::json::{self, Json, JsonError};

/// Error decoding a protocol frame.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtoError(String);

impl ProtoError {
    fn new(msg: impl Into<String>) -> ProtoError {
        ProtoError(msg.into())
    }
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid serve frame: {}", self.0)
    }
}

impl std::error::Error for ProtoError {}

impl From<JsonError> for ProtoError {
    fn from(e: JsonError) -> ProtoError {
        ProtoError(e.to_string())
    }
}

impl From<HexError> for ProtoError {
    fn from(e: HexError) -> ProtoError {
        ProtoError(e.to_string())
    }
}

impl From<BinError> for ProtoError {
    fn from(e: BinError) -> ProtoError {
        ProtoError(e.to_string())
    }
}

/// The data-plane encoding a connection speaks. Control frames are
/// JSON in either dialect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireDialect {
    /// Line JSON with hex-bit floats (the PR 8 protocol; default).
    #[default]
    Json,
    /// [`yf_wire::binary`] frames with raw LE f32 payloads.
    Binary,
}

impl WireDialect {
    /// The wire spelling, as carried in `open`/`opened` frames and
    /// recorded in perf-report headers.
    pub fn as_str(self) -> &'static str {
        match self {
            WireDialect::Json => "json",
            WireDialect::Binary => "binary",
        }
    }

    /// The dialect clients request by default, from `YF_SERVE_WIRE`
    /// (`json` or `binary`). Unset or unparseable values fall back to
    /// [`WireDialect::Json`] with a warning, never a panic.
    pub fn from_env() -> WireDialect {
        env::parse_with("YF_SERVE_WIRE", |raw| match raw.trim() {
            "json" => Some(WireDialect::Json),
            "binary" => Some(WireDialect::Binary),
            _ => None,
        })
        .unwrap_or_default()
    }
}

/// Parses the optional `"wire"` field of `open`/`opened` frames.
/// Absent means JSON (the pre-negotiation protocol); unknown values
/// also mean JSON, so a peer requesting a dialect we do not know is
/// answered in the one every peer speaks.
fn wire_field(v: &Json) -> WireDialect {
    match v.get("wire").and_then(Json::as_str) {
        Some("binary") => WireDialect::Binary,
        _ => WireDialect::Json,
    }
}

/// Everything the server needs to host a session: the optimizer choice
/// and the safety envelope it runs inside. The spec is part of the
/// session's identity — resuming from a snapshot requires a bitwise
/// match.
#[derive(Debug, Clone, PartialEq)]
pub struct OpenSpec {
    /// Client-chosen session name (also the snapshot file stem), limited
    /// to `[A-Za-z0-9._-]`.
    pub session: String,
    /// Registry optimizer name (`"yellowfin"`, `"momentum"`, ...).
    pub optimizer: String,
    /// The optimizer's grid value: the learning rate, or the lr factor
    /// for YellowFin.
    pub value: f32,
    /// Flat gradient dimension every `measure` frame must carry.
    pub dim: usize,
    /// Authority limits clamping each tuned update.
    pub authority: Authority,
    /// Data-quality filter configuration.
    pub filter: FilterSpec,
}

impl OpenSpec {
    /// True when two specs are bit-identical (name excluded): the
    /// resume-compatibility check.
    pub fn matches(&self, other: &OpenSpec) -> bool {
        self.optimizer == other.optimizer
            && self.value.to_bits() == other.value.to_bits()
            && self.dim == other.dim
            && self.authority.bits() == other.authority.bits()
            && self.filter.bits() == other.filter.bits()
    }

    /// Validates the session name and the nested configs.
    ///
    /// # Errors
    ///
    /// A human-readable reason, relayed to the client as an `error`
    /// frame.
    pub fn validate(&self) -> Result<(), String> {
        if self.session.is_empty() || self.session.len() > 128 {
            return Err("session name must be 1..=128 characters".to_string());
        }
        if !self
            .session
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-'))
        {
            return Err(format!(
                "session name {:?} has characters outside [A-Za-z0-9._-]",
                self.session
            ));
        }
        if self.dim == 0 {
            return Err("dim must be positive".to_string());
        }
        self.authority.validate()?;
        self.filter.validate()
    }
}

/// A frame travelling client → server.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientFrame {
    /// Create, re-attach, or resume-from-snapshot a named session.
    /// `wire` is the data-plane dialect this connection would like to
    /// speak; JSON-only clients omit the field (and the encoder omits
    /// it for them, keeping their bytes identical to PR 8).
    Open { spec: OpenSpec, wire: WireDialect },
    /// One measurement: the session's next step index, the minibatch
    /// loss, and the full flat gradient.
    Measure {
        session: String,
        step: u64,
        loss: f32,
        grads: Vec<f32>,
    },
    /// Detach and persist a session (snapshot survives for later
    /// re-open).
    Close { session: String },
    /// Heartbeat; keeps this connection's sessions from idle-reaping.
    Ping { token: u64 },
    /// Stop accepting, snapshot every session, shut the server down.
    Drain,
}

/// A frame travelling server → client.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerFrame {
    /// Session ready; `step` is the next measurement index the server
    /// expects (0 for a fresh session, the resume point otherwise).
    /// `wire` echoes the data-plane dialect the server will speak on
    /// this connection; the field is omitted on the wire for JSON, so
    /// JSON-only peers see byte-identical PR 8 frames.
    Opened {
        session: String,
        step: u64,
        wire: WireDialect,
    },
    /// The authority-clamped hyperparameters tuned from an accepted
    /// measurement. `clamped` reports whether the authority layer
    /// altered the tuner's raw proposal.
    Tuned {
        session: String,
        step: u64,
        hyper: Hyper,
        clamped: bool,
    },
    /// The measurement was rejected by the data-quality filter; the step
    /// still counts (replay the same frame on resume).
    Rejected {
        session: String,
        step: u64,
        reason: String,
    },
    /// Clean close acknowledgment.
    Closed { session: String },
    /// Heartbeat reply.
    Pong { token: u64 },
    /// Drain acknowledged; `sessions` snapshots were written.
    Draining { sessions: u64 },
    /// A per-frame failure (bad spec, unknown session, step mismatch).
    /// The connection survives; the offending frame had no effect.
    Error {
        session: Option<String>,
        message: String,
    },
}

fn authority_json(a: &Authority) -> Json {
    Json::obj(vec![
        ("max_lr_step", Json::str(f32_hex(a.max_lr_step))),
        ("max_momentum_step", Json::str(f32_hex(a.max_momentum_step))),
        ("lr_min", Json::str(f32_hex(a.lr_min))),
        ("lr_max", Json::str(f32_hex(a.lr_max))),
        ("momentum_min", Json::str(f32_hex(a.momentum_min))),
        ("momentum_max", Json::str(f32_hex(a.momentum_max))),
    ])
}

fn authority_from(v: &Json) -> Result<Authority, ProtoError> {
    Ok(Authority {
        max_lr_step: f32_unhex(v.str_field("max_lr_step")?)?,
        max_momentum_step: f32_unhex(v.str_field("max_momentum_step")?)?,
        lr_min: f32_unhex(v.str_field("lr_min")?)?,
        lr_max: f32_unhex(v.str_field("lr_max")?)?,
        momentum_min: f32_unhex(v.str_field("momentum_min")?)?,
        momentum_max: f32_unhex(v.str_field("momentum_max")?)?,
    })
}

fn filter_json(f: &FilterSpec) -> Json {
    Json::obj(vec![
        ("window", Json::u64(f.window as u64)),
        ("beta", Json::str(f64_hex(f.beta))),
        ("tolerance", Json::str(f64_hex(f.tolerance))),
    ])
}

fn filter_from(v: &Json) -> Result<FilterSpec, ProtoError> {
    Ok(FilterSpec {
        window: v.u64_field("window")? as usize,
        beta: f64_unhex(v.str_field("beta")?)?,
        tolerance: f64_unhex(v.str_field("tolerance")?)?,
    })
}

fn bool_field(v: &Json, key: &str) -> Result<bool, ProtoError> {
    match v.get(key) {
        Some(Json::Bool(b)) => Ok(*b),
        _ => Err(ProtoError::new(format!("missing bool field {key:?}"))),
    }
}

impl ClientFrame {
    /// Serializes to one newline-free JSON line.
    pub fn to_line(&self) -> String {
        let json = match self {
            ClientFrame::Open { spec, wire } => {
                let mut pairs = vec![
                    ("type", Json::str("open")),
                    ("session", Json::str(&spec.session)),
                    ("optimizer", Json::str(&spec.optimizer)),
                    ("value", Json::str(f32_hex(spec.value))),
                    ("dim", Json::u64(spec.dim as u64)),
                    ("authority", authority_json(&spec.authority)),
                    ("filter", filter_json(&spec.filter)),
                ];
                if *wire != WireDialect::Json {
                    pairs.push(("wire", Json::str(wire.as_str())));
                }
                Json::obj(pairs)
            }
            ClientFrame::Measure {
                session,
                step,
                loss,
                grads,
            } => Json::obj(vec![
                ("type", Json::str("measure")),
                ("session", Json::str(session)),
                ("step", Json::u64(*step)),
                ("loss", Json::str(f32_hex(*loss))),
                ("grads", Json::str(f32_row(grads))),
            ]),
            ClientFrame::Close { session } => Json::obj(vec![
                ("type", Json::str("close")),
                ("session", Json::str(session)),
            ]),
            ClientFrame::Ping { token } => Json::obj(vec![
                ("type", Json::str("ping")),
                ("token", Json::u64(*token)),
            ]),
            ClientFrame::Drain => Json::obj(vec![("type", Json::str("drain"))]),
        };
        json.to_string()
    }

    /// Parses one line.
    ///
    /// # Errors
    ///
    /// [`ProtoError`] on malformed JSON, unknown type, or bad payloads.
    pub fn from_line(line: &str) -> Result<ClientFrame, ProtoError> {
        let v = json::parse(line)?;
        match v.str_field("type")? {
            "open" => {
                // Authority/filter omitted on the wire mean "defaults":
                // the effective values still travel in every snapshot.
                let authority = match v.get("authority") {
                    Some(a) => authority_from(a)?,
                    None => Authority::default(),
                };
                let filter = match v.get("filter") {
                    Some(f) => filter_from(f)?,
                    None => FilterSpec::default(),
                };
                Ok(ClientFrame::Open {
                    spec: OpenSpec {
                        session: v.str_field("session")?.to_string(),
                        optimizer: v.str_field("optimizer")?.to_string(),
                        value: f32_unhex(v.str_field("value")?)?,
                        dim: v.u64_field("dim")? as usize,
                        authority,
                        filter,
                    },
                    wire: wire_field(&v),
                })
            }
            "measure" => Ok(ClientFrame::Measure {
                session: v.str_field("session")?.to_string(),
                step: v.u64_field("step")?,
                loss: f32_unhex(v.str_field("loss")?)?,
                grads: f32_unrow(v.str_field("grads")?)?,
            }),
            "close" => Ok(ClientFrame::Close {
                session: v.str_field("session")?.to_string(),
            }),
            "ping" => Ok(ClientFrame::Ping {
                token: v.u64_field("token")?,
            }),
            "drain" => Ok(ClientFrame::Drain),
            other => Err(ProtoError::new(format!("unknown client frame {other:?}"))),
        }
    }
}

impl ServerFrame {
    /// Serializes to one newline-free JSON line.
    pub fn to_line(&self) -> String {
        let json = match self {
            ServerFrame::Opened {
                session,
                step,
                wire,
            } => {
                let mut pairs = vec![
                    ("type", Json::str("opened")),
                    ("session", Json::str(session)),
                    ("step", Json::u64(*step)),
                ];
                if *wire != WireDialect::Json {
                    pairs.push(("wire", Json::str(wire.as_str())));
                }
                Json::obj(pairs)
            }
            ServerFrame::Tuned {
                session,
                step,
                hyper,
                clamped,
            } => Json::obj(vec![
                ("type", Json::str("hyper")),
                ("session", Json::str(session)),
                ("step", Json::u64(*step)),
                ("lr", Json::str(f32_hex(hyper.lr))),
                ("momentum", Json::str(f32_hex(hyper.momentum))),
                ("grad_scale", Json::str(f32_hex(hyper.grad_scale))),
                ("clamped", Json::Bool(*clamped)),
            ]),
            ServerFrame::Rejected {
                session,
                step,
                reason,
            } => Json::obj(vec![
                ("type", Json::str("rejected")),
                ("session", Json::str(session)),
                ("step", Json::u64(*step)),
                ("reason", Json::str(reason)),
            ]),
            ServerFrame::Closed { session } => Json::obj(vec![
                ("type", Json::str("closed")),
                ("session", Json::str(session)),
            ]),
            ServerFrame::Pong { token } => Json::obj(vec![
                ("type", Json::str("pong")),
                ("token", Json::u64(*token)),
            ]),
            ServerFrame::Draining { sessions } => Json::obj(vec![
                ("type", Json::str("draining")),
                ("sessions", Json::u64(*sessions)),
            ]),
            ServerFrame::Error { session, message } => {
                let mut pairs = vec![("type", Json::str("error"))];
                if let Some(s) = session {
                    pairs.push(("session", Json::str(s)));
                }
                pairs.push(("message", Json::str(message)));
                Json::obj(pairs)
            }
        };
        json.to_string()
    }

    /// Parses one line.
    ///
    /// # Errors
    ///
    /// [`ProtoError`] on malformed JSON, unknown type, or bad payloads.
    pub fn from_line(line: &str) -> Result<ServerFrame, ProtoError> {
        let v = json::parse(line)?;
        match v.str_field("type")? {
            "opened" => Ok(ServerFrame::Opened {
                session: v.str_field("session")?.to_string(),
                step: v.u64_field("step")?,
                wire: wire_field(&v),
            }),
            "hyper" => Ok(ServerFrame::Tuned {
                session: v.str_field("session")?.to_string(),
                step: v.u64_field("step")?,
                hyper: Hyper {
                    lr: f32_unhex(v.str_field("lr")?)?,
                    momentum: f32_unhex(v.str_field("momentum")?)?,
                    grad_scale: f32_unhex(v.str_field("grad_scale")?)?,
                },
                clamped: bool_field(&v, "clamped")?,
            }),
            "rejected" => Ok(ServerFrame::Rejected {
                session: v.str_field("session")?.to_string(),
                step: v.u64_field("step")?,
                reason: v.str_field("reason")?.to_string(),
            }),
            "closed" => Ok(ServerFrame::Closed {
                session: v.str_field("session")?.to_string(),
            }),
            "pong" => Ok(ServerFrame::Pong {
                token: v.u64_field("token")?,
            }),
            "draining" => Ok(ServerFrame::Draining {
                sessions: v.u64_field("sessions")?,
            }),
            "error" => Ok(ServerFrame::Error {
                session: v.get("session").and_then(Json::as_str).map(String::from),
                message: v.str_field("message")?.to_string(),
            }),
            other => Err(ProtoError::new(format!("unknown server frame {other:?}"))),
        }
    }
}

/// Binary frame tag: a full-gradient `measure`. Payload layout (all
/// LE): `str16 session | u64 step | u32 loss_bits | u32 count |
/// count x u32 grad_bits`.
pub const TAG_MEASURE: u8 = 1;

/// Binary frame tag: a delta-encoded `measure` against the previous
/// step's gradient. Payload: `str16 session | u64 step | u32 loss_bits
/// | u32 dim | delta runs` (see [`yf_wire::binary::delta_encode`]).
pub const TAG_GRAD_DELTA: u8 = 2;

/// Binary frame tag: a `hyper` verdict. Payload: `str16 session | u64
/// step | u32 lr_bits | u32 momentum_bits | u32 grad_scale_bits |
/// u8 clamped`.
pub const TAG_TUNED: u8 = 3;

/// Binary frame tag: a `rejected` verdict. Payload: `str16 session |
/// u64 step | str16 reason`.
pub const TAG_REJECTED: u8 = 4;

/// A client measurement decoded from a binary data frame. A `Delta`
/// still needs the server-side copy of the previous step's gradient to
/// reconstruct — the server resolves it against its per-session base
/// and answers with a typed error when it has none.
#[derive(Debug, Clone, PartialEq)]
pub enum BinMeasure {
    Full {
        session: String,
        step: u64,
        loss: f32,
        grads: Vec<f32>,
    },
    Delta {
        session: String,
        step: u64,
        loss: f32,
        dim: usize,
        runs: Vec<u8>,
    },
}

/// Encodes a full-gradient measurement as one [`TAG_MEASURE`] frame.
pub fn encode_measure(session: &str, step: u64, loss: f32, grads: &[f32]) -> Vec<u8> {
    let mut b = Builder::new();
    b.str16(session)
        .u64(step)
        .u32(loss.to_bits())
        .u32(grads.len() as u32)
        .f32_words(grads);
    binary::frame(TAG_MEASURE, &b.into_payload())
}

/// Encodes a delta measurement (runs from
/// [`yf_wire::binary::delta_encode`] against the previous step's
/// gradient) as one [`TAG_GRAD_DELTA`] frame.
pub fn encode_grad_delta(session: &str, step: u64, loss: f32, dim: usize, runs: &[u8]) -> Vec<u8> {
    let mut b = Builder::new();
    b.str16(session)
        .u64(step)
        .u32(loss.to_bits())
        .u32(dim as u32)
        .bytes(runs);
    binary::frame(TAG_GRAD_DELTA, &b.into_payload())
}

/// Decodes a client binary data frame (already [`yf_wire::binary::decode`]d
/// into tag + payload).
///
/// # Errors
///
/// [`ProtoError`] on server-only tags, unknown tags, or malformed
/// payloads; never panics.
pub fn decode_bin_measure(tag: u8, payload: &[u8]) -> Result<BinMeasure, ProtoError> {
    let mut c = Cursor::new(payload);
    match tag {
        TAG_MEASURE => {
            let session = c.str16()?.to_string();
            let step = c.u64()?;
            let loss = f32::from_bits(c.u32()?);
            let count = c.u32()? as usize;
            let bytes =
                c.take(count.checked_mul(4).ok_or_else(|| {
                    ProtoError::new(format!("gradient count {count} overflows"))
                })?)?;
            c.finish()?;
            let grads = bytes
                .chunks_exact(4)
                .map(|w| f32::from_bits(u32::from_le_bytes(w.try_into().expect("4-byte chunk"))))
                .collect();
            Ok(BinMeasure::Full {
                session,
                step,
                loss,
                grads,
            })
        }
        TAG_GRAD_DELTA => {
            let session = c.str16()?.to_string();
            let step = c.u64()?;
            let loss = f32::from_bits(c.u32()?);
            let dim = c.u32()? as usize;
            let runs = c.rest().to_vec();
            Ok(BinMeasure::Delta {
                session,
                step,
                loss,
                dim,
                runs,
            })
        }
        TAG_TUNED | TAG_REJECTED => Err(ProtoError::new(format!(
            "server-to-client frame tag {tag} on the client-to-server path"
        ))),
        other => Err(BinError::BadTag(other).into()),
    }
}

impl ServerFrame {
    /// The binary encoding of a data-plane verdict, or `None` for
    /// control frames, which always travel as JSON regardless of the
    /// negotiated dialect.
    pub fn to_binary(&self) -> Option<Vec<u8>> {
        match self {
            ServerFrame::Tuned {
                session,
                step,
                hyper,
                clamped,
            } => {
                let mut b = Builder::new();
                b.str16(session)
                    .u64(*step)
                    .u32(hyper.lr.to_bits())
                    .u32(hyper.momentum.to_bits())
                    .u32(hyper.grad_scale.to_bits())
                    .u8(u8::from(*clamped));
                Some(binary::frame(TAG_TUNED, &b.into_payload()))
            }
            ServerFrame::Rejected {
                session,
                step,
                reason,
            } => {
                let mut b = Builder::new();
                b.str16(session).u64(*step).str16(reason);
                Some(binary::frame(TAG_REJECTED, &b.into_payload()))
            }
            _ => None,
        }
    }

    /// Decodes a server binary data frame (already split into tag +
    /// payload by [`yf_wire::binary::decode`]).
    ///
    /// # Errors
    ///
    /// [`ProtoError`] on client-only tags, unknown tags, or malformed
    /// payloads; never panics.
    pub fn from_binary(tag: u8, payload: &[u8]) -> Result<ServerFrame, ProtoError> {
        let mut c = Cursor::new(payload);
        match tag {
            TAG_TUNED => {
                let frame = ServerFrame::Tuned {
                    session: c.str16()?.to_string(),
                    step: c.u64()?,
                    hyper: Hyper {
                        lr: f32::from_bits(c.u32()?),
                        momentum: f32::from_bits(c.u32()?),
                        grad_scale: f32::from_bits(c.u32()?),
                    },
                    clamped: c.u8()? != 0,
                };
                c.finish()?;
                Ok(frame)
            }
            TAG_REJECTED => {
                let frame = ServerFrame::Rejected {
                    session: c.str16()?.to_string(),
                    step: c.u64()?,
                    reason: c.str16()?.to_string(),
                };
                c.finish()?;
                Ok(frame)
            }
            TAG_MEASURE | TAG_GRAD_DELTA => Err(ProtoError::new(format!(
                "client-to-server frame tag {tag} on the server-to-client path"
            ))),
            other => Err(BinError::BadTag(other).into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> OpenSpec {
        OpenSpec {
            session: "s-1".to_string(),
            optimizer: "yellowfin".to_string(),
            value: 1.0,
            dim: 3,
            authority: Authority::default(),
            filter: FilterSpec::default(),
        }
    }

    #[test]
    fn client_frames_round_trip() {
        let frames = vec![
            ClientFrame::Open {
                spec: spec(),
                wire: WireDialect::Json,
            },
            ClientFrame::Open {
                spec: spec(),
                wire: WireDialect::Binary,
            },
            ClientFrame::Measure {
                session: "s-1".to_string(),
                step: 7,
                loss: 0.5,
                grads: vec![1.0, f32::NAN, -0.0],
            },
            ClientFrame::Close {
                session: "s-1".to_string(),
            },
            ClientFrame::Ping { token: 99 },
            ClientFrame::Drain,
        ];
        for f in frames {
            let line = f.to_line();
            assert!(!line.contains('\n'));
            let back = ClientFrame::from_line(&line).unwrap();
            // NaN payloads break PartialEq; compare re-serialized lines,
            // which are bit-exact by construction.
            assert_eq!(back.to_line(), line);
        }
    }

    #[test]
    fn server_frames_round_trip() {
        let frames = vec![
            ServerFrame::Opened {
                session: "a".to_string(),
                step: 12,
                wire: WireDialect::Json,
            },
            ServerFrame::Opened {
                session: "a".to_string(),
                step: 3,
                wire: WireDialect::Binary,
            },
            ServerFrame::Tuned {
                session: "a".to_string(),
                step: 12,
                hyper: Hyper {
                    lr: 0.015625,
                    momentum: 0.875,
                    grad_scale: 1.0,
                },
                clamped: true,
            },
            ServerFrame::Rejected {
                session: "a".to_string(),
                step: 13,
                reason: "gradient-norm outlier".to_string(),
            },
            ServerFrame::Closed {
                session: "a".to_string(),
            },
            ServerFrame::Pong { token: 99 },
            ServerFrame::Draining { sessions: 4 },
            ServerFrame::Error {
                session: None,
                message: "nope".to_string(),
            },
            ServerFrame::Error {
                session: Some("a".to_string()),
                message: "busy".to_string(),
            },
        ];
        for f in frames {
            assert_eq!(ServerFrame::from_line(&f.to_line()).unwrap(), f);
        }
    }

    #[test]
    fn open_defaults_when_envelope_omitted() {
        let line = r#"{"type":"open","session":"s","optimizer":"sgd","value":"3dcccccd","dim":2}"#;
        let ClientFrame::Open { spec, wire } = ClientFrame::from_line(line).unwrap() else {
            panic!("expected open");
        };
        assert_eq!(spec.authority.bits(), Authority::default().bits());
        assert_eq!(spec.filter.bits(), FilterSpec::default().bits());
        assert_eq!(
            wire,
            WireDialect::Json,
            "no wire field means the PR 8 dialect"
        );
    }

    #[test]
    fn json_dialect_frames_are_byte_identical_to_the_pre_negotiation_protocol() {
        // A JSON-only peer must see exactly the bytes PR 8 shipped: no
        // "wire" key anywhere.
        let open = ClientFrame::Open {
            spec: spec(),
            wire: WireDialect::Json,
        }
        .to_line();
        assert!(!open.contains("wire"), "json open grew a field: {open}");
        let opened = ServerFrame::Opened {
            session: "s-1".to_string(),
            step: 4,
            wire: WireDialect::Json,
        }
        .to_line();
        assert_eq!(opened, r#"{"type":"opened","session":"s-1","step":4}"#);
    }

    #[test]
    fn unknown_requested_dialects_downgrade_to_json() {
        let line = r#"{"type":"open","session":"s","optimizer":"sgd","value":"3dcccccd","dim":2,"wire":"quantum"}"#;
        let ClientFrame::Open { wire, .. } = ClientFrame::from_line(line).unwrap() else {
            panic!("expected open");
        };
        assert_eq!(wire, WireDialect::Json);
    }

    #[test]
    fn binary_measure_frames_round_trip_bit_exactly() {
        let grads = vec![1.0f32, f32::NAN, -0.0, f32::INFINITY, 3.5e-41];
        let frame = encode_measure("sess.a", 42, f32::NAN, &grads);
        let (tag, payload) = binary::decode(&frame).unwrap();
        let BinMeasure::Full {
            session,
            step,
            loss,
            grads: back,
        } = decode_bin_measure(tag, payload).unwrap()
        else {
            panic!("expected full measure");
        };
        assert_eq!(session, "sess.a");
        assert_eq!(step, 42);
        assert!(loss.is_nan());
        assert_eq!(back.len(), grads.len());
        for (a, b) in back.iter().zip(grads.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn binary_delta_frames_round_trip() {
        let runs = [7u8, 0, 0, 0, 0, 0, 0, 0];
        let frame = encode_grad_delta("s", 3, 0.25, 7, &runs);
        let (tag, payload) = binary::decode(&frame).unwrap();
        let BinMeasure::Delta {
            session,
            step,
            loss,
            dim,
            runs: back,
        } = decode_bin_measure(tag, payload).unwrap()
        else {
            panic!("expected delta measure");
        };
        assert_eq!((session.as_str(), step, loss, dim), ("s", 3, 0.25, 7));
        assert_eq!(back, runs);
    }

    #[test]
    fn binary_verdict_frames_round_trip() {
        let frames = [
            ServerFrame::Tuned {
                session: "a".to_string(),
                step: 12,
                hyper: Hyper {
                    lr: 0.015625,
                    momentum: 0.875,
                    grad_scale: 1.0,
                },
                clamped: true,
            },
            ServerFrame::Rejected {
                session: "a".to_string(),
                step: 13,
                reason: "gradient-norm outlier".to_string(),
            },
        ];
        for f in frames {
            let bin = f.to_binary().unwrap();
            let (tag, payload) = binary::decode(&bin).unwrap();
            assert_eq!(ServerFrame::from_binary(tag, payload).unwrap(), f);
        }
    }

    #[test]
    fn control_frames_have_no_binary_encoding() {
        assert!(ServerFrame::Closed {
            session: "a".to_string()
        }
        .to_binary()
        .is_none());
        assert!(ServerFrame::Pong { token: 1 }.to_binary().is_none());
        assert!(ServerFrame::Error {
            session: None,
            message: "x".to_string()
        }
        .to_binary()
        .is_none());
    }

    #[test]
    fn binary_decoders_reject_wrong_direction_and_unknown_tags() {
        assert!(decode_bin_measure(TAG_TUNED, &[]).is_err());
        assert!(decode_bin_measure(99, &[]).is_err());
        assert!(ServerFrame::from_binary(TAG_MEASURE, &[]).is_err());
        assert!(ServerFrame::from_binary(99, &[]).is_err());
        // Truncated payloads are typed errors, not panics.
        let frame = encode_measure("s", 0, 0.5, &[1.0, 2.0]);
        let (tag, payload) = binary::decode(&frame).unwrap();
        assert!(decode_bin_measure(tag, &payload[..payload.len() - 3]).is_err());
        assert!(ServerFrame::from_binary(TAG_TUNED, &[0, 0, 1]).is_err());
    }

    #[test]
    fn malformed_frames_are_rejected() {
        assert!(ClientFrame::from_line("{").is_err());
        assert!(ClientFrame::from_line(r#"{"type":"warp"}"#).is_err());
        assert!(ClientFrame::from_line(r#"{"type":"measure","session":"s"}"#).is_err());
        assert!(ClientFrame::from_line(
            r#"{"type":"measure","session":"s","step":0,"loss":"zz","grads":""}"#
        )
        .is_err());
        assert!(ServerFrame::from_line(r#"{"type":"hyper","session":"s","step":0}"#).is_err());
    }

    #[test]
    fn spec_matching_is_bitwise() {
        let a = spec();
        let mut b = spec();
        assert!(a.matches(&b));
        b.session = "other-name".to_string();
        assert!(a.matches(&b), "the name is not part of the identity");
        b.value = 1.0 + f32::EPSILON;
        assert!(!a.matches(&b));
    }

    #[test]
    fn spec_validation_rejects_bad_names() {
        let mut s = spec();
        s.session = "has space".to_string();
        assert!(s.validate().is_err());
        s.session = String::new();
        assert!(s.validate().is_err());
        s.session = "ok-1.a_b".to_string();
        assert!(s.validate().is_ok());
        s.dim = 0;
        assert!(s.validate().is_err());
    }
}
