//! The serve wire protocol: line-delimited JSON frames in the shared
//! [`yf_wire`] dialect (floats as hex bit patterns, one frame per line).
//!
//! A client opens named sessions over one TCP connection and streams
//! per-step measurements; the server answers each accepted measurement
//! with the tuned, authority-clamped [`Hyper`] for that step. Frames are
//! self-describing (`"type"` field), so one connection freely
//! interleaves traffic for many sessions.
//!
//! Client → server: `open`, `measure`, `close`, `ping`, `drain`.
//! Server → client: `opened`, `hyper`, `rejected`, `closed`, `pong`,
//! `draining`, `error`.

use crate::authority::Authority;
use crate::filter::FilterSpec;
use std::fmt;
use yf_optim::Hyper;
use yf_wire::hex::{f32_hex, f32_row, f32_unhex, f32_unrow, f64_hex, f64_unhex, HexError};
use yf_wire::json::{self, Json, JsonError};

/// Error decoding a protocol frame.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtoError(String);

impl ProtoError {
    fn new(msg: impl Into<String>) -> ProtoError {
        ProtoError(msg.into())
    }
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid serve frame: {}", self.0)
    }
}

impl std::error::Error for ProtoError {}

impl From<JsonError> for ProtoError {
    fn from(e: JsonError) -> ProtoError {
        ProtoError(e.to_string())
    }
}

impl From<HexError> for ProtoError {
    fn from(e: HexError) -> ProtoError {
        ProtoError(e.to_string())
    }
}

/// Everything the server needs to host a session: the optimizer choice
/// and the safety envelope it runs inside. The spec is part of the
/// session's identity — resuming from a snapshot requires a bitwise
/// match.
#[derive(Debug, Clone, PartialEq)]
pub struct OpenSpec {
    /// Client-chosen session name (also the snapshot file stem), limited
    /// to `[A-Za-z0-9._-]`.
    pub session: String,
    /// Registry optimizer name (`"yellowfin"`, `"momentum"`, ...).
    pub optimizer: String,
    /// The optimizer's grid value: the learning rate, or the lr factor
    /// for YellowFin.
    pub value: f32,
    /// Flat gradient dimension every `measure` frame must carry.
    pub dim: usize,
    /// Authority limits clamping each tuned update.
    pub authority: Authority,
    /// Data-quality filter configuration.
    pub filter: FilterSpec,
}

impl OpenSpec {
    /// True when two specs are bit-identical (name excluded): the
    /// resume-compatibility check.
    pub fn matches(&self, other: &OpenSpec) -> bool {
        self.optimizer == other.optimizer
            && self.value.to_bits() == other.value.to_bits()
            && self.dim == other.dim
            && self.authority.bits() == other.authority.bits()
            && self.filter.bits() == other.filter.bits()
    }

    /// Validates the session name and the nested configs.
    ///
    /// # Errors
    ///
    /// A human-readable reason, relayed to the client as an `error`
    /// frame.
    pub fn validate(&self) -> Result<(), String> {
        if self.session.is_empty() || self.session.len() > 128 {
            return Err("session name must be 1..=128 characters".to_string());
        }
        if !self
            .session
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-'))
        {
            return Err(format!(
                "session name {:?} has characters outside [A-Za-z0-9._-]",
                self.session
            ));
        }
        if self.dim == 0 {
            return Err("dim must be positive".to_string());
        }
        self.authority.validate()?;
        self.filter.validate()
    }
}

/// A frame travelling client → server.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientFrame {
    /// Create, re-attach, or resume-from-snapshot a named session.
    Open(OpenSpec),
    /// One measurement: the session's next step index, the minibatch
    /// loss, and the full flat gradient.
    Measure {
        session: String,
        step: u64,
        loss: f32,
        grads: Vec<f32>,
    },
    /// Detach and persist a session (snapshot survives for later
    /// re-open).
    Close { session: String },
    /// Heartbeat; keeps this connection's sessions from idle-reaping.
    Ping { token: u64 },
    /// Stop accepting, snapshot every session, shut the server down.
    Drain,
}

/// A frame travelling server → client.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerFrame {
    /// Session ready; `step` is the next measurement index the server
    /// expects (0 for a fresh session, the resume point otherwise).
    Opened { session: String, step: u64 },
    /// The authority-clamped hyperparameters tuned from an accepted
    /// measurement. `clamped` reports whether the authority layer
    /// altered the tuner's raw proposal.
    Tuned {
        session: String,
        step: u64,
        hyper: Hyper,
        clamped: bool,
    },
    /// The measurement was rejected by the data-quality filter; the step
    /// still counts (replay the same frame on resume).
    Rejected {
        session: String,
        step: u64,
        reason: String,
    },
    /// Clean close acknowledgment.
    Closed { session: String },
    /// Heartbeat reply.
    Pong { token: u64 },
    /// Drain acknowledged; `sessions` snapshots were written.
    Draining { sessions: u64 },
    /// A per-frame failure (bad spec, unknown session, step mismatch).
    /// The connection survives; the offending frame had no effect.
    Error {
        session: Option<String>,
        message: String,
    },
}

fn authority_json(a: &Authority) -> Json {
    Json::obj(vec![
        ("max_lr_step", Json::str(f32_hex(a.max_lr_step))),
        ("max_momentum_step", Json::str(f32_hex(a.max_momentum_step))),
        ("lr_min", Json::str(f32_hex(a.lr_min))),
        ("lr_max", Json::str(f32_hex(a.lr_max))),
        ("momentum_min", Json::str(f32_hex(a.momentum_min))),
        ("momentum_max", Json::str(f32_hex(a.momentum_max))),
    ])
}

fn authority_from(v: &Json) -> Result<Authority, ProtoError> {
    Ok(Authority {
        max_lr_step: f32_unhex(v.str_field("max_lr_step")?)?,
        max_momentum_step: f32_unhex(v.str_field("max_momentum_step")?)?,
        lr_min: f32_unhex(v.str_field("lr_min")?)?,
        lr_max: f32_unhex(v.str_field("lr_max")?)?,
        momentum_min: f32_unhex(v.str_field("momentum_min")?)?,
        momentum_max: f32_unhex(v.str_field("momentum_max")?)?,
    })
}

fn filter_json(f: &FilterSpec) -> Json {
    Json::obj(vec![
        ("window", Json::u64(f.window as u64)),
        ("beta", Json::str(f64_hex(f.beta))),
        ("tolerance", Json::str(f64_hex(f.tolerance))),
    ])
}

fn filter_from(v: &Json) -> Result<FilterSpec, ProtoError> {
    Ok(FilterSpec {
        window: v.u64_field("window")? as usize,
        beta: f64_unhex(v.str_field("beta")?)?,
        tolerance: f64_unhex(v.str_field("tolerance")?)?,
    })
}

fn bool_field(v: &Json, key: &str) -> Result<bool, ProtoError> {
    match v.get(key) {
        Some(Json::Bool(b)) => Ok(*b),
        _ => Err(ProtoError::new(format!("missing bool field {key:?}"))),
    }
}

impl ClientFrame {
    /// Serializes to one newline-free JSON line.
    pub fn to_line(&self) -> String {
        let json = match self {
            ClientFrame::Open(spec) => Json::obj(vec![
                ("type", Json::str("open")),
                ("session", Json::str(&spec.session)),
                ("optimizer", Json::str(&spec.optimizer)),
                ("value", Json::str(f32_hex(spec.value))),
                ("dim", Json::u64(spec.dim as u64)),
                ("authority", authority_json(&spec.authority)),
                ("filter", filter_json(&spec.filter)),
            ]),
            ClientFrame::Measure {
                session,
                step,
                loss,
                grads,
            } => Json::obj(vec![
                ("type", Json::str("measure")),
                ("session", Json::str(session)),
                ("step", Json::u64(*step)),
                ("loss", Json::str(f32_hex(*loss))),
                ("grads", Json::str(f32_row(grads))),
            ]),
            ClientFrame::Close { session } => Json::obj(vec![
                ("type", Json::str("close")),
                ("session", Json::str(session)),
            ]),
            ClientFrame::Ping { token } => Json::obj(vec![
                ("type", Json::str("ping")),
                ("token", Json::u64(*token)),
            ]),
            ClientFrame::Drain => Json::obj(vec![("type", Json::str("drain"))]),
        };
        json.to_string()
    }

    /// Parses one line.
    ///
    /// # Errors
    ///
    /// [`ProtoError`] on malformed JSON, unknown type, or bad payloads.
    pub fn from_line(line: &str) -> Result<ClientFrame, ProtoError> {
        let v = json::parse(line)?;
        match v.str_field("type")? {
            "open" => {
                // Authority/filter omitted on the wire mean "defaults":
                // the effective values still travel in every snapshot.
                let authority = match v.get("authority") {
                    Some(a) => authority_from(a)?,
                    None => Authority::default(),
                };
                let filter = match v.get("filter") {
                    Some(f) => filter_from(f)?,
                    None => FilterSpec::default(),
                };
                Ok(ClientFrame::Open(OpenSpec {
                    session: v.str_field("session")?.to_string(),
                    optimizer: v.str_field("optimizer")?.to_string(),
                    value: f32_unhex(v.str_field("value")?)?,
                    dim: v.u64_field("dim")? as usize,
                    authority,
                    filter,
                }))
            }
            "measure" => Ok(ClientFrame::Measure {
                session: v.str_field("session")?.to_string(),
                step: v.u64_field("step")?,
                loss: f32_unhex(v.str_field("loss")?)?,
                grads: f32_unrow(v.str_field("grads")?)?,
            }),
            "close" => Ok(ClientFrame::Close {
                session: v.str_field("session")?.to_string(),
            }),
            "ping" => Ok(ClientFrame::Ping {
                token: v.u64_field("token")?,
            }),
            "drain" => Ok(ClientFrame::Drain),
            other => Err(ProtoError::new(format!("unknown client frame {other:?}"))),
        }
    }
}

impl ServerFrame {
    /// Serializes to one newline-free JSON line.
    pub fn to_line(&self) -> String {
        let json = match self {
            ServerFrame::Opened { session, step } => Json::obj(vec![
                ("type", Json::str("opened")),
                ("session", Json::str(session)),
                ("step", Json::u64(*step)),
            ]),
            ServerFrame::Tuned {
                session,
                step,
                hyper,
                clamped,
            } => Json::obj(vec![
                ("type", Json::str("hyper")),
                ("session", Json::str(session)),
                ("step", Json::u64(*step)),
                ("lr", Json::str(f32_hex(hyper.lr))),
                ("momentum", Json::str(f32_hex(hyper.momentum))),
                ("grad_scale", Json::str(f32_hex(hyper.grad_scale))),
                ("clamped", Json::Bool(*clamped)),
            ]),
            ServerFrame::Rejected {
                session,
                step,
                reason,
            } => Json::obj(vec![
                ("type", Json::str("rejected")),
                ("session", Json::str(session)),
                ("step", Json::u64(*step)),
                ("reason", Json::str(reason)),
            ]),
            ServerFrame::Closed { session } => Json::obj(vec![
                ("type", Json::str("closed")),
                ("session", Json::str(session)),
            ]),
            ServerFrame::Pong { token } => Json::obj(vec![
                ("type", Json::str("pong")),
                ("token", Json::u64(*token)),
            ]),
            ServerFrame::Draining { sessions } => Json::obj(vec![
                ("type", Json::str("draining")),
                ("sessions", Json::u64(*sessions)),
            ]),
            ServerFrame::Error { session, message } => {
                let mut pairs = vec![("type", Json::str("error"))];
                if let Some(s) = session {
                    pairs.push(("session", Json::str(s)));
                }
                pairs.push(("message", Json::str(message)));
                Json::obj(pairs)
            }
        };
        json.to_string()
    }

    /// Parses one line.
    ///
    /// # Errors
    ///
    /// [`ProtoError`] on malformed JSON, unknown type, or bad payloads.
    pub fn from_line(line: &str) -> Result<ServerFrame, ProtoError> {
        let v = json::parse(line)?;
        match v.str_field("type")? {
            "opened" => Ok(ServerFrame::Opened {
                session: v.str_field("session")?.to_string(),
                step: v.u64_field("step")?,
            }),
            "hyper" => Ok(ServerFrame::Tuned {
                session: v.str_field("session")?.to_string(),
                step: v.u64_field("step")?,
                hyper: Hyper {
                    lr: f32_unhex(v.str_field("lr")?)?,
                    momentum: f32_unhex(v.str_field("momentum")?)?,
                    grad_scale: f32_unhex(v.str_field("grad_scale")?)?,
                },
                clamped: bool_field(&v, "clamped")?,
            }),
            "rejected" => Ok(ServerFrame::Rejected {
                session: v.str_field("session")?.to_string(),
                step: v.u64_field("step")?,
                reason: v.str_field("reason")?.to_string(),
            }),
            "closed" => Ok(ServerFrame::Closed {
                session: v.str_field("session")?.to_string(),
            }),
            "pong" => Ok(ServerFrame::Pong {
                token: v.u64_field("token")?,
            }),
            "draining" => Ok(ServerFrame::Draining {
                sessions: v.u64_field("sessions")?,
            }),
            "error" => Ok(ServerFrame::Error {
                session: v.get("session").and_then(Json::as_str).map(String::from),
                message: v.str_field("message")?.to_string(),
            }),
            other => Err(ProtoError::new(format!("unknown server frame {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> OpenSpec {
        OpenSpec {
            session: "s-1".to_string(),
            optimizer: "yellowfin".to_string(),
            value: 1.0,
            dim: 3,
            authority: Authority::default(),
            filter: FilterSpec::default(),
        }
    }

    #[test]
    fn client_frames_round_trip() {
        let frames = vec![
            ClientFrame::Open(spec()),
            ClientFrame::Measure {
                session: "s-1".to_string(),
                step: 7,
                loss: 0.5,
                grads: vec![1.0, f32::NAN, -0.0],
            },
            ClientFrame::Close {
                session: "s-1".to_string(),
            },
            ClientFrame::Ping { token: 99 },
            ClientFrame::Drain,
        ];
        for f in frames {
            let line = f.to_line();
            assert!(!line.contains('\n'));
            let back = ClientFrame::from_line(&line).unwrap();
            // NaN payloads break PartialEq; compare re-serialized lines,
            // which are bit-exact by construction.
            assert_eq!(back.to_line(), line);
        }
    }

    #[test]
    fn server_frames_round_trip() {
        let frames = vec![
            ServerFrame::Opened {
                session: "a".to_string(),
                step: 12,
            },
            ServerFrame::Tuned {
                session: "a".to_string(),
                step: 12,
                hyper: Hyper {
                    lr: 0.015625,
                    momentum: 0.875,
                    grad_scale: 1.0,
                },
                clamped: true,
            },
            ServerFrame::Rejected {
                session: "a".to_string(),
                step: 13,
                reason: "gradient-norm outlier".to_string(),
            },
            ServerFrame::Closed {
                session: "a".to_string(),
            },
            ServerFrame::Pong { token: 99 },
            ServerFrame::Draining { sessions: 4 },
            ServerFrame::Error {
                session: None,
                message: "nope".to_string(),
            },
            ServerFrame::Error {
                session: Some("a".to_string()),
                message: "busy".to_string(),
            },
        ];
        for f in frames {
            assert_eq!(ServerFrame::from_line(&f.to_line()).unwrap(), f);
        }
    }

    #[test]
    fn open_defaults_when_envelope_omitted() {
        let line = r#"{"type":"open","session":"s","optimizer":"sgd","value":"3dcccccd","dim":2}"#;
        let ClientFrame::Open(spec) = ClientFrame::from_line(line).unwrap() else {
            panic!("expected open");
        };
        assert_eq!(spec.authority.bits(), Authority::default().bits());
        assert_eq!(spec.filter.bits(), FilterSpec::default().bits());
    }

    #[test]
    fn malformed_frames_are_rejected() {
        assert!(ClientFrame::from_line("{").is_err());
        assert!(ClientFrame::from_line(r#"{"type":"warp"}"#).is_err());
        assert!(ClientFrame::from_line(r#"{"type":"measure","session":"s"}"#).is_err());
        assert!(ClientFrame::from_line(
            r#"{"type":"measure","session":"s","step":0,"loss":"zz","grads":""}"#
        )
        .is_err());
        assert!(ServerFrame::from_line(r#"{"type":"hyper","session":"s","step":0}"#).is_err());
    }

    #[test]
    fn spec_matching_is_bitwise() {
        let a = spec();
        let mut b = spec();
        assert!(a.matches(&b));
        b.session = "other-name".to_string();
        assert!(a.matches(&b), "the name is not part of the identity");
        b.value = 1.0 + f32::EPSILON;
        assert!(!a.matches(&b));
    }

    #[test]
    fn spec_validation_rejects_bad_names() {
        let mut s = spec();
        s.session = "has space".to_string();
        assert!(s.validate().is_err());
        s.session = String::new();
        assert!(s.validate().is_err());
        s.session = "ok-1.a_b".to_string();
        assert!(s.validate().is_ok());
        s.dim = 0;
        assert!(s.validate().is_err());
    }
}
