//! Bit-exact session snapshots.
//!
//! Every session persists as one sealed file (written atomically via
//! [`yf_wire::fsio::write_sealed`], so a SIGKILL mid-write leaves either
//! the previous snapshot or a `Torn` seal — never a half state). The
//! payload here is the line-oriented `key value` format the fleet codec
//! uses, with floats as hex bit patterns and two embedded multi-line
//! blocks: the quality-gate state and the optimizer checkpoint.

use crate::authority::Authority;
use crate::filter::FilterSpec;
use crate::proto::OpenSpec;
use crate::session::Outcome;
use std::fmt;
use yf_optim::Hyper;
use yf_wire::hex::{f32_row, f32_unrow, f64_hex, f64_unhex, HexError};

const HEADER: &str = "yf-serve-session v1";

/// Error decoding a snapshot payload.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotError(String);

impl SnapshotError {
    fn new(msg: impl Into<String>) -> SnapshotError {
        SnapshotError(msg.into())
    }
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid session snapshot: {}", self.0)
    }
}

impl std::error::Error for SnapshotError {}

impl From<HexError> for SnapshotError {
    fn from(e: HexError) -> SnapshotError {
        SnapshotError(e.to_string())
    }
}

/// A session's complete resumable state.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSnapshot {
    /// The spec the session was opened with (resume requires a bitwise
    /// match against the re-opening client's spec).
    pub spec: OpenSpec,
    /// Measurements processed so far — the resume point.
    pub step: u64,
    /// The last authority-clamped hyperparameters served (the excursion
    /// reference for the next update).
    pub last: Option<Hyper>,
    /// The verdict on the most recently processed measurement, kept so
    /// a restored session can replay the reply a reconnecting client
    /// lost (idempotent retry) instead of double-advancing.
    pub last_outcome: Option<Outcome>,
    /// Quality-gate state block.
    pub gate_state: String,
    /// Optimizer checkpoint block (`None` for stateless optimizers).
    pub opt_state: Option<String>,
}

/// Serializes a snapshot bit-exactly.
pub fn encode(snap: &SessionSnapshot) -> String {
    let mut out = String::new();
    out.push_str(HEADER);
    out.push('\n');
    out.push_str(&format!("session {}\n", snap.spec.session));
    out.push_str(&format!("optimizer {}\n", snap.spec.optimizer));
    out.push_str(&format!("value {}\n", f32_row(&[snap.spec.value])));
    out.push_str(&format!("dim {}\n", snap.spec.dim));
    out.push_str(&format!("step {}\n", snap.step));
    let a = &snap.spec.authority;
    out.push_str(&format!(
        "authority {}\n",
        f32_row(&[
            a.max_lr_step,
            a.max_momentum_step,
            a.lr_min,
            a.lr_max,
            a.momentum_min,
            a.momentum_max,
        ])
    ));
    out.push_str(&format!("filter_window {}\n", snap.spec.filter.window));
    out.push_str(&format!("filter_beta {}\n", f64_hex(snap.spec.filter.beta)));
    out.push_str(&format!(
        "filter_tolerance {}\n",
        f64_hex(snap.spec.filter.tolerance)
    ));
    match snap.last {
        Some(h) => out.push_str(&format!(
            "last {}\n",
            f32_row(&[h.lr, h.momentum, h.grad_scale])
        )),
        None => out.push_str("last -\n"),
    }
    match &snap.last_outcome {
        None => out.push_str("outcome -\n"),
        Some(Outcome::Tuned { hyper, clamped }) => out.push_str(&format!(
            "outcome tuned {} {}\n",
            f32_row(&[hyper.lr, hyper.momentum, hyper.grad_scale]),
            u8::from(*clamped)
        )),
        // Filter reasons are single-line human text; the field value is
        // the rest of the line, so spaces inside it are fine.
        Some(Outcome::Rejected { reason }) => {
            out.push_str(&format!("outcome rejected {reason}\n"));
        }
    }
    out.push_str(&format!("gate_lines {}\n", snap.gate_state.lines().count()));
    out.push_str(&snap.gate_state);
    if !snap.gate_state.ends_with('\n') {
        out.push('\n');
    }
    match &snap.opt_state {
        Some(text) => {
            out.push_str("opt_state present\n");
            out.push_str(text);
            if !text.ends_with('\n') {
                out.push('\n');
            }
        }
        None => out.push_str("opt_state none\n"),
    }
    out
}

/// Line-oriented `key value` reader (the fleet codec's discipline).
struct Fields<'a> {
    lines: std::str::Lines<'a>,
}

impl<'a> Fields<'a> {
    fn new(text: &'a str) -> Result<Fields<'a>, SnapshotError> {
        let mut lines = text.lines();
        match lines.next() {
            Some(h) if h == HEADER => Ok(Fields { lines }),
            Some(h) => Err(SnapshotError::new(format!(
                "expected header {HEADER:?}, found {h:?}"
            ))),
            None => Err(SnapshotError::new("empty payload")),
        }
    }

    fn field(&mut self, key: &str) -> Result<&'a str, SnapshotError> {
        let line = self
            .lines
            .next()
            .ok_or_else(|| SnapshotError::new(format!("truncated before field {key:?}")))?;
        match line.split_once(' ') {
            Some((k, v)) if k == key => Ok(v),
            _ => Err(SnapshotError::new(format!(
                "expected field {key:?}, found line {line:?}"
            ))),
        }
    }

    fn block(&mut self, nlines: usize) -> Result<String, SnapshotError> {
        let mut out = String::new();
        for _ in 0..nlines {
            let line = self
                .lines
                .next()
                .ok_or_else(|| SnapshotError::new("truncated inside a state block"))?;
            out.push_str(line);
            out.push('\n');
        }
        Ok(out)
    }

    fn rest(self) -> String {
        let mut out = String::new();
        for line in self.lines {
            out.push_str(line);
            out.push('\n');
        }
        out
    }
}

fn scalar_row(text: &str, want: usize, what: &str) -> Result<Vec<f32>, SnapshotError> {
    let row = f32_unrow(text)?;
    if row.len() != want {
        return Err(SnapshotError::new(format!(
            "{what}: expected {want} values, found {}",
            row.len()
        )));
    }
    Ok(row)
}

/// Parses [`encode`] output.
///
/// # Errors
///
/// [`SnapshotError`] on any structural or bit-pattern mismatch.
pub fn decode(text: &str) -> Result<SessionSnapshot, SnapshotError> {
    let mut f = Fields::new(text)?;
    let session = f.field("session")?.to_string();
    let optimizer = f.field("optimizer")?.to_string();
    let value = scalar_row(f.field("value")?, 1, "value")?[0];
    let dim = f
        .field("dim")?
        .parse()
        .map_err(|_| SnapshotError::new("bad dim"))?;
    let step = f
        .field("step")?
        .parse()
        .map_err(|_| SnapshotError::new("bad step"))?;
    let a = scalar_row(f.field("authority")?, 6, "authority")?;
    let authority = Authority {
        max_lr_step: a[0],
        max_momentum_step: a[1],
        lr_min: a[2],
        lr_max: a[3],
        momentum_min: a[4],
        momentum_max: a[5],
    };
    let filter = FilterSpec {
        window: f
            .field("filter_window")?
            .parse()
            .map_err(|_| SnapshotError::new("bad filter_window"))?,
        beta: f64_unhex(f.field("filter_beta")?)?,
        tolerance: f64_unhex(f.field("filter_tolerance")?)?,
    };
    let last = match f.field("last")? {
        "-" => None,
        row => {
            let h = scalar_row(row, 3, "last")?;
            Some(Hyper {
                lr: h[0],
                momentum: h[1],
                grad_scale: h[2],
            })
        }
    };
    let last_outcome = match f.field("outcome")? {
        "-" => None,
        text => match text.split_once(' ') {
            Some(("tuned", rest)) => {
                let (row, clamped) = rest
                    .rsplit_once(' ')
                    .ok_or_else(|| SnapshotError::new("bad tuned outcome"))?;
                let h = scalar_row(row, 3, "outcome")?;
                let clamped = match clamped {
                    "0" => false,
                    "1" => true,
                    _ => return Err(SnapshotError::new("bad outcome clamped flag")),
                };
                Some(Outcome::Tuned {
                    hyper: Hyper {
                        lr: h[0],
                        momentum: h[1],
                        grad_scale: h[2],
                    },
                    clamped,
                })
            }
            Some(("rejected", reason)) => Some(Outcome::Rejected {
                reason: reason.to_string(),
            }),
            _ => return Err(SnapshotError::new(format!("bad outcome marker {text:?}"))),
        },
    };
    let gate_lines = f
        .field("gate_lines")?
        .parse()
        .map_err(|_| SnapshotError::new("bad gate_lines"))?;
    let gate_state = f.block(gate_lines)?;
    let opt_state = match f.field("opt_state")? {
        "none" => None,
        "present" => {
            let rest = f.rest();
            if rest.is_empty() {
                return Err(SnapshotError::new("empty opt_state block"));
            }
            Some(rest)
        }
        other => {
            return Err(SnapshotError::new(format!(
                "bad opt_state marker {other:?}"
            )))
        }
    };
    Ok(SessionSnapshot {
        spec: OpenSpec {
            session,
            optimizer,
            value,
            dim,
            authority,
            filter,
        },
        step,
        last,
        last_outcome,
        gate_state,
        opt_state,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot() -> SessionSnapshot {
        SessionSnapshot {
            spec: OpenSpec {
                session: "job-7".to_string(),
                optimizer: "yellowfin".to_string(),
                value: 1.0,
                dim: 12,
                authority: Authority::default(),
                filter: FilterSpec::default(),
            },
            step: 41,
            last: Some(Hyper {
                lr: 0.0625,
                momentum: 0.875,
                grad_scale: 1.0,
            }),
            last_outcome: Some(Outcome::Tuned {
                hyper: Hyper {
                    lr: 0.0625,
                    momentum: 0.875,
                    grad_scale: 1.0,
                },
                clamped: true,
            }),
            gate_state: "version 1\ntolerance 4024000000000000\n".to_string(),
            opt_state: Some("kind yellowfin\nversion 1\nlr 3dcccccd\n".to_string()),
        }
    }

    #[test]
    fn round_trips_bit_exactly() {
        let snap = snapshot();
        assert_eq!(decode(&encode(&snap)).unwrap(), snap);
        let mut bare = snapshot();
        bare.last = None;
        bare.last_outcome = None;
        bare.opt_state = None;
        assert_eq!(decode(&encode(&bare)).unwrap(), bare);
        let mut rejected = snapshot();
        rejected.last_outcome = Some(Outcome::Rejected {
            reason: "loss spike: 12.5 exceeds the envelope".to_string(),
        });
        assert_eq!(decode(&encode(&rejected)).unwrap(), rejected);
    }

    #[test]
    fn special_float_values_survive() {
        let mut snap = snapshot();
        snap.spec.value = f32::from_bits(0x7fc0_dead);
        snap.last = Some(Hyper {
            lr: f32::MIN_POSITIVE,
            momentum: -0.0,
            grad_scale: f32::INFINITY,
        });
        let back = decode(&encode(&snap)).unwrap();
        assert_eq!(back.spec.value.to_bits(), snap.spec.value.to_bits());
        let (a, b) = (back.last.unwrap(), snap.last.unwrap());
        assert_eq!(a.lr.to_bits(), b.lr.to_bits());
        assert_eq!(a.momentum.to_bits(), b.momentum.to_bits());
        assert_eq!(a.grad_scale.to_bits(), b.grad_scale.to_bits());
    }

    #[test]
    fn truncations_and_corruption_are_rejected() {
        let text = encode(&snapshot());
        for cut in [5, text.len() / 3, text.len() / 2] {
            assert!(decode(&text[..cut]).is_err(), "cut at {cut}");
        }
        assert!(decode(&text.replace("opt_state present", "opt_state maybe")).is_err());
        assert!(decode(&text.replace("gate_lines 2", "gate_lines 99")).is_err());
        assert!(decode(&text.replace("outcome tuned", "outcome perhaps")).is_err());
        assert!(decode("wrong header\n").is_err());
    }
}
