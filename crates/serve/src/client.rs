//! A small blocking client for the serve protocol, hardened for real
//! networks.
//!
//! One TCP connection, synchronous request/reply per call. This is the
//! low-level building block: the `yf-experiments` crate wraps it in a
//! remote `Optimizer` so a trainer loop can consume served
//! hyperparameters without knowing the protocol exists.
//!
//! Hardening contract:
//!
//! - every connect, read, and write carries a deadline
//!   ([`ClientConfig`], `YF_SERVE_CLIENT_*` knobs) — a dead or
//!   partitioned server surfaces as [`ClientError::Timeout`], never a
//!   hang;
//! - reply matching is by `(session, step)`, and stale frames (the
//!   duplicate replies a retried or chaos-duplicated request produces)
//!   are skipped, not misattributed;
//! - after any [`ClientError::Io`] / [`ClientError::Timeout`] the
//!   connection must be considered poisoned — a timed-out read may have
//!   consumed a partial frame — and replaced via a fresh
//!   [`Client::connect_with`]; [`Backoff`] provides the deterministic
//!   capped-exponential schedule for those retries.

use crate::proto::{ClientFrame, OpenSpec, ProtoError, ServerFrame};
use std::fmt;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;
use yf_optim::Hyper;
use yf_tensor::env;

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write, or server hang-up).
    Io(io::Error),
    /// A deadline expired (connect, read, or write). The connection may
    /// have lost a partial frame; reconnect before reusing the session.
    Timeout(io::Error),
    /// The server sent a frame this client cannot parse, or one that
    /// makes no sense for the pending request.
    Protocol(String),
    /// The server answered with an `error` frame.
    Server(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "serve client i/o: {e}"),
            ClientError::Timeout(e) => write!(f, "serve client deadline: {e}"),
            ClientError::Protocol(m) => write!(f, "serve client protocol: {m}"),
            ClientError::Server(m) => write!(f, "serve server error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        // Deadline expiry is WouldBlock or TimedOut depending on the
        // platform's socket-timeout reporting; fold both into the typed
        // Timeout variant so callers can branch on it.
        match e.kind() {
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => ClientError::Timeout(e),
            _ => ClientError::Io(e),
        }
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> ClientError {
        ClientError::Protocol(e.to_string())
    }
}

/// Deadlines for one client connection. [`ClientConfig::from_env`]
/// layers the `YF_SERVE_CLIENT_*` knobs over these defaults with the
/// workspace's warn-and-default parsing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientConfig {
    /// Deadline for establishing the TCP connection.
    pub connect_timeout: Duration,
    /// Deadline for each blocking read (one reply frame).
    pub read_timeout: Duration,
    /// Deadline for each blocking write (one request frame).
    pub write_timeout: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_secs(5),
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(5),
        }
    }
}

impl ClientConfig {
    /// The defaults with `YF_SERVE_CLIENT_CONNECT_MS`, `_READ_MS`, and
    /// `_WRITE_MS` applied (hardened parsing: malformed values warn on
    /// stderr and fall back).
    pub fn from_env() -> ClientConfig {
        let mut cfg = ClientConfig::default();
        let ms = |raw: &str| raw.trim().parse::<u64>().ok().filter(|&n| n > 0);
        if let Some(n) = env::parse_with("YF_SERVE_CLIENT_CONNECT_MS", ms) {
            cfg.connect_timeout = Duration::from_millis(n);
        }
        if let Some(n) = env::parse_with("YF_SERVE_CLIENT_READ_MS", ms) {
            cfg.read_timeout = Duration::from_millis(n);
        }
        if let Some(n) = env::parse_with("YF_SERVE_CLIENT_WRITE_MS", ms) {
            cfg.write_timeout = Duration::from_millis(n);
        }
        cfg
    }
}

/// A deterministic capped-exponential retry schedule: attempt `i`
/// (zero-based) waits `min(base * 2^i, cap)`. No jitter — reconnect
/// timing is part of the reproducible-failure story, the same way
/// `YF_FAULT`/`YF_CHAOS` schedules are.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backoff {
    /// First retry delay.
    pub base: Duration,
    /// Ceiling for every later delay.
    pub cap: Duration,
}

impl Default for Backoff {
    fn default() -> Self {
        Backoff {
            base: Duration::from_millis(50),
            cap: Duration::from_secs(2),
        }
    }
}

impl Backoff {
    /// The delay before retry `attempt` (zero-based).
    pub fn delay(&self, attempt: u32) -> Duration {
        let factor = 2u32.saturating_pow(attempt.min(20));
        self.base.saturating_mul(factor).min(self.cap)
    }
}

/// The server's verdict on one measurement, client side.
#[derive(Debug, Clone, PartialEq)]
pub enum MeasureReply {
    /// Accepted: apply these hyperparameters this step.
    Tuned { hyper: Hyper, clamped: bool },
    /// Rejected by the quality filter: skip the tuned update this step
    /// (the step still counted server-side).
    Rejected { reason: String },
}

/// A blocking serve-protocol client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a running server with the default deadlines.
    ///
    /// # Errors
    ///
    /// Transport errors from the connect.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        Client::connect_with(addr, &ClientConfig::default())
    }

    /// Connects with explicit deadlines. Every resolved address is
    /// tried in order, each under `cfg.connect_timeout`; the last
    /// failure is returned if none accepts.
    ///
    /// # Errors
    ///
    /// Transport errors from the connect; [`ClientError::Timeout`] when
    /// the deadline expired.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        cfg: &ClientConfig,
    ) -> Result<Client, ClientError> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        let mut last: io::Error =
            io::Error::new(io::ErrorKind::AddrNotAvailable, "no addresses resolved");
        for a in &addrs {
            match TcpStream::connect_timeout(a, cfg.connect_timeout) {
                Ok(stream) => {
                    stream.set_nodelay(true)?;
                    stream.set_read_timeout(Some(cfg.read_timeout))?;
                    stream.set_write_timeout(Some(cfg.write_timeout))?;
                    let reader = BufReader::new(stream.try_clone()?);
                    return Ok(Client {
                        reader,
                        writer: stream,
                    });
                }
                Err(e) => last = e,
            }
        }
        Err(last.into())
    }

    /// Sends one frame.
    ///
    /// # Errors
    ///
    /// Transport errors from the write; [`ClientError::Timeout`] when
    /// the write deadline expired.
    pub fn send(&mut self, frame: &ClientFrame) -> Result<(), ClientError> {
        let mut line = frame.to_line();
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        Ok(())
    }

    /// Blocks (up to the read deadline) for the next server frame.
    ///
    /// # Errors
    ///
    /// Transport errors, EOF (server hang-up), unparseable frames, or
    /// [`ClientError::Timeout`]. After a timeout the connection is
    /// poisoned (a partial frame may have been consumed): reconnect.
    pub fn recv(&mut self) -> Result<ServerFrame, ClientError> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        Ok(ServerFrame::from_line(line.trim_end_matches(['\n', '\r']))?)
    }

    /// Opens (or resumes) a session; returns the step index the server
    /// expects next — 0 for a fresh session, the replay point after a
    /// resume. Stale replies to earlier requests (duplicates left over
    /// from a chaotic network) are skipped, not misread.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] relays the server's rejection reason.
    pub fn open(&mut self, spec: OpenSpec) -> Result<u64, ClientError> {
        let name = spec.session.clone();
        self.send(&ClientFrame::Open(spec))?;
        loop {
            match self.recv()? {
                ServerFrame::Opened { session, step } if session == name => return Ok(step),
                // Leftover replies to requests sent before this open
                // (duplicated or late frames): skip.
                ServerFrame::Tuned { .. }
                | ServerFrame::Rejected { .. }
                | ServerFrame::Pong { .. }
                | ServerFrame::Closed { .. } => {}
                ServerFrame::Error { message, .. } => return Err(ClientError::Server(message)),
                other => {
                    return Err(ClientError::Protocol(format!(
                        "expected opened, got {other:?}"
                    )))
                }
            }
        }
    }

    /// Streams one measurement and blocks for the verdict for exactly
    /// `(session, step)`. Replies to earlier steps — duplicates from
    /// retries or a chaotic network — are skipped.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] relays per-frame errors (step mismatch,
    /// unknown session); transport errors surface as
    /// [`ClientError::Io`] / [`ClientError::Timeout`].
    pub fn measure(
        &mut self,
        session: &str,
        step: u64,
        loss: f32,
        grads: &[f32],
    ) -> Result<MeasureReply, ClientError> {
        self.send(&ClientFrame::Measure {
            session: session.to_string(),
            step,
            loss,
            grads: grads.to_vec(),
        })?;
        loop {
            match self.recv()? {
                ServerFrame::Tuned {
                    session: s,
                    step: t,
                    hyper,
                    clamped,
                } => {
                    if s == session && t == step {
                        return Ok(MeasureReply::Tuned { hyper, clamped });
                    }
                    if t >= step {
                        return Err(ClientError::Protocol(format!(
                            "tuned reply for {s:?} step {t}, expected {session:?} step {step}"
                        )));
                    }
                    // t < step: stale duplicate; skip.
                }
                ServerFrame::Rejected {
                    session: s,
                    step: t,
                    reason,
                } => {
                    if s == session && t == step {
                        return Ok(MeasureReply::Rejected { reason });
                    }
                    if t >= step {
                        return Err(ClientError::Protocol(format!(
                            "rejected reply for {s:?} step {t}, expected {session:?} step {step}"
                        )));
                    }
                }
                // A late opened/pong from before this request: skip.
                ServerFrame::Opened { .. } | ServerFrame::Pong { .. } => {}
                ServerFrame::Error { message, .. } => return Err(ClientError::Server(message)),
                other => {
                    return Err(ClientError::Protocol(format!(
                        "expected hyper/rejected, got {other:?}"
                    )))
                }
            }
        }
    }

    /// Detaches a session (it persists server-side and can be
    /// re-opened).
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] when the session is not open here.
    pub fn close_session(&mut self, session: &str) -> Result<(), ClientError> {
        self.send(&ClientFrame::Close {
            session: session.to_string(),
        })?;
        loop {
            match self.recv()? {
                ServerFrame::Closed { .. } => return Ok(()),
                // Stale measurement replies still in flight: skip.
                ServerFrame::Tuned { .. } | ServerFrame::Rejected { .. } => {}
                ServerFrame::Error { message, .. } => return Err(ClientError::Server(message)),
                other => {
                    return Err(ClientError::Protocol(format!(
                        "expected closed, got {other:?}"
                    )))
                }
            }
        }
    }

    /// Heartbeat round-trip. Pongs for earlier tokens are stale
    /// duplicates and are skipped.
    ///
    /// # Errors
    ///
    /// Transport or protocol errors.
    pub fn ping(&mut self, token: u64) -> Result<(), ClientError> {
        self.send(&ClientFrame::Ping { token })?;
        loop {
            match self.recv()? {
                ServerFrame::Pong { token: t } if t == token => return Ok(()),
                // Stale replies (including pongs to earlier tokens).
                ServerFrame::Tuned { .. }
                | ServerFrame::Rejected { .. }
                | ServerFrame::Pong { .. } => {}
                other => {
                    return Err(ClientError::Protocol(format!(
                        "expected pong, got {other:?}"
                    )))
                }
            }
        }
    }

    /// Asks the server to drain (snapshot everything and shut down).
    /// Returns the number of sessions snapshotted.
    ///
    /// # Errors
    ///
    /// Transport or protocol errors.
    pub fn drain(&mut self) -> Result<u64, ClientError> {
        self.send(&ClientFrame::Drain)?;
        loop {
            match self.recv()? {
                ServerFrame::Draining { sessions } => return Ok(sessions),
                ServerFrame::Tuned { .. } | ServerFrame::Rejected { .. } => {}
                other => {
                    return Err(ClientError::Protocol(format!(
                        "expected draining, got {other:?}"
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_schedule_is_deterministic_and_capped() {
        let b = Backoff {
            base: Duration::from_millis(10),
            cap: Duration::from_millis(100),
        };
        assert_eq!(b.delay(0), Duration::from_millis(10));
        assert_eq!(b.delay(1), Duration::from_millis(20));
        assert_eq!(b.delay(2), Duration::from_millis(40));
        assert_eq!(b.delay(3), Duration::from_millis(80));
        assert_eq!(b.delay(4), Duration::from_millis(100), "capped");
        assert_eq!(b.delay(60), Duration::from_millis(100), "no overflow");
    }

    #[test]
    fn timeouts_are_typed_not_generic_io() {
        let wb: ClientError = io::Error::new(io::ErrorKind::WouldBlock, "t").into();
        assert!(matches!(wb, ClientError::Timeout(_)));
        let to: ClientError = io::Error::new(io::ErrorKind::TimedOut, "t").into();
        assert!(matches!(to, ClientError::Timeout(_)));
        let other: ClientError = io::Error::new(io::ErrorKind::BrokenPipe, "t").into();
        assert!(matches!(other, ClientError::Io(_)));
    }

    #[test]
    fn client_config_env_knobs_use_hardened_parsing() {
        std::env::set_var("YF_SERVE_CLIENT_CONNECT_MS", "250");
        std::env::set_var("YF_SERVE_CLIENT_READ_MS", "soon");
        let cfg = ClientConfig::from_env();
        assert_eq!(cfg.connect_timeout, Duration::from_millis(250));
        assert_eq!(
            cfg.read_timeout,
            ClientConfig::default().read_timeout,
            "malformed falls back"
        );
        std::env::remove_var("YF_SERVE_CLIENT_CONNECT_MS");
        std::env::remove_var("YF_SERVE_CLIENT_READ_MS");
    }

    #[test]
    fn connecting_to_a_dead_port_fails_fast() {
        // Bind-then-drop picks a port that refuses connections.
        let port = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().port()
        };
        let cfg = ClientConfig {
            connect_timeout: Duration::from_millis(500),
            ..ClientConfig::default()
        };
        let start = std::time::Instant::now();
        let err = match Client::connect_with(("127.0.0.1", port), &cfg) {
            Err(e) => e,
            Ok(_) => panic!("a dropped listener's port must refuse the connect"),
        };
        assert!(matches!(err, ClientError::Io(_) | ClientError::Timeout(_)));
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "a refused/dead port must not hang the connect"
        );
    }
}
