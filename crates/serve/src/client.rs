//! A small blocking client for the serve protocol, hardened for real
//! networks.
//!
//! One TCP connection, synchronous request/reply per call. This is the
//! low-level building block: the `yf-experiments` crate wraps it in a
//! remote `Optimizer` so a trainer loop can consume served
//! hyperparameters without knowing the protocol exists.
//!
//! Hardening contract:
//!
//! - every connect, read, and write carries a deadline
//!   ([`ClientConfig`], `YF_SERVE_CLIENT_*` knobs) — a dead or
//!   partitioned server surfaces as [`ClientError::Timeout`], never a
//!   hang;
//! - reply matching is by `(session, step)`, and stale frames (the
//!   duplicate replies a retried or chaos-duplicated request produces)
//!   are skipped, not misattributed;
//! - after any [`ClientError::Io`] / [`ClientError::Timeout`] the
//!   connection must be considered poisoned — a timed-out read may have
//!   consumed a partial frame — and replaced via a fresh
//!   [`Client::connect_with`]; [`Backoff`] provides the deterministic
//!   capped-exponential schedule for those retries.
//!
//! ## The binary fast path
//!
//! With `ClientConfig::wire = Binary` (knob: `YF_SERVE_WIRE=binary`)
//! the client requests the [`yf_wire::binary`] data-plane dialect at
//! `open` and, once the server echoes it, streams measurements as raw
//! binary frames — including `grad_delta` frames (XOR/RLE against the
//! previous step's gradient) whenever they are smaller than the full
//! payload. Deltas are bit-exact by construction, and the client falls
//! back to full frames whenever its base is uncertain: after an error,
//! a reconnect, or for replayed steps that do not advance the server
//! session (whose base only moves on advancing measurements).
//!
//! ## Pipelining
//!
//! [`Client::measure`] is lock-step — one verdict per measurement —
//! because its callers need the verdict to produce the next gradient.
//! [`Client::submit_measure`] / [`Client::drain_verdicts`] expose the
//! windowed path (`ClientConfig::window`, knob
//! `YF_SERVE_CLIENT_WINDOW`): up to `window` measurements may be in
//! flight before a send blocks on the oldest verdict. Replies are
//! matched in submission order with the same stale-skip rules as
//! `measure`, so duplicates from a chaotic network are absorbed.

use crate::proto::{self, ClientFrame, OpenSpec, ProtoError, ServerFrame, WireDialect};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;
use yf_optim::Hyper;
use yf_tensor::env;
use yf_wire::binary::{self, RawFrame, ReadError};

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write, or server hang-up).
    Io(io::Error),
    /// A deadline expired (connect, read, or write). The connection may
    /// have lost a partial frame; reconnect before reusing the session.
    Timeout(io::Error),
    /// The server sent a frame this client cannot parse, or one that
    /// makes no sense for the pending request.
    Protocol(String),
    /// The server answered with an `error` frame.
    Server(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "serve client i/o: {e}"),
            ClientError::Timeout(e) => write!(f, "serve client deadline: {e}"),
            ClientError::Protocol(m) => write!(f, "serve client protocol: {m}"),
            ClientError::Server(m) => write!(f, "serve server error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        // Deadline expiry is WouldBlock or TimedOut depending on the
        // platform's socket-timeout reporting; fold both into the typed
        // Timeout variant so callers can branch on it.
        match e.kind() {
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => ClientError::Timeout(e),
            _ => ClientError::Io(e),
        }
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> ClientError {
        ClientError::Protocol(e.to_string())
    }
}

/// Deadlines for one client connection. [`ClientConfig::from_env`]
/// layers the `YF_SERVE_CLIENT_*` knobs over these defaults with the
/// workspace's warn-and-default parsing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientConfig {
    /// Deadline for establishing the TCP connection.
    pub connect_timeout: Duration,
    /// Deadline for each blocking read (one reply frame).
    pub read_timeout: Duration,
    /// Deadline for each blocking write (one request frame).
    pub write_timeout: Duration,
    /// The data-plane dialect to request at `open`. The connection only
    /// speaks binary after the server echoes it; against a JSON-only
    /// server this degrades transparently.
    pub wire: WireDialect,
    /// Send-ahead window for [`Client::submit_measure`]: how many
    /// measurements may be awaiting verdicts before a send blocks.
    /// 1 (the default) is lock-step.
    pub window: usize,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_secs(5),
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(5),
            wire: WireDialect::Json,
            window: 1,
        }
    }
}

impl ClientConfig {
    /// The defaults with `YF_SERVE_CLIENT_CONNECT_MS`, `_READ_MS`,
    /// `_WRITE_MS`, `YF_SERVE_WIRE`, and `YF_SERVE_CLIENT_WINDOW`
    /// applied (hardened parsing: malformed values warn on stderr and
    /// fall back).
    pub fn from_env() -> ClientConfig {
        let mut cfg = ClientConfig::default();
        let ms = |raw: &str| raw.trim().parse::<u64>().ok().filter(|&n| n > 0);
        if let Some(n) = env::parse_with("YF_SERVE_CLIENT_CONNECT_MS", ms) {
            cfg.connect_timeout = Duration::from_millis(n);
        }
        if let Some(n) = env::parse_with("YF_SERVE_CLIENT_READ_MS", ms) {
            cfg.read_timeout = Duration::from_millis(n);
        }
        if let Some(n) = env::parse_with("YF_SERVE_CLIENT_WRITE_MS", ms) {
            cfg.write_timeout = Duration::from_millis(n);
        }
        cfg.wire = WireDialect::from_env();
        if let Some(n) = env::positive_usize("YF_SERVE_CLIENT_WINDOW") {
            cfg.window = n;
        }
        cfg
    }
}

/// A deterministic capped-exponential retry schedule: attempt `i`
/// (zero-based) waits `min(base * 2^i, cap)`. No jitter — reconnect
/// timing is part of the reproducible-failure story, the same way
/// `YF_FAULT`/`YF_CHAOS` schedules are.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backoff {
    /// First retry delay.
    pub base: Duration,
    /// Ceiling for every later delay.
    pub cap: Duration,
}

impl Default for Backoff {
    fn default() -> Self {
        Backoff {
            base: Duration::from_millis(50),
            cap: Duration::from_secs(2),
        }
    }
}

impl Backoff {
    /// The delay before retry `attempt` (zero-based).
    pub fn delay(&self, attempt: u32) -> Duration {
        let factor = 2u32.saturating_pow(attempt.min(20));
        self.base.saturating_mul(factor).min(self.cap)
    }
}

/// The server's verdict on one measurement, client side.
#[derive(Debug, Clone, PartialEq)]
pub enum MeasureReply {
    /// Accepted: apply these hyperparameters this step.
    Tuned { hyper: Hyper, clamped: bool },
    /// Rejected by the quality filter: skip the tuned update this step
    /// (the step still counted server-side).
    Rejected { reason: String },
}

/// Per-session wire bookkeeping for the delta encoder.
struct SessionWire {
    /// The step the server said it expects next at `open`. Steps below
    /// this are idempotent replays that do *not* advance the server
    /// session — so they never move its delta base, and must never
    /// move ours.
    advance_from: u64,
    /// The gradient of the newest advancing measurement sent on this
    /// connection, keyed by its step: the delta base the server will
    /// hold once it processes that frame.
    base: Option<(u64, Vec<f32>)>,
}

/// A blocking serve-protocol client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    /// The dialect requested in `open` frames.
    requested: WireDialect,
    /// The dialect the server has actually echoed (starts Json; flips
    /// to Binary on the first `opened` ack that grants it).
    negotiated: WireDialect,
    window: usize,
    /// `(session, step)` of submitted measurements whose verdicts have
    /// not arrived, oldest first.
    in_flight: VecDeque<(String, u64)>,
    sessions: HashMap<String, SessionWire>,
    deltas_sent: u64,
}

impl Client {
    /// Connects to a running server with the environment-configured
    /// deadlines, dialect, and window ([`ClientConfig::from_env`]), so
    /// `YF_SERVE_WIRE` / `YF_SERVE_CLIENT_WINDOW` reach every caller
    /// that does not construct an explicit config.
    ///
    /// # Errors
    ///
    /// Transport errors from the connect.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        Client::connect_with(addr, &ClientConfig::from_env())
    }

    /// Connects with explicit deadlines. Every resolved address is
    /// tried in order, each under `cfg.connect_timeout`; the last
    /// failure is returned if none accepts.
    ///
    /// # Errors
    ///
    /// Transport errors from the connect; [`ClientError::Timeout`] when
    /// the deadline expired.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        cfg: &ClientConfig,
    ) -> Result<Client, ClientError> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        let mut last: io::Error =
            io::Error::new(io::ErrorKind::AddrNotAvailable, "no addresses resolved");
        for a in &addrs {
            match TcpStream::connect_timeout(a, cfg.connect_timeout) {
                Ok(stream) => {
                    stream.set_nodelay(true)?;
                    stream.set_read_timeout(Some(cfg.read_timeout))?;
                    stream.set_write_timeout(Some(cfg.write_timeout))?;
                    let reader = BufReader::new(stream.try_clone()?);
                    return Ok(Client {
                        reader,
                        writer: stream,
                        requested: cfg.wire,
                        negotiated: WireDialect::Json,
                        window: cfg.window.max(1),
                        in_flight: VecDeque::new(),
                        sessions: HashMap::new(),
                        deltas_sent: 0,
                    });
                }
                Err(e) => last = e,
            }
        }
        Err(last.into())
    }

    /// Sends one frame.
    ///
    /// # Errors
    ///
    /// Transport errors from the write; [`ClientError::Timeout`] when
    /// the write deadline expired.
    pub fn send(&mut self, frame: &ClientFrame) -> Result<(), ClientError> {
        let mut line = frame.to_line();
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        Ok(())
    }

    /// Blocks (up to the read deadline) for the next server frame, in
    /// either dialect.
    ///
    /// # Errors
    ///
    /// Transport errors, EOF (server hang-up), unparseable frames, or
    /// [`ClientError::Timeout`]. After a timeout the connection is
    /// poisoned (a partial frame may have been consumed): reconnect.
    pub fn recv(&mut self) -> Result<ServerFrame, ClientError> {
        match binary::read_frame(&mut self.reader) {
            Ok(None) => Err(ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ))),
            Ok(Some(RawFrame::Line(line))) => Ok(ServerFrame::from_line(&line)?),
            Ok(Some(RawFrame::Binary(raw))) => {
                let (tag, payload) = binary::decode(&raw).map_err(ProtoError::from)?;
                Ok(ServerFrame::from_binary(tag, payload)?)
            }
            Err(ReadError::Io(e)) => Err(e.into()),
            Err(ReadError::Frame(e)) => Err(ClientError::Protocol(e.to_string())),
        }
    }

    /// The data-plane dialect the server has granted this connection
    /// (Json until an `opened` ack says otherwise).
    pub fn wire(&self) -> WireDialect {
        self.negotiated
    }

    /// How many delta-encoded measurement frames this client has sent.
    pub fn deltas_sent(&self) -> u64 {
        self.deltas_sent
    }

    /// Measurements submitted but not yet answered.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Opens (or resumes) a session; returns the step index the server
    /// expects next — 0 for a fresh session, the replay point after a
    /// resume. Stale replies to earlier requests (duplicates left over
    /// from a chaotic network) are skipped, not misread.
    ///
    /// This is also where the wire dialect is negotiated: the `open`
    /// carries [`ClientConfig::wire`], and the connection speaks binary
    /// only after the server's `opened` echoes it.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] relays the server's rejection reason.
    pub fn open(&mut self, spec: OpenSpec) -> Result<u64, ClientError> {
        let name = spec.session.clone();
        self.send(&ClientFrame::Open {
            spec,
            wire: self.requested,
        })?;
        loop {
            match self.recv()? {
                ServerFrame::Opened {
                    session,
                    step,
                    wire,
                } if session == name => {
                    if self.requested == WireDialect::Binary && wire == WireDialect::Binary {
                        self.negotiated = WireDialect::Binary;
                    }
                    self.sessions.insert(
                        name,
                        SessionWire {
                            advance_from: step,
                            base: None,
                        },
                    );
                    return Ok(step);
                }
                // Leftover replies to requests sent before this open
                // (duplicated or late frames): skip.
                ServerFrame::Opened { .. }
                | ServerFrame::Tuned { .. }
                | ServerFrame::Rejected { .. }
                | ServerFrame::Pong { .. }
                | ServerFrame::Closed { .. } => {}
                ServerFrame::Error { message, .. } => return Err(ClientError::Server(message)),
                other => {
                    return Err(ClientError::Protocol(format!(
                        "expected opened, got {other:?}"
                    )))
                }
            }
        }
    }

    /// Encodes and sends one measurement in the negotiated dialect,
    /// choosing a delta frame when the client holds a usable base and
    /// the delta actually saves bytes.
    fn send_measure_frame(
        &mut self,
        session: &str,
        step: u64,
        loss: f32,
        grads: &[f32],
    ) -> Result<(), ClientError> {
        if self.negotiated != WireDialect::Binary {
            return self.send(&ClientFrame::Measure {
                session: session.to_string(),
                step,
                loss,
                grads: grads.to_vec(),
            });
        }
        let mut frame: Option<Vec<u8>> = None;
        if let Some(sw) = self.sessions.get(session) {
            if let Some((base_step, base)) = &sw.base {
                if base_step + 1 == step && base.len() == grads.len() {
                    let runs = binary::delta_encode(base, grads);
                    // Only worth it when smaller than the raw payload.
                    if runs.len() < grads.len() * 4 {
                        frame = Some(proto::encode_grad_delta(
                            session,
                            step,
                            loss,
                            grads.len(),
                            &runs,
                        ));
                    }
                }
            }
        }
        let delta = frame.is_some();
        let bytes = frame.unwrap_or_else(|| proto::encode_measure(session, step, loss, grads));
        self.writer.write_all(&bytes)?;
        if delta {
            self.deltas_sent += 1;
        }
        // Move the base optimistically — but only for advancing steps.
        // A replayed step (below `advance_from`) is answered from the
        // server's verdict cache without touching its base, so ours
        // must not move either.
        if let Some(sw) = self.sessions.get_mut(session) {
            if step >= sw.advance_from {
                sw.base = Some((step, grads.to_vec()));
            }
        }
        Ok(())
    }

    /// Drops every delta base. Called on any error: a failed or
    /// rejected frame means the server's base may not match ours, so
    /// the next measurement goes out as a full gradient.
    fn reset_bases(&mut self) {
        for sw in self.sessions.values_mut() {
            sw.base = None;
        }
    }

    /// Blocks for the verdict of the *oldest* in-flight measurement,
    /// skipping stale duplicates. Transport failures clear the
    /// in-flight queue (the connection is poisoned anyway); server
    /// `error` frames consume the oldest slot — the server answers
    /// every data frame in order, so the error is that frame's reply.
    fn recv_verdict(&mut self) -> Result<(String, u64, MeasureReply), ClientError> {
        let (ref sess, step) = *self
            .in_flight
            .front()
            .expect("recv_verdict with nothing in flight");
        let sess = sess.clone();
        loop {
            let frame = match self.recv() {
                Ok(f) => f,
                Err(e) => {
                    self.in_flight.clear();
                    self.reset_bases();
                    return Err(e);
                }
            };
            match frame {
                ServerFrame::Tuned {
                    session: s,
                    step: t,
                    hyper,
                    clamped,
                } => {
                    if s == sess && t == step {
                        self.in_flight.pop_front();
                        return Ok((s, t, MeasureReply::Tuned { hyper, clamped }));
                    }
                    if t >= step {
                        self.in_flight.clear();
                        self.reset_bases();
                        return Err(ClientError::Protocol(format!(
                            "tuned reply for {s:?} step {t}, expected {sess:?} step {step}"
                        )));
                    }
                    // t < step: stale duplicate; skip.
                }
                ServerFrame::Rejected {
                    session: s,
                    step: t,
                    reason,
                } => {
                    if s == sess && t == step {
                        self.in_flight.pop_front();
                        return Ok((s, t, MeasureReply::Rejected { reason }));
                    }
                    if t >= step {
                        self.in_flight.clear();
                        self.reset_bases();
                        return Err(ClientError::Protocol(format!(
                            "rejected reply for {s:?} step {t}, expected {sess:?} step {step}"
                        )));
                    }
                }
                // A late opened/pong from before this request: skip.
                ServerFrame::Opened { .. } | ServerFrame::Pong { .. } => {}
                ServerFrame::Error { message, .. } => {
                    self.in_flight.pop_front();
                    self.reset_bases();
                    return Err(ClientError::Server(message));
                }
                other => {
                    self.in_flight.clear();
                    self.reset_bases();
                    return Err(ClientError::Protocol(format!(
                        "expected hyper/rejected, got {other:?}"
                    )));
                }
            }
        }
    }

    /// Streams one measurement and blocks for the verdict for exactly
    /// `(session, step)`. Replies to earlier steps — duplicates from
    /// retries or a chaotic network — are skipped. Lock-step regardless
    /// of the configured window: callers of this method need the
    /// verdict before they can produce the next gradient.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] relays per-frame errors (step mismatch,
    /// unknown session); transport errors surface as
    /// [`ClientError::Io`] / [`ClientError::Timeout`].
    pub fn measure(
        &mut self,
        session: &str,
        step: u64,
        loss: f32,
        grads: &[f32],
    ) -> Result<MeasureReply, ClientError> {
        self.send_measure_frame(session, step, loss, grads)?;
        self.in_flight.push_back((session.to_string(), step));
        loop {
            let (s, t, reply) = self.recv_verdict()?;
            if s == session && t == step {
                return Ok(reply);
            }
            // A verdict for an older windowed submission (a caller
            // mixing the APIs): keep draining toward ours.
        }
    }

    /// Submits one measurement on the send-ahead window and returns any
    /// verdicts that had to be collected to keep at most
    /// [`ClientConfig::window`] measurements in flight (in submission
    /// order, tagged with their step). With `window = 1` this is
    /// exactly [`Client::measure`] with a different return shape.
    ///
    /// # Errors
    ///
    /// As [`Client::measure`]; any error also clears the in-flight
    /// queue and delta bases (resubmit from the replay buffer on a
    /// fresh connection).
    pub fn submit_measure(
        &mut self,
        session: &str,
        step: u64,
        loss: f32,
        grads: &[f32],
    ) -> Result<Vec<(u64, MeasureReply)>, ClientError> {
        self.send_measure_frame(session, step, loss, grads)?;
        self.in_flight.push_back((session.to_string(), step));
        let mut done = Vec::new();
        while self.in_flight.len() > self.window {
            let (_, t, reply) = self.recv_verdict()?;
            done.push((t, reply));
        }
        Ok(done)
    }

    /// Blocks until every in-flight measurement is answered; returns
    /// the verdicts in submission order, tagged with their step.
    ///
    /// # Errors
    ///
    /// As [`Client::measure`].
    pub fn drain_verdicts(&mut self) -> Result<Vec<(u64, MeasureReply)>, ClientError> {
        let mut done = Vec::new();
        while !self.in_flight.is_empty() {
            let (_, t, reply) = self.recv_verdict()?;
            done.push((t, reply));
        }
        Ok(done)
    }

    /// Detaches a session (it persists server-side and can be
    /// re-opened).
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] when the session is not open here.
    pub fn close_session(&mut self, session: &str) -> Result<(), ClientError> {
        self.send(&ClientFrame::Close {
            session: session.to_string(),
        })?;
        loop {
            match self.recv()? {
                ServerFrame::Closed { .. } => return Ok(()),
                // Stale measurement replies still in flight: skip.
                ServerFrame::Tuned { .. } | ServerFrame::Rejected { .. } => {}
                ServerFrame::Error { message, .. } => return Err(ClientError::Server(message)),
                other => {
                    return Err(ClientError::Protocol(format!(
                        "expected closed, got {other:?}"
                    )))
                }
            }
        }
    }

    /// Heartbeat round-trip. Pongs for earlier tokens are stale
    /// duplicates and are skipped.
    ///
    /// # Errors
    ///
    /// Transport or protocol errors.
    pub fn ping(&mut self, token: u64) -> Result<(), ClientError> {
        self.send(&ClientFrame::Ping { token })?;
        loop {
            match self.recv()? {
                ServerFrame::Pong { token: t } if t == token => return Ok(()),
                // Stale replies (including pongs to earlier tokens).
                ServerFrame::Tuned { .. }
                | ServerFrame::Rejected { .. }
                | ServerFrame::Pong { .. } => {}
                other => {
                    return Err(ClientError::Protocol(format!(
                        "expected pong, got {other:?}"
                    )))
                }
            }
        }
    }

    /// Asks the server to drain (snapshot everything and shut down).
    /// Returns the number of sessions snapshotted.
    ///
    /// # Errors
    ///
    /// Transport or protocol errors.
    pub fn drain(&mut self) -> Result<u64, ClientError> {
        self.send(&ClientFrame::Drain)?;
        loop {
            match self.recv()? {
                ServerFrame::Draining { sessions } => return Ok(sessions),
                ServerFrame::Tuned { .. } | ServerFrame::Rejected { .. } => {}
                other => {
                    return Err(ClientError::Protocol(format!(
                        "expected draining, got {other:?}"
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_schedule_is_deterministic_and_capped() {
        let b = Backoff {
            base: Duration::from_millis(10),
            cap: Duration::from_millis(100),
        };
        assert_eq!(b.delay(0), Duration::from_millis(10));
        assert_eq!(b.delay(1), Duration::from_millis(20));
        assert_eq!(b.delay(2), Duration::from_millis(40));
        assert_eq!(b.delay(3), Duration::from_millis(80));
        assert_eq!(b.delay(4), Duration::from_millis(100), "capped");
        assert_eq!(b.delay(60), Duration::from_millis(100), "no overflow");
    }

    #[test]
    fn timeouts_are_typed_not_generic_io() {
        let wb: ClientError = io::Error::new(io::ErrorKind::WouldBlock, "t").into();
        assert!(matches!(wb, ClientError::Timeout(_)));
        let to: ClientError = io::Error::new(io::ErrorKind::TimedOut, "t").into();
        assert!(matches!(to, ClientError::Timeout(_)));
        let other: ClientError = io::Error::new(io::ErrorKind::BrokenPipe, "t").into();
        assert!(matches!(other, ClientError::Io(_)));
    }

    #[test]
    fn client_config_env_knobs_use_hardened_parsing() {
        std::env::set_var("YF_SERVE_CLIENT_CONNECT_MS", "250");
        std::env::set_var("YF_SERVE_CLIENT_READ_MS", "soon");
        let cfg = ClientConfig::from_env();
        assert_eq!(cfg.connect_timeout, Duration::from_millis(250));
        assert_eq!(
            cfg.read_timeout,
            ClientConfig::default().read_timeout,
            "malformed falls back"
        );
        std::env::remove_var("YF_SERVE_CLIENT_CONNECT_MS");
        std::env::remove_var("YF_SERVE_CLIENT_READ_MS");
    }

    #[test]
    fn wire_and_window_env_knobs_use_hardened_parsing() {
        std::env::set_var("YF_SERVE_WIRE", "binary");
        std::env::set_var("YF_SERVE_CLIENT_WINDOW", "4");
        let cfg = ClientConfig::from_env();
        assert_eq!(cfg.wire, WireDialect::Binary);
        assert_eq!(cfg.window, 4);
        std::env::set_var("YF_SERVE_WIRE", "quantum");
        std::env::set_var("YF_SERVE_CLIENT_WINDOW", "several");
        let cfg = ClientConfig::from_env();
        assert_eq!(cfg.wire, WireDialect::Json, "malformed falls back");
        assert_eq!(cfg.window, 1, "malformed falls back");
        std::env::remove_var("YF_SERVE_WIRE");
        std::env::remove_var("YF_SERVE_CLIENT_WINDOW");
    }

    #[test]
    fn connecting_to_a_dead_port_fails_fast() {
        // Bind-then-drop picks a port that refuses connections.
        let port = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().port()
        };
        let cfg = ClientConfig {
            connect_timeout: Duration::from_millis(500),
            ..ClientConfig::default()
        };
        let start = std::time::Instant::now();
        let err = match Client::connect_with(("127.0.0.1", port), &cfg) {
            Err(e) => e,
            Ok(_) => panic!("a dropped listener's port must refuse the connect"),
        };
        assert!(matches!(err, ClientError::Io(_) | ClientError::Timeout(_)));
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "a refused/dead port must not hang the connect"
        );
    }
}
