//! A small blocking client for the serve protocol.
//!
//! One TCP connection, synchronous request/reply per call. This is the
//! low-level building block: the `yf-experiments` crate wraps it in a
//! remote `Optimizer` so a trainer loop can consume served
//! hyperparameters without knowing the protocol exists.

use crate::proto::{ClientFrame, OpenSpec, ProtoError, ServerFrame};
use std::fmt;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use yf_optim::Hyper;

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write, or server hang-up).
    Io(io::Error),
    /// The server sent a frame this client cannot parse, or one that
    /// makes no sense for the pending request.
    Protocol(String),
    /// The server answered with an `error` frame.
    Server(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "serve client i/o: {e}"),
            ClientError::Protocol(m) => write!(f, "serve client protocol: {m}"),
            ClientError::Server(m) => write!(f, "serve server error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> ClientError {
        ClientError::Protocol(e.to_string())
    }
}

/// The server's verdict on one measurement, client side.
#[derive(Debug, Clone, PartialEq)]
pub enum MeasureReply {
    /// Accepted: apply these hyperparameters this step.
    Tuned { hyper: Hyper, clamped: bool },
    /// Rejected by the quality filter: skip the tuned update this step
    /// (the step still counted server-side).
    Rejected { reason: String },
}

/// A blocking serve-protocol client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a running server.
    ///
    /// # Errors
    ///
    /// Transport errors from the connect.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: stream,
        })
    }

    /// Sends one frame.
    ///
    /// # Errors
    ///
    /// Transport errors from the write.
    pub fn send(&mut self, frame: &ClientFrame) -> Result<(), ClientError> {
        let mut line = frame.to_line();
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        Ok(())
    }

    /// Blocks for the next server frame.
    ///
    /// # Errors
    ///
    /// Transport errors, EOF (server hang-up), or unparseable frames.
    pub fn recv(&mut self) -> Result<ServerFrame, ClientError> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        Ok(ServerFrame::from_line(line.trim_end_matches(['\n', '\r']))?)
    }

    /// Opens (or resumes) a session; returns the step index the server
    /// expects next — 0 for a fresh session, the replay point after a
    /// resume.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] relays the server's rejection reason.
    pub fn open(&mut self, spec: OpenSpec) -> Result<u64, ClientError> {
        let name = spec.session.clone();
        self.send(&ClientFrame::Open(spec))?;
        match self.recv()? {
            ServerFrame::Opened { session, step } if session == name => Ok(step),
            ServerFrame::Error { message, .. } => Err(ClientError::Server(message)),
            other => Err(ClientError::Protocol(format!(
                "expected opened, got {other:?}"
            ))),
        }
    }

    /// Streams one measurement and blocks for the verdict.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] relays per-frame errors (step mismatch,
    /// unknown session); transport errors surface as
    /// [`ClientError::Io`].
    pub fn measure(
        &mut self,
        session: &str,
        step: u64,
        loss: f32,
        grads: &[f32],
    ) -> Result<MeasureReply, ClientError> {
        self.send(&ClientFrame::Measure {
            session: session.to_string(),
            step,
            loss,
            grads: grads.to_vec(),
        })?;
        match self.recv()? {
            ServerFrame::Tuned { hyper, clamped, .. } => Ok(MeasureReply::Tuned { hyper, clamped }),
            ServerFrame::Rejected { reason, .. } => Ok(MeasureReply::Rejected { reason }),
            ServerFrame::Error { message, .. } => Err(ClientError::Server(message)),
            other => Err(ClientError::Protocol(format!(
                "expected hyper/rejected, got {other:?}"
            ))),
        }
    }

    /// Detaches a session (it persists server-side and can be
    /// re-opened).
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] when the session is not open here.
    pub fn close_session(&mut self, session: &str) -> Result<(), ClientError> {
        self.send(&ClientFrame::Close {
            session: session.to_string(),
        })?;
        match self.recv()? {
            ServerFrame::Closed { .. } => Ok(()),
            ServerFrame::Error { message, .. } => Err(ClientError::Server(message)),
            other => Err(ClientError::Protocol(format!(
                "expected closed, got {other:?}"
            ))),
        }
    }

    /// Heartbeat round-trip.
    ///
    /// # Errors
    ///
    /// Transport or protocol errors; a mismatched token is a protocol
    /// error.
    pub fn ping(&mut self, token: u64) -> Result<(), ClientError> {
        self.send(&ClientFrame::Ping { token })?;
        match self.recv()? {
            ServerFrame::Pong { token: t } if t == token => Ok(()),
            other => Err(ClientError::Protocol(format!(
                "expected pong, got {other:?}"
            ))),
        }
    }

    /// Asks the server to drain (snapshot everything and shut down).
    /// Returns the number of sessions snapshotted.
    ///
    /// # Errors
    ///
    /// Transport or protocol errors.
    pub fn drain(&mut self) -> Result<u64, ClientError> {
        self.send(&ClientFrame::Drain)?;
        match self.recv()? {
            ServerFrame::Draining { sessions } => Ok(sessions),
            other => Err(ClientError::Protocol(format!(
                "expected draining, got {other:?}"
            ))),
        }
    }
}
