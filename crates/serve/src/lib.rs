//! # yf-serve: tuning-as-a-service over TCP
//!
//! A long-running server hosting many concurrent YellowFin tuning
//! sessions. Clients speak the shared [`yf_wire`] dialect — JSON
//! control frames (line-delimited, floats as hex bit patterns) plus an
//! optional binary data plane ([`yf_wire::binary`] frames, negotiated
//! per connection at `open`): open a session naming an optimizer and a
//! safety envelope, stream `(step, loss, gradient)` measurements, and
//! receive the tuned — and authority-clamped — `(lr, momentum,
//! grad_scale)` for every accepted step. The trainer keeps the apply phase (its velocity state never
//! leaves the process); the server owns the measure phase and runs the
//! same `observe_shard`/`combine` pipeline an in-process tuner would,
//! so the served stream is bitwise identical to local tuning.
//!
//! The pieces, bottom up:
//!
//! - [`proto`]: the wire frames ([`proto::ClientFrame`],
//!   [`proto::ServerFrame`]).
//! - [`registry`]: optimizer names the server can host.
//! - [`authority`]: per-update excursion limits and absolute bounds —
//!   the server never serves a hyperparameter outside the envelope the
//!   client declared at open.
//! - [`filter`]: the data-quality gate (adaptive outlier rejection
//!   seeded from the paper's Eq. 35 clipping threshold) screening every
//!   measurement before it can touch the tuner's statistics.
//! - [`session`]: one hosted session; deterministic, so replaying a
//!   measurement stream reproduces the served stream bit-for-bit.
//! - [`snapshot`]: sealed, atomically-replaced per-session state files.
//! - [`server`]: the TCP front end — bounded compute permits, bounded
//!   per-connection outbound queues with slow-client shedding, idle
//!   reaping, graceful drain, and SIGKILL-safe durability.
//! - [`client`]: a small blocking client with connect/read/write
//!   deadlines and a deterministic reconnect backoff schedule.
//! - [`chaos`]: a deterministic fault-injecting TCP proxy (`YF_CHAOS`)
//!   for testing every layer above against reproducible network
//!   failures.

pub mod authority;
pub mod chaos;
pub mod client;
pub mod filter;
pub mod proto;
pub mod registry;
pub mod server;
pub mod session;
pub mod snapshot;

pub use authority::Authority;
pub use chaos::{ChaosDir, ChaosFault, ChaosKind, ChaosProxy, ChaosSpec};
pub use client::{Backoff, Client, ClientConfig, ClientError, MeasureReply};
pub use filter::{FilterSpec, QualityFilter};
pub use proto::{ClientFrame, OpenSpec, ProtoError, ServerFrame, WireDialect};
pub use server::{ServeConfig, Server};
pub use session::{Outcome, Session};
pub use snapshot::SessionSnapshot;
