//! The `yf-serve` binary: bind, announce, serve until drained.
//!
//! Configuration is entirely environment-driven (`YF_SERVE_ADDR`,
//! `YF_SERVE_SNAPSHOT_DIR`, `YF_SERVE_MAX_SESSIONS`, ...; see
//! `yf_serve::ServeConfig::from_env`). The bound address is printed to
//! stdout as the single line `yf-serve listening on <addr>` so
//! supervisors (and the fleet tests) can bind port 0 and discover the
//! real port.

use std::io::Write;
use yf_serve::{ServeConfig, Server};

fn main() {
    // A client that vanishes mid-reply must cost one connection, not the
    // whole server: make the EPIPE-instead-of-SIGPIPE contract explicit
    // rather than inherited from the Rust runtime.
    yf_wire::sigpipe::ignore();
    let cfg = ServeConfig::from_env();
    let server = match Server::start(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("yf-serve: failed to start: {e}");
            std::process::exit(1);
        }
    };
    println!("yf-serve listening on {}", server.local_addr());
    let _ = std::io::stdout().flush();
    server.wait();
}
