//! Analytical objects from Sections 2-3 of the paper.
//!
//! These are not used by the tuner itself — they exist so the repository
//! can *verify* the theory the tuner is built on (Lemmas 3, 5 and 6) and
//! regenerate Figures 2 and 3.

/// The 2x2 momentum (bias) operator `A_t` of Eq. 5 for curvature `h`,
/// learning rate `alpha` and momentum `mu`.
pub fn momentum_operator(alpha: f64, mu: f64, h: f64) -> [[f64; 2]; 2] {
    [[1.0 - alpha * h + mu, -mu], [1.0, 0.0]]
}

/// Spectral radius of the momentum operator.
pub fn momentum_spectral_radius(alpha: f64, mu: f64, h: f64) -> f64 {
    spectral_radius_2x2(momentum_operator(alpha, mu, h))
}

/// The 3x3 variance operator `B` of Eq. 12.
pub fn variance_operator(alpha: f64, mu: f64, h: f64) -> [[f64; 3]; 3] {
    let m = 1.0 - alpha * h + mu;
    [
        [m * m, mu * mu, -2.0 * mu * m],
        [1.0, 0.0, 0.0],
        [m, 0.0, -mu],
    ]
}

/// Spectral radius of the variance operator.
pub fn variance_spectral_radius(alpha: f64, mu: f64, h: f64) -> f64 {
    spectral_radius_3x3(variance_operator(alpha, mu, h))
}

/// Whether `(alpha, mu)` lies in the robust region of Lemma 3 for
/// curvature `h`: `(1 - sqrt(mu))^2 <= alpha h <= (1 + sqrt(mu))^2`.
pub fn in_robust_region(alpha: f64, mu: f64, h: f64) -> bool {
    let ah = alpha * h;
    let rm = mu.max(0.0).sqrt();
    (1.0 - rm).powi(2) <= ah && ah <= (1.0 + rm).powi(2)
}

/// The minimal momentum `mu*` for a generalized condition number `nu`
/// (Eq. 2 / Eq. 9): `((sqrt(nu) - 1) / (sqrt(nu) + 1))^2`.
///
/// # Panics
///
/// Panics if `nu < 1`.
pub fn mu_star(nu: f64) -> f64 {
    assert!(nu >= 1.0, "mu_star: condition number {nu} < 1");
    let s = nu.sqrt();
    ((s - 1.0) / (s + 1.0)).powi(2)
}

/// The learning-rate interval of Eq. 9 for momentum `mu` and extremal
/// curvatures: `[(1-sqrt(mu))^2 / h_min, (1+sqrt(mu))^2 / h_max]`.
///
/// For `mu >= mu_star(h_max / h_min)` the interval is non-empty.
pub fn robust_lr_range(mu: f64, h_min: f64, h_max: f64) -> (f64, f64) {
    let rm = mu.max(0.0).sqrt();
    ((1.0 - rm).powi(2) / h_min, (1.0 + rm).powi(2) / h_max)
}

/// One-step mean-squared-distance surrogate in the robust region
/// (Eq. 14): `mu^t (x0 - x*)^2 + (1 - mu^t) alpha^2 C / (1 - mu)`.
pub fn surrogate_mse(t: u32, mu: f64, alpha: f64, grad_var: f64, dist0_sq: f64) -> f64 {
    let mu_t = mu.powi(t as i32);
    mu_t * dist0_sq + (1.0 - mu_t) * alpha * alpha * grad_var / (1.0 - mu)
}

/// Exact expected squared distance after `t` steps of momentum SGD on the
/// noisy scalar quadratic of Eq. 10 (Lemma 5, Eq. 11), evaluated by
/// iterating the recurrences rather than matrix powers.
///
/// `x0` is the common initial iterate (`x1 = x0`), `h` the curvature and
/// `c` the gradient variance.
pub fn exact_expected_sq_distance(t: u32, alpha: f64, mu: f64, h: f64, c: f64, x0: f64) -> f64 {
    // Bias: [E x_{k+1}, E x_k] evolves by the A operator of Eq. 12.
    let m = 1.0 - alpha * h + mu;
    let mut bias = (x0, x0);
    // Variance: [U_{k+1}, U_k, V_{k+1}] evolves by the B operator.
    let mut var = (0.0f64, 0.0f64, 0.0f64);
    for _ in 0..t {
        bias = (m * bias.0 - mu * bias.1, bias.0);
        var = (
            m * m * var.0 + mu * mu * var.1 - 2.0 * mu * m * var.2 + alpha * alpha * c,
            var.0,
            m * var.0 - mu * var.2,
        );
    }
    bias.0 * bias.0 + var.0
}

pub use yf_tensor_reexport::{spectral_radius_2x2, spectral_radius_3x3};

// The spectral-radius routines live in `yf-tensor`; re-export them here so
// theory consumers need only this crate. The core crate deliberately does
// not depend on the tensor crate for its *tuning* path (it works on flat
// slices), so the dependency is dev/theory-only in spirit — but Cargo
// features are not worth the complexity here, so we take the dependency.
mod yf_tensor_reexport {
    pub use yf_tensor::linalg::{spectral_radius_2x2, spectral_radius_3x3};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lemma3_radius_is_sqrt_mu_inside_robust_region() {
        for &mu in &[0.01, 0.25, 0.5, 0.81, 0.95] {
            for &h in &[0.1, 1.0, 7.0] {
                let (lo, _) = robust_lr_range(mu, h, h);
                let hi = (1.0 + mu.sqrt()).powi(2) / h;
                for i in 0..=10 {
                    let alpha = lo + (hi - lo) * i as f64 / 10.0;
                    let rho = momentum_spectral_radius(alpha, mu, h);
                    assert!(
                        (rho - mu.sqrt()).abs() < 1e-6,
                        "mu={mu} h={h} alpha={alpha}: rho={rho}"
                    );
                }
            }
        }
    }

    #[test]
    fn lemma3_radius_departs_outside_robust_region() {
        let mu = 0.25;
        let h = 1.0;
        // alpha below the robust range: rho > sqrt(mu).
        let rho_small = momentum_spectral_radius(0.5 * (1.0 - 0.5f64).powi(2), mu, h);
        assert!(rho_small > mu.sqrt() + 1e-6, "rho={rho_small}");
        // alpha above the robust range: rho > sqrt(mu) again.
        let rho_big = momentum_spectral_radius(1.5 * (1.0 + 0.5f64).powi(2), mu, h);
        assert!(rho_big > mu.sqrt() + 1e-6, "rho={rho_big}");
    }

    #[test]
    fn lemma6_variance_radius_is_mu() {
        for &mu in &[0.1f64, 0.5, 0.9] {
            for &frac in &[0.0, 0.5, 1.0] {
                let h = 2.0;
                let lo = (1.0 - mu.sqrt()).powi(2) / h;
                let hi = (1.0 + mu.sqrt()).powi(2) / h;
                let alpha = lo + frac * (hi - lo);
                let rho = variance_spectral_radius(alpha, mu, h);
                assert!((rho - mu).abs() < 1e-5, "mu={mu} frac={frac}: rho={rho}");
            }
        }
    }

    #[test]
    fn mu_star_matches_classic_values() {
        assert!(mu_star(1.0).abs() < 1e-12, "kappa=1 needs no momentum");
        let k = 100.0;
        assert!((mu_star(k) - (9.0f64 / 11.0).powi(2)).abs() < 1e-12);
    }

    #[test]
    fn robust_lr_range_nonempty_iff_mu_above_mu_star() {
        let (h_min, h_max) = (1.0, 16.0);
        let nu = h_max / h_min;
        let below = mu_star(nu) - 0.05;
        let above = mu_star(nu) + 0.05;
        let (lo_b, hi_b) = robust_lr_range(below, h_min, h_max);
        assert!(lo_b > hi_b, "below mu*: empty range expected");
        let (lo_a, hi_a) = robust_lr_range(above, h_min, h_max);
        assert!(lo_a <= hi_a, "above mu*: nonempty range expected");
    }

    #[test]
    fn exact_mse_matches_monte_carlo() {
        // Simulate momentum SGD on the noisy quadratic and compare the
        // empirical E(x_t - x*)^2 with Lemma 5's recurrence.
        let (alpha, mu, h, c, x0) = (0.2f64, 0.3, 1.5, 0.8f64, 2.0);
        let t = 25;
        let trials = 60_000;
        let mut acc = 0.0f64;
        let mut rng = yf_tensor::rng::Pcg32::seed(99);
        for _ in 0..trials {
            let (mut x_prev, mut x) = (x0, x0);
            for _ in 0..t {
                // Noisy gradient: h*x + noise with Var = c (alpha^2 C term).
                let noise = f64::from(rng.normal()) * c.sqrt();
                let g = h * x + noise;
                let x_next = x - alpha * g + mu * (x - x_prev);
                x_prev = x;
                x = x_next;
            }
            acc += x * x;
        }
        let empirical = acc / trials as f64;
        let exact = exact_expected_sq_distance(t, alpha, mu, h, c, x0);
        let rel = (empirical - exact).abs() / exact.max(1e-12);
        assert!(rel < 0.05, "Lemma 5 mismatch: exact={exact} mc={empirical}");
    }

    #[test]
    fn surrogate_decreases_with_t_in_signal_regime() {
        // With small noise the surrogate is dominated by the mu^t bias
        // term, so it must decay with t.
        let s1 = surrogate_mse(1, 0.8, 0.01, 0.1, 4.0);
        let s50 = surrogate_mse(50, 0.8, 0.01, 0.1, 4.0);
        assert!(s50 < s1);
    }
}
