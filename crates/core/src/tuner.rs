//! Algorithm 1: the YellowFin tuner wrapped around momentum SGD.

use crate::cubic::single_step;
use crate::ema::Ema;
use crate::measurements::{CurvatureRange, DistanceToOpt, GradVariance};
use yf_optim::clip::clip_scale;
use yf_optim::{Hyper, Optimizer, ParamShard, ShardedState, StatsPartial};
use yf_tensor::elementwise;

/// Gradient clipping policy (Section 3.3 / Appendix F).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ClipMode {
    /// No clipping.
    None,
    /// Clip to a fixed, manually chosen global-norm threshold (the
    /// baseline in Table 1).
    Manual(f32),
    /// Adaptive clipping: threshold `sqrt(h_max)` from the curvature-range
    /// estimator, whose growth is limited per Eq. 35.
    Adaptive,
}

/// Configuration of [`YellowFin`]. The defaults are the constants the
/// paper fixes across *all* of its experiments (Section 5.1: "We fix the
/// parameters of Algorithm 1 in all experiments").
#[derive(Debug, Clone, PartialEq)]
pub struct YellowFinConfig {
    /// Smoothing for every running estimate (paper: 0.999).
    pub beta: f64,
    /// Sliding-window width for extremal curvatures (paper: 20).
    pub window: usize,
    /// Multiplier on the auto-tuned learning rate (Appendix J.4's
    /// "learning rate factor"; 1.0 = fully automatic).
    pub lr_factor: f64,
    /// Gradient clipping policy.
    pub clip: ClipMode,
    /// Slow start (Appendix E): use `min(lr_t, t * lr_t / (10 w))` so the
    /// first `10 w` steps are conservative while estimates warm up.
    pub slow_start: bool,
    /// If set, the momentum applied to the update is frozen at this value
    /// while the learning rate keeps auto-tuning — the ablation of
    /// Figure 9 (Appendix J.2).
    pub momentum_override: Option<f64>,
}

impl Default for YellowFinConfig {
    fn default() -> Self {
        YellowFinConfig {
            beta: 0.999,
            window: 20,
            lr_factor: 1.0,
            clip: ClipMode::None,
            slow_start: true,
            momentum_override: None,
        }
    }
}

/// The YellowFin optimizer (Algorithm 1).
///
/// Measures curvature range, gradient variance and distance-to-optimum
/// from each minibatch gradient, solves `SingleStep` in closed form, and
/// applies a Polyak momentum SGD update with the smoothed `(mu_t,
/// alpha_t)`.
///
/// The paper's *measure → tune → apply* structure maps directly onto the
/// sharded two-phase [`Optimizer`] API. The measure phase is a partial
/// reduction: `observe_shard` contributes per-block Σg² sums for its
/// gradient slice, and `combine` folds them with a fixed-order tree into
/// the global norm, feeds the three oracles (the gradient-variance sweep
/// is itself a fused, parallel, clip-scaled kernel — no gradient copy is
/// made anywhere), runs the `SingleStep` solve, and folds the clip factor
/// into [`Hyper::grad_scale`]. `step_shard` is then the generic per-shard
/// momentum update, so both phases parallelize and shard like any
/// baseline optimizer while the measured statistics stay bitwise
/// identical for every shard count.
///
/// # Example
///
/// ```
/// use yellowfin::{YellowFin, YellowFinConfig, ClipMode};
/// use yf_optim::Optimizer;
///
/// let mut opt = YellowFin::new(YellowFinConfig {
///     clip: ClipMode::Adaptive,
///     ..Default::default()
/// });
/// let mut x = vec![1.0f32];
/// for _ in 0..100 {
///     let g = vec![2.0 * x[0]];
///     opt.step(&mut x, &g);
/// }
/// assert!(opt.momentum() >= 0.0 && opt.momentum() < 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct YellowFin {
    pub(crate) cfg: YellowFinConfig,
    pub(crate) curvature: CurvatureRange,
    pub(crate) variance: GradVariance,
    pub(crate) distance: DistanceToOpt,
    pub(crate) mu_ema: Ema,
    pub(crate) lr_ema: Ema,
    pub(crate) step_count: u64,
    pub(crate) velocity: ShardedState,
    pub(crate) dim: Option<usize>,
    pub(crate) last_norm: Option<f64>,
}

impl Default for YellowFin {
    fn default() -> Self {
        YellowFin::new(YellowFinConfig::default())
    }
}

impl YellowFin {
    /// Creates a tuner from a configuration.
    pub fn new(cfg: YellowFinConfig) -> Self {
        let limit_growth = cfg.clip == ClipMode::Adaptive;
        YellowFin {
            curvature: CurvatureRange::new(cfg.window, cfg.beta, limit_growth),
            variance: GradVariance::new(cfg.beta),
            distance: DistanceToOpt::new(cfg.beta),
            mu_ema: Ema::new(cfg.beta),
            lr_ema: Ema::new(cfg.beta),
            step_count: 0,
            velocity: ShardedState::new(1),
            dim: None,
            last_norm: None,
            cfg,
        }
    }

    /// The momentum currently applied to updates.
    pub fn momentum(&self) -> f64 {
        match self.cfg.momentum_override {
            Some(m) => m,
            None if self.mu_ema.is_initialized() => self.mu_ema.value(),
            None => 0.0,
        }
    }

    /// The smoothed auto-tuned learning rate (before slow start and
    /// `lr_factor`).
    pub fn tuned_lr(&self) -> f64 {
        if self.lr_ema.is_initialized() {
            self.lr_ema.value()
        } else {
            0.0
        }
    }

    /// The learning rate that the *next* update would use (slow start and
    /// `lr_factor` included).
    pub fn effective_lr(&self) -> f64 {
        let lr = self.tuned_lr() * self.cfg.lr_factor;
        if self.cfg.slow_start {
            let warm = self.step_count as f64 / (10.0 * self.cfg.window as f64);
            lr.min(lr * warm)
        } else {
            lr
        }
    }

    /// Latest measurement snapshot `(h_min, h_max, C, D)`, if warmed up.
    pub fn measurements(&self) -> Option<(f64, f64, f64, f64)> {
        if !self.curvature.is_initialized() {
            return None;
        }
        Some((
            self.curvature.h_min(),
            self.curvature.h_max(),
            self.variance.variance(),
            self.distance.distance(),
        ))
    }

    /// Number of steps taken.
    pub fn steps(&self) -> u64 {
        self.step_count
    }

    /// The gradient norm observed at the last step, before clipping.
    pub fn last_grad_norm(&self) -> Option<f64> {
        self.last_norm
    }
}

impl YellowFin {
    fn clip_threshold(&self) -> f32 {
        match self.cfg.clip {
            ClipMode::None => f32::INFINITY,
            ClipMode::Manual(t) => t,
            ClipMode::Adaptive => {
                if self.curvature.is_initialized() {
                    // h is a squared gradient norm, so sqrt(h_max) bounds
                    // the gradient norm itself.
                    self.curvature.h_max().sqrt() as f32
                } else {
                    f32::INFINITY
                }
            }
        }
    }
}

impl Optimizer for YellowFin {
    fn observe(&mut self, params: &[f32], grads: &[f32]) -> Hyper {
        self.combine(params, grads, Vec::new(), 1.0)
    }

    fn observe_shard(&self, shard: ParamShard, _params: &[f32], grads: &[f32]) -> StatsPartial {
        StatsPartial::sumsq(shard.offset, grads)
    }

    fn combine(
        &mut self,
        params: &[f32],
        grads: &[f32],
        partials: Vec<StatsPartial>,
        grad_scale: f32,
    ) -> Hyper {
        let dim = *self.dim.get_or_insert(params.len());
        assert_eq!(params.len(), grads.len(), "yellowfin: length mismatch");
        assert_eq!(dim, params.len(), "yellowfin: parameter count changed");

        // 1. Global norm from the per-shard partial reductions (computed
        // here when no fan-out ran). The norm the tuner sees includes the
        // scale applied by enclosing middleware.
        let mut partials = partials;
        if partials.is_empty() && !grads.is_empty() {
            partials.push(StatsPartial::sumsq(0, grads));
        }
        let raw_sumsq = StatsPartial::merge_sums(&partials, grads.len());
        let norm_before = (f64::from(grad_scale) * raw_sumsq.sqrt()) as f32;
        let threshold = self.clip_threshold();
        self.last_norm = Some(f64::from(norm_before));
        let internal_scale = clip_scale(norm_before, threshold);
        let clipped_norm = f64::from(norm_before).min(f64::from(threshold));

        // 2. Update the measurement oracles on the clipped gradient — the
        // clip factor rides into the fused variance sweep as a scale, so
        // no clipped copy of the gradient is ever materialized. The sweep
        // parallelizes over as many chunks as the measure fan-out used;
        // its result is thread-count invariant.
        let h_t = clipped_norm * clipped_norm;
        self.curvature.observe(h_t);
        let total_scale = f64::from(grad_scale) * f64::from(internal_scale);
        self.variance
            .observe_scaled(grads, total_scale, partials.len().max(1));
        self.distance.observe(clipped_norm);

        // 3. Solve SingleStep and smooth the result.
        let sol = single_step(
            self.variance.variance(),
            self.distance.distance(),
            self.curvature.h_min(),
            self.curvature.h_max(),
        );
        self.mu_ema.update(sol.mu);
        self.lr_ema.update(sol.lr);
        self.step_count += 1;

        // The apply phase re-scales the raw gradient by the clip factor
        // (the enclosing middleware folds `grad_scale` in on its own), so
        // shards stay self-contained.
        Hyper {
            lr: self.effective_lr() as f32,
            momentum: self.momentum() as f32,
            grad_scale: internal_scale,
        }
    }

    fn needs_observe_partials(&self) -> bool {
        true
    }

    fn step_shard(&self, shard: ParamShard, params: &mut [f32], grads: &[f32], hyper: Hyper) {
        shard.validate(params, grads);
        // 4. Momentum SGD update with the tuned values.
        self.velocity.with(shard, params.len(), |bufs| {
            let v = &mut bufs[0];
            if v.is_empty() {
                v.resize(params.len(), 0.0);
            }
            elementwise::momentum_step(
                params,
                v,
                grads,
                hyper.momentum,
                hyper.lr,
                false,
                hyper.grad_scale,
            );
        });
    }

    fn learning_rate(&self) -> f32 {
        self.effective_lr() as f32
    }

    fn set_learning_rate(&mut self, lr: f32) {
        // External schedules scale the auto-tuned rate via the factor.
        let tuned = self.tuned_lr();
        if tuned > 0.0 {
            self.cfg.lr_factor = f64::from(lr) / tuned;
        }
    }

    fn is_self_tuning(&self) -> bool {
        true
    }

    // The fleet-facing checkpoint surface rides the crate's existing
    // versioned tuner-state format (`save_state`/`restore_state`), which
    // already round-trips the full measurement + velocity state bit-exactly.
    fn checkpoint_state(&self) -> Option<String> {
        Some(self.save_state())
    }

    fn restore_checkpoint(
        &mut self,
        text: &str,
    ) -> Result<(), yf_optim::checkpoint::OptStateError> {
        *self = YellowFin::restore_state(text)
            .map_err(|e| yf_optim::checkpoint::OptStateError::new(e.to_string()))?;
        Ok(())
    }

    fn name(&self) -> &'static str {
        "yellowfin"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grad_quadratic(x: &[f32], h: &[f32]) -> Vec<f32> {
        x.iter().zip(h).map(|(&x, &h)| h * x).collect()
    }

    #[test]
    fn converges_on_well_conditioned_quadratic() {
        let mut opt = YellowFin::default();
        let h = vec![1.0f32, 2.0];
        let mut x = vec![1.0f32, -1.0];
        for _ in 0..800 {
            let g = grad_quadratic(&x, &h);
            opt.step(&mut x, &g);
        }
        let dist = (x[0] * x[0] + x[1] * x[1]).sqrt();
        assert!(dist < 1e-2, "distance {dist}");
    }

    #[test]
    fn converges_on_ill_conditioned_quadratic() {
        let mut opt = YellowFin::default();
        let h = vec![0.1f32, 10.0];
        let mut x = vec![1.0f32, 1.0];
        for _ in 0..2000 {
            let g = grad_quadratic(&x, &h);
            opt.step(&mut x, &g);
        }
        let dist = (x[0] * x[0] + x[1] * x[1]).sqrt();
        assert!(dist < 5e-2, "distance {dist}");
    }

    #[test]
    fn momentum_and_lr_stay_in_valid_ranges() {
        let mut opt = YellowFin::default();
        let h = vec![1.0f32, 100.0];
        let mut x = vec![1.0f32, 1.0];
        for _ in 0..500 {
            let g = grad_quadratic(&x, &h);
            opt.step(&mut x, &g);
            let mu = opt.momentum();
            assert!((0.0..1.0).contains(&mu), "mu = {mu}");
            assert!(opt.effective_lr() >= 0.0 && opt.effective_lr().is_finite());
        }
    }

    #[test]
    fn slow_start_discounts_early_steps() {
        let cfg = YellowFinConfig::default();
        let mut opt = YellowFin::new(cfg);
        let mut x = vec![1.0f32];
        opt.step(&mut x, &[1.0]);
        // After 1 step with window 20: warm factor is 1/200.
        let full = opt.tuned_lr() * opt.cfg.lr_factor;
        let eff = opt.effective_lr();
        assert!(eff <= full / 100.0, "eff {eff} vs full {full}");
    }

    #[test]
    fn momentum_override_freezes_momentum_only() {
        let mut opt = YellowFin::new(YellowFinConfig {
            momentum_override: Some(0.4),
            ..Default::default()
        });
        let mut x = vec![1.0f32, 1.0];
        for _ in 0..100 {
            let g = grad_quadratic(&x, &[1.0, 10.0]);
            opt.step(&mut x, &g);
        }
        assert_eq!(opt.momentum(), 0.4);
        assert!(opt.tuned_lr() > 0.0, "lr keeps tuning");
    }

    #[test]
    fn adaptive_clipping_tames_gradient_spikes() {
        // A stream with occasional 1e4x spikes must not destroy the
        // iterate when adaptive clipping is on.
        let mut opt = YellowFin::new(YellowFinConfig {
            clip: ClipMode::Adaptive,
            ..Default::default()
        });
        let mut x = vec![1.0f32];
        for t in 0..500 {
            let spike = if t % 97 == 96 { 1e4 } else { 1.0 };
            let g = vec![x[0] * spike];
            opt.step(&mut x, &g);
            assert!(x[0].is_finite(), "diverged at step {t}");
        }
        assert!(x[0].abs() < 1.0);
    }

    #[test]
    fn survives_adversarial_gradient_streams() {
        // NaN-free behavior on zero, tiny, huge and alternating gradients.
        let mut opt = YellowFin::new(YellowFinConfig {
            clip: ClipMode::Adaptive,
            ..Default::default()
        });
        let mut x = vec![0.5f32, -0.5];
        let streams: Vec<Vec<f32>> = vec![
            vec![0.0, 0.0],
            vec![1e-20, -1e-20],
            vec![1e10, 1e10],
            vec![-1e10, 1e10],
            vec![0.0, 1.0],
        ];
        for t in 0..200 {
            let g = streams[t % streams.len()].clone();
            opt.step(&mut x, &g);
            assert!(x.iter().all(|v| v.is_finite()), "step {t}: {x:?}");
            assert!(opt.momentum().is_finite());
            assert!(opt.effective_lr().is_finite());
        }
    }

    #[test]
    fn lr_factor_scales_linearly() {
        // Feed both tuners the *same* pre-recorded gradient stream so the
        // measurements coincide; the effective lr must then scale exactly
        // with the factor.
        let run = |factor: f64| {
            let mut opt = YellowFin::new(YellowFinConfig {
                lr_factor: factor,
                slow_start: false,
                ..Default::default()
            });
            let mut x = vec![0.0f32];
            for t in 0..50 {
                let g = vec![1.0 + 0.3 * ((t as f32) * 0.7).sin()];
                opt.step(&mut x, &g);
            }
            opt.effective_lr()
        };
        let base = run(1.0);
        let doubled = run(2.0);
        assert!((doubled / base - 2.0).abs() < 1e-6, "{doubled} vs {base}");
    }

    #[test]
    #[should_panic(expected = "parameter count changed")]
    fn dimension_change_panics() {
        let mut opt = YellowFin::default();
        opt.step(&mut [0.0], &[1.0]);
        opt.step(&mut [0.0, 0.0], &[1.0, 1.0]);
    }
}
