//! Closed-loop YellowFin for asynchronous training (Section 4,
//! Algorithm 5, Appendix G).
//!
//! Under asynchrony with staleness `tau`, the system exhibits *total*
//! momentum `mu_T` larger than the algorithmic momentum, per the dynamics
//! model `E[x_{t+1} - x_t] = mu_T E[x_t - x_{t-1}] - alpha E grad f(x_t)`
//! (Eq. 16). Closed-loop YellowFin measures `mu_T` on the running system
//! with the robust median estimator of Eq. 37 and steers the algorithmic
//! momentum with a negative feedback loop so the *measured total*
//! momentum matches the target chosen by the tuner.

use crate::tuner::{YellowFin, YellowFinConfig};
use std::collections::VecDeque;
use yf_optim::{Hyper, Optimizer, ParamShard, ShardedState, StatsPartial};
use yf_tensor::parallel;

/// The total-momentum estimator of Eq. 37:
///
/// ```text
/// mu_T ≈ median_i ( x_{t-tau} - x_{t-tau-1} + alpha * g_{t-1} )_i
///                 / ( x_{t-tau-1} - x_{t-tau-2} )_i
/// ```
///
/// where `g_{t-1}` is the (stale) gradient applied at the previous update
/// — it was computed on the snapshot `x_{t-tau-1}`, which is exactly why
/// `tau`-stale model values appear in the ratio. The estimator feeds one
/// measurement per step; coordinates whose denominator is numerically
/// zero (or whose ratio is non-finite) are discarded before the median.
#[derive(Debug, Clone)]
pub struct TotalMomentumEstimator {
    staleness: usize,
    /// Snapshots x_t, newest last; needs tau + 3 entries.
    history: VecDeque<Vec<f32>>,
    prev_grad: Option<Vec<f32>>,
    prev_lr: f32,
    ratios: Vec<f32>,
}

impl TotalMomentumEstimator {
    /// Creates an estimator for a system with gradient `staleness` (0 for
    /// synchronous training).
    pub fn new(staleness: usize) -> Self {
        TotalMomentumEstimator {
            staleness,
            history: VecDeque::new(),
            prev_grad: None,
            prev_lr: 0.0,
            ratios: Vec::new(),
        }
    }

    /// Observes the state *before* the update at step `t`: the current
    /// parameters `x_t`, the stale gradient about to be applied, and the
    /// learning rate that will scale it. Returns the total-momentum
    /// estimate once enough history exists.
    pub fn observe(&mut self, params: &[f32], grad: &[f32], lr: f32) -> Option<f64> {
        self.history.push_back(params.to_vec());
        if self.history.len() > self.staleness + 3 {
            self.history.pop_front();
        }
        let estimate = self.estimate();
        self.prev_grad = Some(grad.to_vec());
        self.prev_lr = lr;
        estimate
    }

    fn estimate(&mut self) -> Option<f64> {
        // After pushing x_t the history holds [x_{t-tau-2}, .., x_t]
        // (newest last, tau + 3 entries when full): indices 2, 1, 0 are
        // x_{t-tau}, x_{t-tau-1}, x_{t-tau-2}. The gradient applied at
        // step t-1 (`prev_grad`) was computed on x_{t-tau-1}, which is
        // exactly the snapshot Eq. 37 pairs it with.
        if self.history.len() < self.staleness + 3 {
            return None;
        }
        let g = self.prev_grad.as_ref()?;
        let x2 = &self.history[2]; // x_{t-tau}
        let x1 = &self.history[1]; // x_{t-tau-1}
        let x0 = &self.history[0]; // x_{t-tau-2}
        self.ratios.clear();
        for i in 0..x2.len() {
            let denom = x1[i] - x0[i];
            if denom.abs() < 1e-12 {
                continue;
            }
            let numer = x2[i] - x1[i] + self.prev_lr * g[i];
            let r = numer / denom;
            if r.is_finite() {
                self.ratios.push(r);
            }
        }
        if self.ratios.is_empty() {
            return None;
        }
        let mid = self.ratios.len() / 2;
        self.ratios
            .select_nth_unstable_by(mid, |a, b| a.total_cmp(b));
        Some(f64::from(self.ratios[mid]))
    }

    /// Gradient staleness this estimator was built for.
    pub fn staleness(&self) -> usize {
        self.staleness
    }
}

/// Algorithm 5: closed-loop YellowFin.
///
/// Runs the ordinary tuner to obtain the *target* momentum `mu*` and the
/// learning rate, measures total momentum with
/// [`TotalMomentumEstimator`], and adjusts the applied (algorithmic)
/// momentum by `mu += gamma * (mu* - mu_T)` each step.
///
/// The update itself is the position-form momentum step of Algorithm 5,
/// line 3: `x_t = x_{t-1} + mu (x_{t-1} - x_{t-2}) - alpha g`.
///
/// Two-phase mapping: `observe` runs the estimator, the tuner's
/// measurement/solve phase (targets only — the tuner applies nothing),
/// and the feedback law; `step_shard` is the position-form update with
/// per-shard previous-parameter state.
#[derive(Debug, Clone)]
pub struct ClosedLoopYellowFin {
    tuner: YellowFin,
    estimator: TotalMomentumEstimator,
    gamma: f64,
    mu: f64,
    last_total: Option<f64>,
    /// Per-shard previous parameters for the position-form update. A
    /// shard's buffer is seeded with the parameters themselves on its
    /// first step (which then degenerates to plain gradient descent, as
    /// in Algorithm 5's warmup).
    prev_params: ShardedState,
}

impl ClosedLoopYellowFin {
    /// Creates a closed-loop tuner for a system with gradient `staleness`
    /// (Section 5.2 uses 15 = 16 workers - 1) and feedback gain
    /// `gamma` (Algorithm 5 uses 0.01).
    pub fn new(cfg: YellowFinConfig, staleness: usize, gamma: f64) -> Self {
        ClosedLoopYellowFin {
            tuner: YellowFin::new(cfg),
            estimator: TotalMomentumEstimator::new(staleness),
            gamma,
            mu: 0.0,
            last_total: None,
            prev_params: ShardedState::new(1),
        }
    }

    /// The algorithmic momentum currently applied (may go negative to
    /// compensate asynchrony-induced momentum, as in Figure 4).
    pub fn algorithmic_momentum(&self) -> f64 {
        self.mu
    }

    /// The tuner's target momentum `mu*`.
    pub fn target_momentum(&self) -> f64 {
        self.tuner.momentum()
    }

    /// The most recent total-momentum measurement, if available.
    pub fn total_momentum(&self) -> Option<f64> {
        self.last_total
    }

    /// The learning rate the tuner selected.
    pub fn tuned_lr(&self) -> f64 {
        self.tuner.effective_lr()
    }
}

impl Optimizer for ClosedLoopYellowFin {
    fn observe(&mut self, params: &[f32], grads: &[f32]) -> Hyper {
        self.combine(params, grads, Vec::new(), 1.0)
    }

    fn observe_shard(&self, shard: ParamShard, params: &[f32], grads: &[f32]) -> StatsPartial {
        // The controller's own measurement (the Eq. 37 estimator) needs
        // whole snapshots, not reductions; the partials are the tuner's.
        self.tuner.observe_shard(shard, params, grads)
    }

    fn combine(
        &mut self,
        params: &[f32],
        grads: &[f32],
        partials: Vec<StatsPartial>,
        grad_scale: f32,
    ) -> Hyper {
        assert_eq!(params.len(), grads.len(), "closed-loop: length mismatch");
        // Measure total momentum from the pre-update state. Eq. 37 only
        // ever uses the product `lr * g`, so an enclosing middleware's
        // gradient scale folds into the recorded learning rate instead of
        // a scaled gradient copy.
        let lr = self.tuner.effective_lr() as f32;
        if let Some(mu_t) = self.estimator.observe(params, grads, lr * grad_scale) {
            self.last_total = Some(mu_t);
        }

        // Run the tuner's measure/solve phase to produce mu* and alpha;
        // its open-loop momentum update is never applied to the model
        // (the position-form update below replaces it).
        self.tuner.combine(params, grads, partials, grad_scale);

        // Negative feedback on the algorithmic momentum.
        if let Some(mu_total) = self.last_total {
            self.mu += self.gamma * (self.tuner.momentum() - mu_total);
            self.mu = self.mu.clamp(-0.9, 0.999);
        } else {
            self.mu = self.tuner.momentum();
        }

        // Per Algorithm 5 the applied gradient is the raw one; clipping
        // only shapes the tuner's measurements. (Enclosing middleware
        // folds its own grad_scale into the returned Hyper.)
        Hyper::new(self.tuner.effective_lr() as f32, self.mu as f32)
    }

    fn needs_observe_partials(&self) -> bool {
        true
    }

    fn step_shard(&self, shard: ParamShard, params: &mut [f32], grads: &[f32], hyper: Hyper) {
        shard.validate(params, grads);
        let (lr, mu) = (hyper.lr, hyper.momentum);
        // Position-form momentum update (Algorithm 5, line 3).
        self.prev_params.with(shard, params.len(), |bufs| {
            let prev = &mut bufs[0];
            if prev.is_empty() {
                prev.extend_from_slice(params);
                for (p, &g) in params.iter_mut().zip(grads) {
                    *p -= lr * hyper.grad_scale * g;
                }
            } else {
                for i in 0..params.len() {
                    let x = params[i];
                    params[i] += mu * (x - prev[i]) - lr * hyper.grad_scale * grads[i];
                    prev[i] = x;
                }
            }
        });
    }

    fn learning_rate(&self) -> f32 {
        self.tuner.learning_rate()
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.tuner.set_learning_rate(lr);
    }

    fn is_self_tuning(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "closed-loop-yellowfin"
    }
}

/// Closed-loop momentum control for **Adam** — the extension sketched in
/// the paper's Discussion ("we also believe that our closed-loop momentum
/// control mechanism in Section 4 could accelerate other adaptive methods
/// in asynchronous-parallel settings").
///
/// Adam's first-moment coefficient β1 plays the role of momentum; under
/// asynchrony the *system's* total momentum exceeds it. This controller
/// measures total momentum with the same Eq. 37 estimator and adjusts β1
/// by `gamma * (target - measured)` each step, clamped to Adam's valid
/// range.
#[derive(Debug, Clone)]
pub struct ClosedLoopAdam {
    lr: f32,
    beta1: f64,
    beta2: f32,
    target: f64,
    gamma: f64,
    estimator: TotalMomentumEstimator,
    last_total: Option<f64>,
    /// First moment, per shard (apply-phase state).
    m: ShardedState,
    /// Second moment, whole-vector: the measure phase needs it to build
    /// the effective (preconditioned) gradient Eq. 37 is fed, so it is
    /// updated in `observe` and only *read* by `step_shard`.
    v: Vec<f32>,
    /// Reusable effective-gradient buffer for the Eq. 37 estimator — kept
    /// across steps so the measure phase performs no per-step allocation.
    effective: Vec<f32>,
    t: u64,
}

impl ClosedLoopAdam {
    /// Creates the controller: `target` is the desired total momentum
    /// (e.g. the synchronous-optimal β1 = 0.9), `staleness` the gradient
    /// delay, `gamma` the feedback gain.
    pub fn new(lr: f32, target: f64, staleness: usize, gamma: f64) -> Self {
        ClosedLoopAdam {
            lr,
            beta1: target,
            beta2: 0.999,
            target,
            gamma,
            estimator: TotalMomentumEstimator::new(staleness),
            last_total: None,
            m: ShardedState::new(1),
            v: Vec::new(),
            effective: Vec::new(),
            t: 0,
        }
    }

    /// The β1 currently applied.
    pub fn beta1(&self) -> f64 {
        self.beta1
    }

    /// The most recent total-momentum measurement.
    pub fn total_momentum(&self) -> Option<f64> {
        self.last_total
    }
}

impl Optimizer for ClosedLoopAdam {
    fn observe(&mut self, params: &[f32], grads: &[f32]) -> Hyper {
        self.combine(params, grads, Vec::new(), 1.0)
    }

    fn combine(
        &mut self,
        params: &[f32],
        grads: &[f32],
        _partials: Vec<StatsPartial>,
        grad_scale: f32,
    ) -> Hyper {
        assert_eq!(params.len(), grads.len(), "closed-loop adam: lengths");
        if self.v.is_empty() {
            self.v = vec![0.0; params.len()];
        }
        assert_eq!(
            self.v.len(),
            params.len(),
            "optimizer: parameter count changed between steps ({} -> {})",
            self.v.len(),
            params.len()
        );
        self.t += 1;
        let b1 = self.beta1 as f32;
        let bc1 = 1.0 - b1.powi(self.t.min(i32::MAX as u64) as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t.min(i32::MAX as u64) as i32);

        // Update the second moment first: Adam's step at time t is
        // x_{t+1} - x_t = beta1' (x_t - x_{t-1}) - lr e_t with the
        // *effective* gradient e_t = (1 - beta1) g_t / (bc1 (sqrt(v^) +
        // eps)), so Eq. 37 must be fed e_t, not g_t (an SGD-form
        // correction would mis-measure the preconditioned system). The
        // sweep is elementwise, so it fans out over the worker pool and an
        // enclosing middleware's grad_scale folds in per element; the
        // effective-gradient buffer is reused across steps.
        self.effective.resize(params.len(), 0.0);
        let (beta2, lr) = (self.beta2, self.lr);
        let threads = parallel::threads_for(params.len());
        parallel::chunks_mut2(
            &mut self.v,
            1,
            &mut self.effective,
            1,
            threads,
            |first, vc, ec| {
                for (i, (v, e)) in vc.iter_mut().zip(ec.iter_mut()).enumerate() {
                    let g = grad_scale * grads[first + i];
                    *v = beta2 * *v + (1.0 - beta2) * g * g;
                    let v_hat = *v / bc2;
                    *e = (1.0 - b1) * g / (bc1 * (v_hat.sqrt() + 1e-8));
                }
            },
        );
        if let Some(total) = self.estimator.observe(params, &self.effective, lr) {
            self.last_total = Some(total);
            self.beta1 += self.gamma * (self.target - total);
            self.beta1 = self.beta1.clamp(-0.95, 0.999);
        }
        // The applied β1 is the pre-feedback value, exactly as before the
        // split: the adjusted β1 takes effect from the next step.
        Hyper::new(self.lr, b1)
    }

    fn step_shard(&self, shard: ParamShard, params: &mut [f32], grads: &[f32], hyper: Hyper) {
        shard.validate(params, grads);
        let b1 = hyper.momentum;
        let bc1 = 1.0 - b1.powi(self.t.min(i32::MAX as u64) as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t.min(i32::MAX as u64) as i32);
        self.m.with(shard, params.len(), |bufs| {
            let m = &mut bufs[0];
            if m.is_empty() {
                m.resize(params.len(), 0.0);
            }
            for i in 0..params.len() {
                let g = hyper.grad_scale * grads[i];
                m[i] = b1 * m[i] + (1.0 - b1) * g;
                let m_hat = m[i] / bc1;
                let v_hat = self.v[shard.offset + i] / bc2;
                params[i] -= hyper.lr * m_hat / (v_hat.sqrt() + 1e-8);
            }
        });
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn name(&self) -> &'static str {
        "closed-loop-adam"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synchronous momentum SGD has total momentum exactly mu: feed the
    /// estimator a trajectory generated with known (mu, lr) and check.
    #[test]
    fn estimator_recovers_known_momentum_synchronous() {
        let (mu, lr) = (0.6f32, 0.05f32);
        let mut est = TotalMomentumEstimator::new(0);
        let dim = 8;
        let mut rng = yf_tensor::rng::Pcg32::seed(7);
        let mut x: Vec<f32> = (0..dim).map(|_| rng.normal()).collect();
        let mut x_prev = x.clone();
        let mut last = None;
        for _ in 0..50 {
            let g: Vec<f32> = x.to_vec(); // f = |x|^2/2
            if let Some(m) = est.observe(&x, &g, lr) {
                last = Some(m);
            }
            let x_next: Vec<f32> = (0..dim)
                .map(|i| x[i] - lr * g[i] + mu * (x[i] - x_prev[i]))
                .collect();
            x_prev = x.clone();
            x = x_next;
        }
        let m = last.expect("estimator should warm up");
        assert!((m - f64::from(mu)).abs() < 1e-3, "estimated {m}, true {mu}");
    }

    /// "Asynchrony begets momentum" (Mitliagkas et al. 2016): running
    /// *plain SGD* (mu = 0) with stale gradients must register a strictly
    /// positive total momentum, while the same run with fresh gradients
    /// registers none.
    #[test]
    fn estimator_detects_asynchrony_induced_momentum() {
        let measure = |tau: usize| -> f64 {
            let (lr, dim) = (0.02f32, 6);
            let mut est = TotalMomentumEstimator::new(tau);
            let mut rng = yf_tensor::rng::Pcg32::seed(8);
            let mut xs: Vec<Vec<f32>> = vec![(0..dim).map(|_| 1.0 + rng.uniform()).collect()];
            let mut last = None;
            for t in 0..120 {
                let x = xs[t].clone();
                // Stale gradient of f = |x|^2 / 2: computed on x_{t - tau}.
                let g: Vec<f32> = xs[t.saturating_sub(tau)].clone();
                if let Some(m) = est.observe(&x, &g, lr) {
                    last = Some(m);
                }
                let x_next: Vec<f32> = (0..dim).map(|i| x[i] - lr * g[i]).collect();
                xs.push(x_next);
            }
            last.expect("estimator should warm up")
        };
        let sync = measure(0);
        let async_mu = measure(5);
        assert!(sync.abs() < 1e-3, "synchronous SGD total momentum {sync}");
        assert!(
            async_mu > 0.02,
            "stale gradients must induce momentum, got {async_mu}"
        );
    }

    #[test]
    fn estimator_needs_warmup() {
        let mut est = TotalMomentumEstimator::new(3);
        for t in 0..(3 + 3) {
            let x = vec![t as f32; 4];
            let g = vec![1.0f32; 4];
            let m = est.observe(&x, &g, 0.1);
            if t < 3 + 3 - 1 {
                assert!(m.is_none(), "too early at t={t}");
            }
        }
    }

    #[test]
    fn closed_loop_converges_synchronously() {
        let mut opt = ClosedLoopYellowFin::new(YellowFinConfig::default(), 0, 0.01);
        let h = [1.0f32, 4.0];
        let mut x = vec![1.0f32, -1.0];
        for _ in 0..1500 {
            let g: Vec<f32> = x.iter().zip(h.iter()).map(|(&x, &h)| h * x).collect();
            opt.step(&mut x, &g);
        }
        let dist = (x[0] * x[0] + x[1] * x[1]).sqrt();
        assert!(dist < 5e-2, "distance {dist}");
    }

    #[test]
    fn algorithmic_momentum_stays_clamped() {
        let mut opt = ClosedLoopYellowFin::new(YellowFinConfig::default(), 2, 0.5);
        let mut x = vec![1.0f32; 4];
        for t in 0..300 {
            let g: Vec<f32> = x.iter().map(|&v| v + (t as f32 * 0.37).sin()).collect();
            opt.step(&mut x, &g);
            let mu = opt.algorithmic_momentum();
            assert!((-0.9..=0.999).contains(&mu), "mu {mu}");
        }
    }

    #[test]
    fn closed_loop_adam_converges_synchronously() {
        let mut opt = ClosedLoopAdam::new(0.05, 0.9, 0, 0.01);
        let mut x = vec![1.0f32, -1.0];
        for _ in 0..600 {
            let g: Vec<f32> = x.to_vec();
            opt.step(&mut x, &g);
        }
        let dist = (x[0] * x[0] + x[1] * x[1]).sqrt();
        assert!(dist < 0.05, "distance {dist}");
    }

    #[test]
    fn closed_loop_adam_lowers_beta1_under_staleness() {
        // Under stale gradients the measured total momentum exceeds the
        // target, so the controller must push beta1 below it.
        let tau = 7;
        let mut opt = ClosedLoopAdam::new(0.05, 0.9, tau, 0.02);
        let dim = 16;
        let mut rng = yf_tensor::rng::Pcg32::seed(17);
        let mut xs: Vec<Vec<f32>> = vec![(0..dim).map(|_| 1.0 + rng.uniform()).collect()];
        for t in 0..400usize {
            let mut x = xs[t].clone();
            let stale = xs[t.saturating_sub(tau)].clone();
            opt.step(&mut x, &stale); // grad of |x|^2/2 at the stale snapshot
            xs.push(x);
        }
        assert!(
            opt.beta1() < 0.9,
            "beta1 should drop below the target: {}",
            opt.beta1()
        );
        assert!(opt.total_momentum().is_some());
        assert!(xs.last().unwrap().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn closed_loop_adam_beta1_stays_in_range() {
        let mut opt = ClosedLoopAdam::new(0.1, 0.9, 3, 0.5);
        let mut x = vec![1.0f32; 4];
        for t in 0..200 {
            let g: Vec<f32> = x.iter().map(|&v| v + (t as f32 * 0.7).cos()).collect();
            opt.step(&mut x, &g);
            assert!((-0.95..=0.999).contains(&opt.beta1()), "{}", opt.beta1());
        }
    }
}
