//! The three measurement oracles of Algorithm 1 (paper Algorithms 2-4).
//!
//! All three consume nothing but the minibatch gradient, giving the tuner
//! overhead linear in the model dimensionality. They assume a negative
//! log-probability objective, under which the Fisher information (the
//! expected outer product of noisy gradients) approximates the Hessian —
//! which is why `h_t = ||g_t||^2`, the sole non-zero eigenvalue of
//! `g_t g_t^T`, serves as a curvature sample along the gradient direction.

use crate::ema::{Ema, VecEma};
use std::collections::VecDeque;

/// Algorithm 2: running estimates of the extremal curvatures
/// `h_max`/`h_min` from a sliding window of `h_t = ||g_t||^2`.
///
/// Two refinements from Appendix E/F are implemented:
/// - smoothing happens on `log h` (so rapidly decreasing curvature on
///   LSTMs is tracked), and
/// - with `limit_growth` (used by adaptive clipping, Eq. 35) the window
///   maximum fed into the average is capped at `100 x` the current
///   estimate, which keeps one catastrophic gradient spike from blowing
///   up the clipping envelope.
#[derive(Debug, Clone)]
pub struct CurvatureRange {
    pub(crate) window: VecDeque<f64>,
    pub(crate) width: usize,
    pub(crate) log_h_max: Ema,
    pub(crate) log_h_min: Ema,
    pub(crate) limit_growth: bool,
}

impl CurvatureRange {
    /// Creates the estimator with sliding-window `width` (the paper uses
    /// 20) and smoothing `beta` (the paper uses 0.999).
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn new(width: usize, beta: f64, limit_growth: bool) -> Self {
        assert!(width > 0, "curvature range: window width must be positive");
        CurvatureRange {
            window: VecDeque::with_capacity(width),
            width,
            log_h_max: Ema::new(beta),
            log_h_min: Ema::new(beta),
            limit_growth,
        }
    }

    /// Feeds one squared gradient norm `h_t = ||g_t||^2`.
    pub fn observe(&mut self, h_t: f64) {
        let h_t = h_t.max(f64::MIN_POSITIVE); // log-space smoothing needs > 0
        if self.window.len() == self.width {
            self.window.pop_front();
        }
        self.window.push_back(h_t);
        let mut h_max_t = self.window.iter().copied().fold(f64::MIN, f64::max);
        let h_min_t = self.window.iter().copied().fold(f64::MAX, f64::min);
        if self.limit_growth && self.log_h_max.is_initialized() {
            // Eq. 35: envelope may grow at most 100x per step.
            h_max_t = h_max_t.min(100.0 * self.h_max());
        }
        self.log_h_max.update(h_max_t.ln());
        self.log_h_min.update(h_min_t.ln());
    }

    /// Debiased estimate of the largest curvature.
    pub fn h_max(&self) -> f64 {
        self.log_h_max.value().exp()
    }

    /// Debiased estimate of the smallest curvature.
    pub fn h_min(&self) -> f64 {
        self.log_h_min.value().exp()
    }

    /// Whether at least one observation was made.
    pub fn is_initialized(&self) -> bool {
        self.log_h_max.is_initialized()
    }
}

/// Algorithm 3: gradient variance `C = 1^T (E[g g] - E[g] E[g])`.
///
/// Built on the fused measurement kernel
/// [`yf_tensor::reduce::ema_update_stats`]: one sweep over the gradient
/// updates both per-coordinate moments *and* accumulates the per-block
/// debiased variance partial sums, which a fixed-order tree reduction
/// folds into the total. The sweep is parallel (block-aligned chunks on
/// the persistent worker pool) and bitwise identical for every thread
/// count, so the
/// estimate a sharded measure phase produces equals the whole-vector one
/// exactly. A global gradient scale (clipping) folds into the same sweep
/// — no scaled gradient copy is ever materialized.
#[derive(Debug, Clone)]
pub struct GradVariance {
    pub(crate) first: VecEma,
    pub(crate) second: VecEma,
    /// Variance total from the last sweep (the blocked tree-combined
    /// Σ max(0, m2 − m1²); 0 before the first observation).
    pub(crate) var_sum: f64,
}

impl GradVariance {
    /// Creates the estimator with smoothing `beta`.
    pub fn new(beta: f64) -> Self {
        GradVariance {
            first: VecEma::new(beta),
            second: VecEma::new(beta),
            var_sum: 0.0,
        }
    }

    /// Rebuilds the estimator from restored moment averages, recomputing
    /// the cached variance total with the same blocked reduction the
    /// fused sweep uses (bit-identical to the value before the save).
    pub(crate) fn from_parts(first: VecEma, second: VecEma) -> Self {
        let var_sum = if first.is_initialized() {
            yf_tensor::reduce::variance_total(&first.biased, &second.biased, first.correction)
        } else {
            0.0
        };
        GradVariance {
            first,
            second,
            var_sum,
        }
    }

    /// Feeds one minibatch gradient.
    pub fn observe(&mut self, grad: &[f32]) {
        self.observe_scaled(grad, 1.0, 1);
    }

    /// Feeds one minibatch gradient as if every element were multiplied
    /// by `scale`, sweeping with up to `threads` block-aligned parallel
    /// chunks. The result does not depend on `threads`.
    ///
    /// # Panics
    ///
    /// Panics if the dimension changes between observations.
    pub fn observe_scaled(&mut self, grads: &[f32], scale: f64, threads: usize) {
        if self.first.biased.is_empty() {
            self.first.biased = vec![0.0; grads.len()];
            self.second.biased = vec![0.0; grads.len()];
        }
        assert_eq!(
            self.first.biased.len(),
            grads.len(),
            "vec ema: dimension changed"
        );
        let beta = self.first.beta;
        let corr = beta * self.first.correction + (1.0 - beta);
        self.var_sum = yf_tensor::reduce::ema_update_stats_parallel(
            &mut self.first.biased,
            &mut self.second.biased,
            grads,
            beta,
            scale,
            corr,
            threads,
        );
        self.first.correction = corr;
        self.first.steps += 1;
        self.second.correction = corr;
        self.second.steps += 1;
    }

    /// The summed per-coordinate variance estimate, floored at zero
    /// (finite-sample noise can drive individual coordinates slightly
    /// negative). Cached from the last fused sweep — no per-step fold
    /// over the model dimension happens here.
    pub fn variance(&self) -> f64 {
        self.var_sum
    }

    /// Whether at least one observation was made.
    pub fn is_initialized(&self) -> bool {
        self.first.is_initialized()
    }
}

/// Algorithm 4: distance to the optimum of the local quadratic
/// approximation, `D ≈ E||g|| / E h`, motivated by
/// `||∇f(x)|| <= ||H|| ||x - x*||` on quadratics.
#[derive(Debug, Clone)]
pub struct DistanceToOpt {
    pub(crate) grad_norm: Ema,
    pub(crate) curvature: Ema,
    pub(crate) dist: Ema,
}

impl DistanceToOpt {
    /// Creates the estimator with smoothing `beta`.
    pub fn new(beta: f64) -> Self {
        DistanceToOpt {
            grad_norm: Ema::new(beta),
            curvature: Ema::new(beta),
            dist: Ema::new(beta),
        }
    }

    /// Feeds one gradient norm `||g_t||` (its square is the curvature
    /// proxy `h_t`).
    pub fn observe(&mut self, grad_norm: f64) {
        self.grad_norm.update(grad_norm);
        self.curvature.update(grad_norm * grad_norm);
        let h = self.curvature.value();
        if h > 0.0 {
            self.dist.update(self.grad_norm.value() / h);
        } else {
            self.dist.update(0.0);
        }
    }

    /// The debiased distance estimate `D`.
    pub fn distance(&self) -> f64 {
        self.dist.value()
    }

    /// Whether at least one observation was made.
    pub fn is_initialized(&self) -> bool {
        self.dist.is_initialized()
    }
}

/// The adaptive-clipping threshold machinery (§3.3, Eq. 35) packaged as
/// a standalone outlier gate for measurement streams.
///
/// Adaptive clipping trusts the [`CurvatureRange`] envelope: a gradient
/// whose squared norm exceeds the smoothed `h_max` estimate by more than
/// a tolerance factor is a spike, not signal. The gate runs the same
/// limited-growth estimator (the window maximum fed into the average is
/// capped at `100 x` the current estimate, so one catastrophic sample
/// cannot blow the envelope open) and answers a single question per
/// sample: *should a tuner consume this measurement at all?*
///
/// `yf-serve` uses this as its per-session data-quality filter: rejected
/// measurements never reach the session's optimizer, but they still
/// nudge the envelope through the growth-limited path, so a genuine
/// regime change (norms that really did grow) is admitted within a few
/// observations instead of being blocked forever.
///
/// The gate is deterministic and checkpointable ([`OutlierGate::save_state`]),
/// which keeps a filtered measurement stream bit-exactly replayable.
#[derive(Debug, Clone)]
pub struct OutlierGate {
    range: CurvatureRange,
    /// Norm multiples of the clip threshold `sqrt(h_max)` beyond which a
    /// sample is rejected.
    tolerance: f64,
}

impl OutlierGate {
    /// Creates the gate with sliding-window `width`, smoothing `beta`
    /// (the paper's clipping machinery uses 20 / 0.999), and `tolerance`
    /// in norm multiples of the adaptive clip threshold `sqrt(h_max)`.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`, `beta` is not in `(0, 1)`, or `tolerance`
    /// is not a positive finite number.
    pub fn new(width: usize, beta: f64, tolerance: f64) -> Self {
        assert!(
            tolerance.is_finite() && tolerance > 0.0,
            "outlier gate: tolerance must be positive and finite"
        );
        OutlierGate {
            range: CurvatureRange::new(width, beta, true),
            tolerance,
        }
    }

    /// Judges one squared gradient norm `h_t = ||g_t||^2`.
    ///
    /// Returns `true` when the sample is admissible. Non-finite samples
    /// are always rejected and leave the envelope untouched; finite
    /// outliers are rejected but still observed through the
    /// growth-limited envelope update (Eq. 35), so the threshold adapts
    /// to genuine regime changes. The first `width` samples (an empty
    /// envelope) are always admitted — there is nothing to compare
    /// against yet.
    pub fn admit(&mut self, squared_norm: f64) -> bool {
        if !squared_norm.is_finite() || squared_norm < 0.0 {
            return false;
        }
        let admissible = match self.limit() {
            Some(limit) => squared_norm <= limit,
            None => true,
        };
        self.range.observe(squared_norm);
        admissible
    }

    /// The current admissible cap on squared norms:
    /// `tolerance^2 * h_max`, or `None` before the first observation.
    pub fn limit(&self) -> Option<f64> {
        if self.range.is_initialized() {
            Some(self.tolerance * self.tolerance * self.range.h_max())
        } else {
            None
        }
    }

    /// The configured tolerance in norm multiples of `sqrt(h_max)`.
    pub fn tolerance(&self) -> f64 {
        self.tolerance
    }

    /// Serializes the gate bit-exactly (versioned text block, the same
    /// dialect as [`crate::tuner::YellowFin::save_state`]).
    pub fn save_state(&self) -> String {
        let mut w = crate::state::Writer::new();
        w.f64_field("tolerance", self.tolerance);
        w.field("window_width", self.range.width);
        w.f64_field("beta", self.range.log_h_max.beta);
        w.f64_slice("window", self.range.window.iter().copied());
        w.f64_field("log_h_max.biased", self.range.log_h_max.biased);
        w.f64_field("log_h_max.correction", self.range.log_h_max.correction);
        w.field("log_h_max.steps", self.range.log_h_max.steps);
        w.f64_field("log_h_min.biased", self.range.log_h_min.biased);
        w.f64_field("log_h_min.correction", self.range.log_h_min.correction);
        w.field("log_h_min.steps", self.range.log_h_min.steps);
        w.finish()
    }

    /// Reconstructs a gate from [`OutlierGate::save_state`] output.
    ///
    /// # Errors
    ///
    /// [`crate::RestoreStateError`] on version mismatch, missing fields,
    /// or malformed values.
    pub fn restore_state(text: &str) -> Result<Self, crate::RestoreStateError> {
        let r = crate::state::Reader::new(text)?;
        let beta = r.f64("beta")?;
        let mut gate = OutlierGate::new(r.parse("window_width")?, beta, r.f64("tolerance")?);
        gate.range.window = r.f64_vec("window")?.into();
        gate.range.log_h_max.biased = r.f64("log_h_max.biased")?;
        gate.range.log_h_max.correction = r.f64("log_h_max.correction")?;
        gate.range.log_h_max.steps = r.parse("log_h_max.steps")?;
        gate.range.log_h_min.biased = r.f64("log_h_min.biased")?;
        gate.range.log_h_min.correction = r.f64("log_h_min.correction")?;
        gate.range.log_h_min.steps = r.parse("log_h_min.steps")?;
        Ok(gate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curvature_range_brackets_constant_stream() {
        let mut cr = CurvatureRange::new(20, 0.9, false);
        for _ in 0..100 {
            cr.observe(4.0);
        }
        assert!((cr.h_max() - 4.0).abs() < 1e-9);
        assert!((cr.h_min() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn curvature_range_separates_extremes() {
        let mut cr = CurvatureRange::new(20, 0.9, false);
        for i in 0..200 {
            cr.observe(if i % 2 == 0 { 1.0 } else { 100.0 });
        }
        assert!(cr.h_max() > 50.0, "h_max {}", cr.h_max());
        assert!(cr.h_min() < 2.0, "h_min {}", cr.h_min());
        assert!(cr.h_max() >= cr.h_min());
    }

    #[test]
    fn window_forgets_old_extremes() {
        let mut cr = CurvatureRange::new(5, 0.5, false);
        cr.observe(1000.0);
        for _ in 0..50 {
            cr.observe(1.0);
        }
        // The 1000 left the window long ago and the EMA has washed out.
        assert!(cr.h_max() < 2.0, "h_max {}", cr.h_max());
    }

    #[test]
    fn growth_limit_caps_spikes() {
        let mut limited = CurvatureRange::new(1, 0.0, true);
        let mut free = CurvatureRange::new(1, 0.0, false);
        limited.observe(1.0);
        free.observe(1.0);
        limited.observe(1e9);
        free.observe(1e9);
        // beta=0, window=1: estimates track the last (possibly capped) value.
        assert!((free.h_max() - 1e9).abs() / 1e9 < 1e-9);
        assert!(
            (limited.h_max() - 100.0).abs() < 1e-6,
            "{}",
            limited.h_max()
        );
    }

    #[test]
    fn variance_of_deterministic_stream_is_zero() {
        let mut v = GradVariance::new(0.9);
        for _ in 0..50 {
            v.observe(&[1.0, -2.0, 3.0]);
        }
        assert!(v.variance() < 1e-9, "variance {}", v.variance());
    }

    #[test]
    fn variance_matches_bernoulli_noise() {
        // Gradient coordinate alternates a ± eps: variance per coordinate
        // approaches eps^2 (equal weights in the long run).
        let mut v = GradVariance::new(0.999);
        for i in 0..20_000 {
            let sign = if i % 2 == 0 { 1.0 } else { -1.0 };
            v.observe(&[1.0 + 0.5 * sign]);
        }
        assert!(
            (v.variance() - 0.25).abs() < 0.01,
            "variance {}",
            v.variance()
        );
    }

    #[test]
    fn distance_on_known_quadratic() {
        // For f = h/2 x^2 at a fixed point x0, ||g|| = h|x0| and
        // h_t = h^2 x0^2, so D = h|x0| / (h^2 x0^2) = 1/(h |x0|).
        // With h = 2, x0 = 3: D = 1/6.
        let mut d = DistanceToOpt::new(0.9);
        for _ in 0..100 {
            d.observe(6.0);
        }
        assert!(
            (d.distance() - 1.0 / 6.0).abs() < 1e-9,
            "D {}",
            d.distance()
        );
    }

    #[test]
    fn zero_gradient_stream_is_safe() {
        let mut cr = CurvatureRange::new(20, 0.999, true);
        let mut v = GradVariance::new(0.999);
        let mut d = DistanceToOpt::new(0.999);
        for _ in 0..10 {
            cr.observe(0.0);
            v.observe(&[0.0, 0.0]);
            d.observe(0.0);
        }
        assert!(cr.h_max().is_finite());
        assert!(v.variance().is_finite());
        assert!(d.distance().is_finite());
    }

    #[test]
    fn outlier_gate_admits_steady_stream_and_rejects_spikes() {
        let mut gate = OutlierGate::new(20, 0.9, 10.0);
        // Warm up on norms around 2 (h around 4).
        for i in 0..50 {
            let h = 4.0 + 0.1 * (i as f64).sin();
            assert!(gate.admit(h), "steady sample {i} must be admitted");
        }
        // A 1000x squared-norm spike is far past 10x the clip norm.
        assert!(!gate.admit(4000.0), "spike must be rejected");
        // The stream right after stays admissible.
        assert!(gate.admit(4.0));
    }

    #[test]
    fn outlier_gate_adapts_to_regime_changes() {
        let mut gate = OutlierGate::new(5, 0.5, 2.0);
        for _ in 0..30 {
            assert!(gate.admit(1.0));
        }
        // Norms genuinely grew 100x: first samples are rejected, but the
        // growth-limited envelope keeps absorbing them and the gate must
        // re-admit the new regime within a few observations.
        let mut admitted_at = None;
        for i in 0..30 {
            if gate.admit(100.0) {
                admitted_at = Some(i);
                break;
            }
        }
        assert!(
            admitted_at.is_some(),
            "a persistent regime change must eventually be admitted"
        );
    }

    #[test]
    fn outlier_gate_rejects_non_finite_without_observing() {
        let mut gate = OutlierGate::new(20, 0.9, 10.0);
        for _ in 0..10 {
            assert!(gate.admit(1.0));
        }
        let limit = gate.limit();
        assert!(!gate.admit(f64::NAN));
        assert!(!gate.admit(f64::INFINITY));
        assert!(!gate.admit(-1.0));
        assert_eq!(
            gate.limit(),
            limit,
            "non-finite samples must leave the envelope untouched"
        );
    }

    #[test]
    fn outlier_gate_state_round_trips_bit_exactly() {
        let mut gate = OutlierGate::new(20, 0.999, 8.0);
        for i in 0..40 {
            gate.admit(2.0 + (i as f64 * 0.7).cos());
        }
        let saved = gate.save_state();
        let mut restored = OutlierGate::restore_state(&saved).expect("valid state");
        assert_eq!(restored.limit(), gate.limit());
        // Both must keep judging a continued stream identically.
        for i in 0..40 {
            let h = if i % 9 == 0 { 500.0 } else { 2.5 };
            assert_eq!(gate.admit(h), restored.admit(h), "sample {i}");
            assert_eq!(gate.limit(), restored.limit(), "sample {i}");
        }
        assert!(OutlierGate::restore_state("garbage").is_err());
    }
}
