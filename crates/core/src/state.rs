//! Tuner state checkpointing.
//!
//! Long training jobs checkpoint model parameters; an auto-tuner must
//! checkpoint *its* state too, or a restart silently re-enters the slow
//!-start warm-up with empty measurement averages (a lesson the paper's
//! §3.3 "large-scale deployment in industry" discussion alludes to).
//! This module serializes a [`YellowFin`] tuner to a small, versioned,
//! human-readable text block and restores it bit-exactly — no external
//! serialization crates needed.
//!
//! # Example
//!
//! ```
//! use yellowfin::YellowFin;
//! use yf_optim::Optimizer;
//!
//! let mut opt = YellowFin::default();
//! let mut x = vec![1.0f32, -1.0];
//! for _ in 0..50 {
//!     let g = x.clone();
//!     opt.step(&mut x, &g);
//! }
//! let saved = opt.save_state();
//! let restored = YellowFin::restore_state(&saved).unwrap();
//! assert_eq!(opt.momentum(), restored.momentum());
//! ```

use crate::tuner::YellowFin;
use std::fmt;

/// Error from [`YellowFin::restore_state`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RestoreStateError {
    message: String,
}

impl RestoreStateError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        RestoreStateError {
            message: message.into(),
        }
    }
}

impl fmt::Display for RestoreStateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid yellowfin checkpoint: {}", self.message)
    }
}

impl std::error::Error for RestoreStateError {}

/// Format version written into every checkpoint.
pub const STATE_VERSION: u32 = 1;

pub(crate) struct Writer {
    out: String,
}

impl Writer {
    pub(crate) fn new() -> Self {
        let mut w = Writer { out: String::new() };
        w.field("version", STATE_VERSION);
        w
    }

    pub(crate) fn field(&mut self, key: &str, value: impl fmt::Display) {
        self.out.push_str(key);
        self.out.push(' ');
        self.out.push_str(&value.to_string());
        self.out.push('\n');
    }

    /// f64 with full round-trip precision (hex bits).
    pub(crate) fn f64_field(&mut self, key: &str, value: f64) {
        self.field(key, format!("{:016x}", value.to_bits()));
    }

    pub(crate) fn f64_slice(&mut self, key: &str, values: impl Iterator<Item = f64>) {
        let body: Vec<String> = values.map(|v| format!("{:016x}", v.to_bits())).collect();
        self.field(key, body.join(","));
    }

    pub(crate) fn f32_slice(&mut self, key: &str, values: &[f32]) {
        let body: Vec<String> = values
            .iter()
            .map(|v| format!("{:08x}", v.to_bits()))
            .collect();
        self.field(key, body.join(","));
    }

    pub(crate) fn finish(self) -> String {
        self.out
    }
}

pub(crate) struct Reader<'a> {
    lines: std::collections::HashMap<&'a str, &'a str>,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(text: &'a str) -> Result<Self, RestoreStateError> {
        let mut lines = std::collections::HashMap::new();
        for line in text.lines() {
            let line = line.trim_end();
            if line.is_empty() {
                continue;
            }
            // A key with an empty value (e.g. an empty list) has no space.
            let (key, value) = line.split_once(' ').unwrap_or((line, ""));
            lines.insert(key, value);
        }
        let reader = Reader { lines };
        let version: u32 = reader.parse("version")?;
        if version != STATE_VERSION {
            return Err(RestoreStateError::new(format!(
                "unsupported version {version} (expected {STATE_VERSION})"
            )));
        }
        Ok(reader)
    }

    pub(crate) fn raw(&self, key: &str) -> Result<&'a str, RestoreStateError> {
        self.lines
            .get(key)
            .copied()
            .ok_or_else(|| RestoreStateError::new(format!("missing field {key}")))
    }

    pub(crate) fn parse<T: std::str::FromStr>(&self, key: &str) -> Result<T, RestoreStateError> {
        self.raw(key)?
            .parse::<T>()
            .map_err(|_| RestoreStateError::new(format!("unparseable field {key}")))
    }

    pub(crate) fn f64(&self, key: &str) -> Result<f64, RestoreStateError> {
        let bits = u64::from_str_radix(self.raw(key)?, 16)
            .map_err(|_| RestoreStateError::new(format!("bad f64 bits in {key}")))?;
        Ok(f64::from_bits(bits))
    }

    pub(crate) fn f64_vec(&self, key: &str) -> Result<Vec<f64>, RestoreStateError> {
        let raw = self.raw(key)?;
        if raw.is_empty() {
            return Ok(Vec::new());
        }
        raw.split(',')
            .map(|part| {
                u64::from_str_radix(part, 16)
                    .map(f64::from_bits)
                    .map_err(|_| RestoreStateError::new(format!("bad f64 list in {key}")))
            })
            .collect()
    }

    pub(crate) fn f32_vec(&self, key: &str) -> Result<Vec<f32>, RestoreStateError> {
        let raw = self.raw(key)?;
        if raw.is_empty() {
            return Ok(Vec::new());
        }
        raw.split(',')
            .map(|part| {
                u32::from_str_radix(part, 16)
                    .map(f32::from_bits)
                    .map_err(|_| RestoreStateError::new(format!("bad f32 list in {key}")))
            })
            .collect()
    }
}

impl YellowFin {
    /// Serializes the complete tuner state (configuration, measurement
    /// averages, sliding window, velocity buffer) to a versioned text
    /// block. The inverse is [`YellowFin::restore_state`].
    pub fn save_state(&self) -> String {
        self.write_state()
    }

    /// Reconstructs a tuner from [`YellowFin::save_state`] output.
    ///
    /// # Errors
    ///
    /// Returns [`RestoreStateError`] on version mismatch, missing fields
    /// or malformed values.
    pub fn restore_state(text: &str) -> Result<Self, RestoreStateError> {
        Self::read_state(text)
    }
}

impl YellowFin {
    pub(crate) fn write_state(&self) -> String {
        use crate::tuner::ClipMode;
        let mut w = Writer::new();
        // Configuration.
        w.f64_field("cfg.beta", self.cfg.beta);
        w.field("cfg.window", self.cfg.window);
        w.f64_field("cfg.lr_factor", self.cfg.lr_factor);
        match self.cfg.clip {
            ClipMode::None => w.field("cfg.clip", "none"),
            ClipMode::Manual(t) => w.field("cfg.clip", format!("manual:{:08x}", t.to_bits())),
            ClipMode::Adaptive => w.field("cfg.clip", "adaptive"),
        }
        w.field("cfg.slow_start", self.cfg.slow_start);
        match self.cfg.momentum_override {
            Some(m) => w.f64_field("cfg.momentum_override", m),
            None => w.field("cfg.momentum_override", "none"),
        }
        // Measurement state.
        w.f64_slice("curvature.window", self.curvature.window.iter().copied());
        write_ema(&mut w, "curvature.log_h_max", &self.curvature.log_h_max);
        write_ema(&mut w, "curvature.log_h_min", &self.curvature.log_h_min);
        write_vec_ema(&mut w, "variance.first", &self.variance.first);
        write_vec_ema(&mut w, "variance.second", &self.variance.second);
        write_ema(&mut w, "distance.grad_norm", &self.distance.grad_norm);
        write_ema(&mut w, "distance.curvature", &self.distance.curvature);
        write_ema(&mut w, "distance.dist", &self.distance.dist);
        write_ema(&mut w, "mu_ema", &self.mu_ema);
        write_ema(&mut w, "lr_ema", &self.lr_ema);
        // Optimizer state. The per-shard velocity is stitched back into
        // one flat vector, so checkpoints are independent of the shard
        // plan that produced them.
        w.field("step_count", self.step_count);
        w.f32_slice("velocity", &self.velocity.flatten(0));
        w.field(
            "dim",
            self.dim
                .map(|d| d.to_string())
                .unwrap_or_else(|| "none".into()),
        );
        match self.last_norm {
            Some(n) => w.f64_field("last_norm", n),
            None => w.field("last_norm", "none"),
        }
        w.finish()
    }

    pub(crate) fn read_state(text: &str) -> Result<Self, RestoreStateError> {
        use crate::measurements::{CurvatureRange, DistanceToOpt, GradVariance};
        use crate::tuner::{ClipMode, YellowFinConfig};
        let r = Reader::new(text)?;
        let clip = match r.raw("cfg.clip")? {
            "none" => ClipMode::None,
            "adaptive" => ClipMode::Adaptive,
            other => {
                let bits = other
                    .strip_prefix("manual:")
                    .and_then(|b| u32::from_str_radix(b, 16).ok())
                    .ok_or_else(|| RestoreStateError::new("bad cfg.clip"))?;
                ClipMode::Manual(f32::from_bits(bits))
            }
        };
        let momentum_override = match r.raw("cfg.momentum_override")? {
            "none" => None,
            _ => Some(r.f64("cfg.momentum_override")?),
        };
        let cfg = YellowFinConfig {
            beta: r.f64("cfg.beta")?,
            window: r.parse("cfg.window")?,
            lr_factor: r.f64("cfg.lr_factor")?,
            clip,
            slow_start: r.parse("cfg.slow_start")?,
            momentum_override,
        };
        let mut tuner = YellowFin::new(cfg);
        tuner.curvature = CurvatureRange {
            window: r.f64_vec("curvature.window")?.into(),
            width: tuner.cfg.window,
            log_h_max: read_ema(&r, "curvature.log_h_max", tuner.cfg.beta)?,
            log_h_min: read_ema(&r, "curvature.log_h_min", tuner.cfg.beta)?,
            limit_growth: tuner.cfg.clip == ClipMode::Adaptive,
        };
        tuner.variance = GradVariance::from_parts(
            read_vec_ema(&r, "variance.first", tuner.cfg.beta)?,
            read_vec_ema(&r, "variance.second", tuner.cfg.beta)?,
        );
        tuner.distance = DistanceToOpt {
            grad_norm: read_ema(&r, "distance.grad_norm", tuner.cfg.beta)?,
            curvature: read_ema(&r, "distance.curvature", tuner.cfg.beta)?,
            dist: read_ema(&r, "distance.dist", tuner.cfg.beta)?,
        };
        tuner.mu_ema = read_ema(&r, "mu_ema", tuner.cfg.beta)?;
        tuner.lr_ema = read_ema(&r, "lr_ema", tuner.cfg.beta)?;
        tuner.step_count = r.parse("step_count")?;
        let velocity = r.f32_vec("velocity")?;
        if !velocity.is_empty() {
            tuner.velocity.load_full(vec![velocity]);
        }
        tuner.dim = match r.raw("dim")? {
            "none" => None,
            d => Some(d.parse().map_err(|_| RestoreStateError::new("bad dim"))?),
        };
        tuner.last_norm = match r.raw("last_norm")? {
            "none" => None,
            _ => Some(r.f64("last_norm")?),
        };
        Ok(tuner)
    }
}

fn write_ema(w: &mut Writer, key: &str, ema: &crate::ema::Ema) {
    w.f64_field(&format!("{key}.biased"), ema.biased);
    w.f64_field(&format!("{key}.correction"), ema.correction);
    w.field(&format!("{key}.steps"), ema.steps);
}

fn read_ema(r: &Reader<'_>, key: &str, beta: f64) -> Result<crate::ema::Ema, RestoreStateError> {
    let mut ema = crate::ema::Ema::new(beta);
    ema.biased = r.f64(&format!("{key}.biased"))?;
    ema.correction = r.f64(&format!("{key}.correction"))?;
    ema.steps = r.parse(&format!("{key}.steps"))?;
    Ok(ema)
}

fn write_vec_ema(w: &mut Writer, key: &str, ema: &crate::ema::VecEma) {
    w.f64_slice(&format!("{key}.biased"), ema.biased.iter().copied());
    w.f64_field(&format!("{key}.correction"), ema.correction);
    w.field(&format!("{key}.steps"), ema.steps);
}

fn read_vec_ema(
    r: &Reader<'_>,
    key: &str,
    beta: f64,
) -> Result<crate::ema::VecEma, RestoreStateError> {
    let mut ema = crate::ema::VecEma::new(beta);
    ema.biased = r.f64_vec(&format!("{key}.biased"))?;
    ema.correction = r.f64(&format!("{key}.correction"))?;
    ema.steps = r.parse(&format!("{key}.steps"))?;
    Ok(ema)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuner::{ClipMode, YellowFinConfig};
    use yf_optim::Optimizer;

    fn trained_tuner(steps: usize) -> (YellowFin, Vec<f32>) {
        let mut opt = YellowFin::new(YellowFinConfig {
            clip: ClipMode::Adaptive,
            lr_factor: 1.5,
            ..Default::default()
        });
        let mut x = vec![1.0f32, -2.0, 0.5];
        for t in 0..steps {
            let g: Vec<f32> = x
                .iter()
                .map(|v| v * (1.0 + 0.1 * (t as f32).sin()))
                .collect();
            opt.step(&mut x, &g);
        }
        (opt, x)
    }

    #[test]
    fn round_trip_is_bit_exact() {
        let (opt, mut x) = trained_tuner(120);
        let saved = opt.save_state();
        let mut restored = YellowFin::restore_state(&saved).expect("valid checkpoint");
        assert_eq!(opt.momentum(), restored.momentum());
        assert_eq!(opt.effective_lr(), restored.effective_lr());
        assert_eq!(opt.measurements(), restored.measurements());
        assert_eq!(opt.steps(), restored.steps());
        // Continuing both must produce identical trajectories.
        let mut opt2 = opt.clone();
        let mut x2 = x.clone();
        for t in 0..40 {
            let g: Vec<f32> = x.iter().map(|v| v + t as f32 * 0.01).collect();
            opt2.step(&mut x, &g);
            restored.step(&mut x2, &g);
        }
        assert_eq!(x, x2, "restored tuner must continue bit-identically");
    }

    #[test]
    fn fresh_tuner_round_trips_too() {
        let opt = YellowFin::default();
        let saved = opt.save_state();
        let restored = YellowFin::restore_state(&saved).expect("valid checkpoint");
        assert_eq!(restored.steps(), 0);
    }

    #[test]
    fn rejects_garbage_and_wrong_version() {
        assert!(YellowFin::restore_state("not a checkpoint").is_err());
        let (opt, _) = trained_tuner(5);
        let saved = opt.save_state().replace("version 1", "version 999");
        let err = YellowFin::restore_state(&saved).unwrap_err();
        assert!(err.to_string().contains("version"));
    }

    #[test]
    fn rejects_truncated_checkpoint() {
        let (opt, _) = trained_tuner(5);
        let saved = opt.save_state();
        let truncated: String = saved.lines().take(3).collect::<Vec<_>>().join("\n");
        assert!(YellowFin::restore_state(&truncated).is_err());
    }
}
