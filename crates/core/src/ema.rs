//! Zero-debiased exponential moving averages.
//!
//! Appendix E of the paper: "We applied zero-debias to all the exponential
//! average quantities involved in our estimators." Zero-debias (Kingma &
//! Ba, 2014) divides a conventionally-initialized-at-zero EMA by
//! `1 - beta^t`, removing the cold-start bias entirely — the reported
//! value after one update is exactly the first observation.

/// A scalar exponential moving average with zero-debiasing.
///
/// # Example
///
/// ```
/// use yellowfin::ema::Ema;
/// let mut e = Ema::new(0.999);
/// e.update(5.0);
/// assert!((e.value() - 5.0).abs() < 1e-12); // debiased: no cold start
/// ```
#[derive(Debug, Clone)]
pub struct Ema {
    pub(crate) beta: f64,
    pub(crate) biased: f64,
    pub(crate) correction: f64,
    pub(crate) steps: u64,
}

impl Ema {
    /// Creates an EMA with smoothing factor `beta`.
    ///
    /// # Panics
    ///
    /// Panics unless `beta ∈ [0, 1)`.
    pub fn new(beta: f64) -> Self {
        assert!((0.0..1.0).contains(&beta), "ema: beta {beta} out of [0,1)");
        Ema {
            beta,
            biased: 0.0,
            correction: 0.0,
            steps: 0,
        }
    }

    /// Incorporates an observation.
    pub fn update(&mut self, x: f64) {
        self.biased = self.beta * self.biased + (1.0 - self.beta) * x;
        self.correction = self.beta * self.correction + (1.0 - self.beta);
        self.steps += 1;
    }

    /// The debiased average.
    ///
    /// # Panics
    ///
    /// Panics if called before any update.
    pub fn value(&self) -> f64 {
        assert!(self.steps > 0, "ema: value() before first update");
        self.biased / self.correction
    }

    /// Number of observations so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Whether any observation has been made.
    pub fn is_initialized(&self) -> bool {
        self.steps > 0
    }
}

/// A per-coordinate exponential moving average with zero-debiasing,
/// used for the gradient first/second moments in Algorithm 3.
#[derive(Debug, Clone)]
pub struct VecEma {
    pub(crate) beta: f64,
    pub(crate) biased: Vec<f64>,
    pub(crate) correction: f64,
    pub(crate) steps: u64,
}

impl VecEma {
    /// Creates a vector EMA with smoothing factor `beta`. The dimension is
    /// fixed by the first update.
    ///
    /// # Panics
    ///
    /// Panics unless `beta ∈ [0, 1)`.
    pub fn new(beta: f64) -> Self {
        assert!((0.0..1.0).contains(&beta), "vec ema: beta {beta}");
        VecEma {
            beta,
            biased: Vec::new(),
            correction: 0.0,
            steps: 0,
        }
    }

    /// Incorporates the elementwise transform `f` of `xs`.
    ///
    /// # Panics
    ///
    /// Panics if the dimension changes between updates.
    pub fn update_with(&mut self, xs: &[f32], f: impl Fn(f64) -> f64) {
        if self.biased.is_empty() {
            self.biased = vec![0.0; xs.len()];
        }
        assert_eq!(self.biased.len(), xs.len(), "vec ema: dimension changed");
        for (b, &x) in self.biased.iter_mut().zip(xs) {
            *b = self.beta * *b + (1.0 - self.beta) * f(f64::from(x));
        }
        self.correction = self.beta * self.correction + (1.0 - self.beta);
        self.steps += 1;
    }

    /// Incorporates `xs` directly.
    pub fn update(&mut self, xs: &[f32]) {
        self.update_with(xs, |x| x);
    }

    /// The debiased average of coordinate `i`.
    pub fn value_at(&self, i: usize) -> f64 {
        self.biased[i] / self.correction
    }

    /// Σ of all debiased coordinates through the deterministic blocked
    /// reduction ([`yf_tensor::reduce::sum_div`]) — replaces the serial
    /// scalar fold, and matches any block-aligned sharded accumulation of
    /// the same values bit for bit.
    pub fn sum_debiased(&self) -> f64 {
        yf_tensor::reduce::sum_div(&self.biased, self.correction)
    }

    /// Dimension (0 before the first update).
    pub fn len(&self) -> usize {
        self.biased.len()
    }

    /// True before the first update.
    pub fn is_empty(&self) -> bool {
        self.biased.is_empty()
    }

    /// Whether any observation has been made.
    pub fn is_initialized(&self) -> bool {
        self.steps > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_value_is_exact() {
        let mut e = Ema::new(0.999);
        e.update(42.0);
        assert!((e.value() - 42.0).abs() < 1e-12);
    }

    #[test]
    fn converges_to_constant_stream() {
        let mut e = Ema::new(0.9);
        for _ in 0..200 {
            e.update(3.5);
        }
        assert!((e.value() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn debias_matches_closed_form() {
        // For observations x_1..x_t, the debiased EMA equals
        // sum(beta^(t-i) x_i) / sum(beta^(t-i)).
        let beta = 0.8;
        let xs = [1.0, 2.0, 3.0, 4.0];
        let mut e = Ema::new(beta);
        for &x in &xs {
            e.update(x);
        }
        let mut num = 0.0;
        let mut den = 0.0;
        for (i, &x) in xs.iter().enumerate() {
            let w = beta.powi((xs.len() - 1 - i) as i32);
            num += w * x;
            den += w;
        }
        assert!((e.value() - num / den).abs() < 1e-12);
    }

    #[test]
    fn beta_zero_tracks_last_value() {
        let mut e = Ema::new(0.0);
        e.update(1.0);
        e.update(-7.0);
        assert!((e.value() - -7.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "before first update")]
    fn value_before_update_panics() {
        Ema::new(0.5).value();
    }

    #[test]
    fn vec_ema_tracks_each_coordinate() {
        let mut e = VecEma::new(0.5);
        e.update(&[1.0, 10.0]);
        e.update(&[3.0, 30.0]);
        // Debiased closed form weights observations by beta^(t-i):
        // (0.5 * x1 + 1.0 * x2) / 1.5.
        assert!((e.value_at(0) - (0.5 * 1.0 + 3.0) / 1.5).abs() < 1e-9);
        assert!((e.value_at(1) - (0.5 * 10.0 + 30.0) / 1.5).abs() < 1e-9);
    }

    #[test]
    fn vec_ema_sum_debiased() {
        let mut e = VecEma::new(0.9);
        e.update(&[1.0, 2.0, 3.0]);
        assert!((e.sum_debiased() - 6.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "dimension changed")]
    fn vec_ema_dimension_change_panics() {
        let mut e = VecEma::new(0.9);
        e.update(&[1.0]);
        e.update(&[1.0, 2.0]);
    }
}
