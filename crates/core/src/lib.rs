//! # YellowFin: automatic momentum and learning-rate tuning for SGD
//!
//! A faithful Rust implementation of *YellowFin and the Art of Momentum
//! Tuning* (Zhang & Mitliagkas, MLSYS 2019).
//!
//! YellowFin keeps momentum SGD's update rule (Polyak's heavy ball,
//! Eq. 1 of the paper) but removes its two hyperparameters. Every
//! iteration it:
//!
//! 1. measures, purely from minibatch gradients, the extremal curvatures
//!    `h_max`/`h_min` ([`measurements::CurvatureRange`]), the gradient
//!    variance `C` ([`measurements::GradVariance`]) and the distance to a
//!    local optimum `D` ([`measurements::DistanceToOpt`]);
//! 2. solves the one-step noisy-quadratic surrogate `SingleStep`
//!    (Eq. 15) in closed form ([`cubic::single_step`]) subject to the
//!    robust-region constraints of Lemma 3, producing a single momentum
//!    and learning rate for the whole model;
//! 3. smooths those with zero-debiased exponential averages and applies a
//!    momentum SGD step ([`tuner::YellowFin`]).
//!
//! Optional extras from the paper: adaptive gradient clipping for
//! exploding-gradient objectives (§3.3, Appendix F) and the closed-loop
//! variant for asynchronous training that measures *total* momentum and
//! steers the algorithmic momentum with negative feedback (§4,
//! [`closed_loop::ClosedLoopYellowFin`]).
//!
//! The [`theory`] module contains the analytical objects of Sections 2-3
//! (momentum/variance operators, robust region, generalized condition
//! number) used by the tests and the Figure 2/3 regenerators.
//!
//! # Example
//!
//! ```
//! use yellowfin::YellowFin;
//! use yf_optim::Optimizer;
//!
//! // Minimize a quadratic with zero hand tuning.
//! let h = [1.0f32, 2.0];
//! let mut x = vec![1.0f32, 1.0];
//! let mut opt = YellowFin::default();
//! for _ in 0..800 {
//!     let grad: Vec<f32> = x.iter().zip(h.iter()).map(|(&x, &h)| h * x).collect();
//!     opt.step(&mut x, &grad);
//! }
//! assert!(x.iter().all(|v| v.abs() < 0.05));
//! ```

pub mod closed_loop;
pub mod cubic;
pub mod ema;
pub mod measurements;
pub mod state;
pub mod theory;
pub mod tuner;

pub use closed_loop::{ClosedLoopAdam, ClosedLoopYellowFin, TotalMomentumEstimator};
pub use measurements::OutlierGate;
pub use state::RestoreStateError;
pub use tuner::{ClipMode, YellowFin, YellowFinConfig};
