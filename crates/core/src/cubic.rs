//! Closed-form solution of the `SingleStep` problem (Eq. 15, Appendix D).
//!
//! `SingleStep` minimizes the one-step noisy-quadratic surrogate
//!
//! ```text
//! min_{mu, alpha}  mu D^2 + alpha^2 C
//! s.t.  mu >= mu_cap = ((sqrt(h_max/h_min) - 1) / (sqrt(h_max/h_min) + 1))^2
//!       alpha = (1 - sqrt(mu))^2 / h_min
//! ```
//!
//! Substituting the `alpha` constraint and `x = sqrt(mu)` gives the scalar
//! problem `p(x) = x^2 D^2 + (1-x)^4 C / h_min^2` on `[0, 1)`. Its
//! stationarity condition is the depressed cubic `y^3 + p y + p = 0` with
//! `y = x - 1` and `p = D^2 h_min^2 / (2C)`, which has exactly one real
//! root in `[-1, 0]`; we extract it with Vieta's substitution exactly as
//! the paper's Appendix D prescribes.

/// Result of solving `SingleStep`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SingleStepSolution {
    /// Tuned momentum `mu_t`.
    pub mu: f64,
    /// Tuned learning rate `alpha_t = (1 - sqrt(mu))^2 / h_min`.
    pub lr: f64,
}

const EPS: f64 = 1e-12;

/// Root `x = sqrt(mu) ∈ [0, 1)` of the unconstrained scalar problem,
/// i.e. of the stationarity condition `p x = (1 - x)^3`.
///
/// `p = D^2 h_min^2 / (2 C)`. The initial estimate is Appendix D's Vieta
/// substitution on `y^3 + p y + p = 0` (or the closed-form limit for
/// extreme `p`, where Vieta's `y = w - p/(3w)` suffers catastrophic
/// cancellation between two `O(sqrt(p))` terms); a safeguarded Newton
/// polish then drives the residual to machine precision. The function
/// `g(x) = (1-x)^3 - p x` is strictly decreasing on `[0, 1]` with
/// `g(0) = 1 > 0 > g(1) = -p`, so the root is unique and the bracketed
/// iteration always converges.
pub fn cubic_root(p: f64) -> f64 {
    if !p.is_finite() {
        return 0.0; // noiseless limit
    }
    if p < 1e-12 {
        // Noise-dominated limit: (1-x)^3 = p x gives x ~ 1 - p^(1/3).
        return (1.0 - p.max(0.0).cbrt()).clamp(0.0, 1.0 - EPS);
    }
    let mut x = if p > 1e4 {
        // Signal-dominated asymptote: x ~ 1/p.
        (1.0 / p).min(0.5)
    } else {
        // Vieta's substitution (Appendix D).
        let w3 = (-(p * p + 4.0 * p.powi(3) / 27.0).sqrt() - p) / 2.0;
        let w = w3.signum() * w3.abs().cbrt();
        let y = w - p / (3.0 * w + EPS.copysign(w));
        (y + 1.0).clamp(EPS, 1.0 - EPS)
    };
    // Safeguarded Newton on g(x) = (1-x)^3 - p x within [lo, hi].
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    for _ in 0..100 {
        let one_m = 1.0 - x;
        let g = one_m.powi(3) - p * x;
        if g > 0.0 {
            lo = x;
        } else {
            hi = x;
        }
        let gp = -3.0 * one_m * one_m - p;
        let mut next = x - g / gp;
        if !(lo..=hi).contains(&next) {
            next = 0.5 * (lo + hi);
        }
        if (next - x).abs() <= 1e-16 * x.max(1e-300) {
            x = next;
            break;
        }
        x = next;
    }
    x.clamp(0.0, 1.0 - EPS)
}

/// Solves `SingleStep` given the four measurements.
///
/// Inputs are clamped to tiny positive values first (the measurement
/// oracles can legitimately report zeros on degenerate streams), and
/// `h_max` is raised to at least `h_min`.
pub fn single_step(grad_var: f64, dist: f64, h_min: f64, h_max: f64) -> SingleStepSolution {
    let c = grad_var.max(EPS);
    let d = dist.max(EPS);
    let h_min = h_min.max(EPS);
    let h_max = h_max.max(h_min);
    let p = d * d * h_min * h_min / (2.0 * c);
    let x = cubic_root(p);
    // Robust-region floor from the generalized condition number. The cap
    // approaches (but must never reach) 1 as conditioning degrades; the
    // final clamp also guards `dr = inf` (whose cap evaluates to NaN,
    // which `max` ignores).
    let dr = (h_max / h_min).sqrt();
    let mu_cap = ((dr - 1.0) / (dr + 1.0)).powi(2);
    let mu = (x * x).max(mu_cap).min(1.0 - EPS);
    let lr = (1.0 - mu.sqrt()).powi(2) / h_min;
    SingleStepSolution { mu, lr }
}

/// The scalar surrogate objective `x^2 D^2 + (1-x)^4 C / h_min^2`
/// (exposed for tests and the ablation bench).
pub fn surrogate_objective(x: f64, grad_var: f64, dist: f64, h_min: f64) -> f64 {
    x * x * dist * dist + (1.0 - x).powi(4) * grad_var / (h_min * h_min)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_is_in_unit_interval() {
        for &p in &[1e-15, 1e-6, 0.01, 1.0, 42.0, 1e6, 1e13, f64::INFINITY] {
            let x = cubic_root(p);
            assert!((0.0..1.0).contains(&x), "p={p} gave x={x}");
        }
    }

    #[test]
    fn root_satisfies_stationarity() {
        // p x = (1-x)^3 at the root.
        for &p in &[1e-3, 0.1, 1.0, 10.0, 1e3] {
            let x = cubic_root(p);
            let lhs = p * x;
            let rhs = (1.0 - x).powi(3);
            assert!(
                (lhs - rhs).abs() < 1e-6 * (1.0 + lhs.abs()),
                "p={p}: {lhs} vs {rhs}"
            );
        }
    }

    #[test]
    fn root_is_monotone_decreasing_in_p() {
        // More signal (larger D^2 h^2 / C) means less momentum.
        let ps = [1e-6, 1e-3, 1e-1, 1.0, 10.0, 1e3, 1e6];
        let roots: Vec<f64> = ps.iter().map(|&p| cubic_root(p)).collect();
        for w in roots.windows(2) {
            assert!(w[0] >= w[1], "roots must decrease: {roots:?}");
        }
    }

    #[test]
    fn beats_grid_search() {
        // The closed-form root must (weakly) beat a dense grid scan of the
        // surrogate.
        for &(c, d, h) in &[(1.0, 1.0, 1.0), (10.0, 0.1, 2.0), (0.01, 5.0, 0.5)] {
            let p = d * d * h * h / (2.0 * c);
            let x = cubic_root(p);
            let ours = surrogate_objective(x, c, d, h);
            let best_grid = (0..1000)
                .map(|i| surrogate_objective(i as f64 / 1000.0, c, d, h))
                .fold(f64::MAX, f64::min);
            assert!(
                ours <= best_grid + 1e-9,
                "closed form {ours} worse than grid {best_grid} for (C={c}, D={d}, h={h})"
            );
        }
    }

    #[test]
    fn gcn_floor_activates_on_ill_conditioned_problems() {
        // With no noise the unconstrained optimum is mu ~ 0, so the GCN
        // cap must bind: mu = ((sqrt(nu)-1)/(sqrt(nu)+1))^2 with nu = 100.
        let sol = single_step(1e-12, 1.0, 1.0, 100.0);
        let expected = ((10.0f64 - 1.0) / (10.0 + 1.0)).powi(2);
        assert!(
            (sol.mu - expected).abs() < 1e-6,
            "mu {} vs cap {expected}",
            sol.mu
        );
    }

    #[test]
    fn lr_respects_robust_region() {
        // alpha = (1 - sqrt(mu))^2 / h_min puts (alpha, mu) exactly on the
        // lower edge of the robust region for h_min — and inside it for
        // every h in [h_min, h_max] when mu >= mu_cap.
        let sol = single_step(0.5, 2.0, 0.3, 30.0);
        let lo = (1.0 - sol.mu.sqrt()).powi(2);
        let hi = (1.0 + sol.mu.sqrt()).powi(2);
        for &h in &[0.3, 1.0, 10.0, 30.0] {
            let ah = sol.lr * h;
            assert!(
                ah >= lo - 1e-9 && ah <= hi + 1e-9,
                "alpha*h = {ah} outside [{lo}, {hi}] for h={h}"
            );
        }
    }

    #[test]
    fn noisier_gradients_mean_more_momentum_less_lr() {
        let quiet = single_step(0.01, 1.0, 1.0, 1.0);
        let noisy = single_step(100.0, 1.0, 1.0, 1.0);
        assert!(noisy.mu > quiet.mu, "{} vs {}", noisy.mu, quiet.mu);
        assert!(noisy.lr < quiet.lr, "{} vs {}", noisy.lr, quiet.lr);
    }

    #[test]
    fn degenerate_inputs_stay_finite() {
        for &(c, d, hmin, hmax) in &[
            (0.0, 0.0, 0.0, 0.0),
            (f64::MIN_POSITIVE, 1e300, 1e-300, 1e300),
            (1e300, 1e-300, 1.0, 1.0),
        ] {
            let sol = single_step(c, d, hmin, hmax);
            assert!(
                sol.mu.is_finite() && (0.0..1.0).contains(&sol.mu),
                "{sol:?}"
            );
            assert!(sol.lr.is_finite() && sol.lr >= 0.0, "{sol:?}");
        }
    }
}
