//! Property-based tests for the tuner's invariants.

use proptest::prelude::*;
use yellowfin::cubic::{cubic_root, single_step, surrogate_objective};
use yellowfin::theory::{
    in_robust_region, momentum_spectral_radius, mu_star, variance_spectral_radius,
};
use yellowfin::{ClipMode, YellowFin, YellowFinConfig};
use yf_optim::Optimizer;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The Vieta root is in [0, 1) and satisfies the stationarity
    /// condition p x = (1 - x)^3 for all positive p.
    #[test]
    fn cubic_root_invariants(log_p in -25.0f64..25.0) {
        let p = log_p.exp();
        let x = cubic_root(p);
        prop_assert!((0.0..1.0).contains(&x), "x = {x}");
        let (lhs, rhs) = (p * x, (1.0 - x).powi(3));
        let denom = 1.0f64.max(lhs.abs());
        prop_assert!((lhs - rhs).abs() / denom < 1e-5, "p={p}: {lhs} vs {rhs}");
    }

    /// The closed form never loses to a 2000-point grid scan of the
    /// surrogate objective.
    #[test]
    fn cubic_beats_grid(
        log_c in -8.0f64..8.0, log_d in -8.0f64..8.0, log_h in -8.0f64..8.0
    ) {
        let (c, d, h) = (log_c.exp(), log_d.exp(), log_h.exp());
        let p = d * d * h * h / (2.0 * c);
        let x = cubic_root(p);
        let ours = surrogate_objective(x, c, d, h);
        let grid_best = (0..2000)
            .map(|i| surrogate_objective(i as f64 / 2000.0, c, d, h))
            .fold(f64::MAX, f64::min);
        prop_assert!(
            ours <= grid_best * (1.0 + 1e-9) + 1e-12,
            "closed form {ours} vs grid {grid_best} (C={c}, D={d}, h={h})"
        );
    }

    /// SingleStep always returns mu in [0, 1), a non-negative finite lr,
    /// and (alpha, mu) inside the robust region for every curvature in
    /// [h_min, h_max].
    #[test]
    fn single_step_is_always_in_robust_region(
        log_c in -10.0f64..10.0,
        log_d in -10.0f64..10.0,
        log_hmin in -10.0f64..10.0,
        log_ratio in 0.0f64..12.0,
        frac in 0.0f64..1.0,
    ) {
        let c = log_c.exp();
        let d = log_d.exp();
        let h_min = log_hmin.exp();
        let h_max = h_min * log_ratio.exp();
        let sol = single_step(c, d, h_min, h_max);
        prop_assert!((0.0..1.0).contains(&sol.mu), "mu = {}", sol.mu);
        prop_assert!(sol.lr.is_finite() && sol.lr >= 0.0, "lr = {}", sol.lr);
        // Check an arbitrary curvature inside the range (log interpolant).
        let h = (h_min.ln() + frac * (h_max.ln() - h_min.ln())).exp();
        prop_assert!(
            in_robust_region(sol.lr * (1.0 + 1e-12), sol.mu, h)
                || in_robust_region(sol.lr, sol.mu, h),
            "(lr {}, mu {}) outside robust region for h = {h}",
            sol.lr,
            sol.mu
        );
    }

    /// Lemma 3 over random parameters: anywhere inside the robust region
    /// the bias operator's radius is sqrt(mu), and Lemma 6: the variance
    /// operator's radius is mu.
    #[test]
    fn lemmas_3_and_6_hold(
        mu in 0.001f64..0.999,
        frac in 0.001f64..0.999,
        log_h in -5.0f64..5.0,
    ) {
        let h = log_h.exp();
        let lo = (1.0 - mu.sqrt()).powi(2) / h;
        let hi = (1.0 + mu.sqrt()).powi(2) / h;
        let alpha = lo + frac * (hi - lo);
        let rho_a = momentum_spectral_radius(alpha, mu, h);
        prop_assert!((rho_a - mu.sqrt()).abs() < 1e-5, "rho(A) = {rho_a}, mu = {mu}");
        let rho_b = variance_spectral_radius(alpha, mu, h);
        prop_assert!((rho_b - mu).abs() < 1e-4, "rho(B) = {rho_b}, mu = {mu}");
    }

    /// mu* is monotone in the condition number and bounded in [0, 1).
    #[test]
    fn mu_star_monotone(nu_a in 1.0f64..1e6, bump in 1.01f64..100.0) {
        let a = mu_star(nu_a);
        let b = mu_star(nu_a * bump);
        prop_assert!((0.0..1.0).contains(&a));
        prop_assert!(b > a || (nu_a == 1.0 && b >= a), "{a} !< {b}");
    }

    /// The tuner never produces non-finite state, whatever the gradient
    /// stream throws at it.
    #[test]
    fn tuner_stays_finite_on_arbitrary_streams(
        grads in prop::collection::vec(
            prop::collection::vec(-1e6f32..1e6, 4), 1..80
        ),
        adaptive in any::<bool>(),
    ) {
        let mut opt = YellowFin::new(YellowFinConfig {
            clip: if adaptive { ClipMode::Adaptive } else { ClipMode::None },
            ..Default::default()
        });
        let mut x = vec![0.1f32; 4];
        for g in &grads {
            opt.step(&mut x, g);
            prop_assert!(x.iter().all(|v| v.is_finite()), "params {x:?}");
            prop_assert!(opt.momentum().is_finite());
            prop_assert!((0.0..1.0).contains(&opt.momentum()));
            prop_assert!(opt.effective_lr().is_finite() && opt.effective_lr() >= 0.0);
        }
    }

    /// Measurements exposed by the tuner are internally consistent:
    /// h_max >= h_min > 0, C >= 0, D >= 0.
    #[test]
    fn measurement_consistency(
        grads in prop::collection::vec(
            prop::collection::vec(-100.0f32..100.0, 3), 2..40
        ),
    ) {
        let mut opt = YellowFin::default();
        let mut x = vec![0.0f32; 3];
        for g in &grads {
            opt.step(&mut x, g);
        }
        let (h_min, h_max, c, d) = opt.measurements().expect("warmed up");
        prop_assert!(h_max >= h_min * (1.0 - 1e-9), "{h_max} < {h_min}");
        prop_assert!(h_min >= 0.0);
        prop_assert!(c >= 0.0);
        prop_assert!(d >= 0.0);
    }
}

#[test]
fn tuner_solution_matches_direct_single_step() {
    // The smoothed (mu, lr) must stay inside the hull of the per-step
    // SingleStep solutions; with a constant gradient stream they coincide
    // after warmup.
    let mut opt = YellowFin::new(YellowFinConfig {
        slow_start: false,
        ..Default::default()
    });
    let mut x = vec![0.0f32, 0.0];
    for _ in 0..400 {
        opt.step(&mut x, &[3.0, -4.0]);
    }
    let (h_min, h_max, c, d) = opt.measurements().expect("warmed up");
    let direct = single_step(c, d, h_min, h_max);
    assert!(
        (opt.momentum() - direct.mu).abs() < 0.05,
        "smoothed mu {} vs direct {}",
        opt.momentum(),
        direct.mu
    );
}
