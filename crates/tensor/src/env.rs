//! Hardened environment-variable parsing for the `YF_*` tuning knobs.
//!
//! Every knob follows the same policy: an unset variable silently uses
//! the built-in default, a valid value wins, and a *malformed* value
//! warns on stderr and falls back — it is never silently accepted as the
//! default, because "my override was ignored without a word" is how a
//! mis-tuned run masquerades as a baseline. Call sites memoize (each
//! knob is read once per process), so the warning fires once.

/// Reads `name` and applies `parse`. `None` means "use the default" —
/// either the variable is unset, or it is malformed (which also warns).
pub fn parse_with<T>(name: &str, parse: impl FnOnce(&str) -> Option<T>) -> Option<T> {
    let raw = std::env::var(name).ok()?;
    match parse(&raw) {
        Some(v) => Some(v),
        None => {
            eprintln!("warning: ignoring invalid {name}={raw:?}; using the default");
            None
        }
    }
}

/// A strictly positive integer knob (e.g. a thread count, where 0 is
/// meaningless).
pub fn positive_usize(name: &str) -> Option<usize> {
    parse_with(name, |raw| {
        raw.trim().parse::<usize>().ok().filter(|&n| n > 0)
    })
}

/// A non-negative integer knob (e.g. a budget where 0 means "disabled").
pub fn usize_knob(name: &str) -> Option<usize> {
    parse_with(name, |raw| raw.trim().parse::<usize>().ok())
}

#[cfg(test)]
mod tests {
    use super::*;

    // Each test owns a unique variable name, so the process-global
    // environment never races across the parallel test harness.

    #[test]
    fn unset_and_valid_and_garbage() {
        assert_eq!(positive_usize("YF_TEST_ENV_UNSET"), None);
        std::env::set_var("YF_TEST_ENV_VALID", " 8 ");
        assert_eq!(positive_usize("YF_TEST_ENV_VALID"), Some(8));
        std::env::set_var("YF_TEST_ENV_GARBAGE", "eight");
        assert_eq!(positive_usize("YF_TEST_ENV_GARBAGE"), None);
    }

    #[test]
    fn zero_is_invalid_for_positive_but_valid_for_budgets() {
        std::env::set_var("YF_TEST_ENV_ZERO", "0");
        assert_eq!(positive_usize("YF_TEST_ENV_ZERO"), None);
        assert_eq!(usize_knob("YF_TEST_ENV_ZERO"), Some(0));
    }

    #[test]
    fn custom_parsers_reject_without_panicking() {
        std::env::set_var("YF_TEST_ENV_SPEC", "1,2");
        let parsed = parse_with("YF_TEST_ENV_SPEC", |raw| {
            let mut it = raw.split(',').map(|p| p.trim().parse::<usize>().ok());
            Some((it.next()??, it.next()??, it.next()??))
        });
        assert_eq!(parsed, None);
    }
}
