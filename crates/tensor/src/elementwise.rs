//! Fused in-place elementwise kernels over flat `f32` slices.
//!
//! These are the primitives behind [`Tensor`](crate::Tensor)'s in-place
//! ops and the optimizer update loops in `yf-optim`: every kernel writes
//! its first argument in place, so a steady-state training step performs
//! no allocation in the parameter-update path. They operate on plain
//! slices (not tensors) because optimizers, the async simulator, and the
//! tape all hold flat buffers.
//!
//! All binary kernels panic on length mismatch — silent truncation hides
//! real wiring bugs.

#[inline]
fn check(y: &[f32], x: &[f32], op: &str) {
    assert_eq!(
        y.len(),
        x.len(),
        "{op}: length mismatch {} vs {}",
        y.len(),
        x.len()
    );
}

/// Copies `src` into `dst` (equal lengths) through an inlined 8-wide
/// block loop instead of a `memcpy` call. The GEMM packers and the
/// im2col unroll copy millions of tile-width (16-32 element) runs per
/// pass; at that size the dynamic-length `memcpy` dispatch costs more
/// than the copy itself.
///
/// # Panics
///
/// Panics on length mismatch.
#[inline]
pub fn copy_short(dst: &mut [f32], src: &[f32]) {
    check(dst, src, "copy_short");
    let n = dst.len();
    if n < 8 {
        for (dv, &sv) in dst.iter_mut().zip(src) {
            *dv = sv;
        }
        return;
    }
    let mut i = 0;
    while i + 8 <= n {
        let dc: &mut [f32; 8] = (&mut dst[i..i + 8]).try_into().unwrap();
        let sc: &[f32; 8] = (&src[i..i + 8]).try_into().unwrap();
        *dc = *sc;
        i += 8;
    }
    if i < n {
        // Ragged tail: one overlapping 8-block instead of a scalar loop
        // (copies are idempotent, so re-writing a few elements is free).
        let dc: &mut [f32; 8] = (&mut dst[n - 8..]).try_into().unwrap();
        let sc: &[f32; 8] = (&src[n - 8..]).try_into().unwrap();
        *dc = *sc;
    }
}

/// Zero-fills `dst` through an inlined 8-wide block loop instead of a
/// `memset` call (see [`copy_short`] for why).
#[inline]
pub fn zero_short(dst: &mut [f32]) {
    let n = dst.len();
    if n < 8 {
        for dv in dst.iter_mut() {
            *dv = 0.0;
        }
        return;
    }
    let mut i = 0;
    while i + 8 <= n {
        let dc: &mut [f32; 8] = (&mut dst[i..i + 8]).try_into().unwrap();
        *dc = [0.0; 8];
        i += 8;
    }
    if i < n {
        let dc: &mut [f32; 8] = (&mut dst[n - 8..]).try_into().unwrap();
        *dc = [0.0; 8];
    }
}

/// `y += x`.
pub fn add(y: &mut [f32], x: &[f32]) {
    check(y, x, "add");
    for (a, &b) in y.iter_mut().zip(x) {
        *a += b;
    }
}

/// `y -= x`.
pub fn sub(y: &mut [f32], x: &[f32]) {
    check(y, x, "sub");
    for (a, &b) in y.iter_mut().zip(x) {
        *a -= b;
    }
}

/// `y *= x` (Hadamard).
pub fn mul(y: &mut [f32], x: &[f32]) {
    check(y, x, "mul");
    for (a, &b) in y.iter_mut().zip(x) {
        *a *= b;
    }
}

/// `y *= alpha`.
pub fn scale(y: &mut [f32], alpha: f32) {
    for a in y.iter_mut() {
        *a *= alpha;
    }
}

/// `y += alpha * x` — the BLAS axpy.
pub fn axpy(y: &mut [f32], alpha: f32, x: &[f32]) {
    check(y, x, "axpy");
    for (a, &b) in y.iter_mut().zip(x) {
        *a += alpha * b;
    }
}

/// `y = alpha * y + beta * x` — one fused pass for momentum-style
/// velocity updates (`v = mu*v - lr*g`).
pub fn scale_axpy(y: &mut [f32], alpha: f32, beta: f32, x: &[f32]) {
    check(y, x, "scale_axpy");
    for (a, &b) in y.iter_mut().zip(x) {
        *a = alpha * *a + beta * b;
    }
}

/// `y += alpha * x + beta * z` — one fused pass for look-ahead updates
/// (Nesterov's `p += mu*v - lr*g`).
pub fn axpy2(y: &mut [f32], alpha: f32, x: &[f32], beta: f32, z: &[f32]) {
    check(y, x, "axpy2");
    check(y, z, "axpy2");
    for ((a, &b), &c) in y.iter_mut().zip(x).zip(z) {
        *a += alpha * b + beta * c;
    }
}

/// `y = alpha * y + beta * x * x` — one fused pass for squared-gradient
/// second-moment accumulators.
pub fn scale_axpy_sq(y: &mut [f32], alpha: f32, beta: f32, x: &[f32]) {
    check(y, x, "scale_axpy_sq");
    for (a, &b) in y.iter_mut().zip(x) {
        *a = alpha * *a + beta * b * b;
    }
}

/// One fused momentum-SGD step: `v = mu*v - lr*g`, then `p += v` (Polyak)
/// or `p += mu*v - lr*g` (Nesterov look-ahead). A single pass over all
/// three buffers — the optimizer hot loop stays memory-lean.
///
/// `grad_scale` is applied to each gradient element before use (1.0 is a
/// bitwise no-op); it lets gradient-clipping middleware fold the global
/// clip factor into the kernel instead of materializing a scaled copy.
pub fn momentum_step(
    params: &mut [f32],
    velocity: &mut [f32],
    grads: &[f32],
    mu: f32,
    lr: f32,
    nesterov: bool,
    grad_scale: f32,
) {
    check(params, grads, "momentum_step");
    check(params, velocity, "momentum_step");
    for ((p, v), &g) in params.iter_mut().zip(velocity.iter_mut()).zip(grads) {
        let g = if grad_scale == 1.0 { g } else { grad_scale * g };
        *v = mu * *v - lr * g;
        if nesterov {
            *p += mu * *v - lr * g;
        } else {
            *p += *v;
        }
    }
}

/// One fused Adam step: updates both moment buffers and the parameters in
/// a single pass. `bc1`/`bc2` are the zero-debias divisors `1 - beta^t`;
/// `grad_scale` pre-scales each gradient element (clipping middleware).
#[allow(clippy::too_many_arguments)]
pub fn adam_step(
    params: &mut [f32],
    m: &mut [f32],
    v: &mut [f32],
    grads: &[f32],
    beta1: f32,
    beta2: f32,
    lr: f32,
    eps: f32,
    bc1: f32,
    bc2: f32,
    grad_scale: f32,
) {
    check(params, grads, "adam_step");
    check(params, m, "adam_step");
    check(params, v, "adam_step");
    for (((p, m), v), &g) in params
        .iter_mut()
        .zip(m.iter_mut())
        .zip(v.iter_mut())
        .zip(grads)
    {
        let g = if grad_scale == 1.0 { g } else { grad_scale * g };
        *m = beta1 * *m + (1.0 - beta1) * g;
        *v = beta2 * *v + (1.0 - beta2) * g * g;
        let m_hat = *m / bc1;
        let v_hat = *v / bc2;
        *p -= lr * m_hat / (v_hat.sqrt() + eps);
    }
}

/// One fused squared-gradient-normalized step shared by AdaGrad and
/// RMSProp: `acc = decay*acc + scale*g*g`, then `p -= lr*g/(sqrt(acc)+eps)`;
/// `grad_scale` pre-scales each gradient element (clipping middleware).
#[allow(clippy::too_many_arguments)]
pub fn adaptive_sq_step(
    params: &mut [f32],
    accum: &mut [f32],
    grads: &[f32],
    decay: f32,
    scale: f32,
    lr: f32,
    eps: f32,
    grad_scale: f32,
) {
    check(params, grads, "adaptive_sq_step");
    check(params, accum, "adaptive_sq_step");
    for ((p, a), &g) in params.iter_mut().zip(accum.iter_mut()).zip(grads) {
        let g = if grad_scale == 1.0 { g } else { grad_scale * g };
        *a = decay * *a + scale * g * g;
        *p -= lr * g / (a.sqrt() + eps);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fused_kernels_match_naive() {
        let y0 = [1.0f32, -2.0, 3.0];
        let x = [0.5f32, 4.0, -1.0];
        let z = [2.0f32, 0.0, 1.0];

        let mut y = y0;
        axpy(&mut y, 2.0, &x);
        assert_eq!(y, [2.0, 6.0, 1.0]);

        let mut y = y0;
        scale_axpy(&mut y, 0.5, -1.0, &x);
        assert_eq!(y, [0.0, -5.0, 2.5]);

        let mut y = y0;
        axpy2(&mut y, 2.0, &x, -1.0, &z);
        assert_eq!(y, [0.0, 6.0, 0.0]);

        let mut y = y0;
        scale_axpy_sq(&mut y, 1.0, 2.0, &x);
        assert_eq!(y, [1.5, 30.0, 5.0]);

        let mut y = y0;
        mul(&mut y, &x);
        assert_eq!(y, [0.5, -8.0, -3.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        axpy(&mut [0.0], 1.0, &[0.0, 0.0]);
    }
}
