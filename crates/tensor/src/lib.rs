//! Dense tensor math for the YellowFin reproduction.
//!
//! This crate is the numerical substrate under everything else in the
//! workspace: a small, dependency-free dense `f32` tensor type with the
//! operations a CPU training stack needs (elementwise algebra, matrix
//! multiplication, reductions), a seeded [PCG32](rng::Pcg32) random number
//! generator so every experiment in the repository is bit-reproducible, and
//! the small-matrix spectral tools ([`linalg`]) used to *compute* the
//! momentum-operator spectral radii that the paper's Lemmas 3 and 6 reason
//! about.
//!
//! # Example
//!
//! ```
//! use yf_tensor::{Tensor, rng::Pcg32};
//!
//! let mut rng = Pcg32::seed(7);
//! let a = Tensor::randn(&[2, 3], &mut rng);
//! let b = Tensor::randn(&[3, 4], &mut rng);
//! let c = a.matmul(&b);
//! assert_eq!(c.shape(), &[2, 4]);
//! ```

pub mod elementwise;
pub mod env;
pub mod gemm;
pub mod linalg;
pub mod parallel;
pub mod reduce;
pub mod rng;
mod scratch;
mod shape;
mod tensor;

pub use scratch::Scratch;
pub use shape::Shape;
pub use tensor::Tensor;
