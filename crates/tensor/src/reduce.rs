//! Deterministic blocked reductions for the measurement pipeline.
//!
//! The tuner's oracles (curvature range, gradient variance, distance to
//! the optimum) are global reductions over the flat gradient. To let the
//! measure phase run sharded *and* stay bitwise identical for every shard
//! count, every reduction here is defined over fixed-size [`BLOCK`]
//! windows of the flat vector, independent of how the work is split:
//!
//! 1. within a block, elements are accumulated into four interleaved
//!    `f64` lanes (lane `j` takes elements `j`, `j + 4`, ...), combined
//!    as `(l0 + l1) + (l2 + l3)` — fixed structure, SIMD/ILP friendly;
//! 2. the per-block sums are folded by [`tree_reduce`], a fixed-order
//!    pairwise tree.
//!
//! A shard whose offset is a multiple of [`BLOCK`] therefore produces
//! exactly the per-block sums the whole-vector pass would, so partial
//! results from any block-aligned shard plan concatenate into the same
//! sequence and reduce to the same bits. The sharded optimizer drivers in
//! `yf-optim` align their observe partitions on this contract.

use crate::parallel::{self, Par};

/// Elements per reduction block. Shard offsets feeding the blocked
/// kernels must be multiples of this.
pub const BLOCK: usize = 1024;

/// Number of [`BLOCK`]-sized blocks covering `len` elements.
pub fn blocks_for(len: usize) -> usize {
    len.div_ceil(BLOCK)
}

#[inline]
fn lanes_fold(xs: &[f32], mut lane: impl FnMut(usize, f64)) {
    let mut it = xs.chunks_exact(4);
    for c in it.by_ref() {
        lane(0, f64::from(c[0]));
        lane(1, f64::from(c[1]));
        lane(2, f64::from(c[2]));
        lane(3, f64::from(c[3]));
    }
    for (j, &x) in it.remainder().iter().enumerate() {
        lane(j, f64::from(x));
    }
}

/// Σ x² over one block (≤ [`BLOCK`] elements), four-lane accumulated.
#[inline]
fn sumsq_block(xs: &[f32]) -> f64 {
    let mut l = [0.0f64; 4];
    lanes_fold(xs, |j, x| l[j] += x * x);
    (l[0] + l[1]) + (l[2] + l[3])
}

/// Σ aᵢ·bᵢ over one block, four-lane accumulated.
#[inline]
fn dot_block(a: &[f32], b: &[f32]) -> f64 {
    let mut l = [0.0f64; 4];
    let mut it = a.chunks_exact(4).zip(b.chunks_exact(4));
    let mut n = 0;
    for (ca, cb) in it.by_ref() {
        l[0] += f64::from(ca[0]) * f64::from(cb[0]);
        l[1] += f64::from(ca[1]) * f64::from(cb[1]);
        l[2] += f64::from(ca[2]) * f64::from(cb[2]);
        l[3] += f64::from(ca[3]) * f64::from(cb[3]);
        n += 4;
    }
    for (j, (&x, &y)) in a[n..].iter().zip(&b[n..]).enumerate() {
        l[j] += f64::from(x) * f64::from(y);
    }
    (l[0] + l[1]) + (l[2] + l[3])
}

/// Per-block Σ x² partial sums of `xs`, in block order. `xs` must start
/// on a block boundary of the enclosing flat vector for the partials to
/// line up with the whole-vector reduction.
pub fn block_sumsq(xs: &[f32]) -> Vec<f64> {
    xs.chunks(BLOCK).map(sumsq_block).collect()
}

/// Fixed-order pairwise reduction of a sum sequence: deterministic for a
/// given length, with O(log n) rounding depth instead of a serial fold's
/// O(n). Returns 0.0 for an empty slice.
pub fn tree_reduce(vals: &[f64]) -> f64 {
    match vals.len() {
        0 => 0.0,
        1 => vals[0],
        2 => vals[0] + vals[1],
        n => {
            let mid = n.div_ceil(2);
            tree_reduce(&vals[..mid]) + tree_reduce(&vals[mid..])
        }
    }
}

/// Deterministic Σ x² of a whole slice: per-block four-lane sums folded
/// by [`tree_reduce`]. Equals the concatenation-and-reduce of any
/// block-aligned sharding of `xs`.
pub fn sumsq(xs: &[f32]) -> f64 {
    if xs.len() <= BLOCK {
        return sumsq_block(xs);
    }
    tree_reduce(&block_sumsq(xs))
}

/// Deterministic Σ aᵢ·bᵢ with the same block structure as [`sumsq`].
///
/// # Panics
///
/// Panics on length mismatch.
pub fn dot(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    if a.len() <= BLOCK {
        return dot_block(a, b);
    }
    let sums: Vec<f64> = a
        .chunks(BLOCK)
        .zip(b.chunks(BLOCK))
        .map(|(ca, cb)| dot_block(ca, cb))
        .collect();
    tree_reduce(&sums)
}

/// Deterministic Σ xᵢ/denom over an `f64` slice with the standard block
/// structure (four lanes per block, tree combine) — the debiased-sum
/// kernel behind `VecEma::sum_debiased` in the tuner crate.
pub fn sum_div(xs: &[f64], denom: f64) -> f64 {
    let block = |c: &[f64]| {
        let mut l = [0.0f64; 4];
        let mut it = c.chunks_exact(4);
        for q in it.by_ref() {
            l[0] += q[0] / denom;
            l[1] += q[1] / denom;
            l[2] += q[2] / denom;
            l[3] += q[3] / denom;
        }
        for (j, &x) in it.remainder().iter().enumerate() {
            l[j] += x / denom;
        }
        (l[0] + l[1]) + (l[2] + l[3])
    };
    if xs.len() <= BLOCK {
        return block(xs);
    }
    let sums: Vec<f64> = xs.chunks(BLOCK).map(block).collect();
    tree_reduce(&sums)
}

fn check_stats_lens(b1: &[f64], b2: &[f64], xs: &[f32], var_blocks: &[f64]) {
    assert_eq!(b1.len(), xs.len(), "ema stats: first-moment length");
    assert_eq!(b2.len(), xs.len(), "ema stats: second-moment length");
    assert_eq!(
        var_blocks.len(),
        blocks_for(xs.len()),
        "ema stats: block-sum length"
    );
}

/// The fused measurement kernel: one sweep over a (block-aligned) slice
/// that updates the biased first/second gradient moments
///
/// ```text
/// b1 = β b1 + (1 − β) s·x        b2 = β b2 + (1 − β) (s·x)²
/// ```
///
/// and writes the per-block debiased variance partial sums
/// `Σ max(0, b2/c − (b1/c)²)` into `var_blocks` (four-lane accumulated,
/// like every block kernel here). `corr` is the zero-debias divisor
/// *after* this update; `scale` folds a global gradient scale (clipping)
/// into the sweep so no scaled copy is ever materialized.
///
/// # Panics
///
/// Panics if the slice lengths disagree or `var_blocks` does not have
/// one slot per block of `xs`.
pub fn ema_update_stats(
    b1: &mut [f64],
    b2: &mut [f64],
    xs: &[f32],
    beta: f64,
    scale: f64,
    corr: f64,
    var_blocks: &mut [f64],
) {
    check_stats_lens(b1, b2, xs, var_blocks);
    let w = 1.0 - beta;
    for (bi, ((cx, c1), c2)) in xs
        .chunks(BLOCK)
        .zip(b1.chunks_mut(BLOCK))
        .zip(b2.chunks_mut(BLOCK))
        .enumerate()
    {
        let mut l = [0.0f64; 4];
        for (j, ((&g, m1), m2)) in cx.iter().zip(c1.iter_mut()).zip(c2.iter_mut()).enumerate() {
            let x = scale * f64::from(g);
            *m1 = beta * *m1 + w * x;
            *m2 = beta * *m2 + w * x * x;
            let d1 = *m1 / corr;
            let d2 = *m2 / corr;
            l[j % 4] += (d2 - d1 * d1).max(0.0);
        }
        var_blocks[bi] = (l[0] + l[1]) + (l[2] + l[3]);
    }
}

/// The read-only half of [`ema_update_stats`]: recomputes the per-block
/// variance partial sums from existing moments (bitwise identical to what
/// the fused sweep produced for the same `b1`/`b2`/`corr`). Used to
/// rebuild the cached variance total after a checkpoint restore.
pub fn variance_blocks(b1: &[f64], b2: &[f64], corr: f64, var_blocks: &mut [f64]) {
    assert_eq!(b1.len(), b2.len(), "variance blocks: length mismatch");
    assert_eq!(
        var_blocks.len(),
        blocks_for(b1.len()),
        "variance blocks: block-sum length"
    );
    for (bi, (c1, c2)) in b1.chunks(BLOCK).zip(b2.chunks(BLOCK)).enumerate() {
        let mut l = [0.0f64; 4];
        for (j, (&m1, &m2)) in c1.iter().zip(c2.iter()).enumerate() {
            let d1 = m1 / corr;
            let d2 = m2 / corr;
            l[j % 4] += (d2 - d1 * d1).max(0.0);
        }
        var_blocks[bi] = (l[0] + l[1]) + (l[2] + l[3]);
    }
}

/// Parallel driver for [`ema_update_stats`]: splits the sweep into
/// block-aligned chunks per the [`Par`] budget, fans them out on the
/// persistent worker pool, and returns the tree-combined variance total.
/// Bitwise identical for every `par` value — chunk boundaries land on
/// block boundaries, each block's sum is computed by exactly one lane,
/// and the final combine is the fixed [`tree_reduce`] over all blocks in
/// order.
pub fn ema_update_stats_parallel(
    b1: &mut [f64],
    b2: &mut [f64],
    xs: &[f32],
    beta: f64,
    scale: f64,
    corr: f64,
    par: impl Into<Par>,
) -> f64 {
    let n = xs.len();
    if n == 0 {
        return 0.0;
    }
    let nblocks = blocks_for(n);
    let mut var_blocks = vec![0.0f64; nblocks];
    let chunks = par.into().budget().clamp(1, nblocks);
    if chunks <= 1 {
        ema_update_stats(b1, b2, xs, beta, scale, corr, &mut var_blocks);
        return tree_reduce(&var_blocks);
    }
    let blocks_per = nblocks.div_ceil(chunks);
    {
        type Chunk<'s> = (&'s mut [f64], &'s mut [f64], &'s mut [f64], &'s [f32]);
        let mut slots: Vec<std::sync::Mutex<Option<Chunk<'_>>>> = Vec::with_capacity(chunks);
        let (mut r1, mut r2, mut rv) = (&mut *b1, &mut *b2, &mut var_blocks[..]);
        let mut off = 0;
        while !rv.is_empty() {
            let take_blocks = blocks_per.min(rv.len());
            let take = (take_blocks * BLOCK).min(n - off);
            let (c1, t1) = r1.split_at_mut(take);
            let (c2, t2) = r2.split_at_mut(take);
            let (cv, tv) = rv.split_at_mut(take_blocks);
            let cx = &xs[off..off + take];
            off += take;
            (r1, r2, rv) = (t1, t2, tv);
            slots.push(std::sync::Mutex::new(Some((c1, c2, cv, cx))));
        }
        parallel::Pool::global().run(slots.len(), |i| {
            let (c1, c2, cv, cx) = slots[i]
                .lock()
                .expect("ema sweep chunk slot")
                .take()
                .expect("ema sweep chunk claimed twice");
            ema_update_stats(c1, c2, cx, beta, scale, corr, cv);
        });
    }
    tree_reduce(&var_blocks)
}

/// Deterministic variance total from existing moments (the combine of
/// [`variance_blocks`]); the restore-time counterpart of
/// [`ema_update_stats_parallel`]'s return value.
pub fn variance_total(b1: &[f64], b2: &[f64], corr: f64) -> f64 {
    if b1.is_empty() {
        return 0.0;
    }
    let mut var_blocks = vec![0.0f64; blocks_for(b1.len())];
    variance_blocks(b1, b2, corr, &mut var_blocks);
    tree_reduce(&var_blocks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lane_reference_sumsq(xs: &[f32]) -> f64 {
        // The documented spec, written the slow way: per block, four
        // interleaved lanes combined (l0+l1)+(l2+l3), blocks tree-folded.
        let sums: Vec<f64> = xs
            .chunks(BLOCK)
            .map(|c| {
                let mut l = [0.0f64; 4];
                for (i, &x) in c.iter().enumerate() {
                    l[i % 4] += f64::from(x) * f64::from(x);
                }
                (l[0] + l[1]) + (l[2] + l[3])
            })
            .collect();
        tree_reduce(&sums)
    }

    #[test]
    fn sumsq_matches_lane_reference_bitwise() {
        let xs: Vec<f32> = (0..5000)
            .map(|i| ((i * 37) % 113) as f32 * 0.21 - 9.0)
            .collect();
        for len in [0, 1, 3, 4, 7, BLOCK - 1, BLOCK, BLOCK + 5, 5000] {
            let s = sumsq(&xs[..len]);
            assert_eq!(s.to_bits(), lane_reference_sumsq(&xs[..len]).to_bits());
        }
    }

    #[test]
    fn sumsq_close_to_serial() {
        let xs: Vec<f32> = (0..3000).map(|i| (i as f32 * 0.7).sin()).collect();
        let serial: f64 = xs.iter().map(|&x| f64::from(x) * f64::from(x)).sum();
        assert!((sumsq(&xs) - serial).abs() < 1e-9 * serial.max(1.0));
    }

    #[test]
    fn block_aligned_split_concatenates() {
        let xs: Vec<f32> = (0..(3 * BLOCK + 17))
            .map(|i| (i as f32 * 0.3).cos())
            .collect();
        let whole = block_sumsq(&xs);
        let mut stitched = block_sumsq(&xs[..2 * BLOCK]);
        stitched.extend(block_sumsq(&xs[2 * BLOCK..]));
        assert_eq!(whole, stitched, "block-aligned shards must agree");
        assert_eq!(sumsq(&xs).to_bits(), tree_reduce(&stitched).to_bits());
    }

    #[test]
    fn dot_matches_sumsq_on_self() {
        let xs: Vec<f32> = (0..2500).map(|i| (i as f32 * 0.11).sin()).collect();
        assert_eq!(dot(&xs, &xs).to_bits(), sumsq(&xs).to_bits());
    }

    #[test]
    fn tree_reduce_is_permutation_sensitive_but_fixed() {
        let vals = [1e16, 1.0, -1e16, 1.0];
        // Same input, same result, every time.
        assert_eq!(tree_reduce(&vals).to_bits(), tree_reduce(&vals).to_bits());
        assert_eq!(tree_reduce(&[]), 0.0);
        assert_eq!(tree_reduce(&[5.0]), 5.0);
    }

    #[test]
    fn ema_update_stats_parallel_is_thread_invariant() {
        let n = 3 * BLOCK + 100;
        let xs: Vec<f32> = (0..n).map(|i| (i as f32 * 0.013).sin() * 2.0).collect();
        let run = |threads: usize| {
            let mut b1 = vec![0.0f64; n];
            let mut b2 = vec![0.0f64; n];
            let mut totals = Vec::new();
            let mut corr = 0.0;
            for _ in 0..3 {
                corr = 0.9 * corr + 0.1;
                totals.push(ema_update_stats_parallel(
                    &mut b1, &mut b2, &xs, 0.9, 1.0, corr, threads,
                ));
            }
            (b1, b2, totals)
        };
        let base = run(1);
        for threads in [2, 3, 8] {
            let got = run(threads);
            assert_eq!(base.0, got.0, "threads = {threads}: first moments");
            assert_eq!(base.1, got.1, "threads = {threads}: second moments");
            assert_eq!(base.2, got.2, "threads = {threads}: variance totals");
        }
    }

    #[test]
    fn variance_blocks_matches_fused_sweep() {
        let n = 2 * BLOCK + 9;
        let xs: Vec<f32> = (0..n).map(|i| ((i * 7) % 23) as f32 - 11.0).collect();
        let mut b1 = vec![0.0f64; n];
        let mut b2 = vec![0.0f64; n];
        let mut fused = vec![0.0f64; blocks_for(n)];
        let corr = 0.1;
        ema_update_stats(&mut b1, &mut b2, &xs, 0.9, 1.0, corr, &mut fused);
        let mut recomputed = vec![0.0f64; blocks_for(n)];
        variance_blocks(&b1, &b2, corr, &mut recomputed);
        assert_eq!(fused, recomputed);
        assert_eq!(
            tree_reduce(&fused).to_bits(),
            variance_total(&b1, &b2, corr).to_bits()
        );
    }

    #[test]
    fn scaled_sweep_matches_prescaled_input() {
        // scale folded into the sweep == mathematically scaling in f64
        // before the sweep (not merely approximately: same expression).
        let xs = [1.5f32, -2.0, 0.25, 8.0, -0.125];
        let scaled_xs: Vec<f32> = xs.iter().map(|&x| 0.5 * x).collect();
        let mut a1 = vec![0.0f64; xs.len()];
        let mut a2 = vec![0.0f64; xs.len()];
        let mut b1 = vec![0.0f64; xs.len()];
        let mut b2 = vec![0.0f64; xs.len()];
        let mut va = vec![0.0f64; 1];
        let mut vb = vec![0.0f64; 1];
        ema_update_stats(&mut a1, &mut a2, &xs, 0.9, 0.5, 0.1, &mut va);
        // 0.5 is exact in f32 and f64, so the two paths agree bitwise.
        ema_update_stats(&mut b1, &mut b2, &scaled_xs, 0.9, 1.0, 0.1, &mut vb);
        assert_eq!(a1, b1);
        assert_eq!(a2, b2);
        assert_eq!(va, vb);
    }
}
