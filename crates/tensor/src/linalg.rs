//! Small-matrix spectral tools.
//!
//! The paper's analysis (Lemmas 3 and 6) turns on the spectral radii of the
//! 2x2 bias operator `A` and the 3x3 variance operator `B` of momentum SGD
//! on a scalar quadratic. This module provides exact polynomial root
//! solvers (quadratic and Cardano cubic) and spectral radii for 2x2 and 3x3
//! real matrices so those lemmas can be checked *numerically* in tests and
//! regenerated for Figure 2.

/// A complex number represented as `(re, im)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// A purely real complex number.
    pub fn real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// The modulus `|z|`.
    pub fn abs(&self) -> f64 {
        self.re.hypot(self.im)
    }
}

/// Roots of the monic quadratic `x^2 + b x + c = 0`.
///
/// # Example
///
/// ```
/// use yf_tensor::linalg::quadratic_roots;
/// let [r0, r1] = quadratic_roots(-3.0, 2.0); // x^2 - 3x + 2 = (x-1)(x-2)
/// assert!((r0.re - 2.0).abs() < 1e-12 || (r0.re - 1.0).abs() < 1e-12);
/// assert_eq!(r0.im, 0.0);
/// assert_eq!(r1.im, 0.0);
/// ```
pub fn quadratic_roots(b: f64, c: f64) -> [Complex; 2] {
    let disc = b * b - 4.0 * c;
    if disc >= 0.0 {
        let sq = disc.sqrt();
        // Numerically stable: compute the larger-magnitude root first.
        let q = -0.5 * (b + b.signum() * sq);
        let r0 = if b == 0.0 { sq / 2.0 } else { q };
        let r1 = if r0 != 0.0 { c / r0 } else { -b - r0 };
        [Complex::real(r0), Complex::real(r1)]
    } else {
        let sq = (-disc).sqrt() / 2.0;
        [
            Complex {
                re: -b / 2.0,
                im: sq,
            },
            Complex {
                re: -b / 2.0,
                im: -sq,
            },
        ]
    }
}

/// Roots of the monic cubic `x^3 + a2 x^2 + a1 x + a0 = 0` (Cardano with the
/// trigonometric branch for three real roots).
pub fn cubic_roots(a2: f64, a1: f64, a0: f64) -> [Complex; 3] {
    // Depress: x = t - a2/3 gives t^3 + p t + q = 0.
    let p = a1 - a2 * a2 / 3.0;
    let q = 2.0 * a2.powi(3) / 27.0 - a2 * a1 / 3.0 + a0;
    let shift = -a2 / 3.0;
    let disc = -4.0 * p.powi(3) - 27.0 * q * q;
    let eps = 1e-12 * (1.0 + q.abs() + p.abs().powi(3));
    if disc > eps {
        // Three distinct real roots: trigonometric method.
        let m = 2.0 * (-p / 3.0).sqrt();
        let theta = (3.0 * q / (p * m)).clamp(-1.0, 1.0).acos() / 3.0;
        let mut roots = [Complex::real(0.0); 3];
        for (k, r) in roots.iter_mut().enumerate() {
            let angle = theta - 2.0 * std::f64::consts::PI * k as f64 / 3.0;
            *r = Complex::real(m * angle.cos() + shift);
        }
        roots
    } else {
        // One real root (Cardano), then deflate to a quadratic.
        let half_q = q / 2.0;
        let inner = half_q * half_q + p.powi(3) / 27.0;
        let t0 = if inner >= 0.0 {
            let sq = inner.sqrt();
            cbrt(-half_q + sq) + cbrt(-half_q - sq)
        } else {
            // Borderline three-real-root case that fell through on eps.
            let m = 2.0 * (-p / 3.0).sqrt();
            let theta = (3.0 * q / (p * m)).clamp(-1.0, 1.0).acos() / 3.0;
            m * theta.cos()
        };
        let x0 = t0 + shift;
        // Deflate: x^3 + a2 x^2 + a1 x + a0 = (x - x0)(x^2 + bx + c).
        let b = a2 + x0;
        let c = a1 + x0 * b;
        let [r1, r2] = quadratic_roots(b, c);
        [Complex::real(x0), r1, r2]
    }
}

fn cbrt(x: f64) -> f64 {
    x.signum() * x.abs().cbrt()
}

/// Spectral radius (largest eigenvalue modulus) of a 2x2 real matrix.
pub fn spectral_radius_2x2(m: [[f64; 2]; 2]) -> f64 {
    let trace = m[0][0] + m[1][1];
    let det = m[0][0] * m[1][1] - m[0][1] * m[1][0];
    quadratic_roots(-trace, det)
        .iter()
        .map(Complex::abs)
        .fold(0.0, f64::max)
}

/// Spectral radius of a 3x3 real matrix via its characteristic polynomial.
pub fn spectral_radius_3x3(m: [[f64; 3]; 3]) -> f64 {
    let trace = m[0][0] + m[1][1] + m[2][2];
    // Sum of principal 2x2 minors.
    let m01 = m[0][0] * m[1][1] - m[0][1] * m[1][0];
    let m02 = m[0][0] * m[2][2] - m[0][2] * m[2][0];
    let m12 = m[1][1] * m[2][2] - m[1][2] * m[2][1];
    let det = m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
        - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
        + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0]);
    // det(M - xI) = -x^3 + trace x^2 - (minors) x + det; negate for monic.
    cubic_roots(-trace, m01 + m02 + m12, -det)
        .iter()
        .map(Complex::abs)
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn quadratic_real_roots() {
        let roots = quadratic_roots(-5.0, 6.0); // (x-2)(x-3)
        let mut vals: Vec<f64> = roots.iter().map(|r| r.re).collect();
        vals.sort_by(f64::total_cmp);
        assert_close(vals[0], 2.0, 1e-12);
        assert_close(vals[1], 3.0, 1e-12);
    }

    #[test]
    fn quadratic_complex_roots() {
        let [r0, r1] = quadratic_roots(0.0, 1.0); // x^2 + 1
        assert_close(r0.abs(), 1.0, 1e-12);
        assert_close(r1.abs(), 1.0, 1e-12);
        assert_close(r0.re, 0.0, 1e-12);
    }

    #[test]
    fn cubic_three_real() {
        // (x-1)(x-2)(x-3) = x^3 - 6x^2 + 11x - 6
        let roots = cubic_roots(-6.0, 11.0, -6.0);
        let mut vals: Vec<f64> = roots.iter().map(|r| r.re).collect();
        vals.sort_by(f64::total_cmp);
        assert_close(vals[0], 1.0, 1e-9);
        assert_close(vals[1], 2.0, 1e-9);
        assert_close(vals[2], 3.0, 1e-9);
        assert!(roots.iter().all(|r| r.im.abs() < 1e-9));
    }

    #[test]
    fn cubic_one_real_pair_complex() {
        // x^3 - 1 has roots 1, exp(±2πi/3); all modulus 1.
        let roots = cubic_roots(0.0, 0.0, -1.0);
        for r in roots {
            assert_close(r.abs(), 1.0, 1e-9);
        }
        assert!(roots
            .iter()
            .any(|r| r.im.abs() < 1e-9 && (r.re - 1.0).abs() < 1e-9));
    }

    #[test]
    fn cubic_repeated_roots() {
        // (x-2)^3 = x^3 - 6x^2 + 12x - 8
        let roots = cubic_roots(-6.0, 12.0, -8.0);
        for r in roots {
            assert_close(r.re, 2.0, 1e-5);
            assert!(r.im.abs() < 1e-5);
        }
    }

    #[test]
    fn radius_2x2_diagonal() {
        assert_close(spectral_radius_2x2([[3.0, 0.0], [0.0, -5.0]]), 5.0, 1e-12);
    }

    #[test]
    fn radius_2x2_rotation() {
        // Rotation by 90 degrees: eigenvalues ±i, radius 1.
        assert_close(spectral_radius_2x2([[0.0, -1.0], [1.0, 0.0]]), 1.0, 1e-12);
    }

    #[test]
    fn radius_3x3_diagonal() {
        let m = [[1.0, 0.0, 0.0], [0.0, -4.0, 0.0], [0.0, 0.0, 2.0]];
        assert_close(spectral_radius_3x3(m), 4.0, 1e-9);
    }

    #[test]
    fn radius_3x3_permutation() {
        // Cyclic permutation: eigenvalues are cube roots of unity, radius 1.
        let m = [[0.0, 1.0, 0.0], [0.0, 0.0, 1.0], [1.0, 0.0, 0.0]];
        assert_close(spectral_radius_3x3(m), 1.0, 1e-9);
    }

    #[test]
    fn momentum_operator_radius_is_sqrt_mu_in_robust_region() {
        // Lemma 3 sanity check straight from the paper: with
        // (1-sqrt(mu))^2 <= alpha*h <= (1+sqrt(mu))^2 the 2x2 operator's
        // radius is exactly sqrt(mu).
        for &mu in &[0.1f64, 0.5, 0.9] {
            for &ah in &[
                (1.0 - mu.sqrt()).powi(2) + 1e-9,
                1.0 + mu,
                (1.0 + mu.sqrt()).powi(2) - 1e-9,
            ] {
                let a = [[1.0 - ah + mu, -mu], [1.0, 0.0]];
                assert_close(spectral_radius_2x2(a), mu.sqrt(), 1e-6);
            }
        }
    }
}
