//! A reusable pool of `f32` buffers so steady-state training stops
//! allocating per op.
//!
//! The GEMM packing panels and the im2col column buffers are the two big
//! per-op allocations in a training step. A [`Scratch`] keeps returned
//! buffers and hands them back on the next request, so a training loop
//! that calls the same kernels every step settles into zero heap churn.
//!
//! Buffers come back with *unspecified contents*; every kernel in the
//! workspace that takes scratch space overwrites what it reads.
//!
//! Kernels have two entry points: an explicit `*_with_scratch` variant for
//! callers that manage reuse themselves (the autograd tape does this), and
//! a default variant that borrows a thread-local pool via [`Scratch::with_thread_local`].

use std::cell::RefCell;

/// A pool of reusable `f32` buffers.
#[derive(Debug, Default)]
pub struct Scratch {
    pool: Vec<Vec<f32>>,
}

impl Scratch {
    /// An empty pool.
    pub fn new() -> Self {
        Scratch::default()
    }

    /// Takes a buffer of exactly `len` elements with unspecified contents,
    /// reusing the *smallest* pooled allocation that already fits (so a
    /// small request never steals — and truncates — a big pooled buffer
    /// that a later, larger request would have to regrow), or the largest
    /// one otherwise.
    pub fn take(&mut self, len: usize) -> Vec<f32> {
        // The pool is kept sorted by capacity on `put`: best fit is the
        // first buffer with enough capacity, else the last (largest).
        let at = self.pool.partition_point(|b| b.capacity() < len);
        let mut buf = if at < self.pool.len() {
            self.pool.remove(at)
        } else {
            self.pool.pop().unwrap_or_default()
        };
        // Only the grown tail is written: a steady-state caller that asks
        // for the same size every step pays zero fill cost.
        if buf.len() > len {
            buf.truncate(len);
        } else {
            buf.resize(len, 0.0);
        }
        buf
    }

    /// Returns a buffer to the pool for later reuse.
    pub fn put(&mut self, buf: Vec<f32>) {
        if buf.capacity() == 0 {
            return;
        }
        let at = self
            .pool
            .partition_point(|b| b.capacity() <= buf.capacity());
        self.pool.insert(at, buf);
    }

    /// Number of buffers currently pooled (for tests and diagnostics).
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }

    /// Moves every pooled buffer of `other` into this pool.
    pub fn absorb(&mut self, mut other: Scratch) {
        for buf in other.pool.drain(..) {
            self.put(buf);
        }
    }

    /// Runs `f` with this thread's shared scratch pool.
    ///
    /// This is what the default (non-`_with_scratch`) kernel entry points
    /// use, so repeated kernel calls on one thread reuse allocations even
    /// when the caller never threads a pool through explicitly.
    ///
    /// The pool is *moved out* of the thread-local slot for the duration
    /// of `f` and merged back afterwards, so nested kernels (a conv
    /// holding the pool while its inner GEMM asks for one) see an empty
    /// pool instead of a `RefCell` double-borrow panic.
    pub fn with_thread_local<R>(f: impl FnOnce(&mut Scratch) -> R) -> R {
        thread_local! {
            static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::new());
        }
        let mut pool = SCRATCH.with(|s| std::mem::take(&mut *s.borrow_mut()));
        let result = f(&mut pool);
        SCRATCH.with(|s| s.borrow_mut().absorb(pool));
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_put_reuses_allocation() {
        let mut s = Scratch::new();
        let mut buf = s.take(100);
        buf[0] = 42.0;
        let ptr = buf.as_ptr();
        s.put(buf);
        let again = s.take(50);
        assert_eq!(again.len(), 50);
        assert_eq!(again.as_ptr(), ptr, "allocation should be reused");
    }

    #[test]
    fn best_fit_prefers_smallest_sufficient_capacity() {
        let mut s = Scratch::new();
        s.put(Vec::with_capacity(10));
        s.put(Vec::with_capacity(1000));
        s.put(Vec::with_capacity(100));
        let buf = s.take(50);
        assert_eq!(buf.capacity(), 100, "smallest sufficient buffer reused");
        // Nothing fits 5000: fall back to the largest and grow it.
        let buf = s.take(5000);
        assert!(buf.capacity() >= 5000);
        assert_eq!(s.pooled(), 1, "the 10-capacity buffer remains");
    }

    #[test]
    fn interleaved_sizes_keep_their_buffers() {
        // A small take must not truncate the big pooled buffer: the
        // big/small request pair settles into steady-state reuse.
        let mut s = Scratch::new();
        let big = s.take(1 << 16);
        let small = s.take(1 << 8);
        let (big_ptr, small_ptr) = (big.as_ptr(), small.as_ptr());
        s.put(big);
        s.put(small);
        for _ in 0..3 {
            let small = s.take(1 << 8);
            let big = s.take(1 << 16);
            assert_eq!(small.as_ptr(), small_ptr);
            assert_eq!(big.as_ptr(), big_ptr);
            s.put(big);
            s.put(small);
        }
    }

    #[test]
    fn thread_local_pool_persists_across_calls() {
        let ptr = Scratch::with_thread_local(|s| {
            let buf = s.take(64);
            let p = buf.as_ptr();
            s.put(buf);
            p
        });
        let again = Scratch::with_thread_local(|s| {
            let buf = s.take(64);
            let p = buf.as_ptr();
            s.put(buf);
            p
        });
        assert_eq!(ptr, again);
    }
}
