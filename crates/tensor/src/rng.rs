//! Seeded pseudo-random number generation.
//!
//! We implement PCG32 (O'Neill 2014) instead of depending on `rand`: it is a
//! few dozen lines, it is fast, and — most importantly for a reproduction —
//! every workload generator and weight initializer in the workspace becomes
//! bit-reproducible across platforms from a single `u64` seed.

/// A PCG-XSH-RR 64/32 random number generator.
///
/// # Example
///
/// ```
/// use yf_tensor::rng::Pcg32;
/// let mut a = Pcg32::seed(42);
/// let mut b = Pcg32::seed(42);
/// assert_eq!(a.next_u32(), b.next_u32());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

const PCG_MULT: u64 = 6364136223846793005;

impl Pcg32 {
    /// Creates a generator from a seed, using a fixed default stream.
    pub fn seed(seed: u64) -> Self {
        Self::seed_stream(seed, 0xda3e39cb94b95bdb)
    }

    /// Creates a generator with an explicit stream selector, so several
    /// independent generators can share one logical seed.
    pub fn seed_stream(seed: u64, stream: u64) -> Self {
        let mut rng = Pcg32 {
            state: 0,
            inc: (stream << 1) | 1,
        };
        rng.next_u32();
        rng.state = rng.state.wrapping_add(seed);
        rng.next_u32();
        rng
    }

    /// Returns the next 32 uniformly random bits.
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Returns 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        (u64::from(self.next_u32()) << 32) | u64::from(self.next_u32())
    }

    /// Returns a uniform sample in `[0, 1)` with 24 bits of precision.
    pub fn uniform(&mut self) -> f32 {
        (self.next_u32() >> 8) as f32 * (1.0 / 16_777_216.0)
    }

    /// Returns a uniform sample in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn uniform_in(&mut self, lo: f32, hi: f32) -> f32 {
        assert!(lo <= hi, "uniform_in: empty range [{lo}, {hi})");
        lo + (hi - lo) * self.uniform()
    }

    /// Returns a uniform integer in `[0, n)` using Lemire rejection.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u32) -> u32 {
        assert!(n > 0, "below: n must be positive");
        // Rejection sampling keeps the distribution exactly uniform.
        let threshold = n.wrapping_neg() % n;
        loop {
            let r = self.next_u32();
            let m = u64::from(r) * u64::from(n);
            if (m as u32) >= threshold {
                return (m >> 32) as u32;
            }
        }
    }

    /// Returns a standard normal sample (Box–Muller transform).
    pub fn normal(&mut self) -> f32 {
        // Draw until u1 is safely away from zero to keep ln finite.
        let mut u1 = self.uniform();
        while u1 <= f32::MIN_POSITIVE {
            u1 = self.uniform();
        }
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        r * (2.0 * std::f32::consts::PI * u2).cos()
    }

    /// Fills `buf` with standard normal samples.
    pub fn fill_normal(&mut self, buf: &mut [f32]) {
        for v in buf {
            *v = self.normal();
        }
    }

    /// Samples an index from unnormalized non-negative weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn categorical(&mut self, weights: &[f32]) -> usize {
        assert!(!weights.is_empty(), "categorical: empty weights");
        let total: f32 = weights.iter().sum();
        assert!(total > 0.0, "categorical: weights sum to zero");
        let mut u = self.uniform() * total;
        for (i, &w) in weights.iter().enumerate() {
            u -= w;
            if u < 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    /// Splits off an independent generator (different stream).
    pub fn split(&mut self) -> Pcg32 {
        let seed = self.next_u64();
        let stream = self.next_u64();
        Pcg32::seed_stream(seed, stream)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Pcg32::seed(1);
        let mut b = Pcg32::seed(1);
        for _ in 0..100 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = Pcg32::seed(1);
        let mut b = Pcg32::seed(2);
        let same = (0..32).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4, "different seeds should decorrelate streams");
    }

    #[test]
    fn uniform_bounds_and_mean() {
        let mut rng = Pcg32::seed(3);
        let n = 20_000;
        let mut sum = 0.0f64;
        for _ in 0..n {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
            sum += f64::from(u);
        }
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = Pcg32::seed(4);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = rng.below(7) as usize;
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn normal_moments() {
        let mut rng = Pcg32::seed(5);
        let n = 50_000;
        let (mut s1, mut s2) = (0.0f64, 0.0f64);
        for _ in 0..n {
            let x = f64::from(rng.normal());
            s1 += x;
            s2 += x * x;
        }
        let mean = s1 / f64::from(n);
        let var = s2 / f64::from(n) - mean * mean;
        assert!(mean.abs() < 0.02, "normal mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "normal var {var}");
    }

    #[test]
    fn categorical_respects_weights() {
        let mut rng = Pcg32::seed(6);
        let w = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..4000 {
            counts[rng.categorical(&w)] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > 2 * counts[0]);
    }

    #[test]
    fn split_decorrelates() {
        let mut parent = Pcg32::seed(7);
        let mut child = parent.split();
        let same = (0..32)
            .filter(|_| parent.next_u32() == child.next_u32())
            .count();
        assert!(same < 4);
    }

    #[test]
    #[should_panic(expected = "below: n must be positive")]
    fn below_zero_panics() {
        Pcg32::seed(0).below(0);
    }
}
