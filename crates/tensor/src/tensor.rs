//! The dense `f32` tensor type.

use crate::elementwise;
use crate::gemm;
use crate::rng::Pcg32;
use crate::shape::Shape;
use std::fmt;

/// A dense, row-major `f32` tensor.
///
/// This is deliberately simple: owned contiguous storage, eager ops,
/// shape-checked at runtime. It is fast enough to train the scaled-down
/// models in this reproduction and small enough to audit.
///
/// # Example
///
/// ```
/// use yf_tensor::Tensor;
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
/// let b = a.add(&a);
/// assert_eq!(b.data(), &[2.0, 4.0, 6.0, 8.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Shape,
}

impl Tensor {
    /// Creates a tensor from a flat buffer and a shape.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the shape's element count.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        assert_eq!(
            data.len(),
            shape.len(),
            "data length {} does not match shape {shape}",
            data.len()
        );
        Tensor { data, shape }
    }

    /// A tensor of zeros.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        Tensor {
            data: vec![0.0; shape.len()],
            shape,
        }
    }

    /// A tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        Tensor {
            data: vec![value; shape.len()],
            shape,
        }
    }

    /// A tensor of ones.
    pub fn ones(dims: &[usize]) -> Self {
        Tensor::full(dims, 1.0)
    }

    /// A rank-0 (scalar) tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor::from_vec(vec![value], &[])
    }

    /// Standard-normal initialized tensor.
    pub fn randn(dims: &[usize], rng: &mut Pcg32) -> Self {
        let mut t = Tensor::zeros(dims);
        rng.fill_normal(&mut t.data);
        t
    }

    /// Uniform `[lo, hi)` initialized tensor.
    pub fn rand_uniform(dims: &[usize], lo: f32, hi: f32, rng: &mut Pcg32) -> Self {
        let mut t = Tensor::zeros(dims);
        for v in &mut t.data {
            *v = rng.uniform_in(lo, hi);
        }
        t
    }

    /// Xavier/Glorot-uniform initialization for a weight of `dims`, given
    /// fan-in and fan-out.
    pub fn xavier(dims: &[usize], fan_in: usize, fan_out: usize, rng: &mut Pcg32) -> Self {
        let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
        Tensor::rand_uniform(dims, -bound, bound, rng)
    }

    /// He-normal initialization (for ReLU stacks), given fan-in.
    pub fn he(dims: &[usize], fan_in: usize, rng: &mut Pcg32) -> Self {
        let std = (2.0 / fan_in as f32).sqrt();
        let mut t = Tensor::randn(dims, rng);
        t.scale_in_place(std);
        t
    }

    /// The tensor's shape extents.
    pub fn shape(&self) -> &[usize] {
        self.shape.dims()
    }

    /// The tensor's [`Shape`].
    pub fn shape_obj(&self) -> &Shape {
        &self.shape
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read-only view of the flat storage.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat storage.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its flat storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-index.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Sets the element at a multi-index.
    pub fn set(&mut self, index: &[usize], value: f32) {
        let off = self.shape.offset(index);
        self.data[off] = value;
    }

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(&self, dims: &[usize]) -> Tensor {
        Tensor::from_vec(self.data.clone(), dims)
    }

    /// Like [`Tensor::reshape`], but consumes the tensor so the storage
    /// moves instead of being cloned.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn into_reshape(self, dims: &[usize]) -> Tensor {
        Tensor::from_vec(self.data, dims)
    }

    fn zip_check(&self, other: &Tensor, op: &str) {
        assert_eq!(
            self.shape, other.shape,
            "{op}: shape mismatch {} vs {}",
            self.shape, other.shape
        );
    }

    /// Elementwise sum.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip_check(other, "add");
        self.zip_map(other, |a, b| a + b)
    }

    /// Elementwise difference.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip_check(other, "sub");
        self.zip_map(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip_check(other, "mul");
        self.zip_map(other, |a, b| a * b)
    }

    /// Elementwise quotient.
    pub fn div(&self, other: &Tensor) -> Tensor {
        self.zip_check(other, "div");
        self.zip_map(other, |a, b| a / b)
    }

    /// Applies `f` elementwise, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            data: self.data.iter().map(|&v| f(v)).collect(),
            shape: self.shape.clone(),
        }
    }

    fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        Tensor {
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
            shape: self.shape.clone(),
        }
    }

    /// `self + alpha * other`, in place.
    pub fn axpy_in_place(&mut self, alpha: f32, other: &Tensor) {
        self.zip_check(other, "axpy");
        elementwise::axpy(&mut self.data, alpha, &other.data);
    }

    /// Multiplies every element by `alpha`, in place.
    pub fn scale_in_place(&mut self, alpha: f32) {
        elementwise::scale(&mut self.data, alpha);
    }

    /// Elementwise sum, in place (`self += other`).
    pub fn add_assign(&mut self, other: &Tensor) {
        self.zip_check(other, "add_assign");
        elementwise::add(&mut self.data, &other.data);
    }

    /// Elementwise difference, in place (`self -= other`).
    pub fn sub_assign(&mut self, other: &Tensor) {
        self.zip_check(other, "sub_assign");
        elementwise::sub(&mut self.data, &other.data);
    }

    /// Elementwise (Hadamard) product, in place (`self *= other`).
    pub fn mul_assign(&mut self, other: &Tensor) {
        self.zip_check(other, "mul_assign");
        elementwise::mul(&mut self.data, &other.data);
    }

    /// Applies `f` to every element, in place.
    pub fn map_in_place(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Scalar multiple.
    pub fn scale(&self, alpha: f32) -> Tensor {
        self.map(|v| v * alpha)
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for empty tensors).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Euclidean norm of the flattened tensor, accumulated in f64.
    pub fn norm(&self) -> f32 {
        self.data
            .iter()
            .map(|&v| f64::from(v) * f64::from(v))
            .sum::<f64>()
            .sqrt() as f32
    }

    /// Largest element.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is empty.
    pub fn max(&self) -> f32 {
        assert!(!self.data.is_empty(), "max of empty tensor");
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Index of the largest element in the flat storage.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is empty.
    pub fn argmax(&self) -> usize {
        assert!(!self.data.is_empty(), "argmax of empty tensor");
        let mut best = 0;
        for (i, &v) in self.data.iter().enumerate() {
            if v > self.data[best] {
                best = i;
            }
        }
        best
    }

    /// Matrix product of two rank-2 tensors: `[m, k] x [k, n] -> [m, n]`.
    ///
    /// Backed by the cache-blocked, panel-packed [`gemm`] kernel (SIMD
    /// micro-kernels selected at runtime, rows parallelized across
    /// `YF_NUM_THREADS` threads).
    ///
    /// # Panics
    ///
    /// Panics unless both tensors are rank 2 with compatible inner
    /// dimensions.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape.rank(), 2, "matmul: lhs must be rank 2");
        assert_eq!(other.shape.rank(), 2, "matmul: rhs must be rank 2");
        let (m, k) = (self.shape.dims()[0], self.shape.dims()[1]);
        let (k2, n) = (other.shape.dims()[0], other.shape.dims()[1]);
        assert_eq!(k, k2, "matmul: inner dims {k} vs {k2}");
        let mut out = vec![0.0f32; m * n];
        gemm::gemm_nn(m, n, k, &self.data, &other.data, 0.0, &mut out);
        Tensor::from_vec(out, &[m, n])
    }

    /// Fused `self · otherᵀ` for rank-2 tensors: `[m, k] x [n, k]ᵀ ->
    /// [m, n]`, without materializing the transpose (the GEMM packing
    /// layer reads `other` column-wise instead).
    ///
    /// # Panics
    ///
    /// Panics unless both tensors are rank 2 with matching `k`.
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape.rank(), 2, "matmul_nt: lhs must be rank 2");
        assert_eq!(other.shape.rank(), 2, "matmul_nt: rhs must be rank 2");
        let (m, k) = (self.shape.dims()[0], self.shape.dims()[1]);
        let (n, k2) = (other.shape.dims()[0], other.shape.dims()[1]);
        assert_eq!(k, k2, "matmul_nt: inner dims {k} vs {k2}");
        let mut out = vec![0.0f32; m * n];
        gemm::gemm_nt(m, n, k, &self.data, &other.data, 0.0, &mut out);
        Tensor::from_vec(out, &[m, n])
    }

    /// Fused `selfᵀ · other` for rank-2 tensors: `[k, m]ᵀ x [k, n] ->
    /// [m, n]`, without materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics unless both tensors are rank 2 with matching `k`.
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape.rank(), 2, "matmul_tn: lhs must be rank 2");
        assert_eq!(other.shape.rank(), 2, "matmul_tn: rhs must be rank 2");
        let (k, m) = (self.shape.dims()[0], self.shape.dims()[1]);
        let (k2, n) = (other.shape.dims()[0], other.shape.dims()[1]);
        assert_eq!(k, k2, "matmul_tn: inner dims {k} vs {k2}");
        let mut out = vec![0.0f32; m * n];
        gemm::gemm_tn(m, n, k, &self.data, &other.data, 0.0, &mut out);
        Tensor::from_vec(out, &[m, n])
    }

    /// Transpose of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn transpose(&self) -> Tensor {
        assert_eq!(self.shape.rank(), 2, "transpose: must be rank 2");
        let (m, n) = (self.shape.dims()[0], self.shape.dims()[1]);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor::from_vec(out, &[n, m])
    }

    /// Extracts row `r` of a rank-2 tensor as a rank-1 tensor.
    pub fn row(&self, r: usize) -> Tensor {
        assert_eq!(self.shape.rank(), 2, "row: must be rank 2");
        let n = self.shape.dims()[1];
        Tensor::from_vec(self.data[r * n..(r + 1) * n].to_vec(), &[n])
    }

    /// Stacks rank-1 tensors of equal length into a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or lengths differ.
    pub fn from_rows(rows: &[Tensor]) -> Tensor {
        assert!(!rows.is_empty(), "from_rows: no rows");
        let n = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * n);
        for r in rows {
            assert_eq!(r.len(), n, "from_rows: ragged rows");
            data.extend_from_slice(r.data());
        }
        Tensor::from_vec(data, &[rows.len(), n])
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} {:?}", self.shape, &self.data)
    }
}

impl FromIterator<f32> for Tensor {
    /// Collects into a rank-1 tensor.
    fn from_iter<I: IntoIterator<Item = f32>>(iter: I) -> Self {
        let data: Vec<f32> = iter.into_iter().collect();
        let n = data.len();
        Tensor::from_vec(data, &[n])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(t.at(&[0, 0]), 1.0);
        assert_eq!(t.at(&[1, 2]), 6.0);
        assert_eq!(t.shape(), &[2, 3]);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![3.0, 5.0], &[2]);
        assert_eq!(a.add(&b).data(), &[4.0, 7.0]);
        assert_eq!(b.sub(&a).data(), &[2.0, 3.0]);
        assert_eq!(a.mul(&b).data(), &[3.0, 10.0]);
        assert_eq!(b.div(&a).data(), &[3.0, 2.5]);
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity() {
        let mut rng = Pcg32::seed(10);
        let a = Tensor::randn(&[3, 3], &mut rng);
        let eye = Tensor::from_vec(vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0], &[3, 3]);
        let b = a.matmul(&eye);
        for (x, y) in a.data().iter().zip(b.data().iter()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn matmul_nt_tn_match_explicit_transpose() {
        let mut rng = Pcg32::seed(21);
        let a = Tensor::randn(&[7, 5], &mut rng);
        let b = Tensor::randn(&[5, 9], &mut rng);
        let want = a.matmul(&b);
        let via_nt = a.matmul_nt(&b.transpose());
        let via_tn = a.transpose().matmul_tn(&b);
        for (w, (x, y)) in want
            .data()
            .iter()
            .zip(via_nt.data().iter().zip(via_tn.data()))
        {
            assert!((w - x).abs() < 1e-5, "nt: {w} vs {x}");
            assert!((w - y).abs() < 1e-5, "tn: {w} vs {y}");
        }
    }

    #[test]
    fn in_place_ops_match_allocating_ops() {
        let mut rng = Pcg32::seed(22);
        let a = Tensor::randn(&[3, 4], &mut rng);
        let b = Tensor::randn(&[3, 4], &mut rng);

        let mut t = a.clone();
        t.add_assign(&b);
        assert_eq!(t, a.add(&b));

        let mut t = a.clone();
        t.sub_assign(&b);
        assert_eq!(t, a.sub(&b));

        let mut t = a.clone();
        t.mul_assign(&b);
        assert_eq!(t, a.mul(&b));

        let mut t = a.clone();
        t.map_in_place(|v| v.max(0.0));
        assert_eq!(t, a.map(|v| v.max(0.0)));
    }

    #[test]
    fn into_reshape_moves_storage() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let ptr = a.data().as_ptr();
        let b = a.into_reshape(&[4]);
        assert_eq!(b.shape(), &[4]);
        assert_eq!(b.data().as_ptr(), ptr, "storage should move, not clone");
    }

    #[test]
    fn transpose_involution() {
        let mut rng = Pcg32::seed(11);
        let a = Tensor::randn(&[4, 7], &mut rng);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![1.0, -2.0, 3.0], &[3]);
        assert_eq!(t.sum(), 2.0);
        assert_eq!(t.max(), 3.0);
        assert_eq!(t.argmax(), 2);
        assert!((t.norm() - 14.0f32.sqrt()).abs() < 1e-6);
        assert!((t.mean() - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Tensor::from_vec(vec![1.0, 1.0], &[2]);
        let b = Tensor::from_vec(vec![2.0, 4.0], &[2]);
        a.axpy_in_place(0.5, &b);
        assert_eq!(a.data(), &[2.0, 3.0]);
        a.scale_in_place(2.0);
        assert_eq!(a.data(), &[4.0, 6.0]);
    }

    #[test]
    fn from_rows_round_trip() {
        let r0 = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let r1 = Tensor::from_vec(vec![3.0, 4.0], &[2]);
        let m = Tensor::from_rows(&[r0.clone(), r1]);
        assert_eq!(m.shape(), &[2, 2]);
        assert_eq!(m.row(0), r0);
    }

    #[test]
    fn he_init_scale() {
        let mut rng = Pcg32::seed(12);
        let t = Tensor::he(&[64, 64], 64, &mut rng);
        let var = t.data().iter().map(|v| v * v).sum::<f32>() / t.len() as f32;
        assert!((var - 2.0 / 64.0).abs() < 0.01, "He variance {var}");
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn add_shape_mismatch_panics() {
        let a = Tensor::zeros(&[2]);
        let b = Tensor::zeros(&[3]);
        let _ = a.add(&b);
    }

    #[test]
    #[should_panic(expected = "inner dims")]
    fn matmul_dim_mismatch_panics() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        let _ = a.matmul(&b);
    }
}
