//! Scoped-thread work partitioning for the kernel layer.
//!
//! The build environment is offline, so there is no rayon: this module is
//! the minimal std-only substitute the compute kernels share. Work is
//! always split into *contiguous, disjoint* chunks of an output buffer, so
//! no synchronization beyond [`std::thread::scope`]'s join is ever needed.
//!
//! The thread count comes from `YF_NUM_THREADS` when set (any positive
//! integer), else from [`std::thread::available_parallelism`]. Kernels that
//! want explicit control (e.g. the property tests that compare 1-thread and
//! N-thread results) take a thread count parameter instead of calling
//! [`num_threads`] themselves.

/// Minimum elements of work per additional worker thread. Below this a
/// scoped spawn costs more than the loop it offloads; kernels gate their
/// fan-out on it via [`threads_for`].
pub const MIN_PAR_ELEMS: usize = 1 << 14;

/// Thread count for a kernel touching `elems` elements: one worker per
/// [`MIN_PAR_ELEMS`] block of work, capped at [`num_threads`]. Small
/// workloads get 1 (a plain call), and the fan-out grows with the
/// workload instead of jumping straight to the machine width.
pub fn threads_for(elems: usize) -> usize {
    (elems / MIN_PAR_ELEMS).clamp(1, num_threads())
}

/// The kernel-layer thread count: `YF_NUM_THREADS` if set and positive,
/// otherwise the machine's available parallelism (1 if unknown).
pub fn num_threads() -> usize {
    std::env::var("YF_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Rows per chunk that [`scoped_chunks_mut`] hands each worker for a
/// `rows`-row workload at `threads` threads. Exposed so callers can
/// pre-provision per-chunk state (chunk index = `first_row / chunk_rows`).
///
/// # Panics
///
/// Panics if `rows == 0`.
pub fn chunk_rows(rows: usize, threads: usize) -> usize {
    assert!(rows > 0, "chunk_rows: no rows");
    rows.div_ceil(threads.clamp(1, rows))
}

/// Splits `data` into at most `threads` contiguous chunks, each a whole
/// number of `unit`-element rows, and runs `f(first_row, chunk)` on every
/// chunk — on scoped worker threads when more than one chunk results, with
/// the final chunk processed on the calling thread.
///
/// `data.len()` must be a multiple of `unit`. With `threads <= 1` (or a
/// single row) this is a plain function call, so single-threaded use has
/// zero overhead.
///
/// # Panics
///
/// Panics if `unit == 0` or `data.len()` is not a multiple of `unit`.
pub fn scoped_chunks_mut<T, F>(data: &mut [T], unit: usize, threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(unit > 0, "scoped_chunks_mut: unit must be positive");
    assert_eq!(
        data.len() % unit,
        0,
        "scoped_chunks_mut: data length {} is not a multiple of unit {unit}",
        data.len()
    );
    if data.is_empty() {
        return;
    }
    let rows = data.len() / unit;
    let threads = threads.clamp(1, rows);
    if threads <= 1 {
        f(0, data);
        return;
    }
    let rows_per_chunk = chunk_rows(rows, threads);
    std::thread::scope(|scope| {
        let f = &f;
        let mut rest = data;
        let mut row = 0;
        while !rest.is_empty() {
            let take = (rows_per_chunk * unit).min(rest.len());
            let (chunk, tail) = rest.split_at_mut(take);
            let first_row = row;
            row += take / unit;
            rest = tail;
            if row == rows {
                f(first_row, chunk);
            } else {
                scope.spawn(move || f(first_row, chunk));
            }
        }
    });
}

/// Like [`scoped_chunks_mut`] but splits **two** buffers by the same row
/// partition: row `r` of `a` is `unit_a` elements, row `r` of `b` is
/// `unit_b` elements, and `f(first_row, a_chunk, b_chunk)` receives the
/// matching chunks. This is what reduction kernels that produce paired
/// outputs (values + indices, means + inverse stds) fan out on.
///
/// # Panics
///
/// Panics if either unit is zero, either length is not a multiple of its
/// unit, or the row counts disagree.
pub fn scoped_chunks_mut2<A, B, F>(
    a: &mut [A],
    unit_a: usize,
    b: &mut [B],
    unit_b: usize,
    threads: usize,
    f: F,
) where
    A: Send,
    B: Send,
    F: Fn(usize, &mut [A], &mut [B]) + Sync,
{
    assert!(
        unit_a > 0 && unit_b > 0,
        "scoped_chunks_mut2: units must be positive"
    );
    assert_eq!(
        a.len() % unit_a,
        0,
        "scoped_chunks_mut2: a length {} vs unit {unit_a}",
        a.len()
    );
    assert_eq!(
        b.len() % unit_b,
        0,
        "scoped_chunks_mut2: b length {} vs unit {unit_b}",
        b.len()
    );
    let rows = a.len() / unit_a;
    assert_eq!(
        rows,
        b.len() / unit_b,
        "scoped_chunks_mut2: row count mismatch"
    );
    if rows == 0 {
        return;
    }
    let threads = threads.clamp(1, rows);
    if threads <= 1 {
        f(0, a, b);
        return;
    }
    let rows_per_chunk = chunk_rows(rows, threads);
    std::thread::scope(|scope| {
        let f = &f;
        let (mut rest_a, mut rest_b) = (a, b);
        let mut row = 0;
        while !rest_a.is_empty() {
            let take_rows = rows_per_chunk.min(rest_a.len() / unit_a);
            let (chunk_a, tail_a) = rest_a.split_at_mut(take_rows * unit_a);
            let (chunk_b, tail_b) = rest_b.split_at_mut(take_rows * unit_b);
            let first_row = row;
            row += take_rows;
            rest_a = tail_a;
            rest_b = tail_b;
            if row == rows {
                f(first_row, chunk_a, chunk_b);
            } else {
                scope.spawn(move || f(first_row, chunk_a, chunk_b));
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_all_rows_once() {
        for threads in [1, 2, 3, 7, 64] {
            let mut data = vec![0u32; 10 * 3];
            scoped_chunks_mut(&mut data, 3, threads, |first_row, chunk| {
                for (r, row) in chunk.chunks_mut(3).enumerate() {
                    for v in row {
                        *v += (first_row + r) as u32 + 1;
                    }
                }
            });
            let expect: Vec<u32> = (0..10u32).flat_map(|r| [r + 1; 3]).collect();
            assert_eq!(data, expect, "threads = {threads}");
        }
    }

    #[test]
    fn empty_input_is_a_noop() {
        let mut data: Vec<f32> = Vec::new();
        scoped_chunks_mut(&mut data, 4, 8, |_, _| panic!("no chunks expected"));
    }

    #[test]
    fn num_threads_is_positive() {
        assert!(num_threads() >= 1);
    }

    #[test]
    fn threads_for_scales_with_work() {
        assert_eq!(threads_for(0), 1);
        assert_eq!(threads_for(MIN_PAR_ELEMS - 1), 1);
        assert!(threads_for(2 * MIN_PAR_ELEMS) >= 1);
        assert!(threads_for(usize::MAX / 2) <= num_threads());
    }

    #[test]
    fn paired_chunks_stay_aligned() {
        for threads in [1, 2, 5, 16] {
            let mut vals = vec![0u32; 7 * 4];
            let mut tags = vec![0u32; 7];
            scoped_chunks_mut2(&mut vals, 4, &mut tags, 1, threads, |first, va, tb| {
                assert_eq!(va.len() / 4, tb.len());
                for (r, (row, tag)) in va.chunks_mut(4).zip(tb.iter_mut()).enumerate() {
                    let id = (first + r) as u32;
                    row.fill(id);
                    *tag = id;
                }
            });
            let want_vals: Vec<u32> = (0..7u32).flat_map(|r| [r; 4]).collect();
            let want_tags: Vec<u32> = (0..7).collect();
            assert_eq!(vals, want_vals, "threads = {threads}");
            assert_eq!(tags, want_tags, "threads = {threads}");
        }
    }

    #[test]
    #[should_panic(expected = "row count mismatch")]
    fn paired_chunks_reject_ragged_rows() {
        let mut a = vec![0f32; 8];
        let mut b = vec![0f32; 3];
        scoped_chunks_mut2(&mut a, 2, &mut b, 1, 2, |_, _, _| {});
    }
}
