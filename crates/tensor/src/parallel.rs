//! The persistent worker-pool runtime of the kernel layer.
//!
//! The build environment is offline, so there is no rayon: this module is
//! the minimal std-only substitute the compute kernels share. Work is
//! always split into *contiguous, disjoint* chunks of an output buffer, so
//! the only synchronization a dispatch needs is the pool's own completion
//! barrier.
//!
//! # Pool lifecycle
//!
//! [`Pool::global`] lazily spawns [`num_threads`]` - 1` workers on first
//! use and pins them for the rest of the process — the calling thread
//! always participates in its own dispatch, so the pool plus the caller
//! together are exactly `num_threads()` lanes. Every parallel region in
//! the workspace (GEMM row partitioning, norm kernels, the fused EMA
//! sweep, the sharded optimizer step) publishes its job to this one pool
//! instead of opening a fresh [`std::thread::scope`]; a dispatch is a
//! mutex/condvar hand-off, not a spawn/join round.
//!
//! Dispatching *from inside* a dispatch (a kernel called from a pool
//! task) runs inline on the current thread: chunk *plans* — not worker
//! counts — determine results in this codebase (reductions are
//! block-structured and fixed-order, see `yf_tensor::reduce`), so the
//! inline path is bitwise identical and oversubscription is impossible by
//! construction. A panic inside a task is caught, the pool survives, and
//! the panic payload resurfaces on the publishing thread — the same
//! observable behavior scoped joins had.
//!
//! # Naming parallelism: [`Par`]
//!
//! Kernels take a single [`Par`] parameter instead of an ad-hoc trailing
//! `threads: usize`: [`Par::pool`] (full kernel-layer width),
//! [`Par::serial`], or [`Par::threads`] for an explicit cap.
//! `impl From<usize>` keeps `usize` call sites working: `n` means what it
//! always meant, "at most `n` chunks".
//!
//! The thread count comes from `YF_NUM_THREADS` when set (any positive
//! integer), else from [`std::thread::available_parallelism`]. It is read
//! **once per process** (first call to [`num_threads`]) and cached;
//! changing the environment variable afterwards has no effect.

use std::any::Any;
use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// Minimum elements of work per additional worker. Below this a dispatch
/// costs more than the loop it offloads; kernels gate their fan-out on it
/// via [`threads_for`].
pub const MIN_PAR_ELEMS: usize = 1 << 14;

/// Chunk count for a kernel touching `elems` elements: one lane per
/// [`MIN_PAR_ELEMS`] block of work, capped at [`num_threads`]. Small
/// workloads get 1 (a plain call), and the fan-out grows with the
/// workload instead of jumping straight to the machine width.
pub fn threads_for(elems: usize) -> usize {
    (elems / MIN_PAR_ELEMS).clamp(1, num_threads())
}

/// The kernel-layer thread count: `YF_NUM_THREADS` if set and positive,
/// otherwise the machine's available parallelism (1 if unknown).
///
/// Resolved on the first call and cached for the process lifetime (the
/// global pool is sized from it, so a later change could not take effect
/// anyway).
pub fn num_threads() -> usize {
    static CACHED: OnceLock<usize> = OnceLock::new();
    *CACHED.get_or_init(|| {
        crate::env::positive_usize("YF_NUM_THREADS").unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
    })
}

/// How a kernel should split its work — the one way every kernel
/// signature in the workspace names parallelism.
///
/// `Par` decides a *chunk budget*; the kernel still clamps it to the
/// workload via [`threads_for`]-style gating, and the chunk plan (not the
/// number of workers that happen to execute it) determines the result
/// bitwise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Par {
    /// Use the full kernel-layer width ([`num_threads`]).
    #[default]
    Pool,
    /// Run serially on the calling thread.
    Serial,
    /// Split into at most this many chunks (0 is treated as 1).
    Threads(usize),
}

impl Par {
    /// Full kernel-layer width.
    pub fn pool() -> Self {
        Par::Pool
    }

    /// Single-chunk, calling-thread execution.
    pub fn serial() -> Self {
        Par::Serial
    }

    /// At most `n` chunks — what a trailing `threads: usize` used to mean.
    pub fn threads(n: usize) -> Self {
        Par::Threads(n)
    }

    /// The chunk budget before workload-based clamping.
    pub fn budget(self) -> usize {
        match self {
            Par::Pool => num_threads(),
            Par::Serial => 1,
            Par::Threads(n) => n.max(1),
        }
    }

    /// The chunk count for a workload of `elems` elements: the budget
    /// capped by [`threads_for`] (so small workloads stay serial).
    pub fn chunks_for(self, elems: usize) -> usize {
        self.budget().min(threads_for(elems))
    }
}

impl From<usize> for Par {
    /// `n` chunks at most — back-compat with the old `threads: usize`
    /// kernel arguments (0 is clamped to 1, as it always was).
    fn from(n: usize) -> Par {
        Par::Threads(n)
    }
}

thread_local! {
    /// Count of top-level pool dispatches ("fan-outs") published from
    /// this thread. Nested dispatches (which run inline) and single-chunk
    /// plans (plain calls) do not count.
    static FANOUTS: Cell<u64> = const { Cell::new(0) };
}

/// The number of top-level pool fan-outs this thread has published. Take
/// a delta around a region to count its dispatches — `perf_report` uses
/// this to assert the fused optimizer step costs exactly one fan-out.
/// Thread-local, so concurrent activity elsewhere cannot skew a count.
pub fn fanout_count() -> u64 {
    FANOUTS.with(|c| c.get())
}

thread_local! {
    /// Count of mid-section dispatches this thread has published onto
    /// the parked workers of an open phased job (see
    /// [`Pool::run_phased`]). These are *not* fan-outs — the workers are
    /// already attached to the job — but tests use the counter to prove
    /// a sweep left the inline path.
    static MID_FANOUTS: Cell<u64> = const { Cell::new(0) };
}

/// The number of mid-section dispatches this thread has published onto
/// parked phase workers. Take a delta around a region to check that a
/// combine-internal sweep (e.g. the variance EMA update) really ran on
/// the pool instead of inline. Thread-local, like [`fanout_count`].
pub fn mid_fanout_count() -> u64 {
    MID_FANOUTS.with(|c| c.get())
}

thread_local! {
    /// True while this thread is executing inside a pool dispatch —
    /// either as a worker or as a publishing caller. Nested dispatches
    /// check it and run inline.
    static IN_DISPATCH: Cell<bool> = const { Cell::new(false) };
}

thread_local! {
    /// While the publisher of a phased job executes the `mid` section,
    /// this points at the job whose workers are parked at the phase
    /// barrier. A nested dispatch from the mid section publishes its
    /// task list onto those parked workers instead of running inline
    /// (see [`Pool::run_phased`]).
    static MID_HOST: Cell<Option<*const Job>> = const { Cell::new(None) };
}

/// Scoped set/restore of [`MID_HOST`]; restores on unwind too.
struct MidHostGuard {
    prev: Option<*const Job>,
}

impl MidHostGuard {
    fn enter(job: Option<*const Job>) -> MidHostGuard {
        let prev = MID_HOST.with(|c| c.replace(job));
        MidHostGuard { prev }
    }
}

impl Drop for MidHostGuard {
    fn drop(&mut self) {
        let prev = self.prev;
        MID_HOST.with(|c| c.set(prev));
    }
}

struct DispatchGuard;

impl DispatchGuard {
    fn enter() -> DispatchGuard {
        IN_DISPATCH.with(|f| f.set(true));
        DispatchGuard
    }
}

impl Drop for DispatchGuard {
    fn drop(&mut self) {
        IN_DISPATCH.with(|f| f.set(false));
    }
}

/// A task function with its borrow lifetime erased so it can sit in the
/// pool's job slot. Only dereferenced while the publisher is blocked in
/// the same dispatch, which keeps the closure alive.
type RawTask = *const (dyn Fn(usize) + Sync);

fn erase<'a>(f: &'a (dyn Fn(usize) + Sync + 'a)) -> RawTask {
    let p: *const (dyn Fn(usize) + Sync + 'a) = f;
    // A fat pointer's layout does not depend on its lifetime bound; this
    // only forgets the borrow, which `Job`'s completion barrier restores
    // the meaning of (no deref after the publisher unblocks).
    unsafe { std::mem::transmute::<*const (dyn Fn(usize) + Sync + 'a), RawTask>(p) }
}

/// One published dispatch: up to two phases of indexed tasks with a
/// caller-side critical section between them (see [`Pool::run_phased`]).
struct Job {
    f1: RawTask,
    n1: usize,
    f2: RawTask,
    n2: usize,
    /// Next unclaimed task index per phase. Claiming is lock-free; a
    /// claim at or past the phase length means "no work left".
    next1: AtomicUsize,
    next2: AtomicUsize,
    sync: Mutex<Progress>,
    cv: Condvar,
}

/// A task list the publisher hands to the workers parked at the phase
/// barrier, from inside the mid section. The closure lives on the
/// publisher's stack; the publisher blocks in [`Job::run_mid`] until
/// every index completed, so no worker dereferences `f` after it dies
/// (a late worker's claim comes back `>= n` and it never touches `f`).
struct MidTask {
    f: RawTask,
    n: usize,
    /// Next unclaimed task index; claims at or past `n` mean "done".
    next: AtomicUsize,
}

// SAFETY: same argument as `Job` — the raw pointer is only dereferenced
// under an in-range claim, and the publisher outlives every claim.
unsafe impl Send for MidTask {}
unsafe impl Sync for MidTask {}

struct Progress {
    done1: usize,
    done2: usize,
    /// Set by the publisher once phase 1 and the mid section finished;
    /// workers park on the job condvar until then.
    phase2_open: bool,
    /// The mid-section task list currently offered to parked workers
    /// (cleared by the publisher once it drained).
    mid: Option<Arc<MidTask>>,
    /// Bumped per mid publish, so a parked worker that already drained
    /// one list does not busy-loop on it while waiting for the next.
    mid_gen: u64,
    /// Completed tasks of the current mid list.
    mid_done: usize,
    /// First panic payload from any task, rethrown by the publisher.
    panic: Option<Box<dyn Any + Send>>,
}

// SAFETY: the raw task pointers are only dereferenced by threads that
// claimed an in-range task index, and the publisher does not return (or
// unwind) before every claimed index of a phase has completed — the
// closures therefore outlive every dereference. All other state is
// atomics or mutex-protected.
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

impl Job {
    fn new(f1: RawTask, n1: usize, f2: RawTask, n2: usize) -> Job {
        Job {
            f1,
            n1,
            f2,
            n2,
            next1: AtomicUsize::new(0),
            next2: AtomicUsize::new(0),
            sync: Mutex::new(Progress {
                done1: 0,
                done2: 0,
                phase2_open: false,
                mid: None,
                mid_gen: 0,
                mid_done: 0,
                panic: None,
            }),
            cv: Condvar::new(),
        }
    }

    /// Claims and runs tasks of one phase until none remain. Panics are
    /// caught into `Progress::panic`; completion counts always advance,
    /// so barriers cannot hang on a panicking task.
    fn run_tasks(&self, phase2: bool) {
        let (next, n, f) = if phase2 {
            (&self.next2, self.n2, self.f2)
        } else {
            (&self.next1, self.n1, self.f1)
        };
        loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                return;
            }
            // SAFETY: `i < n`, so the publisher is still blocked in this
            // dispatch and the closure is alive (see `Job`'s safety note).
            let task = unsafe { &*f };
            let result = catch_unwind(AssertUnwindSafe(|| task(i)));
            let mut g = self.sync.lock().expect("pool job lock");
            if let Err(p) = result {
                g.panic.get_or_insert(p);
            }
            if phase2 {
                g.done2 += 1;
            } else {
                g.done1 += 1;
            }
            drop(g);
            self.cv.notify_all();
        }
    }

    /// Worker-side entry: help with phase 1, park at the phase barrier —
    /// executing any task lists the publisher's mid section hands over —
    /// then help with phase 2. Returns quickly on jobs that are already
    /// finished (a worker can pick a completed job out of the slot:
    /// `phase2_open` was set before its publisher left).
    fn assist(&self) {
        self.run_tasks(false);
        let mut seen_mid = 0u64;
        let mut g = self.sync.lock().expect("pool job lock");
        while !g.phase2_open {
            if g.mid_gen != seen_mid {
                if let Some(mt) = g.mid.clone() {
                    seen_mid = g.mid_gen;
                    drop(g);
                    self.run_mid_tasks(&mt);
                    g = self.sync.lock().expect("pool job lock");
                    continue;
                }
                seen_mid = g.mid_gen;
            }
            g = self.cv.wait(g).expect("pool job lock");
        }
        drop(g);
        self.run_tasks(true);
    }

    /// Claims and runs tasks of a mid list until none remain. Mirrors
    /// [`Job::run_tasks`]: panics are caught into `Progress::panic` and
    /// the completion count always advances.
    fn run_mid_tasks(&self, mt: &MidTask) {
        loop {
            let i = mt.next.fetch_add(1, Ordering::Relaxed);
            if i >= mt.n {
                return;
            }
            // SAFETY: `i < mt.n`, so the publisher is still blocked in
            // `run_mid` and the closure is alive.
            let task = unsafe { &*mt.f };
            let result = catch_unwind(AssertUnwindSafe(|| task(i)));
            let mut g = self.sync.lock().expect("pool job lock");
            if let Err(p) = result {
                g.panic.get_or_insert(p);
            }
            g.mid_done += 1;
            drop(g);
            self.cv.notify_all();
        }
    }

    /// Publisher-side mid dispatch: offers `n` indexed calls of `f` to
    /// the workers parked at this job's phase barrier, participates in
    /// the claiming itself, and blocks until every index completed. A
    /// task panic resumes on the publisher (inside its mid section).
    ///
    /// Only called from the thread that published this job, from inside
    /// its mid section — phases 1 and 2 are quiescent the whole time.
    fn run_mid(&self, f: &(dyn Fn(usize) + Sync), n: usize) {
        let mt = Arc::new(MidTask {
            f: erase(f),
            n,
            next: AtomicUsize::new(0),
        });
        {
            let mut g = self.sync.lock().expect("pool job lock");
            g.mid = Some(Arc::clone(&mt));
            g.mid_gen += 1;
            g.mid_done = 0;
        }
        self.cv.notify_all();
        self.run_mid_tasks(&mt);
        let mut g = self.sync.lock().expect("pool job lock");
        while g.mid_done < n {
            g = self.cv.wait(g).expect("pool job lock");
        }
        g.mid = None;
        let panic = g.panic.take();
        drop(g);
        if let Some(p) = panic {
            resume_unwind(p);
        }
    }

    /// Blocks until all tasks of the phase completed (panicked tasks
    /// count as completed; the payload is picked up separately).
    fn wait_done(&self, phase2: bool) {
        let n = if phase2 { self.n2 } else { self.n1 };
        let mut g = self.sync.lock().expect("pool job lock");
        while (if phase2 { g.done2 } else { g.done1 }) < n {
            g = self.cv.wait(g).expect("pool job lock");
        }
    }

    /// Releases workers into phase 2. With `skip`, phase-2 tasks are
    /// abandoned first (claim counter exhausted) so workers drain and
    /// exit without touching `f2` — the publisher is about to unwind.
    fn open_phase2(&self, skip: bool) {
        if skip {
            self.next2.store(self.n2, Ordering::Relaxed);
        }
        let mut g = self.sync.lock().expect("pool job lock");
        g.phase2_open = true;
        drop(g);
        self.cv.notify_all();
    }

    fn take_panic(&self) -> Option<Box<dyn Any + Send>> {
        self.sync.lock().expect("pool job lock").panic.take()
    }
}

struct SlotState {
    /// Bumped on every publish; workers re-check the slot when it moves.
    generation: u64,
    job: Option<Arc<Job>>,
    shutdown: bool,
}

struct PoolShared {
    slot: Mutex<SlotState>,
    cv: Condvar,
}

/// A set of persistent worker threads that kernel fan-outs dispatch onto.
///
/// Almost all code wants [`Pool::global`]; private pools exist so tests
/// can pin behavior at specific worker counts. The publishing thread
/// always participates in its own job — a pool with zero workers is
/// valid and simply runs everything inline.
///
/// Publishing is a single shared job slot: each dispatch overwrites it
/// and wakes the workers, which claim task indices from an atomic
/// counter. Because the publisher drives its own job to completion, a
/// job bumped out of the slot by a concurrent publisher merely loses
/// helpers — progress never depends on workers seeing any particular
/// job, so concurrent dispatches from independent threads are safe (if
/// rare: the main trainers publish from one thread).
pub struct Pool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
}

impl Pool {
    /// A private pool with exactly `workers` worker threads (plus the
    /// caller, at dispatch time). Dropping it shuts the workers down.
    pub fn new(workers: usize) -> Pool {
        let shared = Arc::new(PoolShared {
            slot: Mutex::new(SlotState {
                generation: 0,
                job: None,
                shutdown: false,
            }),
            cv: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("yf-pool-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("pool: spawning worker thread")
            })
            .collect();
        Pool {
            shared,
            workers: handles,
        }
    }

    /// The process-wide pool: `num_threads() - 1` workers, spawned on
    /// first use, pinned until process exit.
    pub fn global() -> &'static Pool {
        static GLOBAL: OnceLock<Pool> = OnceLock::new();
        GLOBAL.get_or_init(|| Pool::new(num_threads().saturating_sub(1)))
    }

    /// Number of worker threads (the caller lane is not counted).
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Fans `tasks` indexed calls of `f` out over the pool and the
    /// calling thread, returning when all completed. One task (or a
    /// nested dispatch) runs inline. If a task panics, the pool survives
    /// and the panic resumes on this thread after the barrier.
    pub fn run<F>(&self, tasks: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        self.run_phased(tasks, f, || (), 0, |_| {});
    }

    /// One dispatch, two task phases, with a caller-side critical
    /// section between them: runs `f1(0..n1)` across the pool, then
    /// `mid()` exactly once on the calling thread after *all* phase-1
    /// tasks completed, then `f2(0..n2)` across the pool. Workers stay
    /// parked on the job between the phases — the whole thing is a
    /// single fan-out, which is what lets a sharded optimizer step run
    /// measure → combine → apply without a second spawn round.
    ///
    /// `mid` may freely mutate state the phase closures borrow shared
    /// (via locks/interior mutability): the phase barrier guarantees no
    /// task is executing while it runs.
    ///
    /// A dispatch published *from inside* `mid` (a kernel the combine
    /// step calls, say) does not run inline like other nested dispatches:
    /// its task list is handed to the workers parked at the phase
    /// barrier, so combine-internal sweeps parallelize while the whole
    /// step still costs one fan-out. The chunk plan — not who executes
    /// it — determines results, so this is bitwise identical to the
    /// inline path. [`mid_fanout_count`] counts these hand-offs.
    ///
    /// Panic semantics match scoped threads: a phase-1 (or `mid`) panic
    /// skips everything after it and resumes on the caller; phase-2
    /// panics resume after the final barrier. The pool always survives.
    pub fn run_phased<R, F1, M, F2>(&self, n1: usize, f1: F1, mid: M, n2: usize, f2: F2) -> R
    where
        F1: Fn(usize) + Sync,
        M: FnOnce() -> R,
        F2: Fn(usize) + Sync,
    {
        let inline = |f1: &F1, mid: M, f2: &F2| {
            for i in 0..n1 {
                f1(i);
            }
            let r = mid();
            for i in 0..n2 {
                f2(i);
            }
            r
        };
        if IN_DISPATCH.with(|f| f.get()) {
            if n1 + n2 > 1 {
                if let Some(host) = MID_HOST.with(|c| c.get()) {
                    // Published from a mid section: hand the task lists
                    // to the workers parked at the host job's barrier.
                    // SAFETY: MID_HOST is only set on the publisher
                    // thread while it is inside `mid`, so the host job
                    // is alive and its phases are quiescent.
                    let host = unsafe { &*host };
                    return run_phased_on_mid_host(host, n1, &f1, mid, n2, &f2);
                }
            }
            // Nested dispatch: bitwise identical inline (the chunk plan,
            // not the execution, determines results), and it keeps an
            // optimizer step at exactly one fan-out.
            return inline(&f1, mid, &f2);
        }
        if n1 + n2 <= 1 {
            // A plain call, not a fan-out.
            return inline(&f1, mid, &f2);
        }
        let _guard = DispatchGuard::enter();
        // Count the logical fan-out even on a worker-less pool (1-core
        // machines still measure "one dispatch per step" honestly).
        FANOUTS.with(|c| c.set(c.get() + 1));
        if self.workers.is_empty() {
            return inline(&f1, mid, &f2);
        }
        let job = Arc::new(Job::new(erase(&f1), n1, erase(&f2), n2));
        {
            let mut slot = self.shared.slot.lock().expect("pool slot lock");
            slot.generation += 1;
            slot.job = Some(Arc::clone(&job));
        }
        self.shared.cv.notify_all();
        job.run_tasks(false);
        job.wait_done(false);
        if let Some(p) = job.take_panic() {
            job.open_phase2(true);
            resume_unwind(p);
        }
        let r = {
            let job = &job;
            match catch_unwind(AssertUnwindSafe(|| {
                let _mid = MidHostGuard::enter(Some(Arc::as_ptr(job)));
                mid()
            })) {
                Ok(r) => r,
                Err(p) => {
                    job.open_phase2(true);
                    resume_unwind(p);
                }
            }
        };
        job.open_phase2(false);
        job.run_tasks(true);
        job.wait_done(true);
        if let Some(p) = job.take_panic() {
            resume_unwind(p);
        }
        r
    }

    /// Splits `data` into contiguous chunks of whole `unit`-element rows
    /// per the `par` budget and runs `f(first_row, chunk)` on every chunk
    /// across the pool. With a single-chunk plan this is a plain call, so
    /// serial use has zero overhead.
    ///
    /// `data.len()` must be a multiple of `unit`.
    ///
    /// # Panics
    ///
    /// Panics if `unit == 0` or `data.len()` is not a multiple of `unit`.
    pub fn chunks_mut<T, F>(&self, data: &mut [T], unit: usize, par: impl Into<Par>, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        assert!(unit > 0, "chunks_mut: unit must be positive");
        assert_eq!(
            data.len() % unit,
            0,
            "chunks_mut: data length {} is not a multiple of unit {unit}",
            data.len()
        );
        if data.is_empty() {
            return;
        }
        let rows = data.len() / unit;
        let chunks = par.into().budget().clamp(1, rows);
        if chunks <= 1 {
            f(0, data);
            return;
        }
        let rows_per_chunk = chunk_rows(rows, chunks);
        type Slot<'s, T> = Mutex<Option<(usize, &'s mut [T])>>;
        let mut slots: Vec<Slot<'_, T>> = Vec::with_capacity(chunks);
        let mut rest = data;
        let mut row = 0;
        while !rest.is_empty() {
            let take = (rows_per_chunk * unit).min(rest.len());
            let (chunk, tail) = rest.split_at_mut(take);
            slots.push(Mutex::new(Some((row, chunk))));
            row += take / unit;
            rest = tail;
        }
        self.run(slots.len(), |i| {
            let (first_row, chunk) = slots[i]
                .lock()
                .expect("pool chunk slot")
                .take()
                .expect("pool chunk claimed twice");
            f(first_row, chunk);
        });
    }

    /// Like [`Pool::chunks_mut`] but splits **two** buffers by the same
    /// row partition: row `r` of `a` is `unit_a` elements, row `r` of `b`
    /// is `unit_b` elements, and `f(first_row, a_chunk, b_chunk)` receives
    /// the matching chunks. This is what reduction kernels that produce
    /// paired outputs (values + indices, means + inverse stds) fan out on.
    ///
    /// # Panics
    ///
    /// Panics if either unit is zero, either length is not a multiple of
    /// its unit, or the row counts disagree.
    pub fn chunks_mut2<A, B, F>(
        &self,
        a: &mut [A],
        unit_a: usize,
        b: &mut [B],
        unit_b: usize,
        par: impl Into<Par>,
        f: F,
    ) where
        A: Send,
        B: Send,
        F: Fn(usize, &mut [A], &mut [B]) + Sync,
    {
        assert!(
            unit_a > 0 && unit_b > 0,
            "chunks_mut2: units must be positive"
        );
        assert_eq!(
            a.len() % unit_a,
            0,
            "chunks_mut2: a length {} vs unit {unit_a}",
            a.len()
        );
        assert_eq!(
            b.len() % unit_b,
            0,
            "chunks_mut2: b length {} vs unit {unit_b}",
            b.len()
        );
        let rows = a.len() / unit_a;
        assert_eq!(rows, b.len() / unit_b, "chunks_mut2: row count mismatch");
        if rows == 0 {
            return;
        }
        let chunks = par.into().budget().clamp(1, rows);
        if chunks <= 1 {
            f(0, a, b);
            return;
        }
        let rows_per_chunk = chunk_rows(rows, chunks);
        type Slot2<'s, A, B> = Mutex<Option<(usize, &'s mut [A], &'s mut [B])>>;
        let mut slots: Vec<Slot2<'_, A, B>> = Vec::with_capacity(chunks);
        let (mut rest_a, mut rest_b) = (a, b);
        let mut row = 0;
        while !rest_a.is_empty() {
            let take_rows = rows_per_chunk.min(rest_a.len() / unit_a);
            let (chunk_a, tail_a) = rest_a.split_at_mut(take_rows * unit_a);
            let (chunk_b, tail_b) = rest_b.split_at_mut(take_rows * unit_b);
            slots.push(Mutex::new(Some((row, chunk_a, chunk_b))));
            row += take_rows;
            rest_a = tail_a;
            rest_b = tail_b;
        }
        self.run(slots.len(), |i| {
            let (first_row, chunk_a, chunk_b) = slots[i]
                .lock()
                .expect("pool chunk slot")
                .take()
                .expect("pool chunk claimed twice");
            f(first_row, chunk_a, chunk_b);
        });
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut slot = self.shared.slot.lock().expect("pool slot lock");
            slot.shutdown = true;
        }
        self.shared.cv.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("workers", &self.workers.len())
            .finish()
    }
}

/// A nested `run_phased` published from inside a host job's mid section:
/// each task phase becomes a mid task list executed by the workers parked
/// at the host's phase barrier (the publisher participates), with the
/// nested mid section running inline between them. `MID_HOST` is cleared
/// for the duration, so anything *these* tasks dispatch runs inline — the
/// parked workers are already occupied.
fn run_phased_on_mid_host<R, F1, M, F2>(
    host: &Job,
    n1: usize,
    f1: &F1,
    mid: M,
    n2: usize,
    f2: &F2,
) -> R
where
    F1: Fn(usize) + Sync,
    M: FnOnce() -> R,
    F2: Fn(usize) + Sync,
{
    let _guard = MidHostGuard::enter(None);
    if n1 > 1 {
        MID_FANOUTS.with(|c| c.set(c.get() + 1));
        host.run_mid(f1, n1);
    } else {
        for i in 0..n1 {
            f1(i);
        }
    }
    let r = mid();
    if n2 > 1 {
        MID_FANOUTS.with(|c| c.set(c.get() + 1));
        host.run_mid(f2, n2);
    } else {
        for i in 0..n2 {
            f2(i);
        }
    }
    r
}

fn worker_loop(shared: &PoolShared) {
    // A worker is permanently "inside a dispatch": anything a task calls
    // that would fan out runs inline on this thread instead.
    IN_DISPATCH.with(|f| f.set(true));
    let mut seen = 0u64;
    loop {
        let job = {
            let mut slot = shared.slot.lock().expect("pool slot lock");
            loop {
                if slot.shutdown {
                    return;
                }
                if slot.generation != seen {
                    seen = slot.generation;
                    break slot.job.clone();
                }
                slot = shared.cv.wait(slot).expect("pool slot lock");
            }
        };
        if let Some(job) = job {
            job.assist();
        }
    }
}

/// Rows per chunk that [`chunks_mut`] hands each worker for a `rows`-row
/// workload at a `threads`-chunk budget. Exposed so callers can
/// pre-provision per-chunk state (chunk index = `first_row / chunk_rows`).
///
/// # Panics
///
/// Panics if `rows == 0`.
pub fn chunk_rows(rows: usize, threads: usize) -> usize {
    assert!(rows > 0, "chunk_rows: no rows");
    rows.div_ceil(threads.clamp(1, rows))
}

/// [`Pool::chunks_mut`] on the global pool — the way kernels fan row
/// ranges of an output buffer out.
pub fn chunks_mut<T, F>(data: &mut [T], unit: usize, par: impl Into<Par>, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    Pool::global().chunks_mut(data, unit, par, f);
}

/// [`Pool::chunks_mut2`] on the global pool.
pub fn chunks_mut2<A, B, F>(
    a: &mut [A],
    unit_a: usize,
    b: &mut [B],
    unit_b: usize,
    par: impl Into<Par>,
    f: F,
) where
    A: Send,
    B: Send,
    F: Fn(usize, &mut [A], &mut [B]) + Sync,
{
    Pool::global().chunks_mut2(a, unit_a, b, unit_b, par, f);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn covers_all_rows_once() {
        for threads in [1, 2, 3, 7, 64] {
            let mut data = vec![0u32; 10 * 3];
            chunks_mut(&mut data, 3, threads, |first_row, chunk| {
                for (r, row) in chunk.chunks_mut(3).enumerate() {
                    for v in row {
                        *v += (first_row + r) as u32 + 1;
                    }
                }
            });
            let expect: Vec<u32> = (0..10u32).flat_map(|r| [r + 1; 3]).collect();
            assert_eq!(data, expect, "threads = {threads}");
        }
    }

    #[test]
    fn empty_input_is_a_noop() {
        let mut data: Vec<f32> = Vec::new();
        chunks_mut(&mut data, 4, 8, |_, _| panic!("no chunks expected"));
    }

    #[test]
    fn num_threads_is_positive_and_stable() {
        assert!(num_threads() >= 1);
        // Cached: the same value on every call.
        assert_eq!(num_threads(), num_threads());
    }

    #[test]
    fn threads_for_scales_with_work() {
        assert_eq!(threads_for(0), 1);
        assert_eq!(threads_for(MIN_PAR_ELEMS - 1), 1);
        assert!(threads_for(2 * MIN_PAR_ELEMS) >= 1);
        assert!(threads_for(usize::MAX / 2) <= num_threads());
    }

    #[test]
    fn paired_chunks_stay_aligned() {
        for threads in [1, 2, 5, 16] {
            let mut vals = vec![0u32; 7 * 4];
            let mut tags = vec![0u32; 7];
            chunks_mut2(&mut vals, 4, &mut tags, 1, threads, |first, va, tb| {
                assert_eq!(va.len() / 4, tb.len());
                for (r, (row, tag)) in va.chunks_mut(4).zip(tb.iter_mut()).enumerate() {
                    let id = (first + r) as u32;
                    row.fill(id);
                    *tag = id;
                }
            });
            let want_vals: Vec<u32> = (0..7u32).flat_map(|r| [r; 4]).collect();
            let want_tags: Vec<u32> = (0..7).collect();
            assert_eq!(vals, want_vals, "threads = {threads}");
            assert_eq!(tags, want_tags, "threads = {threads}");
        }
    }

    #[test]
    #[should_panic(expected = "row count mismatch")]
    fn paired_chunks_reject_ragged_rows() {
        let mut a = vec![0f32; 8];
        let mut b = vec![0f32; 3];
        chunks_mut2(&mut a, 2, &mut b, 1, 2, |_, _, _| {});
    }

    #[test]
    fn par_from_usize_keeps_threads_semantics() {
        assert_eq!(Par::from(0).budget(), 1);
        assert_eq!(Par::from(3).budget(), 3);
        assert_eq!(Par::serial().budget(), 1);
        assert_eq!(Par::pool().budget(), num_threads());
        assert_eq!(Par::threads(5), Par::Threads(5));
        // chunks_for clamps to the workload-derived width.
        assert_eq!(Par::threads(64).chunks_for(10), 1);
    }

    #[test]
    fn private_pool_runs_all_tasks() {
        for workers in [0, 1, 3] {
            let pool = Pool::new(workers);
            let hits: Vec<AtomicUsize> = (0..10).map(|_| AtomicUsize::new(0)).collect();
            pool.run(10, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            for (i, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::Relaxed), 1, "task {i}, workers {workers}");
            }
        }
    }

    #[test]
    fn run_phased_orders_mid_between_phases() {
        let pool = Pool::new(2);
        let n = 8;
        let stage = Mutex::new(vec![0u8; n]);
        let out = pool.run_phased(
            n,
            |i| stage.lock().unwrap()[i] = 1,
            || {
                let s = stage.lock().unwrap();
                assert!(s.iter().all(|&v| v == 1), "mid saw incomplete phase 1");
                42
            },
            n,
            |i| {
                let mut s = stage.lock().unwrap();
                assert_eq!(s[i], 1);
                s[i] = 2;
            },
        );
        assert_eq!(out, 42);
        assert!(stage.lock().unwrap().iter().all(|&v| v == 2));
    }

    /// The scoped-thread reference the pool replaced: same chunk plan,
    /// one `std::thread::scope` spawn per chunk.
    fn scoped_reference(
        data: &mut [f32],
        unit: usize,
        budget: usize,
        f: impl Fn(usize, &mut [f32]) + Sync,
    ) {
        let rows = data.len() / unit;
        if rows == 0 {
            return;
        }
        let per = chunk_rows(rows, budget.clamp(1, rows));
        std::thread::scope(|scope| {
            let mut rest = data;
            let mut first = 0;
            while !rest.is_empty() {
                let take = (per * unit).min(rest.len());
                let (chunk, tail) = rest.split_at_mut(take);
                rest = tail;
                let start = first;
                let f = &f;
                scope.spawn(move || f(start, chunk));
                first += take / unit;
            }
        });
    }

    #[test]
    fn pool_matches_scoped_threads_bitwise() {
        // The determinism contract: results depend on the chunk plan,
        // never on who executes it. A float kernel with order-sensitive
        // accumulation per row must agree bit-for-bit between the pool
        // (any worker count) and plain scoped threads.
        let kernel = |first: usize, chunk: &mut [f32]| {
            for (r, row) in chunk.chunks_mut(4).enumerate() {
                let mut acc = 0.1f32 * (first + r) as f32;
                for (c, v) in row.iter_mut().enumerate() {
                    acc = acc * 1.000_1 + (c as f32).sin();
                    *v = acc;
                }
            }
        };
        let init: Vec<f32> = (0..33 * 4).map(|i| (i as f32 * 0.7).cos()).collect();
        for budget in [1usize, 2, 4, 7] {
            let mut want = init.clone();
            scoped_reference(&mut want, 4, budget, kernel);
            for workers in [1usize, 2, 4, 7] {
                let pool = Pool::new(workers);
                let mut got = init.clone();
                pool.chunks_mut(&mut got, 4, budget, kernel);
                assert_eq!(got, want, "workers = {workers}, budget = {budget}");
            }
        }
    }

    #[test]
    fn nested_dispatch_is_reentrant() {
        // A task running on a pool worker (or the dispatching caller) may
        // itself dispatch: the inner fan-out runs inline instead of
        // deadlocking on the occupied pool.
        let pool = Pool::new(3);
        let hits = AtomicUsize::new(0);
        pool.run(4, |_| {
            Pool::global().run(4, |_| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(hits.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        let pool = Pool::new(2);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(4, |i| {
                if i == 2 {
                    panic!("boom in task");
                }
            });
        }));
        assert!(caught.is_err(), "task panic must resume on the caller");
        // The workers are still parked and serviceable.
        let hits = AtomicUsize::new(0);
        pool.run(8, |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn phase_one_panic_skips_mid_and_phase_two() {
        let pool = Pool::new(2);
        let phase2 = AtomicUsize::new(0);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run_phased(
                4,
                |i| {
                    if i == 1 {
                        panic!("boom in phase 1");
                    }
                },
                || panic!("mid must not run after a phase-1 panic"),
                4,
                |_| {
                    phase2.fetch_add(1, Ordering::Relaxed);
                },
            )
        }));
        assert!(caught.is_err());
        assert_eq!(phase2.load(Ordering::Relaxed), 0, "phase 2 must be skipped");
        // Still serviceable afterwards.
        pool.run(2, |_| {});
    }

    #[test]
    fn mid_dispatch_runs_on_parked_workers() {
        // A dispatch published from the mid section must execute on the
        // workers parked at the phase barrier, not inline: task 0 blocks
        // until task 1 ran, which needs two threads working the list.
        let pool = Pool::new(2);
        let t1_done = std::sync::atomic::AtomicBool::new(false);
        pool.run_phased(
            2,
            |_| {},
            || {
                pool.run(2, |i| {
                    if i == 1 {
                        t1_done.store(true, Ordering::SeqCst);
                    } else {
                        for _ in 0..5000 {
                            if t1_done.load(Ordering::SeqCst) {
                                return;
                            }
                            std::thread::sleep(std::time::Duration::from_millis(1));
                        }
                        panic!("mid task 0 never saw task 1 run: mid list stayed inline");
                    }
                });
            },
            2,
            |_| {},
        );
    }

    #[test]
    fn mid_dispatch_matches_top_level_bitwise() {
        // Order-sensitive per-chunk accumulation: the mid-hosted sweep
        // must agree bit-for-bit with the same chunk plan dispatched
        // top-level (chunk plans, not executors, determine results).
        let kernel = |first: usize, chunk: &mut [f32]| {
            for (r, row) in chunk.chunks_mut(4).enumerate() {
                let mut acc = 0.3f32 * (first + r) as f32;
                for (c, v) in row.iter_mut().enumerate() {
                    acc = acc * 1.000_3 + (c as f32).cos();
                    *v = acc;
                }
            }
        };
        let init: Vec<f32> = (0..29 * 4).map(|i| (i as f32 * 0.9).sin()).collect();
        let pool = Pool::new(3);
        let mut want = init.clone();
        pool.chunks_mut(&mut want, 4, 4, kernel);
        let mut got = init.clone();
        pool.run_phased(
            2,
            |_| {},
            || pool.chunks_mut(&mut got, 4, 4, kernel),
            0,
            |_| {},
        );
        assert_eq!(got, want);
    }

    #[test]
    fn mid_dispatch_panic_resumes_on_caller() {
        let pool = Pool::new(2);
        let phase2 = AtomicUsize::new(0);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run_phased(
                2,
                |_| {},
                || {
                    pool.run(4, |i| {
                        if i == 2 {
                            panic!("boom in mid task");
                        }
                    });
                },
                4,
                |_| {
                    phase2.fetch_add(1, Ordering::Relaxed);
                },
            )
        }));
        assert!(caught.is_err(), "mid-task panic must resume on the caller");
        assert_eq!(phase2.load(Ordering::Relaxed), 0, "phase 2 must be skipped");
        // The workers are parked and serviceable again.
        let hits = AtomicUsize::new(0);
        pool.run(8, |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn mid_dispatch_is_not_a_fanout_but_is_counted() {
        let pool = Pool::new(2);
        let fanouts = fanout_count();
        let mids = mid_fanout_count();
        pool.run_phased(
            2,
            |_| {},
            || {
                let mut data = vec![0f32; 8];
                pool.chunks_mut(&mut data, 1, 4, |_, c| c.fill(1.0));
                assert!(data.iter().all(|&v| v == 1.0));
            },
            2,
            |_| {},
        );
        assert_eq!(fanout_count(), fanouts + 1, "still exactly one fan-out");
        assert_eq!(
            mid_fanout_count(),
            mids + 1,
            "the sweep left the inline path"
        );
    }

    #[test]
    fn dispatch_inside_a_mid_task_runs_inline() {
        // The parked workers are occupied by the mid list itself, so a
        // dispatch from inside one of its tasks must fall back to the
        // inline path rather than deadlock.
        let pool = Pool::new(2);
        let hits = AtomicUsize::new(0);
        pool.run_phased(
            2,
            |_| {},
            || {
                pool.run(3, |_| {
                    pool.run(3, |_| {
                        hits.fetch_add(1, Ordering::Relaxed);
                    });
                });
            },
            0,
            |_| {},
        );
        assert_eq!(hits.load(Ordering::Relaxed), 9);
    }

    #[test]
    fn fanout_counter_counts_top_level_dispatches_only() {
        let before = fanout_count();
        let mut data = vec![0f32; 64];
        // Single-chunk plan: a plain call, no fan-out.
        chunks_mut(&mut data, 1, 1, |_, c| c.fill(1.0));
        assert_eq!(fanout_count(), before);
        // Multi-chunk plan: exactly one fan-out, even though the inner
        // dispatch nests.
        chunks_mut(&mut data, 1, 4, |_, c| {
            chunks_mut(c, 1, 4, |_, cc| cc.iter_mut().for_each(|v| *v += 1.0));
        });
        assert_eq!(fanout_count(), before + 1);
        assert!(data.iter().all(|&v| v == 2.0));
    }
}
