//! Scoped-thread work partitioning for the kernel layer.
//!
//! The build environment is offline, so there is no rayon: this module is
//! the minimal std-only substitute the compute kernels share. Work is
//! always split into *contiguous, disjoint* chunks of an output buffer, so
//! no synchronization beyond [`std::thread::scope`]'s join is ever needed.
//!
//! The thread count comes from `YF_NUM_THREADS` when set (any positive
//! integer), else from [`std::thread::available_parallelism`]. Kernels that
//! want explicit control (e.g. the property tests that compare 1-thread and
//! N-thread results) take a thread count parameter instead of calling
//! [`num_threads`] themselves.

/// The kernel-layer thread count: `YF_NUM_THREADS` if set and positive,
/// otherwise the machine's available parallelism (1 if unknown).
pub fn num_threads() -> usize {
    std::env::var("YF_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Rows per chunk that [`scoped_chunks_mut`] hands each worker for a
/// `rows`-row workload at `threads` threads. Exposed so callers can
/// pre-provision per-chunk state (chunk index = `first_row / chunk_rows`).
///
/// # Panics
///
/// Panics if `rows == 0`.
pub fn chunk_rows(rows: usize, threads: usize) -> usize {
    assert!(rows > 0, "chunk_rows: no rows");
    rows.div_ceil(threads.clamp(1, rows))
}

/// Splits `data` into at most `threads` contiguous chunks, each a whole
/// number of `unit`-element rows, and runs `f(first_row, chunk)` on every
/// chunk — on scoped worker threads when more than one chunk results, with
/// the final chunk processed on the calling thread.
///
/// `data.len()` must be a multiple of `unit`. With `threads <= 1` (or a
/// single row) this is a plain function call, so single-threaded use has
/// zero overhead.
///
/// # Panics
///
/// Panics if `unit == 0` or `data.len()` is not a multiple of `unit`.
pub fn scoped_chunks_mut<T, F>(data: &mut [T], unit: usize, threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(unit > 0, "scoped_chunks_mut: unit must be positive");
    assert_eq!(
        data.len() % unit,
        0,
        "scoped_chunks_mut: data length {} is not a multiple of unit {unit}",
        data.len()
    );
    if data.is_empty() {
        return;
    }
    let rows = data.len() / unit;
    let threads = threads.clamp(1, rows);
    if threads <= 1 {
        f(0, data);
        return;
    }
    let rows_per_chunk = chunk_rows(rows, threads);
    std::thread::scope(|scope| {
        let f = &f;
        let mut rest = data;
        let mut row = 0;
        while !rest.is_empty() {
            let take = (rows_per_chunk * unit).min(rest.len());
            let (chunk, tail) = rest.split_at_mut(take);
            let first_row = row;
            row += take / unit;
            rest = tail;
            if row == rows {
                f(first_row, chunk);
            } else {
                scope.spawn(move || f(first_row, chunk));
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_all_rows_once() {
        for threads in [1, 2, 3, 7, 64] {
            let mut data = vec![0u32; 10 * 3];
            scoped_chunks_mut(&mut data, 3, threads, |first_row, chunk| {
                for (r, row) in chunk.chunks_mut(3).enumerate() {
                    for v in row {
                        *v += (first_row + r) as u32 + 1;
                    }
                }
            });
            let expect: Vec<u32> = (0..10u32).flat_map(|r| [r + 1; 3]).collect();
            assert_eq!(data, expect, "threads = {threads}");
        }
    }

    #[test]
    fn empty_input_is_a_noop() {
        let mut data: Vec<f32> = Vec::new();
        scoped_chunks_mut(&mut data, 4, 8, |_, _| panic!("no chunks expected"));
    }

    #[test]
    fn num_threads_is_positive() {
        assert!(num_threads() >= 1);
    }
}
