//! Cache-blocked, panel-packed f32 GEMM — the workhorse under `matmul`
//! and the im2col convolution lowering.
//!
//! The design is the classic three-loop blocking scheme (Goto/BLIS):
//! `C = op(A)·op(B) + beta·C` is computed panel by panel. The K dimension
//! is split into `kc`-deep slabs, B slabs are packed into `NR`-wide
//! column strips and A slabs into `MR`-tall row strips, and an `MR x NR`
//! register-tiled micro-kernel runs down the packed panels with
//! perfect-stride loads. Packing also absorbs both transpose variants, so
//! [`Tensor::matmul_nt`](crate::Tensor::matmul_nt) and
//! [`Tensor::matmul_tn`](crate::Tensor::matmul_tn) never materialize a
//! transposed matrix.
//!
//! The `mc`/`kc`/`nc` block extents are no longer compile-time constants:
//! they are derived at first use from the machine's detected L1/L2
//! data-cache sizes (`/sys/devices/system/cpu/cpu0/cache`, with safe
//! fallbacks off-Linux): one A strip plus one B strip stay L1-resident,
//! and both the packed A block and the packed B panel target half of L2
//! — L2-resident panels beat the classic L3-sized ones for the skinny
//! GEMMs the conv lowering produces. `YF_GEMM_BLOCKS=mc,kc,nc` overrides the derivation for
//! experiments, and [`gemm_with_blocks`] takes explicit extents (the
//! blocking tests use tiny ones to exercise every panel loop).
//!
//! B operands can be *virtual*: [`gemm_custom_b`] takes a
//! [`PackBPanel`] implementation instead of a slice, and calls it to
//! fill each packed panel on demand. This is how the batch-fused im2col
//! convolution feeds the GEMM directly from the input image — the column
//! matrix is packed straight into panels and never materialized.
//!
//! Three micro-kernels are compiled and selected at runtime on x86-64:
//! an AVX-512 kernel (6x32 tile), an AVX2+FMA kernel (6x16), and a
//! portable safe-Rust kernel (6x16) that is also the only kernel on other
//! architectures. The binary stays runnable on any x86-64 machine; fast
//! paths light up where the CPU supports them.
//!
//! Multi-threading splits the rows of `C` into contiguous blocks, one per
//! thread, via [`parallel::chunks_mut`]; each B panel is packed
//! once by the calling thread and shared read-only, and every worker owns
//! a pooled A buffer (wrapped in a never-contended `Mutex` purely for the
//! borrow checker). The thread count defaults to
//! [`parallel::num_threads`] (`YF_NUM_THREADS` overrides it), and
//! [`gemm_with_threads`] takes an explicit count.
//!
//! Packing panels come from the thread-local [`Scratch`] pool, so a
//! steady-state training loop performs no per-call heap allocation here.

use crate::elementwise::{copy_short, zero_short};
use crate::parallel;
use crate::scratch::Scratch;

/// Rows of the micro-kernel register tile.
const MR: usize = 6;

/// Cache-blocking extents: `mc` rows of A packed per block, `kc` K levels
/// per slab, `nc` columns of B packed per panel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Blocks {
    /// Row-block height packed per A block (rounded to the `6`-row tile).
    pub mc: usize,
    /// K-dimension slab depth (one packed strip holds `kc` levels).
    pub kc: usize,
    /// Column-block width packed per B panel.
    pub nc: usize,
}

/// Parses a `"mc,kc,nc"` spec (the `YF_GEMM_BLOCKS` format).
fn parse_blocks_spec(spec: &str) -> Option<Blocks> {
    let mut it = spec.split(',').map(|p| p.trim().parse::<usize>().ok());
    let (mc, kc, nc) = (it.next()??, it.next()??, it.next()??);
    if it.next().is_some() || mc == 0 || kc == 0 || nc == 0 {
        return None;
    }
    Some(Blocks { mc, kc, nc })
}

/// Parses a sysfs cache size string like `"48K"`, `"2048K"`, or `"36M"`.
fn parse_cache_size(s: &str) -> Option<usize> {
    let s = s.trim();
    let (digits, mult) = match s.as_bytes().last()? {
        b'K' | b'k' => (&s[..s.len() - 1], 1024),
        b'M' | b'm' => (&s[..s.len() - 1], 1024 * 1024),
        b'G' | b'g' => (&s[..s.len() - 1], 1024 * 1024 * 1024),
        _ => (s, 1),
    };
    digits.parse::<usize>().ok().map(|v| v * mult)
}

/// Detected (L1d, L2, L3) data-cache sizes in bytes (memoized), with
/// conservative fallbacks (32 KiB / 1 MiB / 8 MiB) where detection
/// fails. Public so cache-blocking decisions outside the GEMM (e.g. the
/// conv backward-input batch chunking) agree with the GEMM's own.
pub fn cache_sizes() -> (usize, usize, usize) {
    use std::sync::OnceLock;
    static SIZES: OnceLock<(usize, usize, usize)> = OnceLock::new();
    *SIZES.get_or_init(detected_cache_sizes)
}

fn detected_cache_sizes() -> (usize, usize, usize) {
    let mut levels: [Option<usize>; 4] = [None; 4];
    for i in 0..8 {
        let base = format!("/sys/devices/system/cpu/cpu0/cache/index{i}");
        let Ok(ty) = std::fs::read_to_string(format!("{base}/type")) else {
            continue;
        };
        if !matches!(ty.trim(), "Data" | "Unified") {
            continue;
        }
        let level = std::fs::read_to_string(format!("{base}/level"))
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok());
        let size = std::fs::read_to_string(format!("{base}/size"))
            .ok()
            .and_then(|v| parse_cache_size(&v));
        if let (Some(level @ 1..=3), Some(size)) = (level, size) {
            levels[level] = Some(levels[level].unwrap_or(0).max(size));
        }
    }
    let l1 = levels[1].unwrap_or(32 * 1024);
    let l2 = levels[2].unwrap_or(1024 * 1024);
    let l3 = levels[3].unwrap_or_else(|| (8 * 1024 * 1024).max(l2));
    (l1, l2, l3)
}

/// Derives blocking extents for an `NR`-wide micro-kernel from the cache
/// hierarchy (or from `YF_GEMM_BLOCKS` when set).
fn auto_blocks(nr: usize) -> Blocks {
    if let Some(b) = crate::env::parse_with("YF_GEMM_BLOCKS", parse_blocks_spec) {
        return b;
    }
    // L3 is plenty for any panel below; L1/L2 set the extents.
    let (l1, l2, _l3) = cache_sizes();
    let f = std::mem::size_of::<f32>();
    // One A strip (MR x kc) plus one B strip (nr x kc) must stay
    // L1-resident while the micro-kernel streams down them.
    let kc = (l1 / (f * (MR + nr))).clamp(128, 768) & !7;
    // The packed A block (mc x kc) targets half of L2.
    let mc = (l2 / (2 * f * kc)).clamp(4 * MR, 816) / MR * MR;
    // The packed B panel (kc x nc) also targets half of L2: the conv
    // lowering produces skinny GEMMs (m of a few tile rows) whose B
    // panels are re-read once per row strip, so keeping the panel
    // L2-resident beats the classic L3-sized panel by a wide margin.
    let nc = (l2 / (2 * f * kc)).clamp(nr.max(256), 8192) / nr * nr;
    Blocks { mc, kc, nc }
}

/// The blocking extents the dispatcher will use for this machine's
/// selected micro-kernel (memoized; `YF_GEMM_BLOCKS=mc,kc,nc` overrides).
pub fn blocks() -> Blocks {
    use std::sync::OnceLock;
    static B16: OnceLock<Blocks> = OnceLock::new();
    static B32: OnceLock<Blocks> = OnceLock::new();
    if detected_simd() == "avx512" {
        *B32.get_or_init(|| auto_blocks(32))
    } else {
        *B16.get_or_init(|| auto_blocks(16))
    }
}

/// A source of packed B panels for [`gemm_custom_b`].
///
/// `pack_panel` must fill `dst` with the panel covering columns
/// `col0..col0 + nc` and K levels `pc..pc + kc` of the virtual `[k, n]`
/// matrix `op(B)`, in the layout the micro-kernel consumes:
/// `nc.div_ceil(nr)` strips of `kc * nr` elements each, where strip `s`
/// holds columns `col0 + s*nr ..`, level-major inside the strip
/// (`dst[p*nr + c] = op(B)[pc + p, col0 + s*nr + c]`), zero-padded past
/// the last real column.
///
/// The GEMM driver calls it once per (panel, slab) from the coordinating
/// thread, so implementations need no internal synchronization.
pub trait PackBPanel {
    /// Fills one packed panel (see the trait docs for the layout).
    fn pack_panel(&self, dst: &mut [f32], nr: usize, col0: usize, nc: usize, pc: usize, kc: usize);
}

/// The ordinary slice-backed B operand (`trans` selects `[n, k]` storage).
struct SliceB<'a> {
    b: &'a [f32],
    trans: bool,
    ldb: usize,
}

impl PackBPanel for SliceB<'_> {
    fn pack_panel(&self, dst: &mut [f32], nr: usize, col0: usize, nc: usize, pc: usize, kc: usize) {
        for (s, strip) in dst
            .chunks_exact_mut(kc * nr)
            .take(nc.div_ceil(nr))
            .enumerate()
        {
            let j0 = col0 + s * nr;
            let cols = nr.min(col0 + nc - j0);
            if self.trans {
                // B is stored [n, k]: a column of op(B) is a contiguous
                // row. Read each row once, front to back, and scatter
                // into the strip — the transpose happens on the write
                // side, where the working set is one L1-resident strip,
                // instead of as a huge-stride gather on the read side.
                for c in 0..cols {
                    let src = &self.b[(j0 + c) * self.ldb + pc..][..kc];
                    for (p, &v) in src.iter().enumerate() {
                        strip[p * nr + c] = v;
                    }
                }
                for c in cols..nr {
                    for p in 0..kc {
                        strip[p * nr + c] = 0.0;
                    }
                }
            } else {
                // B is stored [K, N]: one K level is a contiguous slice.
                for p in 0..kc {
                    let src = &self.b[(pc + p) * self.ldb + j0..];
                    let dst = &mut strip[p * nr..(p + 1) * nr];
                    copy_short(&mut dst[..cols], &src[..cols]);
                    zero_short(&mut dst[cols..]);
                }
            }
        }
    }
}

/// `kernel(kc, a_strip, b_strip, acc)`: accumulate a tile against an
/// `MR`-strided A strip.
///
/// The `unsafe` in the type is the CPU-feature contract: callers must only
/// pass kernels whose `#[target_feature]` requirements were verified via
/// `is_x86_feature_detected!` (the portable kernels have none).
type MicroKernel<const NR: usize> = unsafe fn(usize, &[f32], &[f32], &mut [[f32; NR]; MR]);

/// One kernel per active-row bucket (2, 4, 6): the tile grid picks the
/// smallest variant covering `mr_eff`, so edge strips of a skinny GEMM
/// (the batch-fused convolutions have `m` of a few tile rows) stop
/// spending FMA throughput on zero-padded rows.
type KernelFamily<const NR: usize> = [MicroKernel<NR>; 3];

/// The family index for an `mr_eff`-row tile (`1-2 → 0`, `3-4 → 1`,
/// `5-6 → 2`).
#[inline(always)]
fn family_index(mr_eff: usize) -> usize {
    (mr_eff - 1) / 2
}

#[inline(always)]
fn kernel_body<const NR: usize, const FMA: bool, const R: usize>(
    kc: usize,
    a: &[f32],
    b: &[f32],
    acc: &mut [[f32; NR]; MR],
) {
    for (ap, bp) in a.chunks_exact(MR).zip(b.chunks_exact(NR)).take(kc) {
        let ap: &[f32; MR] = ap.try_into().unwrap();
        let bp: &[f32; NR] = bp.try_into().unwrap();
        for r in 0..R {
            let av = ap[r];
            let row = &mut acc[r];
            for c in 0..NR {
                row[c] = if FMA {
                    av.mul_add(bp[c], row[c])
                } else {
                    av * bp[c] + row[c]
                };
            }
        }
    }
}

/// Safe fallback kernels; `unsafe fn` only to match [`MicroKernel`].
unsafe fn kernel_portable<const R: usize>(
    kc: usize,
    a: &[f32],
    b: &[f32],
    acc: &mut [[f32; 16]; MR],
) {
    kernel_body::<16, false, R>(kc, a, b, acc);
}

/// AVX2+FMA `R`x16 micro-kernel: `2R` ymm accumulators (R rows x 2
/// vectors), one broadcast per A element, `vfmadd231ps` throughout.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn kernel_avx2<const R: usize>(kc: usize, a: &[f32], b: &[f32], acc: &mut [[f32; 16]; MR]) {
    use core::arch::x86_64::*;
    debug_assert!(a.len() >= kc * MR && b.len() >= kc * 16);
    let mut regs = [[_mm256_setzero_ps(); 2]; R];
    let mut pa = a.as_ptr();
    let mut pb = b.as_ptr();
    for _ in 0..kc {
        let b0 = _mm256_loadu_ps(pb);
        let b1 = _mm256_loadu_ps(pb.add(8));
        for (r, row) in regs.iter_mut().enumerate() {
            let av = _mm256_set1_ps(*pa.add(r));
            row[0] = _mm256_fmadd_ps(av, b0, row[0]);
            row[1] = _mm256_fmadd_ps(av, b1, row[1]);
        }
        pa = pa.add(MR);
        pb = pb.add(16);
    }
    for (row, out) in regs.iter().zip(acc.iter_mut()) {
        _mm256_storeu_ps(out.as_mut_ptr(), row[0]);
        _mm256_storeu_ps(out.as_mut_ptr().add(8), row[1]);
    }
}

/// AVX-512 `R`x32 micro-kernel: `2R` zmm accumulators (R rows x 2
/// vectors).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn kernel_avx512<const R: usize>(
    kc: usize,
    a: &[f32],
    b: &[f32],
    acc: &mut [[f32; 32]; MR],
) {
    use core::arch::x86_64::*;
    debug_assert!(a.len() >= kc * MR && b.len() >= kc * 32);
    let mut regs = [[_mm512_setzero_ps(); 2]; R];
    let mut pa = a.as_ptr();
    let mut pb = b.as_ptr();
    for _ in 0..kc {
        let b0 = _mm512_loadu_ps(pb);
        let b1 = _mm512_loadu_ps(pb.add(16));
        for (r, row) in regs.iter_mut().enumerate() {
            let av = _mm512_set1_ps(*pa.add(r));
            row[0] = _mm512_fmadd_ps(av, b0, row[0]);
            row[1] = _mm512_fmadd_ps(av, b1, row[1]);
        }
        pa = pa.add(MR);
        pb = pb.add(32);
    }
    for (row, out) in regs.iter().zip(acc.iter_mut()) {
        _mm512_storeu_ps(out.as_mut_ptr(), row[0]);
        _mm512_storeu_ps(out.as_mut_ptr().add(16), row[1]);
    }
}

/// Packs the A slab rows `row0..row0+mc`, K levels `pc..pc+kc` into
/// `MR`-tall strips (strip-major, K-level-major inside a strip, zero
/// padded past the last row).
#[allow(clippy::too_many_arguments)]
fn pack_a(
    out: &mut [f32],
    a: &[f32],
    trans: bool,
    lda: usize,
    row0: usize,
    mc: usize,
    pc: usize,
    kc: usize,
) {
    for (s, dst) in out
        .chunks_exact_mut(kc * MR)
        .take(mc.div_ceil(MR))
        .enumerate()
    {
        let i0 = row0 + s * MR;
        let rows = MR.min(row0 + mc - i0);
        if trans {
            // A is stored [K, M]: one K level is a contiguous row.
            for p in 0..kc {
                let src = &a[(pc + p) * lda + i0..];
                let dst = &mut dst[p * MR..p * MR + MR];
                copy_short(&mut dst[..rows], &src[..rows]);
                zero_short(&mut dst[rows..]);
            }
        } else {
            // A is stored [M, K]: a row of op(A) is contiguous. Read each
            // row front to back and scatter into the (L1-resident) strip,
            // rather than gathering with an lda-sized stride per element.
            for r in 0..rows {
                let src = &a[(i0 + r) * lda + pc..][..kc];
                for (p, &v) in src.iter().enumerate() {
                    dst[p * MR + r] = v;
                }
            }
            for r in rows..MR {
                for p in 0..kc {
                    dst[p * MR + r] = 0.0;
                }
            }
        }
    }
}

/// Writes an accumulated tile into `c` (`ldc`-strided, `c` starts at this
/// thread's first row), blending with the previous contents per `beta`.
#[allow(clippy::too_many_arguments)]
fn store_tile<const NR: usize>(
    acc: &[[f32; NR]; MR],
    c: &mut [f32],
    ldc: usize,
    i0: usize,
    j0: usize,
    mr_eff: usize,
    nr_eff: usize,
    beta: f32,
) {
    for (r, acc_row) in acc.iter().enumerate().take(mr_eff) {
        let base = (i0 + r) * ldc + j0;
        let row = &mut c[base..base + nr_eff];
        if beta == 0.0 {
            copy_short(row, &acc_row[..nr_eff]);
        } else if beta == 1.0 {
            for (slot, &v) in row.iter_mut().zip(acc_row.iter()) {
                *slot += v;
            }
        } else {
            for (slot, &v) in row.iter_mut().zip(acc_row.iter()) {
                *slot = v + beta * *slot;
            }
        }
    }
}

/// Runs one packed B panel (`jc..jc+nc`, `pc..pc+kc`) against rows
/// `row0..row0+rows` of `C`: packs A one `mc` block at a time into `abuf`
/// and drives the micro-kernel over the tile grid.
///
/// `c_rows` is this worker's row chunk (`rows * ldc` elements, first row
/// `row0` of the full `C`).
#[allow(clippy::too_many_arguments)]
fn macro_kernel<const NR: usize>(
    kernels: KernelFamily<NR>,
    a: &[f32],
    trans_a: bool,
    lda: usize,
    row0: usize,
    rows: usize,
    (jc, nc): (usize, usize),
    (pc, kc): (usize, usize),
    bbuf: &[f32],
    abuf: &mut [f32],
    mc_max: usize,
    beta_cur: f32,
    c_rows: &mut [f32],
    ldc: usize,
) {
    let mut ic = 0;
    while ic < rows {
        let mc = mc_max.min(rows - ic);
        pack_a(abuf, a, trans_a, lda, row0 + ic, mc, pc, kc);
        for js in 0..nc.div_ceil(NR) {
            let j0 = js * NR;
            let nr_eff = NR.min(nc - j0);
            let b_strip = &bbuf[js * kc * NR..(js + 1) * kc * NR];
            for is in 0..mc.div_ceil(MR) {
                let i0 = is * MR;
                let mr_eff = MR.min(mc - i0);
                let a_strip = &abuf[is * kc * MR..(is + 1) * kc * MR];
                let mut acc = [[0.0f32; NR]; MR];
                let kernel = kernels[family_index(mr_eff)];
                // SAFETY: the dispatcher only selects kernel families
                // whose target features it has verified on this CPU (see
                // `dispatch`).
                unsafe { kernel(kc, a_strip, b_strip, &mut acc) };
                store_tile::<NR>(
                    &acc,
                    c_rows,
                    ldc,
                    ic + i0,
                    jc + j0,
                    mr_eff,
                    nr_eff,
                    beta_cur,
                );
            }
        }
        ic += mc;
    }
}

/// The blocked GEMM driver for one selected micro-kernel width.
///
/// Loop order is jc → pc → (parallel ic): each B panel is packed exactly
/// once by the calling thread (via `bsrc`) and shared read-only by every
/// row-chunk worker; each worker owns one pooled A buffer (`Mutex`-wrapped
/// only to satisfy the borrow checker — a worker locks its own buffer, so
/// there is never contention). All panels come from the thread-local pack
/// pool, so a steady-state caller performs no per-call allocation.
#[allow(clippy::too_many_arguments)]
fn run_gemm<const NR: usize>(
    kernels: KernelFamily<NR>,
    trans_a: bool,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    bsrc: &dyn PackBPanel,
    beta: f32,
    c: &mut [f32],
    threads: usize,
    bl: Blocks,
) {
    use std::sync::Mutex;
    let lda = if trans_a { m } else { k };
    // A pool dedicated to packing panels (distinct from the public
    // thread-local pool) so higher-level kernels holding that pool can
    // call into GEMM freely, and panel sizes stay stable across calls.
    with_pack_scratch(|scratch| {
        let nc_max = bl.nc.min(n.div_ceil(NR) * NR);
        let mut bbuf = scratch.take(nc_max.div_ceil(NR) * NR * bl.kc);
        let rows_per_chunk = parallel::chunk_rows(m, threads);
        let abuf_len = bl.mc.div_ceil(MR) * MR * bl.kc;
        let abufs: Vec<Mutex<Vec<f32>>> = (0..m.div_ceil(rows_per_chunk))
            .map(|_| Mutex::new(scratch.take(abuf_len)))
            .collect();
        let mut jc = 0;
        while jc < n {
            let nc = bl.nc.min(n - jc);
            let mut pc = 0;
            while pc < k {
                let kc = bl.kc.min(k - pc);
                bsrc.pack_panel(&mut bbuf, NR, jc, nc, pc, kc);
                // First K slab applies the caller's beta; later slabs
                // accumulate onto the partial results.
                let beta_cur = if pc == 0 { beta } else { 1.0 };
                let (bbuf, abufs) = (&bbuf, &abufs);
                parallel::chunks_mut(c, n, threads, |row0, c_rows| {
                    let mut abuf = abufs[row0 / rows_per_chunk]
                        .lock()
                        .expect("gemm A-buffer lock");
                    macro_kernel::<NR>(
                        kernels,
                        a,
                        trans_a,
                        lda,
                        row0,
                        c_rows.len() / n,
                        (jc, nc),
                        (pc, kc),
                        bbuf,
                        &mut abuf,
                        bl.mc,
                        beta_cur,
                        c_rows,
                        n,
                    );
                });
                pc += kc;
            }
            jc += nc;
        }
        for abuf in abufs {
            scratch.put(abuf.into_inner().expect("gemm A-buffer lock"));
        }
        scratch.put(bbuf);
    });
}

fn with_pack_scratch<R>(f: impl FnOnce(&mut Scratch) -> R) -> R {
    use std::cell::RefCell;
    thread_local! {
        static PACK: RefCell<Scratch> = RefCell::new(Scratch::new());
    }
    PACK.with(|s| f(&mut s.borrow_mut()))
}

fn scale_or_zero(c: &mut [f32], beta: f32) {
    if beta == 0.0 {
        c.fill(0.0);
    } else if beta != 1.0 {
        for v in c.iter_mut() {
            *v *= beta;
        }
    }
}

/// Selects the micro-kernel for this CPU and runs the blocked driver.
#[allow(clippy::too_many_arguments)]
fn dispatch(
    trans_a: bool,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    bsrc: &dyn PackBPanel,
    beta: f32,
    c: &mut [f32],
    threads: usize,
    bl: Blocks,
) {
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        scale_or_zero(c, beta);
        return;
    }
    // Threads only pay off once the kernel has real work per row block.
    let threads = if 2 * m * n * k < 64 * 64 * 64 {
        1
    } else {
        threads
    };
    match detected_simd() {
        #[cfg(target_arch = "x86_64")]
        "avx512" => run_gemm::<32>(
            [kernel_avx512::<2>, kernel_avx512::<4>, kernel_avx512::<6>],
            trans_a,
            m,
            n,
            k,
            a,
            bsrc,
            beta,
            c,
            threads,
            bl,
        ),
        #[cfg(target_arch = "x86_64")]
        "avx2" => run_gemm::<16>(
            [kernel_avx2::<2>, kernel_avx2::<4>, kernel_avx2::<6>],
            trans_a,
            m,
            n,
            k,
            a,
            bsrc,
            beta,
            c,
            threads,
            bl,
        ),
        _ => run_gemm::<16>(
            [
                kernel_portable::<2>,
                kernel_portable::<4>,
                kernel_portable::<6>,
            ],
            trans_a,
            m,
            n,
            k,
            a,
            bsrc,
            beta,
            c,
            threads,
            bl,
        ),
    }
}

/// `C = op(A)·op(B) + beta·C` over row-major buffers, using the default
/// thread count.
///
/// `op(A)` is `[m, k]` (`A` itself is `[k, m]` when `trans_a`), `op(B)` is
/// `[k, n]`, and `C` is `[m, n]`.
///
/// # Panics
///
/// Panics if any buffer length disagrees with the dimensions.
#[allow(clippy::too_many_arguments)]
pub fn gemm(
    trans_a: bool,
    trans_b: bool,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c: &mut [f32],
) {
    gemm_with_threads(
        trans_a,
        trans_b,
        m,
        n,
        k,
        a,
        b,
        beta,
        c,
        parallel::num_threads(),
    );
}

/// [`gemm`] with an explicit thread count (the property tests compare 1
/// and N threads; callers inside already-parallel regions pass 1).
#[allow(clippy::too_many_arguments)]
pub fn gemm_with_threads(
    trans_a: bool,
    trans_b: bool,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c: &mut [f32],
    threads: usize,
) {
    gemm_with_blocks(trans_a, trans_b, m, n, k, a, b, beta, c, threads, blocks());
}

/// [`gemm_with_threads`] with explicit blocking extents. This is the
/// advanced entry the blocking tests and autotuning experiments use;
/// everything else should let [`blocks`] pick.
#[allow(clippy::too_many_arguments)]
pub fn gemm_with_blocks(
    trans_a: bool,
    trans_b: bool,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c: &mut [f32],
    threads: usize,
    bl: Blocks,
) {
    assert_eq!(a.len(), m * k, "gemm: A length vs {m}x{k}");
    assert_eq!(b.len(), k * n, "gemm: B length vs {k}x{n}");
    assert_eq!(c.len(), m * n, "gemm: C length vs {m}x{n}");
    let ldb = if trans_b { k } else { n };
    let bsrc = SliceB {
        b,
        trans: trans_b,
        ldb,
    };
    dispatch(trans_a, m, n, k, a, &bsrc, beta, c, threads, bl);
}

/// `C = op(A)·op(B) + beta·C` where `op(B)` is a *virtual* `[k, n]`
/// matrix delivered panel-by-panel through a [`PackBPanel`]
/// implementation — nothing of `B` is ever materialized in full. This is
/// the entry point the batch-fused im2col convolution uses to pack column
/// panels straight from the input image.
///
/// # Panics
///
/// Panics if `a` or `c` length disagrees with the dimensions.
#[allow(clippy::too_many_arguments)]
pub fn gemm_custom_b(
    trans_a: bool,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    bsrc: &dyn PackBPanel,
    beta: f32,
    c: &mut [f32],
    threads: usize,
) {
    assert_eq!(a.len(), m * k, "gemm: A length vs {m}x{k}");
    assert_eq!(c.len(), m * n, "gemm: C length vs {m}x{n}");
    dispatch(trans_a, m, n, k, a, bsrc, beta, c, threads, blocks());
}

/// The micro-kernel tier the dispatcher selects on this machine:
/// `"avx512"`, `"avx2"`, or `"portable"`. The dispatcher itself matches on
/// this value, so diagnostics (e.g. `perf_report`'s JSON header) can never
/// drift from what actually ran.
pub fn detected_simd() -> &'static str {
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx512f") {
            return "avx512";
        }
        if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
            return "avx2";
        }
    }
    "portable"
}

/// `C = A·B + beta·C` with `A: [m, k]`, `B: [k, n]`.
pub fn gemm_nn(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], beta: f32, c: &mut [f32]) {
    gemm(false, false, m, n, k, a, b, beta, c);
}

/// `C = A·Bᵀ + beta·C` with `A: [m, k]`, `B: [n, k]` — no transpose is
/// materialized; packing reads `B` column-wise.
pub fn gemm_nt(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], beta: f32, c: &mut [f32]) {
    gemm(false, true, m, n, k, a, b, beta, c);
}

/// `C = Aᵀ·B + beta·C` with `A: [k, m]`, `B: [k, n]` — no transpose is
/// materialized; packing reads `A` column-wise.
pub fn gemm_tn(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], beta: f32, c: &mut [f32]) {
    gemm(true, false, m, n, k, a, b, beta, c);
}

/// Reference kernels retained for cross-checking and perf baselines.
pub mod reference {
    /// Textbook ijk triple loop (dot-product form). The property tests
    /// compare the blocked GEMM against this.
    pub fn matmul_naive(m: usize, n: usize, k: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc += a[i * k + p] * b[p * n + j];
                }
                out[i * n + j] = acc;
            }
        }
        out
    }

    /// The seed repository's matmul (ikj loop order with a flat
    /// accumulator row and a zero-skip) — kept verbatim as the perf
    /// baseline that `perf_report` measures speedups against.
    pub fn matmul_ikj(m: usize, n: usize, k: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let row_out = &mut out[i * n..(i + 1) * n];
            for p in 0..k {
                let av = a[i * k + p];
                if av == 0.0 {
                    continue;
                }
                let row_b = &b[p * n..(p + 1) * n];
                for (o, &bv) in row_out.iter_mut().zip(row_b.iter()) {
                    *o += av * bv;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Pcg32;

    fn filled(len: usize, seed: u64) -> Vec<f32> {
        let mut v = vec![0.0f32; len];
        Pcg32::seed(seed).fill_normal(&mut v);
        v
    }

    fn assert_close(got: &[f32], want: &[f32], tag: &str) {
        assert_eq!(got.len(), want.len(), "{tag}: length");
        for (i, (g, w)) in got.iter().zip(want.iter()).enumerate() {
            assert!(
                (g - w).abs() <= 1e-4 * (1.0 + w.abs()),
                "{tag}[{i}]: {g} vs {w}"
            );
        }
    }

    #[test]
    fn matches_naive_across_sizes_and_threads() {
        for &(m, n, k) in &[
            (1, 1, 1),
            (5, 7, 3),
            (6, 16, 256),
            (7, 17, 9),
            (33, 31, 65),
            (97, 130, 40),
        ] {
            let a = filled(m * k, 1 + m as u64);
            let b = filled(k * n, 2 + n as u64);
            let want = reference::matmul_naive(m, n, k, &a, &b);
            for threads in [1, 4] {
                let mut c = vec![0.0f32; m * n];
                gemm_with_threads(false, false, m, n, k, &a, &b, 0.0, &mut c, threads);
                assert_close(&c, &want, &format!("nn {m}x{n}x{k} t{threads}"));
            }
        }
    }

    #[test]
    fn transpose_variants_match_explicit_transpose() {
        let (m, n, k) = (13, 21, 17);
        let a = filled(m * k, 3);
        let b = filled(k * n, 4);
        let want = reference::matmul_naive(m, n, k, &a, &b);

        // A stored transposed: [k, m].
        let mut at = vec![0.0f32; m * k];
        for i in 0..m {
            for p in 0..k {
                at[p * m + i] = a[i * k + p];
            }
        }
        let mut c = vec![0.0f32; m * n];
        gemm_tn(m, n, k, &at, &b, 0.0, &mut c);
        assert_close(&c, &want, "tn");

        // B stored transposed: [n, k].
        let mut bt = vec![0.0f32; k * n];
        for p in 0..k {
            for j in 0..n {
                bt[j * k + p] = b[p * n + j];
            }
        }
        let mut c = vec![0.0f32; m * n];
        gemm_nt(m, n, k, &a, &bt, 0.0, &mut c);
        assert_close(&c, &want, "nt");
    }

    #[test]
    fn multi_slab_and_multi_panel_blocking() {
        // Tiny explicit blocks force multiple K slabs (pc > 0
        // accumulation), multiple B panels (the jc loop), and multiple A
        // blocks (the ic loop) even at test-sized shapes — paths the
        // auto-derived extents would never reach here.
        let bl = Blocks {
            mc: 12,
            kc: 16,
            nc: 64,
        };
        for &(m, n, k) in &[(13, 40, 60), (7, 210, 12), (37, 206, 30)] {
            let a = filled(m * k, 40 + m as u64);
            let b = filled(k * n, 41 + n as u64);
            let want = reference::matmul_naive(m, n, k, &a, &b);
            for threads in [1, 3] {
                let mut c = vec![0.0f32; m * n];
                gemm_with_blocks(false, false, m, n, k, &a, &b, 0.0, &mut c, threads, bl);
                assert_close(&c, &want, &format!("blocking {m}x{n}x{k} t{threads}"));
            }
            // beta = 1 must still accumulate correctly across K slabs.
            let base = filled(m * n, 42);
            let mut c = base.clone();
            gemm_with_blocks(false, false, m, n, k, &a, &b, 1.0, &mut c, 1, bl);
            let want_acc: Vec<f32> = want.iter().zip(&base).map(|(p, c0)| p + c0).collect();
            assert_close(&c, &want_acc, &format!("blocking beta=1 {m}x{n}x{k}"));
        }
    }

    #[test]
    fn custom_b_source_matches_slice_gemm() {
        // A virtual B that computes elements on demand must produce
        // bit-identical results to the slice path over the same values:
        // the packed panels are equal, so the micro-kernel sees the same
        // inputs in the same order.
        struct VirtualB {
            n: usize,
        }
        impl VirtualB {
            fn at(&self, p: usize, j: usize) -> f32 {
                ((p * self.n + j) as f32 * 0.37).sin()
            }
        }
        impl PackBPanel for VirtualB {
            fn pack_panel(
                &self,
                dst: &mut [f32],
                nr: usize,
                col0: usize,
                nc: usize,
                pc: usize,
                kc: usize,
            ) {
                for (s, strip) in dst
                    .chunks_exact_mut(kc * nr)
                    .take(nc.div_ceil(nr))
                    .enumerate()
                {
                    let j0 = col0 + s * nr;
                    let cols = nr.min(col0 + nc - j0);
                    for p in 0..kc {
                        for c in 0..nr {
                            strip[p * nr + c] = if c < cols {
                                self.at(pc + p, j0 + c)
                            } else {
                                0.0
                            };
                        }
                    }
                }
            }
        }
        let (m, n, k) = (9, 77, 23);
        let a = filled(m * k, 50);
        let vb = VirtualB { n };
        let mut b = vec![0.0f32; k * n];
        for p in 0..k {
            for j in 0..n {
                b[p * n + j] = vb.at(p, j);
            }
        }
        let mut want = vec![0.0f32; m * n];
        gemm_nn(m, n, k, &a, &b, 0.0, &mut want);
        let mut got = vec![0.0f32; m * n];
        gemm_custom_b(false, m, n, k, &a, &vb, 0.0, &mut got, 1);
        assert_eq!(got, want, "virtual B must be bit-identical to slice B");
    }

    #[test]
    fn beta_accumulates() {
        let (m, n, k) = (9, 11, 7);
        let a = filled(m * k, 5);
        let b = filled(k * n, 6);
        let base = filled(m * n, 7);
        let want: Vec<f32> = reference::matmul_naive(m, n, k, &a, &b)
            .iter()
            .zip(base.iter())
            .map(|(p, c0)| p + c0)
            .collect();
        let mut c = base;
        gemm_nn(m, n, k, &a, &b, 1.0, &mut c);
        assert_close(&c, &want, "beta=1");
    }

    #[test]
    fn k_zero_respects_beta() {
        let mut c = vec![2.0f32; 6];
        gemm_nn(2, 3, 0, &[], &[], 0.0, &mut c);
        assert!(c.iter().all(|&v| v == 0.0));
        let mut c = vec![2.0f32; 6];
        gemm_nn(2, 3, 0, &[], &[], 1.0, &mut c);
        assert!(c.iter().all(|&v| v == 2.0));
    }

    #[test]
    fn blocks_are_sane() {
        let bl = blocks();
        assert!(bl.mc >= MR && bl.mc.is_multiple_of(MR), "mc {}", bl.mc);
        assert!((128..=768).contains(&bl.kc), "kc {}", bl.kc);
        assert!(bl.nc >= 16, "nc {}", bl.nc);
    }

    #[test]
    fn blocks_spec_parses() {
        assert_eq!(
            parse_blocks_spec("96, 256,2048"),
            Some(Blocks {
                mc: 96,
                kc: 256,
                nc: 2048
            })
        );
        assert_eq!(parse_blocks_spec(""), None);
        assert_eq!(parse_blocks_spec("96,256"), None);
        assert_eq!(parse_blocks_spec("96,0,2048"), None);
        assert_eq!(parse_blocks_spec("96,256,2048,1"), None);
    }

    #[test]
    fn cache_size_strings_parse() {
        assert_eq!(parse_cache_size("48K"), Some(48 * 1024));
        assert_eq!(parse_cache_size(" 2048K\n"), Some(2048 * 1024));
        assert_eq!(parse_cache_size("36M"), Some(36 * 1024 * 1024));
        assert_eq!(parse_cache_size("123"), Some(123));
        assert_eq!(parse_cache_size("big"), None);
    }

    #[test]
    fn ikj_reference_matches_naive() {
        let (m, n, k) = (8, 9, 10);
        let a = filled(m * k, 8);
        let b = filled(k * n, 9);
        assert_close(
            &reference::matmul_ikj(m, n, k, &a, &b),
            &reference::matmul_naive(m, n, k, &a, &b),
            "ikj",
        );
    }
}
