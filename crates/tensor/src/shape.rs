//! Shape bookkeeping for dense row-major tensors.

use std::fmt;

/// The extent of a tensor along each axis, stored row-major (C order).
///
/// # Example
///
/// ```
/// use yf_tensor::Shape;
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.len(), 24);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from axis extents. A zero-rank shape is a scalar.
    pub fn new(dims: &[usize]) -> Self {
        Shape {
            dims: dims.to_vec(),
        }
    }

    /// The extents along each axis.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of axes.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// Whether the shape holds zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Row-major strides, in elements.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Flat offset of a multi-index.
    ///
    /// # Panics
    ///
    /// Panics if `index` has the wrong rank or any coordinate is out of
    /// bounds.
    pub fn offset(&self, index: &[usize]) -> usize {
        assert_eq!(index.len(), self.rank(), "index rank mismatch");
        let mut off = 0;
        let strides = self.strides();
        for (axis, (&i, &d)) in index.iter().zip(self.dims.iter()).enumerate() {
            assert!(i < d, "index {i} out of bounds for axis {axis} (len {d})");
            off += i * strides[axis];
        }
        off
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        assert_eq!(Shape::new(&[2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::new(&[5]).strides(), vec![1]);
        assert_eq!(Shape::new(&[]).strides(), Vec::<usize>::new());
    }

    #[test]
    fn offset_round_trip() {
        let s = Shape::new(&[2, 3, 4]);
        let mut seen = std::collections::HashSet::new();
        for i in 0..2 {
            for j in 0..3 {
                for k in 0..4 {
                    let off = s.offset(&[i, j, k]);
                    assert!(off < s.len());
                    assert!(seen.insert(off), "offsets must be unique");
                }
            }
        }
        assert_eq!(seen.len(), 24);
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::new(&[]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.rank(), 0);
        assert_eq!(s.offset(&[]), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn offset_out_of_bounds() {
        Shape::new(&[2, 2]).offset(&[0, 2]);
    }

    #[test]
    fn display() {
        assert_eq!(Shape::new(&[2, 3]).to_string(), "[2, 3]");
    }
}
