//! Property-based tests for tensor algebra and the polynomial solvers.

use proptest::prelude::*;
use yf_tensor::linalg::{cubic_roots, quadratic_roots, spectral_radius_2x2, spectral_radius_3x3};
use yf_tensor::rng::Pcg32;
use yf_tensor::Tensor;

fn tensor(rows: usize, cols: usize, seed: u64) -> Tensor {
    Tensor::randn(&[rows, cols], &mut Pcg32::seed(seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn add_commutes(r in 1usize..6, c in 1usize..6, s1 in any::<u64>(), s2 in any::<u64>()) {
        let a = tensor(r, c, s1);
        let b = tensor(r, c, s2);
        prop_assert_eq!(a.add(&b), b.add(&a));
    }

    #[test]
    fn matmul_distributes_over_add(
        m in 1usize..5, k in 1usize..5, n in 1usize..5, s in any::<u64>()
    ) {
        let a = tensor(m, k, s);
        let b = tensor(k, n, s.wrapping_add(1));
        let c = tensor(k, n, s.wrapping_add(2));
        let lhs = a.matmul(&b.add(&c));
        let rhs = a.matmul(&b).add(&a.matmul(&c));
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-3 * (1.0 + x.abs()), "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_transpose_identity(
        m in 1usize..5, k in 1usize..5, n in 1usize..5, s in any::<u64>()
    ) {
        // (A B)^T = B^T A^T
        let a = tensor(m, k, s);
        let b = tensor(k, n, s.wrapping_add(9));
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-4 * (1.0 + x.abs()));
        }
    }

    #[test]
    fn norm_scales_homogeneously(r in 1usize..6, c in 1usize..6, s in any::<u64>(), alpha in -10.0f32..10.0) {
        let a = tensor(r, c, s);
        let scaled = a.scale(alpha);
        let expected = a.norm() * alpha.abs();
        prop_assert!((scaled.norm() - expected).abs() < 1e-3 * (1.0 + expected));
    }

    #[test]
    fn reshape_preserves_data(r in 1usize..8, c in 1usize..8, s in any::<u64>()) {
        let a = tensor(r, c, s);
        let b = a.reshape(&[c * r]);
        prop_assert_eq!(a.data(), b.data());
    }

    /// Quadratic roots reconstruct the polynomial: x^2 + bx + c has roots
    /// whose sum is -b and product is c.
    #[test]
    fn quadratic_vieta(b in -100.0f64..100.0, c in -100.0f64..100.0) {
        let [r0, r1] = quadratic_roots(b, c);
        let sum_re = r0.re + r1.re;
        let sum_im = r0.im + r1.im;
        prop_assert!((sum_re + b).abs() < 1e-6 * (1.0 + b.abs()), "sum {sum_re} vs {}", -b);
        prop_assert!(sum_im.abs() < 1e-9);
        let prod_re = r0.re * r1.re - r0.im * r1.im;
        prop_assert!((prod_re - c).abs() < 1e-6 * (1.0 + c.abs()), "prod {prod_re} vs {c}");
    }

    /// Cubic roots satisfy Vieta's formulas for x^3 + a2 x^2 + a1 x + a0.
    #[test]
    fn cubic_vieta(a2 in -20.0f64..20.0, a1 in -20.0f64..20.0, a0 in -20.0f64..20.0) {
        let roots = cubic_roots(a2, a1, a0);
        let sum: f64 = roots.iter().map(|r| r.re).sum();
        prop_assert!((sum + a2).abs() < 1e-5 * (1.0 + a2.abs()), "sum {sum} vs {}", -a2);
        // Product of roots = -a0 (real part; imaginary parts cancel).
        let (mut pr, mut pi) = (1.0f64, 0.0f64);
        for r in roots {
            let nr = pr * r.re - pi * r.im;
            let ni = pr * r.im + pi * r.re;
            pr = nr;
            pi = ni;
        }
        prop_assert!((pr + a0).abs() < 1e-4 * (1.0 + a0.abs()), "prod {pr} vs {}", -a0);
        prop_assert!(pi.abs() < 1e-4 * (1.0 + a0.abs()));
    }

    /// Spectral radius is invariant to transposition (2x2) and scales
    /// absolutely homogeneously.
    #[test]
    fn radius_properties(
        a in -10.0f64..10.0, b in -10.0f64..10.0,
        c in -10.0f64..10.0, d in -10.0f64..10.0,
        alpha in -3.0f64..3.0,
    ) {
        let m = [[a, b], [c, d]];
        let mt = [[a, c], [b, d]];
        let r = spectral_radius_2x2(m);
        prop_assert!((r - spectral_radius_2x2(mt)).abs() < 1e-6 * (1.0 + r));
        let scaled = [[alpha * a, alpha * b], [alpha * c, alpha * d]];
        let rs = spectral_radius_2x2(scaled);
        prop_assert!((rs - alpha.abs() * r).abs() < 1e-6 * (1.0 + rs));
    }

    /// The 3x3 radius of a block-diagonal embedding of a 2x2 matrix with
    /// an extra eigenvalue lambda is max(radius2x2, |lambda|).
    #[test]
    fn radius_3x3_block_diagonal(
        a in -5.0f64..5.0, b in -5.0f64..5.0,
        c in -5.0f64..5.0, d in -5.0f64..5.0,
        lambda in -10.0f64..10.0,
    ) {
        let r2 = spectral_radius_2x2([[a, b], [c, d]]);
        let m3 = [[a, b, 0.0], [c, d, 0.0], [0.0, 0.0, lambda]];
        let r3 = spectral_radius_3x3(m3);
        let expected = r2.max(lambda.abs());
        prop_assert!((r3 - expected).abs() < 1e-5 * (1.0 + expected), "{r3} vs {expected}");
    }
}
