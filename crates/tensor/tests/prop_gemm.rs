//! Property tests for the blocked GEMM: every layout variant must match
//! the naive triple loop, single- and multi-threaded.

use proptest::prelude::*;
use yf_tensor::gemm::{self, reference};
use yf_tensor::rng::Pcg32;
use yf_tensor::Tensor;

fn buf(len: usize, seed: u64) -> Vec<f32> {
    let mut v = vec![0.0f32; len];
    Pcg32::seed(seed).fill_normal(&mut v);
    v
}

fn close(got: &[f32], want: &[f32]) -> Result<(), String> {
    if got.len() != want.len() {
        return Err(format!("length {} vs {}", got.len(), want.len()));
    }
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        if (g - w).abs() > 1e-4 * (1.0 + w.abs()) {
            return Err(format!("index {i}: {g} vs {w}"));
        }
    }
    Ok(())
}

fn transposed(m: &[f32], rows: usize, cols: usize) -> Vec<f32> {
    let mut t = vec![0.0f32; m.len()];
    for r in 0..rows {
        for c in 0..cols {
            t[c * rows + r] = m[r * cols + c];
        }
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn gemm_matches_naive_at_1_and_n_threads(
        m in 1usize..48, n in 1usize..48, k in 1usize..96, s in any::<u64>()
    ) {
        let a = buf(m * k, s);
        let b = buf(k * n, s.wrapping_add(1));
        let want = reference::matmul_naive(m, n, k, &a, &b);
        for threads in [1, 4] {
            let mut c = vec![0.0f32; m * n];
            gemm::gemm_with_threads(false, false, m, n, k, &a, &b, 0.0, &mut c, threads);
            prop_assert!(close(&c, &want).is_ok(),
                "nn {m}x{n}x{k} threads={threads}: {:?}", close(&c, &want));
        }
    }

    #[test]
    fn fused_transpose_variants_match_naive(
        m in 1usize..32, n in 1usize..32, k in 1usize..64, s in any::<u64>()
    ) {
        let a = buf(m * k, s);
        let b = buf(k * n, s.wrapping_add(7));
        let want = reference::matmul_naive(m, n, k, &a, &b);

        let at = transposed(&a, m, k); // stored [k, m]
        let bt = transposed(&b, k, n); // stored [n, k]
        for threads in [1, 4] {
            let mut c = vec![0.0f32; m * n];
            gemm::gemm_with_threads(true, false, m, n, k, &at, &b, 0.0, &mut c, threads);
            prop_assert!(close(&c, &want).is_ok(), "tn {m}x{n}x{k} t{threads}");

            let mut c = vec![0.0f32; m * n];
            gemm::gemm_with_threads(false, true, m, n, k, &a, &bt, 0.0, &mut c, threads);
            prop_assert!(close(&c, &want).is_ok(), "nt {m}x{n}x{k} t{threads}");

            let mut c = vec![0.0f32; m * n];
            gemm::gemm_with_threads(true, true, m, n, k, &at, &bt, 0.0, &mut c, threads);
            prop_assert!(close(&c, &want).is_ok(), "tt {m}x{n}x{k} t{threads}");
        }
    }

    #[test]
    fn beta_one_accumulates(
        m in 1usize..24, n in 1usize..24, k in 1usize..32, s in any::<u64>()
    ) {
        let a = buf(m * k, s);
        let b = buf(k * n, s.wrapping_add(3));
        let c0 = buf(m * n, s.wrapping_add(5));
        let want: Vec<f32> = reference::matmul_naive(m, n, k, &a, &b)
            .iter().zip(&c0).map(|(p, base)| p + base).collect();
        let mut c = c0;
        gemm::gemm_nn(m, n, k, &a, &b, 1.0, &mut c);
        prop_assert!(close(&c, &want).is_ok(), "beta=1 {m}x{n}x{k}");
    }

    #[test]
    fn tensor_matmul_nt_tn_match_matmul(
        m in 1usize..16, n in 1usize..16, k in 1usize..24, s in any::<u64>()
    ) {
        let mut rng = Pcg32::seed(s);
        let a = Tensor::randn(&[m, k], &mut rng);
        let b = Tensor::randn(&[k, n], &mut rng);
        let want = a.matmul(&b);
        let nt = a.matmul_nt(&b.transpose());
        let tn = a.transpose().matmul_tn(&b);
        prop_assert!(close(nt.data(), want.data()).is_ok(), "nt {m}x{n}x{k}");
        prop_assert!(close(tn.data(), want.data()).is_ok(), "tn {m}x{n}x{k}");
    }
}
