//! Property tests pinning the deterministic blocked reduction kernels
//! against straightforward serial `f64` references.
//!
//! The kernels' documented spec (four interleaved lanes per block,
//! fixed-order tree combine over blocks) is reimplemented here the slow,
//! obvious way; the fast kernels must match it **bitwise** for every
//! input and every thread count, and must stay within float tolerance of
//! a plain serial fold.

use proptest::prelude::*;
use yf_tensor::reduce::{self, BLOCK};

/// The spec, written naively: per-block four-lane sums, tree-combined.
fn spec_reduce(xs: &[f32], term: impl Fn(f64) -> f64) -> f64 {
    let sums: Vec<f64> = xs
        .chunks(BLOCK)
        .map(|c| {
            let mut l = [0.0f64; 4];
            for (i, &x) in c.iter().enumerate() {
                l[i % 4] += term(f64::from(x));
            }
            (l[0] + l[1]) + (l[2] + l[3])
        })
        .collect();
    reduce::tree_reduce(&sums)
}

fn grads(max_len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-100.0f32..100.0, 0..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn sumsq_matches_spec_bitwise(xs in grads(3000)) {
        let spec = spec_reduce(&xs, |x| x * x);
        prop_assert_eq!(reduce::sumsq(&xs).to_bits(), spec.to_bits());
    }

    #[test]
    fn sumsq_close_to_serial_fold(xs in grads(3000)) {
        let serial: f64 = xs.iter().map(|&x| f64::from(x) * f64::from(x)).sum();
        let tol = 1e-9 * serial.max(1.0);
        prop_assert!((reduce::sumsq(&xs) - serial).abs() <= tol);
    }

    #[test]
    fn dot_matches_serial_fold(xs in grads(2000)) {
        let ys: Vec<f32> = xs.iter().map(|&x| 0.5 - 0.25 * x).collect();
        let serial: f64 = xs
            .iter()
            .zip(&ys)
            .map(|(&a, &b)| f64::from(a) * f64::from(b))
            .sum();
        let tol = 1e-9 * serial.abs().max(1.0);
        prop_assert!((reduce::dot(&xs, &ys) - serial).abs() <= tol);
    }

    #[test]
    fn sum_div_matches_serial_fold(xs in grads(2000), denom in 0.01f64..10.0) {
        let vals: Vec<f64> = xs.iter().map(|&x| f64::from(x)).collect();
        let serial: f64 = vals.iter().map(|&v| v / denom).sum();
        let tol = 1e-9 * serial.abs().max(1.0);
        prop_assert!((reduce::sum_div(&vals, denom) - serial).abs() <= tol);
    }

    /// Block-aligned sharding invariance: the per-block partial sums of
    /// any block-aligned split concatenate into the whole-vector block
    /// sums, so a sharded norm equals the whole-vector norm bitwise.
    #[test]
    fn block_aligned_shards_concatenate(xs in grads(6000), cut_blocks in 0usize..6) {
        let cut = (cut_blocks * BLOCK).min(xs.len());
        let whole = reduce::block_sumsq(&xs);
        let mut stitched = reduce::block_sumsq(&xs[..cut]);
        stitched.extend(reduce::block_sumsq(&xs[cut..]));
        prop_assert_eq!(&whole, &stitched);
        prop_assert_eq!(
            reduce::sumsq(&xs).to_bits(),
            reduce::tree_reduce(&stitched).to_bits()
        );
    }

    /// The fused EMA/variance sweep is bitwise thread-count invariant and
    /// matches a serial per-element reference of the same spec.
    #[test]
    fn ema_update_stats_matches_reference(
        xs in grads(3000),
        beta in 0.0f64..0.999,
        scale in 0.1f64..1.0,
        threads in 1usize..6,
    ) {
        let n = xs.len();
        // Reference: serial elementwise EMA updates + spec variance sum.
        let mut r1 = vec![0.0f64; n];
        let mut r2 = vec![0.0f64; n];
        let corr = 1.0 - beta;
        for ((b1, b2), &g) in r1.iter_mut().zip(r2.iter_mut()).zip(&xs) {
            let x = scale * f64::from(g);
            *b1 = beta * *b1 + (1.0 - beta) * x;
            *b2 = beta * *b2 + (1.0 - beta) * x * x;
        }
        let ref_var = {
            let sums: Vec<f64> = r1
                .chunks(BLOCK)
                .zip(r2.chunks(BLOCK))
                .map(|(c1, c2)| {
                    let mut l = [0.0f64; 4];
                    for (i, (&m1, &m2)) in c1.iter().zip(c2).enumerate() {
                        let d1 = m1 / corr;
                        let d2 = m2 / corr;
                        l[i % 4] += (d2 - d1 * d1).max(0.0);
                    }
                    (l[0] + l[1]) + (l[2] + l[3])
                })
                .collect();
            reduce::tree_reduce(&sums)
        };

        let mut b1 = vec![0.0f64; n];
        let mut b2 = vec![0.0f64; n];
        let total =
            reduce::ema_update_stats_parallel(&mut b1, &mut b2, &xs, beta, scale, corr, threads);
        prop_assert_eq!(&b1, &r1, "first moments (threads = {})", threads);
        prop_assert_eq!(&b2, &r2, "second moments (threads = {})", threads);
        prop_assert_eq!(total.to_bits(), ref_var.to_bits());
        prop_assert_eq!(
            reduce::variance_total(&b1, &b2, corr).to_bits(),
            ref_var.to_bits()
        );
    }
}
