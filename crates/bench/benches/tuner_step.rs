//! Per-step overhead of YellowFin vs plain momentum SGD.
//!
//! The paper claims "overhead linear to model dimensionality"; the ratio
//! between the two bars at each dimension is that overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use yellowfin::YellowFin;
use yf_optim::{MomentumSgd, Optimizer};

fn bench_steps(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimizer_step");
    for &dim in &[1_000usize, 10_000, 100_000] {
        let grad: Vec<f32> = (0..dim).map(|i| (i as f32 * 0.1).sin()).collect();
        group.bench_with_input(BenchmarkId::new("momentum_sgd", dim), &dim, |b, _| {
            let mut opt = MomentumSgd::new(0.01, 0.9);
            let mut params = vec![0.1f32; dim];
            b.iter(|| opt.step(black_box(&mut params), black_box(&grad)));
        });
        group.bench_with_input(BenchmarkId::new("yellowfin", dim), &dim, |b, _| {
            let mut opt = YellowFin::default();
            let mut params = vec![0.1f32; dim];
            b.iter(|| opt.step(black_box(&mut params), black_box(&grad)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_steps);
criterion_main!(benches);
