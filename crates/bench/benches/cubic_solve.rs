//! The closed-form SingleStep solve (Appendix D) is a handful of flops;
//! this pins down its absolute cost across measurement regimes.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use yellowfin::cubic::single_step;

fn bench_cubic(c: &mut Criterion) {
    let regimes = [
        ("balanced", (1.0, 1.0, 1.0, 10.0)),
        ("noise_dominated", (1e4, 0.01, 0.1, 1.0)),
        ("signal_dominated", (1e-6, 10.0, 1.0, 1e3)),
    ];
    for (name, (cv, d, hmin, hmax)) in regimes {
        c.bench_function(&format!("single_step/{name}"), |b| {
            b.iter(|| {
                single_step(
                    black_box(cv),
                    black_box(d),
                    black_box(hmin),
                    black_box(hmax),
                )
            })
        });
    }
}

criterion_group!(benches, bench_cubic);
criterion_main!(benches);
