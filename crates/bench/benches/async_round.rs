//! One round-robin simulator step on a synthetic quadratic gradient
//! source (dim 1000), with and without staleness.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use yf_async::RoundRobinSimulator;
use yf_optim::MomentumSgd;

fn bench_async(c: &mut Criterion) {
    let mut group = c.benchmark_group("async_round");
    for &workers in &[1usize, 16] {
        group.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &workers,
            |b, &workers| {
                let dim = 1000;
                let mut sim = RoundRobinSimulator::new(workers, vec![1.0f32; dim]);
                let mut source = (dim, |x: &[f32], _| {
                    (0.0f32, x.iter().map(|v| *v * 0.99).collect::<Vec<f32>>())
                });
                let mut opt = MomentumSgd::new(1e-4, 0.9);
                b.iter(|| {
                    black_box(sim.step(&mut source, &mut opt));
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_async);
criterion_main!(benches);
