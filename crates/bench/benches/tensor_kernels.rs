//! Core tensor kernels: blocked GEMM and im2col conv2d at paper-relevant
//! sizes (LSTM-scale and 256x256 matmuls; ResNet-shaped, strided, and
//! grouped convolutions).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use yf_autograd::ConvSpec;
use yf_tensor::rng::Pcg32;
use yf_tensor::Tensor;

fn bench_matmul(c: &mut Criterion) {
    let mut rng = Pcg32::seed(1);
    for n in [64usize, 256] {
        let a = Tensor::randn(&[n, n], &mut rng);
        let b = Tensor::randn(&[n, n], &mut rng);
        c.bench_function(&format!("matmul_{n}x{n}"), |bencher| {
            bencher.iter(|| black_box(&a).matmul(black_box(&b)))
        });
    }
    // The fused-transpose product the matmul backward pass runs.
    let a = Tensor::randn(&[256, 256], &mut rng);
    let b = Tensor::randn(&[256, 256], &mut rng);
    c.bench_function("matmul_nt_256x256", |bencher| {
        bencher.iter(|| black_box(&a).matmul_nt(black_box(&b)))
    });
}

fn bench_conv(c: &mut Criterion) {
    let mut rng = Pcg32::seed(2);

    // Small legacy shape, timed through the public graph API (includes
    // the tape push), so regressions in the op plumbing show up too.
    let input = Tensor::randn(&[4, 8, 12, 12], &mut rng);
    let weight = Tensor::randn(&[8, 8, 3, 3], &mut rng);
    c.bench_function("conv2d_fwd_graph_4x8x12x12", |bencher| {
        bencher.iter(|| {
            let mut g = yf_autograd::Graph::new();
            let x = g.constant(black_box(input.clone()));
            let w = g.constant(black_box(weight.clone()));
            g.conv2d(x, w, ConvSpec::same3x3(1))
        })
    });

    // ResNet-shaped: a CIFAR stage-1 3x3 block convolution.
    let input = Tensor::randn(&[8, 16, 32, 32], &mut rng);
    let weight = Tensor::randn(&[16, 16, 3, 3], &mut rng);
    c.bench_function("conv2d_fwd_resnet_8x16x32x32", |bencher| {
        bencher.iter(|| {
            yf_autograd::conv::conv2d_forward(
                black_box(&input),
                black_box(&weight),
                ConvSpec::same3x3(1),
            )
        })
    });

    // Strided downsampling convolution (stage transition).
    let weight_s = Tensor::randn(&[32, 16, 3, 3], &mut rng);
    c.bench_function("conv2d_fwd_strided_8x16x32x32_s2", |bencher| {
        bencher.iter(|| {
            yf_autograd::conv::conv2d_forward(
                black_box(&input),
                black_box(&weight_s),
                ConvSpec::same3x3(2),
            )
        })
    });

    // Grouped convolution (the ResNeXt ablation of Appendix J.4).
    let weight_g = Tensor::randn(&[32, 4, 3, 3], &mut rng);
    c.bench_function("conv2d_fwd_grouped_8x16x32x32_g4", |bencher| {
        bencher.iter(|| {
            yf_autograd::conv::conv2d_forward(
                black_box(&input),
                black_box(&weight_g),
                ConvSpec {
                    stride: 1,
                    padding: 1,
                    groups: 4,
                },
            )
        })
    });
}

criterion_group!(benches, bench_matmul, bench_conv);
criterion_main!(benches);
