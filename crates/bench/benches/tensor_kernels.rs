//! Core tensor kernels: matmul and direct conv2d forward.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use yf_autograd::ConvSpec;
use yf_tensor::rng::Pcg32;
use yf_tensor::Tensor;

fn bench_tensor(c: &mut Criterion) {
    let mut rng = Pcg32::seed(1);
    let a = Tensor::randn(&[64, 64], &mut rng);
    let b = Tensor::randn(&[64, 64], &mut rng);
    c.bench_function("matmul_64x64", |bencher| {
        bencher.iter(|| black_box(&a).matmul(black_box(&b)))
    });

    let input = Tensor::randn(&[4, 8, 12, 12], &mut rng);
    let weight = Tensor::randn(&[8, 8, 3, 3], &mut rng);
    c.bench_function("conv2d_fwd_4x8x12x12", |bencher| {
        bencher.iter(|| {
            yf_autograd::Graph::new();
            // Forward through the public graph API (includes tape push).
            let mut g = yf_autograd::Graph::new();
            let x = g.constant(black_box(input.clone()));
            let w = g.constant(black_box(weight.clone()));
            g.conv2d(x, w, ConvSpec::same3x3(1))
        })
    });
}

criterion_group!(benches, bench_tensor);
criterion_main!(benches);
