//! End-to-end model kernels: one loss+gradient evaluation for the two
//! main architecture families.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use yf_experiments::workloads::{cifar10_like, ptb_like};

fn bench_models(c: &mut Criterion) {
    let mut image = cifar10_like(1);
    let image_params = image.init_params();
    c.bench_function("resnet_loss_and_grad", |b| {
        let mut step = 0u64;
        b.iter(|| {
            step += 1;
            image.loss_grad_at(black_box(&image_params), step)
        })
    });

    let mut lm = ptb_like(1);
    let lm_params = lm.init_params();
    c.bench_function("lstm_lm_loss_and_grad", |b| {
        let mut step = 0u64;
        b.iter(|| {
            step += 1;
            lm.loss_grad_at(black_box(&lm_params), step)
        })
    });
}

criterion_group!(benches, bench_models);
criterion_main!(benches);
