//! Shared plumbing for the figure/table regenerators.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md §4 for the index): it prints the paper's
//! rows/series to stdout and writes CSV artifacts under
//! `target/experiments/`. Iteration counts scale with the `YF_SCALE`
//! environment variable (default 1.0) so the same binaries serve both a
//! quick smoke run and a longer, closer-to-paper run.

use yellowfin::{ClipMode, YellowFin, YellowFinConfig};
use yf_experiments::report;
use yf_experiments::smoothing::smooth;
use yf_experiments::task::TrainTask;
use yf_experiments::trainer::{train, RunConfig, RunResult};
use yf_optim::Optimizer;

/// The global iteration-scale factor (`YF_SCALE`, default 1.0).
pub fn scale() -> f64 {
    std::env::var("YF_SCALE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|v| *v > 0.0)
        .unwrap_or(1.0)
}

/// Scales an iteration count by [`scale`], keeping at least 10.
pub fn scaled(iters: usize) -> usize {
    ((iters as f64 * scale()) as usize).max(10)
}

/// The smoothing window the paper's protocol uses, adapted to run
/// length: the paper smooths 30k-120k-iteration runs with window 1000,
/// i.e. roughly `len / 30`.
pub fn window_for(iters: usize) -> usize {
    (iters / 30).max(5)
}

/// A fresh YellowFin with the paper's fixed constants.
pub fn yellowfin() -> YellowFin {
    YellowFin::new(YellowFinConfig::default())
}

/// A fresh YellowFin with adaptive clipping enabled.
pub fn yellowfin_clipped() -> YellowFin {
    YellowFin::new(YellowFinConfig {
        clip: ClipMode::Adaptive,
        ..Default::default()
    })
}

/// Trains `make_task(seed)` once per seed with `make_opt()` and returns
/// the seed-averaged raw loss curve plus averaged metric series.
pub fn averaged_run(
    seeds: &[u64],
    cfg: &RunConfig,
    mut make_task: impl FnMut(u64) -> Box<dyn TrainTask>,
    mut make_opt: impl FnMut() -> Box<dyn Optimizer>,
) -> (Vec<f32>, Vec<(u64, f64)>) {
    let mut curves = Vec::with_capacity(seeds.len());
    let mut runs: Vec<RunResult> = Vec::with_capacity(seeds.len());
    for &seed in seeds {
        let mut task = make_task(seed);
        let mut opt = make_opt();
        let result = train(task.as_mut(), opt.as_mut(), cfg);
        curves.push(result.losses.clone());
        runs.push(result);
    }
    let avg = yf_experiments::grid::average_curves(&curves);
    let metrics = yf_experiments::grid::average_metrics(&runs);
    (avg, metrics)
}

/// Prints a named, smoothed loss curve (downsampled) and returns the
/// smoothed series for further protocol computations.
pub fn emit_curve(label: &str, losses: &[f32], window: usize) -> Vec<f64> {
    let smoothed = smooth(losses, window);
    report::print_series(label, &report::downsample(&smoothed, 20));
    smoothed
}

/// CSV rows for a set of named curves sharing an iteration axis.
pub fn curves_to_rows(curves: &[(&str, &[f64])]) -> (Vec<String>, Vec<Vec<String>>) {
    let mut header = vec!["iteration".to_string()];
    header.extend(curves.iter().map(|(n, _)| n.to_string()));
    let len = curves.iter().map(|(_, c)| c.len()).min().unwrap_or(0);
    let mut rows = Vec::with_capacity(len);
    for i in 0..len {
        let mut row = vec![i.to_string()];
        for (_, c) in curves {
            row.push(report::fmt(c[i]));
        }
        rows.push(row);
    }
    (header, rows)
}

/// Writes named curves as CSV under the experiments dir.
pub fn write_curves_csv(file: &str, curves: &[(&str, &[f64])]) {
    let (header, rows) = curves_to_rows(curves);
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let path = report::write_csv(file, &header_refs, &rows);
    println!("(wrote {})", path.display());
}

/// A tiny learning-rate grid search (reduced from the Appendix I grids):
/// returns `(best_lr, averaged smoothed curve of the winner)`. Grid cells
/// run on scoped worker threads (`Fn + Sync` factories), with results
/// identical to the sequential sweep.
pub fn mini_grid(
    lrs: &[f32],
    seeds: &[u64],
    cfg: &RunConfig,
    window: usize,
    make_task: impl Fn(u64) -> Box<dyn TrainTask> + Sync + Copy,
    make_opt: impl Fn(f32) -> Box<dyn Optimizer> + Sync,
) -> (f32, Vec<f64>, Vec<(u64, f64)>) {
    let outcome = yf_experiments::grid::grid_search(lrs, seeds, window, cfg, make_task, make_opt);
    (outcome.best_value, outcome.best_curve, outcome.best_metrics)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_has_floor() {
        // Without the env var the scale is 1.0.
        assert_eq!(scaled(100), 100);
        assert_eq!(scaled(1), 10);
    }

    #[test]
    fn window_tracks_run_length() {
        assert_eq!(window_for(30_000), 1000);
        assert_eq!(window_for(60), 5);
    }

    #[test]
    fn curves_to_rows_aligns_lengths() {
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 5.0];
        let (header, rows) = curves_to_rows(&[("a", &a), ("b", &b)]);
        assert_eq!(header.len(), 3);
        assert_eq!(rows.len(), 2, "truncated to the shortest curve");
    }
}
