//! `perf_report` — times the core compute kernels against the retained
//! seed/reference kernels and writes `BENCH_kernels.json`, optionally
//! gating against a committed baseline.
//!
//! This is the repository's perf trajectory: CI runs it on every push,
//! compares against the committed `BENCH_kernels.json`, and uploads the
//! fresh JSON as an artifact, so kernel regressions (or wins) are visible
//! — and >35% regressions *fail* — per commit. Each entry records the
//! median ns/op of the current kernel, the median ns/op of the seed-era
//! kernel doing the same job, and the resulting speedup.
//!
//! The regression gate compares **speedups**, not absolute nanoseconds:
//! both the kernel and its seed counterpart run on the same machine in
//! the same process, so their ratio is far more stable across runner
//! hardware than raw timings.
//!
//! Environment knobs:
//! - `YF_PERF_SAMPLES` — samples per kernel for the median (default 9).
//! - `YF_PERF_OUT` — output path (default `BENCH_kernels.json`).
//! - `YF_PERF_BASELINE` — baseline JSON to gate against (exit 1 when a
//!   kernel's speedup falls more than the tolerance below the baseline).
//! - `YF_PERF_TOL` — gate tolerance as a fraction (default 0.35).
//! - `YF_PERF_SERVE_TOL` — gate tolerance for the `serve_measure_*`
//!   entries' absolute ns (default 0.75; see below).
//! - `YF_NUM_THREADS` — kernel-layer thread count, recorded in the JSON.
//!
//! Besides timings, the report records `fanouts_per_step`: the number of
//! worker-pool dispatches one full tuned optimizer step performs, and
//! hard-fails unless it is exactly 1 (the fused-runtime contract). It
//! also records session throughput for the `yf-serve` tuner server —
//! median ns per measurement over loopback TCP, for both wire dialects
//! (line JSON and the negotiated binary fast path, each forced
//! explicitly so the entries are stable under `YF_SERVE_WIRE`), at 1
//! and at 32 concurrent sessions, plus a pipelined entry running the
//! binary dialect with an 8-deep send-ahead window. The negotiated
//! dialect and that window are recorded in the header (`serve_wire`,
//! `serve_client_window`).
//!
//! The serve entries' *speedup* column is contextual (each seed is
//! re-measured in the same run: the in-process pipeline for the JSON
//! entries, the same-run JSON wire cost for the binary entries, the
//! unpipelined binary cost for the pipelined entry), so the gate does
//! not band it. Instead `serve_measure_*` entries gate on **absolute
//! median ns** against the committed baseline, within
//! `YF_PERF_SERVE_TOL` — and are skipped wholesale (with a warning)
//! when the baseline's `serve_wire` header does not match this run.
//!
//! The gate only compares runs at the **same thread count**: speedups of
//! the parallel kernels scale with cores, so a baseline recorded at a
//! different `threads` value is skipped entirely (with a warning) rather
//! than producing phantom regressions or free passes.

use std::fmt::Write as _;
use std::time::Instant;
use yellowfin::YellowFin;
use yf_autograd::conv::{self, reference as conv_ref};
use yf_autograd::norm::{self, reference as norm_ref};
use yf_autograd::ConvSpec;
use yf_optim::sharded::{apply_sharded, observe_sharded, step_sharded};
use yf_optim::{Adam, MomentumSgd, Optimizer};
use yf_serve::{
    Authority, Client, ClientConfig, FilterSpec, OpenSpec, ServeConfig, Server, Session,
    WireDialect,
};
use yf_tensor::gemm::reference as gemm_ref;
use yf_tensor::rng::Pcg32;
use yf_tensor::{parallel, Tensor};

/// The seed-era serial measure phase, retained as the perf baseline for
/// the fused sharded observe: copy the gradient into a scratch buffer,
/// clip it with a scalar norm loop, update the per-coordinate moment EMAs
/// in separate passes, and fold the variance estimate over every
/// coordinate — exactly the work `YellowFin::observe` did before the
/// partial-reduction pipeline replaced it.
struct SerialObserve {
    grad_buf: Vec<f32>,
    curvature: yellowfin::measurements::CurvatureRange,
    distance: yellowfin::measurements::DistanceToOpt,
    first: Vec<f64>,
    second: Vec<f64>,
    correction: f64,
    mu_ema: yellowfin::ema::Ema,
    lr_ema: yellowfin::ema::Ema,
}

impl SerialObserve {
    fn new(dim: usize) -> Self {
        let beta = 0.999;
        SerialObserve {
            grad_buf: Vec::with_capacity(dim),
            curvature: yellowfin::measurements::CurvatureRange::new(20, beta, false),
            distance: yellowfin::measurements::DistanceToOpt::new(beta),
            first: vec![0.0; dim],
            second: vec![0.0; dim],
            correction: 0.0,
            mu_ema: yellowfin::ema::Ema::new(beta),
            lr_ema: yellowfin::ema::Ema::new(beta),
        }
    }

    fn observe(&mut self, grads: &[f32]) {
        let beta = 0.999;
        // Full-gradient copy + serial norm loop (the deleted grad_buf path).
        self.grad_buf.clear();
        self.grad_buf.extend_from_slice(grads);
        let norm = self
            .grad_buf
            .iter()
            .map(|&g| f64::from(g) * f64::from(g))
            .sum::<f64>()
            .sqrt();
        self.curvature.observe(norm * norm);
        // Two separate per-coordinate EMA passes (seed-era VecEma).
        for (b, &g) in self.first.iter_mut().zip(&self.grad_buf) {
            *b = beta * *b + (1.0 - beta) * f64::from(g);
        }
        for (b, &g) in self.second.iter_mut().zip(&self.grad_buf) {
            *b = beta * *b + (1.0 - beta) * f64::from(g) * f64::from(g);
        }
        self.correction = beta * self.correction + (1.0 - beta);
        // Serial variance fold over the whole dimension.
        let mut variance = 0.0;
        for (&b1, &b2) in self.first.iter().zip(&self.second) {
            let m1 = b1 / self.correction;
            let m2 = b2 / self.correction;
            variance += (m2 - m1 * m1).max(0.0);
        }
        self.distance.observe(norm);
        let sol = yellowfin::cubic::single_step(
            variance,
            self.distance.distance(),
            self.curvature.h_min(),
            self.curvature.h_max(),
        );
        self.mu_ema.update(sol.mu);
        self.lr_ema.update(sol.lr);
    }
}

fn samples() -> usize {
    std::env::var("YF_PERF_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(9)
}

/// Median wall-clock ns of `f` over an odd number of samples (one untimed
/// warmup first).
fn median_ns(mut f: impl FnMut()) -> u128 {
    f();
    let n = samples() | 1;
    let mut times: Vec<u128> = (0..n)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_nanos()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

struct Entry {
    name: &'static str,
    median_ns: u128,
    seed_median_ns: u128,
}

impl Entry {
    fn speedup(&self) -> f64 {
        self.seed_median_ns as f64 / self.median_ns.max(1) as f64
    }
}

/// `serve_measure_*` entries gate on absolute ns, not on the speedup
/// band — their seed column is re-measured in the same run, so the
/// ratio can never regress no matter how slow the wire gets.
const SERVE_PREFIX: &str = "serve_measure_";

struct BaselineEntry {
    name: String,
    speedup: f64,
    median_ns: u128,
}

struct Baseline {
    threads: Option<usize>,
    /// The `serve_wire` header of the baseline run; absent in reports
    /// from before the binary fast path.
    serve_wire: Option<String>,
    entries: Vec<BaselineEntry>,
}

/// Parses the `"name": {"median_ns": .., "seed_median_ns": .., "speedup": ..}`
/// lines of a previously emitted `BENCH_kernels.json`, plus the
/// `threads` and `serve_wire` header fields. Hand-rolled because the
/// format is ours and the build environment is offline.
fn parse_baseline(text: &str) -> Baseline {
    let mut base = Baseline {
        threads: None,
        serve_wire: None,
        entries: Vec::new(),
    };
    for line in text.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("\"threads\":") {
            base.threads = rest.trim().trim_end_matches(',').parse::<usize>().ok();
            continue;
        }
        if let Some(rest) = line.strip_prefix("\"serve_wire\":") {
            base.serve_wire = Some(rest.trim().trim_matches([',', ' ', '"']).to_string());
            continue;
        }
        if !line.contains("\"median_ns\"") {
            continue;
        }
        let Some(name) = line.strip_prefix('"').and_then(|r| r.split('"').next()) else {
            continue;
        };
        let field = |key: &str| -> Option<&str> {
            line.split(key)
                .nth(1)
                .map(|r| r.trim().trim_end_matches(['}', ',', ' ']))
        };
        let Some(speedup) = field("\"speedup\":").and_then(|r| r.parse().ok()) else {
            continue;
        };
        let Some(median_ns) = field("\"median_ns\":")
            .and_then(|r| r.split(',').next())
            .and_then(|r| r.trim().parse().ok())
        else {
            continue;
        };
        base.entries.push(BaselineEntry {
            name: name.to_string(),
            speedup,
            median_ns,
        });
    }
    base
}

/// Compares fresh kernel entries against a baseline; returns the
/// kernels whose speedup regressed by more than `tol` (fractional).
/// `serve_measure_*` entries are excluded — see [`serve_regressions`].
fn regressions<'a>(
    entries: &'a [Entry],
    baseline: &'a [BaselineEntry],
    tol: f64,
) -> Vec<(&'a str, f64, f64)> {
    let mut bad = Vec::new();
    for e in entries {
        if e.name.starts_with(SERVE_PREFIX) {
            continue;
        }
        let Some(base) = baseline.iter().find(|b| b.name == e.name) else {
            continue; // new kernel: no baseline yet
        };
        let now = e.speedup();
        if now < base.speedup / (1.0 + tol) {
            bad.push((e.name, base.speedup, now));
        }
    }
    bad
}

/// The serve-entry gate: absolute median ns against the committed
/// baseline, failing entries slower than `base * (1 + tol)`. Loopback
/// wire timings are noisier than in-process kernel ratios, hence the
/// wide default tolerance.
fn serve_regressions<'a>(
    entries: &'a [Entry],
    baseline: &'a [BaselineEntry],
    tol: f64,
) -> Vec<(&'a str, u128, u128)> {
    let mut bad = Vec::new();
    for e in entries {
        if !e.name.starts_with(SERVE_PREFIX) {
            continue;
        }
        let Some(base) = baseline.iter().find(|b| b.name == e.name) else {
            continue;
        };
        if e.median_ns as f64 > base.median_ns as f64 * (1.0 + tol) {
            bad.push((e.name, base.median_ns, e.median_ns));
        }
    }
    bad
}

fn main() {
    let mut rng = Pcg32::seed(7);
    // Read the baseline up front: the output may overwrite the same file.
    let baseline = std::env::var("YF_PERF_BASELINE").ok().map(|path| {
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read baseline {path}: {e}"));
        (path, parse_baseline(&text))
    });
    let mut entries: Vec<Entry> = Vec::new();
    let mut push = |name: &'static str, median_ns: u128, seed_median_ns: u128| {
        let e = Entry {
            name,
            median_ns,
            seed_median_ns,
        };
        println!(
            "{name:<36} {:>12} ns  seed {:>12} ns  speedup {:>6.2}x",
            e.median_ns,
            e.seed_median_ns,
            e.speedup()
        );
        entries.push(e);
    };

    // --- Dense matmul: new blocked GEMM vs the seed ikj kernel. ---
    for &n in &[64usize, 256] {
        let a = Tensor::randn(&[n, n], &mut rng);
        let b = Tensor::randn(&[n, n], &mut rng);
        let new = median_ns(|| {
            std::hint::black_box(a.matmul(&b));
        });
        let (ad, bd) = (a.data(), b.data());
        let seed = median_ns(|| {
            std::hint::black_box(gemm_ref::matmul_ikj(n, n, n, ad, bd));
        });
        push(
            if n == 64 {
                "matmul_64x64"
            } else {
                "matmul_256x256"
            },
            new,
            seed,
        );
    }

    // --- Fused A·Bᵀ vs the seed path (materialize transpose, then ikj),
    // which is exactly what the matmul backward pass used to do. ---
    {
        let n = 256;
        let a = Tensor::randn(&[n, n], &mut rng);
        let b = Tensor::randn(&[n, n], &mut rng);
        let new = median_ns(|| {
            std::hint::black_box(a.matmul_nt(&b));
        });
        let seed = median_ns(|| {
            let bt = b.transpose();
            std::hint::black_box(gemm_ref::matmul_ikj(n, n, n, a.data(), bt.data()));
        });
        push("matmul_nt_256x256", new, seed);
    }

    // --- Convolutions: im2col/GEMM vs the seed direct loops. ---
    // (name, pass, input shape, weight shape, spec)
    type ConvCase = (
        &'static str,
        &'static str,
        &'static [usize],
        &'static [usize],
        ConvSpec,
    );
    let conv_cases: &[ConvCase] = &[
        (
            "conv2d_fwd_resnet_8x16x32x32",
            "fwd",
            &[8, 16, 32, 32],
            &[16, 16, 3, 3],
            ConvSpec {
                stride: 1,
                padding: 1,
                groups: 1,
            },
        ),
        (
            "conv2d_bwd_input_resnet_8x16x32x32",
            "bwd_input",
            &[8, 16, 32, 32],
            &[16, 16, 3, 3],
            ConvSpec {
                stride: 1,
                padding: 1,
                groups: 1,
            },
        ),
        (
            "conv2d_bwd_weight_resnet_8x16x32x32",
            "bwd_weight",
            &[8, 16, 32, 32],
            &[16, 16, 3, 3],
            ConvSpec {
                stride: 1,
                padding: 1,
                groups: 1,
            },
        ),
        (
            "conv2d_fwd_strided_8x16x32x32_s2",
            "fwd",
            &[8, 16, 32, 32],
            &[32, 16, 3, 3],
            ConvSpec {
                stride: 2,
                padding: 1,
                groups: 1,
            },
        ),
        (
            "conv2d_fwd_grouped_8x16x32x32_g4",
            "fwd",
            &[8, 16, 32, 32],
            &[32, 4, 3, 3],
            ConvSpec {
                stride: 1,
                padding: 1,
                groups: 4,
            },
        ),
        (
            "conv2d_fwd_pointwise_8x64x16x16",
            "fwd",
            &[8, 64, 16, 16],
            &[64, 64, 1, 1],
            ConvSpec {
                stride: 1,
                padding: 0,
                groups: 1,
            },
        ),
    ];
    for &(name, pass, in_shape, w_shape, spec) in conv_cases {
        let input = Tensor::randn(in_shape, &mut rng);
        let weight = Tensor::randn(w_shape, &mut rng);
        let out = conv::conv2d_forward(&input, &weight, spec);
        let grad = Tensor::randn(out.shape(), &mut rng);
        let (new, seed) = match pass {
            "fwd" => (
                median_ns(|| {
                    std::hint::black_box(conv::conv2d_forward(&input, &weight, spec));
                }),
                median_ns(|| {
                    std::hint::black_box(conv_ref::conv2d_forward(&input, &weight, spec));
                }),
            ),
            "bwd_input" => (
                median_ns(|| {
                    std::hint::black_box(conv::conv2d_backward_input(
                        input.shape(),
                        &weight,
                        &grad,
                        spec,
                    ));
                }),
                median_ns(|| {
                    std::hint::black_box(conv_ref::conv2d_backward_input(
                        input.shape(),
                        &weight,
                        &grad,
                        spec,
                    ));
                }),
            ),
            _ => {
                // The training-pipeline cost: the tape caches the batched
                // column matrix at forward time, so backward-weight is
                // one NT GEMM over the cached columns.
                let mut scratch = yf_tensor::Scratch::new();
                let (_, cache) = conv::conv2d_forward_caching(&input, &weight, spec, &mut scratch);
                (
                    median_ns(|| {
                        std::hint::black_box(conv::conv2d_backward_weight_cached(
                            &input,
                            weight.shape(),
                            &grad,
                            spec,
                            &mut scratch,
                            cache.as_ref(),
                        ));
                    }),
                    median_ns(|| {
                        std::hint::black_box(conv_ref::conv2d_backward_weight(
                            &input,
                            weight.shape(),
                            &grad,
                            spec,
                        ));
                    }),
                )
            }
        };
        push(name, new, seed);
    }

    // --- Backward-weight without the forward's column cache: the
    // transparent re-unroll fallback (columns packed straight from the
    // image inside the GEMM). ---
    {
        let spec = ConvSpec {
            stride: 1,
            padding: 1,
            groups: 1,
        };
        let input = Tensor::randn(&[8, 16, 32, 32], &mut rng);
        let weight = Tensor::randn(&[16, 16, 3, 3], &mut rng);
        let out = conv::conv2d_forward(&input, &weight, spec);
        let grad = Tensor::randn(out.shape(), &mut rng);
        let new = median_ns(|| {
            std::hint::black_box(conv::conv2d_backward_weight(
                &input,
                weight.shape(),
                &grad,
                spec,
            ));
        });
        let seed = median_ns(|| {
            std::hint::black_box(conv_ref::conv2d_backward_weight(
                &input,
                weight.shape(),
                &grad,
                spec,
            ));
        });
        push("conv2d_bwd_weight_reunroll_8x16x32x32", new, seed);
    }

    // --- Norm / softmax / pooling kernels: parallel fused reductions vs
    // the seed scalar loops (`yf_autograd::norm::reference`). ---
    let threads = parallel::num_threads();
    {
        let x = Tensor::randn(&[8, 32, 32, 32], &mut rng);
        let gamma = Tensor::randn(&[32], &mut rng).map(|v| 1.0 + 0.1 * v);
        let beta = Tensor::randn(&[32], &mut rng);
        let grad = Tensor::randn(x.shape(), &mut rng);
        let (_, saved) = norm::batch_norm_forward(&x, &gamma, &beta, 1e-5, threads);
        push(
            "batch_norm_fwd_8x32x32x32",
            median_ns(|| {
                std::hint::black_box(norm::batch_norm_forward(&x, &gamma, &beta, 1e-5, threads));
            }),
            median_ns(|| {
                std::hint::black_box(norm_ref::batch_norm_forward(&x, &gamma, &beta, 1e-5));
            }),
        );
        push(
            "batch_norm_bwd_8x32x32x32",
            median_ns(|| {
                std::hint::black_box(norm::batch_norm_backward(
                    &x, &gamma, &saved, &grad, threads,
                ));
            }),
            median_ns(|| {
                std::hint::black_box(norm_ref::batch_norm_backward(&x, &gamma, &saved, &grad));
            }),
        );
    }
    {
        let x = Tensor::randn(&[64, 1024], &mut rng);
        let gamma = Tensor::randn(&[1024], &mut rng).map(|v| 1.0 + 0.1 * v);
        let beta = Tensor::randn(&[1024], &mut rng);
        let grad = Tensor::randn(x.shape(), &mut rng);
        let (_, stats) = norm::layer_norm_forward(&x, &gamma, &beta, 1e-5, threads);
        push(
            "layer_norm_fwd_64x1024",
            median_ns(|| {
                std::hint::black_box(norm::layer_norm_forward(&x, &gamma, &beta, 1e-5, threads));
            }),
            median_ns(|| {
                std::hint::black_box(norm_ref::layer_norm_forward(&x, &gamma, &beta, 1e-5));
            }),
        );
        push(
            "layer_norm_bwd_64x1024",
            median_ns(|| {
                std::hint::black_box(norm::layer_norm_backward(
                    &x, &gamma, &stats, &grad, threads,
                ));
            }),
            median_ns(|| {
                std::hint::black_box(norm_ref::layer_norm_backward(&x, &gamma, &stats, &grad));
            }),
        );
    }
    {
        let logits = Tensor::randn(&[64, 4096], &mut rng);
        let targets: Vec<usize> = (0..64).map(|r| (r * 61) % 4096).collect();
        let (_, probs) = norm::softmax_xent_forward(&logits, &targets, threads);
        push(
            "softmax_ce_fwd_64x4096",
            median_ns(|| {
                std::hint::black_box(norm::softmax_xent_forward(&logits, &targets, threads));
            }),
            median_ns(|| {
                std::hint::black_box(norm_ref::softmax_xent_forward(&logits, &targets));
            }),
        );
        push(
            "softmax_ce_bwd_64x4096",
            median_ns(|| {
                std::hint::black_box(norm::softmax_xent_backward(&probs, &targets, 1.0, threads));
            }),
            median_ns(|| {
                std::hint::black_box(norm_ref::softmax_xent_backward(&probs, &targets, 1.0));
            }),
        );
    }
    {
        let x = Tensor::randn(&[8, 32, 32, 32], &mut rng);
        let (pooled, argmax) = norm::max_pool2x2_forward(&x, threads);
        let grad = Tensor::randn(pooled.shape(), &mut rng);
        push(
            "max_pool_fwd_8x32x32x32",
            median_ns(|| {
                std::hint::black_box(norm::max_pool2x2_forward(&x, threads));
            }),
            median_ns(|| {
                std::hint::black_box(norm_ref::max_pool2x2_forward(&x));
            }),
        );
        push(
            "max_pool_bwd_8x32x32x32",
            median_ns(|| {
                std::hint::black_box(norm::max_pool2x2_backward(
                    x.shape(),
                    &argmax,
                    &grad,
                    threads,
                ));
            }),
            median_ns(|| {
                std::hint::black_box(norm_ref::max_pool2x2_backward(x.shape(), &argmax, &grad));
            }),
        );
    }

    // --- Optimizer-step kernels: sharded apply vs single-thread apply on
    // ~1M parameters (the ShardedState + worker-pool payoff). The
    // "seed" column is the whole-vector single-shard path, which is
    // exactly what the one-phase API executed. ---
    {
        let n = 1 << 20;
        let grads: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
        let shards = parallel::num_threads();
        type OptCase = (&'static str, fn() -> Box<dyn Optimizer>);
        let cases: &[OptCase] = &[
            ("momentum_step_1M_sharded", || {
                Box::new(MomentumSgd::new(1e-4, 0.9))
            }),
            ("adam_step_1M_sharded", || Box::new(Adam::new(1e-4))),
        ];
        for &(name, make) in cases {
            let mut single = make();
            let mut params1 = vec![0.0f32; n];
            let single_ns = median_ns(|| {
                single.step(&mut params1, &grads);
                std::hint::black_box(&params1);
            });
            let mut sharded = make();
            let mut params2 = vec![0.0f32; n];
            let sharded_ns = median_ns(|| {
                step_sharded(sharded.as_mut(), &mut params2, &grads, shards);
                std::hint::black_box(&params2);
            });
            push(name, sharded_ns, single_ns);
        }
    }

    // --- The sharded measure phase on ~1M parameters: YellowFin's fused
    // partial-reduction observe (blocked Σg² fan-out + fused clip-scaled
    // EMA/variance sweep, no gradient copy) vs the seed-era serial path
    // (grad_buf copy, scalar norm loop, two EMA passes, whole-dimension
    // variance fold). The t1/t4 entries pin the shard count explicitly so
    // the trajectory is comparable across runner widths; on a 1-core
    // runner t4 only measures fan-out overhead. ---
    {
        let n = 1 << 20;
        let params = vec![0.0f32; n];
        let grads: Vec<f32> = (0..n).map(|_| rng.normal() * 0.01).collect();
        for &(name, observe_shards) in &[("observe_1M_t1", 1usize), ("observe_1M_t4", 4)] {
            let mut opt = YellowFin::default();
            let new = median_ns(|| {
                std::hint::black_box(observe_sharded(&mut opt, &params, &grads, observe_shards));
            });
            let mut seed_opt = SerialObserve::new(n);
            let seed = median_ns(|| {
                seed_opt.observe(&grads);
                std::hint::black_box(seed_opt.grad_buf.len());
            });
            push(name, new, seed);
        }

        // Full step: fused sharded observe + combine + sharded apply vs
        // the PR 3-era serial-observe-then-fan-out path (whole-vector
        // `observe`, then the same sharded apply).
        for &(name, t) in &[("yf_full_step_1M_t1", 1usize), ("yf_full_step_1M_t4", 4)] {
            let mut fused = YellowFin::default();
            let mut pf = params.clone();
            let new = median_ns(|| {
                step_sharded(&mut fused, &mut pf, &grads, t);
                std::hint::black_box(&pf);
            });
            let mut serial = YellowFin::default();
            let mut ps = params.clone();
            let seed = median_ns(|| {
                let hyper = serial.observe(&ps, &grads);
                apply_sharded(&serial, &mut ps, &grads, hyper, t);
                std::hint::black_box(&ps);
            });
            push(name, new, seed);
        }
    }

    // --- Tuning-as-a-service throughput: ns per measurement served
    // through the full yf-serve stack — loopback TCP, quality filter,
    // observe/combine, authority clamp (snapshots off) — in both wire
    // dialects, at 1 session and at 32 concurrent sessions, plus the
    // binary dialect under an 8-deep send-ahead window. Dialect and
    // window are forced per entry through an explicit [`ClientConfig`]
    // so the numbers do not move under `YF_SERVE_WIRE`.
    //
    // Seed columns are contextual (which is why these entries gate on
    // absolute ns, not the speedup band):
    // - `serve_measure_{1_session,32_sessions}`: the in-process session
    //   pipeline — the speedup reads as the fraction of local tuning
    //   throughput retained over the JSON wire.
    // - `serve_measure_binary_*`: the same-run JSON wire cost — the
    //   speedup is the binary fast path's wire gain.
    // - `serve_measure_pipelined`: the same-run lock-step binary cost —
    //   the speedup is what the send-ahead window buys.
    //
    // measurements/sec = 1e9 / median_ns. Each timed batch opens fresh
    // sessions (session steps are strictly sequential), so the
    // open/close handshake is amortized over `frames` measurements just
    // like a short training run.
    let serve_wire: &'static str = {
        let dim = 4096;
        let frames = 64usize;
        let grads: Vec<Vec<f32>> = (0..frames)
            .map(|_| (0..dim).map(|_| rng.normal() * 0.01).collect())
            .collect();

        fn open_spec(name: String, dim: usize) -> OpenSpec {
            OpenSpec {
                session: name,
                optimizer: "yellowfin".to_string(),
                value: 0.1,
                dim,
                authority: Authority::default(),
                filter: FilterSpec::default(),
            }
        }

        fn wire_cfg(wire: WireDialect, window: usize) -> ClientConfig {
            ClientConfig {
                wire,
                window,
                ..ClientConfig::default()
            }
        }

        /// One client streaming one session end to end: connect, open,
        /// `frames` measurements `window` ahead, close.
        fn stream_one(
            addr: std::net::SocketAddr,
            cfg: &ClientConfig,
            spec: OpenSpec,
            grads: &[Vec<f32>],
        ) {
            let mut client = Client::connect_with(addr, cfg).expect("connect yf-serve");
            let name = spec.session.clone();
            client.open(spec).expect("open session");
            if cfg.window > 1 {
                for (i, g) in grads.iter().enumerate() {
                    std::hint::black_box(
                        client
                            .submit_measure(&name, i as u64, 0.5, g)
                            .expect("submit"),
                    );
                }
                std::hint::black_box(client.drain_verdicts().expect("drain"));
            } else {
                for (i, g) in grads.iter().enumerate() {
                    std::hint::black_box(client.measure(&name, i as u64, 0.5, g).expect("measure"));
                }
            }
            client.close_session(&name).expect("close session");
        }

        let server = Server::start(ServeConfig {
            snapshot_dir: None,
            ..ServeConfig::default()
        })
        .expect("start yf-serve");
        let addr = server.local_addr();
        let json_cfg = wire_cfg(WireDialect::Json, 1);
        let bin_cfg = wire_cfg(WireDialect::Binary, 1);
        let piped_cfg = wire_cfg(WireDialect::Binary, 8);
        let mut round = 0u64;

        // Seed for the JSON entries: the same measurement stream through
        // an in-process Session (no wire).
        let local_batch = median_ns(|| {
            round += 1;
            let mut s = Session::new(open_spec(format!("local-{round}"), dim)).unwrap();
            for (i, g) in grads.iter().enumerate() {
                std::hint::black_box(s.measure(i as u64, 0.5, g).unwrap());
            }
        });
        let local = (local_batch / frames as u128).max(1);

        let json_one = {
            let batch = median_ns(|| {
                round += 1;
                stream_one(
                    addr,
                    &json_cfg,
                    open_spec(format!("one-{round}"), dim),
                    &grads,
                );
            });
            (batch / frames as u128).max(1)
        };
        push("serve_measure_1_session", json_one, local);

        let bin_one = {
            let batch = median_ns(|| {
                round += 1;
                stream_one(
                    addr,
                    &bin_cfg,
                    open_spec(format!("bin-{round}"), dim),
                    &grads,
                );
            });
            (batch / frames as u128).max(1)
        };
        push("serve_measure_binary_1_session", bin_one, json_one);

        let piped = {
            let batch = median_ns(|| {
                round += 1;
                stream_one(
                    addr,
                    &piped_cfg,
                    open_spec(format!("pipe-{round}"), dim),
                    &grads,
                );
            });
            (batch / frames as u128).max(1)
        };
        push("serve_measure_pipelined", piped, bin_one);

        let many = 32usize;
        let mut stream_many = |cfg: &ClientConfig, tag: &str| {
            let round = &mut round;
            let batch = median_ns(|| {
                *round += 1;
                let r = *round;
                std::thread::scope(|scope| {
                    for t in 0..many {
                        let grads = &grads;
                        scope.spawn(move || {
                            stream_one(addr, cfg, open_spec(format!("{tag}{r}-{t}"), dim), grads);
                        });
                    }
                });
            });
            (batch / (many * frames) as u128).max(1)
        };
        let json_many = stream_many(&json_cfg, "s");
        push("serve_measure_32_sessions", json_many, local);
        let bin_many = stream_many(&bin_cfg, "b");
        push("serve_measure_binary_32_sessions", bin_many, json_many);

        // Record what the server actually negotiated when asked for the
        // fast path — "binary" unless the server downgraded us.
        let mut probe = Client::connect_with(addr, &bin_cfg).expect("connect yf-serve");
        probe
            .open(open_spec("wire-probe".to_string(), 8))
            .expect("open probe");
        let negotiated = probe.wire().as_str();
        let _ = probe.close_session("wire-probe");
        let _ = server.drain();
        negotiated
    };
    let serve_client_window = 8usize;

    // --- Dispatch accounting: one full tuned optimizer step (measure →
    // combine → apply, 1M params, 4 shards) must ride exactly one pool
    // fan-out. The counter is thread-local, so this measurement cannot be
    // skewed by anything else; a second dispatch per step is a structural
    // regression of the fused runtime and fails the report outright. ---
    let fanouts_per_step = {
        let n = 1 << 20;
        let mut opt = YellowFin::default();
        let mut params = vec![0.0f32; n];
        let grads: Vec<f32> = (0..n).map(|_| rng.normal() * 0.01).collect();
        step_sharded(&mut opt, &mut params, &grads, 4); // warm (lazy state init)
        let before = parallel::fanout_count();
        step_sharded(&mut opt, &mut params, &grads, 4);
        parallel::fanout_count() - before
    };
    println!("{:<36} {fanouts_per_step:>12} per step", "pool_fanouts");
    assert_eq!(
        fanouts_per_step, 1,
        "fused optimizer step must be exactly one pool dispatch"
    );

    // --- Emit BENCH_kernels.json. ---
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"generated_by\": \"perf_report\",");
    let _ = writeln!(json, "  \"samples_per_kernel\": {},", samples() | 1);
    let _ = writeln!(json, "  \"threads\": {},", parallel::num_threads());
    let _ = writeln!(json, "  \"fanouts_per_step\": {fanouts_per_step},");
    let _ = writeln!(
        json,
        "  \"simd\": \"{}\",",
        yf_tensor::gemm::detected_simd()
    );
    let bl = yf_tensor::gemm::blocks();
    let _ = writeln!(
        json,
        "  \"gemm_blocks\": \"{},{},{}\",",
        bl.mc, bl.kc, bl.nc
    );
    let _ = writeln!(json, "  \"serve_wire\": \"{serve_wire}\",");
    let _ = writeln!(json, "  \"serve_client_window\": {serve_client_window},");
    let _ = writeln!(json, "  \"unit\": \"median ns per op\",");
    let _ = writeln!(json, "  \"kernels\": {{");
    for (i, e) in entries.iter().enumerate() {
        let comma = if i + 1 == entries.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    \"{}\": {{\"median_ns\": {}, \"seed_median_ns\": {}, \"speedup\": {:.3}}}{comma}",
            e.name,
            e.median_ns,
            e.seed_median_ns,
            e.speedup()
        );
    }
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");
    let out_path =
        std::env::var("YF_PERF_OUT").unwrap_or_else(|_| "BENCH_kernels.json".to_string());
    // Atomic replace: a crashed run never leaves a truncated baseline
    // for the regression gate to choke on.
    yf_experiments::fleet::fsio::write_atomic(std::path::Path::new(&out_path), json.as_bytes())
        .expect("write BENCH_kernels.json");
    println!("\nwrote {out_path}");

    // --- Regression gate against the committed baseline. ---
    if let Some((path, baseline)) = baseline {
        // Parallel-kernel speedups scale with the machine width; gating a
        // 16-thread run against a 1-thread baseline (or vice versa) would
        // manufacture regressions or free passes. Skip, loudly.
        let now_threads = parallel::num_threads();
        if baseline.threads != Some(now_threads) {
            eprintln!(
                "perf gate: WARNING: baseline {path} was recorded at {} threads, \
                 this run uses {now_threads}; skipping all baseline entries",
                baseline
                    .threads
                    .map_or("unknown".to_string(), |t| t.to_string()),
            );
            return;
        }
        let tol: f64 = std::env::var("YF_PERF_TOL")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|t| *t > 0.0)
            .unwrap_or(0.35);
        let mut failed = false;
        let bad = regressions(&entries, &baseline.entries, tol);
        if bad.is_empty() {
            println!(
                "perf gate: all kernel speedups within {:.0}% of {path}",
                tol * 100.0
            );
        } else {
            failed = true;
            eprintln!(
                "perf gate: kernel speedups regressed >{:.0}% vs {path}:",
                tol * 100.0
            );
            for (name, base, now) in &bad {
                eprintln!("  {name}: {base:.2}x -> {now:.2}x");
            }
        }
        // The serve entries: absolute ns against the baseline, but only
        // when the baseline's wire dialect matches this run — comparing
        // a binary-negotiated run against a JSON baseline (or against a
        // pre-fast-path report with no serve_wire header) would gate
        // apples against oranges.
        if baseline.serve_wire.as_deref() != Some(serve_wire) {
            eprintln!(
                "perf gate: WARNING: baseline {path} serve wire is {:?}, this run \
                 negotiated {serve_wire:?}; skipping the serve_measure_* entries",
                baseline.serve_wire.as_deref().unwrap_or("unrecorded"),
            );
        } else {
            let serve_tol: f64 = std::env::var("YF_PERF_SERVE_TOL")
                .ok()
                .and_then(|v| v.parse().ok())
                .filter(|t| *t > 0.0)
                .unwrap_or(0.75);
            let bad = serve_regressions(&entries, &baseline.entries, serve_tol);
            if bad.is_empty() {
                println!(
                    "perf gate: all serve_measure_* entries within {:.0}% of {path}",
                    serve_tol * 100.0
                );
            } else {
                failed = true;
                eprintln!(
                    "perf gate: serve throughput regressed >{:.0}% vs {path}:",
                    serve_tol * 100.0
                );
                for (name, base, now) in &bad {
                    eprintln!("  {name}: {base} ns -> {now} ns");
                }
            }
        }
        if failed {
            std::process::exit(1);
        }
    }
}
