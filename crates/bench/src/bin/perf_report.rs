//! `perf_report` — times the core compute kernels against the retained
//! seed/reference kernels and writes `BENCH_kernels.json`.
//!
//! This is the repository's perf trajectory: CI runs it on every push and
//! uploads the JSON as an artifact, so kernel regressions (or wins) are
//! visible per commit. Each entry records the median ns/op of the current
//! kernel, the median ns/op of the seed-era kernel doing the same job,
//! and the resulting speedup.
//!
//! Environment knobs:
//! - `YF_PERF_SAMPLES` — samples per kernel for the median (default 9).
//! - `YF_PERF_OUT` — output path (default `BENCH_kernels.json`).
//! - `YF_NUM_THREADS` — kernel-layer thread count, recorded in the JSON.

use std::fmt::Write as _;
use std::time::Instant;
use yf_autograd::conv::{self, reference as conv_ref};
use yf_autograd::ConvSpec;
use yf_tensor::gemm::reference as gemm_ref;
use yf_tensor::rng::Pcg32;
use yf_tensor::{parallel, Tensor};

fn samples() -> usize {
    std::env::var("YF_PERF_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(9)
}

/// Median wall-clock ns of `f` over an odd number of samples (one untimed
/// warmup first).
fn median_ns(mut f: impl FnMut()) -> u128 {
    f();
    let n = samples() | 1;
    let mut times: Vec<u128> = (0..n)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_nanos()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

struct Entry {
    name: &'static str,
    median_ns: u128,
    seed_median_ns: u128,
}

impl Entry {
    fn speedup(&self) -> f64 {
        self.seed_median_ns as f64 / self.median_ns.max(1) as f64
    }
}

fn main() {
    let mut rng = Pcg32::seed(7);
    let mut entries: Vec<Entry> = Vec::new();
    let mut push = |name: &'static str, median_ns: u128, seed_median_ns: u128| {
        let e = Entry {
            name,
            median_ns,
            seed_median_ns,
        };
        println!(
            "{name:<36} {:>12} ns  seed {:>12} ns  speedup {:>6.2}x",
            e.median_ns,
            e.seed_median_ns,
            e.speedup()
        );
        entries.push(e);
    };

    // --- Dense matmul: new blocked GEMM vs the seed ikj kernel. ---
    for &n in &[64usize, 256] {
        let a = Tensor::randn(&[n, n], &mut rng);
        let b = Tensor::randn(&[n, n], &mut rng);
        let new = median_ns(|| {
            std::hint::black_box(a.matmul(&b));
        });
        let (ad, bd) = (a.data(), b.data());
        let seed = median_ns(|| {
            std::hint::black_box(gemm_ref::matmul_ikj(n, n, n, ad, bd));
        });
        push(
            if n == 64 {
                "matmul_64x64"
            } else {
                "matmul_256x256"
            },
            new,
            seed,
        );
    }

    // --- Fused A·Bᵀ vs the seed path (materialize transpose, then ikj),
    // which is exactly what the matmul backward pass used to do. ---
    {
        let n = 256;
        let a = Tensor::randn(&[n, n], &mut rng);
        let b = Tensor::randn(&[n, n], &mut rng);
        let new = median_ns(|| {
            std::hint::black_box(a.matmul_nt(&b));
        });
        let seed = median_ns(|| {
            let bt = b.transpose();
            std::hint::black_box(gemm_ref::matmul_ikj(n, n, n, a.data(), bt.data()));
        });
        push("matmul_nt_256x256", new, seed);
    }

    // --- Convolutions: im2col/GEMM vs the seed direct loops. ---
    // (name, pass, input shape, weight shape, spec)
    type ConvCase = (
        &'static str,
        &'static str,
        &'static [usize],
        &'static [usize],
        ConvSpec,
    );
    let conv_cases: &[ConvCase] = &[
        (
            "conv2d_fwd_resnet_8x16x32x32",
            "fwd",
            &[8, 16, 32, 32],
            &[16, 16, 3, 3],
            ConvSpec {
                stride: 1,
                padding: 1,
                groups: 1,
            },
        ),
        (
            "conv2d_bwd_input_resnet_8x16x32x32",
            "bwd_input",
            &[8, 16, 32, 32],
            &[16, 16, 3, 3],
            ConvSpec {
                stride: 1,
                padding: 1,
                groups: 1,
            },
        ),
        (
            "conv2d_bwd_weight_resnet_8x16x32x32",
            "bwd_weight",
            &[8, 16, 32, 32],
            &[16, 16, 3, 3],
            ConvSpec {
                stride: 1,
                padding: 1,
                groups: 1,
            },
        ),
        (
            "conv2d_fwd_strided_8x16x32x32_s2",
            "fwd",
            &[8, 16, 32, 32],
            &[32, 16, 3, 3],
            ConvSpec {
                stride: 2,
                padding: 1,
                groups: 1,
            },
        ),
        (
            "conv2d_fwd_grouped_8x16x32x32_g4",
            "fwd",
            &[8, 16, 32, 32],
            &[32, 4, 3, 3],
            ConvSpec {
                stride: 1,
                padding: 1,
                groups: 4,
            },
        ),
        (
            "conv2d_fwd_pointwise_8x64x16x16",
            "fwd",
            &[8, 64, 16, 16],
            &[64, 64, 1, 1],
            ConvSpec {
                stride: 1,
                padding: 0,
                groups: 1,
            },
        ),
    ];
    for &(name, pass, in_shape, w_shape, spec) in conv_cases {
        let input = Tensor::randn(in_shape, &mut rng);
        let weight = Tensor::randn(w_shape, &mut rng);
        let out = conv::conv2d_forward(&input, &weight, spec);
        let grad = Tensor::randn(out.shape(), &mut rng);
        let (new, seed) = match pass {
            "fwd" => (
                median_ns(|| {
                    std::hint::black_box(conv::conv2d_forward(&input, &weight, spec));
                }),
                median_ns(|| {
                    std::hint::black_box(conv_ref::conv2d_forward(&input, &weight, spec));
                }),
            ),
            "bwd_input" => (
                median_ns(|| {
                    std::hint::black_box(conv::conv2d_backward_input(
                        input.shape(),
                        &weight,
                        &grad,
                        spec,
                    ));
                }),
                median_ns(|| {
                    std::hint::black_box(conv_ref::conv2d_backward_input(
                        input.shape(),
                        &weight,
                        &grad,
                        spec,
                    ));
                }),
            ),
            _ => (
                median_ns(|| {
                    std::hint::black_box(conv::conv2d_backward_weight(
                        &input,
                        weight.shape(),
                        &grad,
                        spec,
                    ));
                }),
                median_ns(|| {
                    std::hint::black_box(conv_ref::conv2d_backward_weight(
                        &input,
                        weight.shape(),
                        &grad,
                        spec,
                    ));
                }),
            ),
        };
        push(name, new, seed);
    }

    // --- Emit BENCH_kernels.json. ---
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"generated_by\": \"perf_report\",");
    let _ = writeln!(json, "  \"samples_per_kernel\": {},", samples() | 1);
    let _ = writeln!(json, "  \"threads\": {},", parallel::num_threads());
    let _ = writeln!(
        json,
        "  \"simd\": \"{}\",",
        yf_tensor::gemm::detected_simd()
    );
    let _ = writeln!(json, "  \"unit\": \"median ns per op\",");
    let _ = writeln!(json, "  \"kernels\": {{");
    for (i, e) in entries.iter().enumerate() {
        let comma = if i + 1 == entries.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    \"{}\": {{\"median_ns\": {}, \"seed_median_ns\": {}, \"speedup\": {:.3}}}{comma}",
            e.name,
            e.median_ns,
            e.seed_median_ns,
            e.speedup()
        );
    }
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");
    let out_path =
        std::env::var("YF_PERF_OUT").unwrap_or_else(|_| "BENCH_kernels.json".to_string());
    std::fs::write(&out_path, json).expect("write BENCH_kernels.json");
    println!("\nwrote {out_path}");
}
