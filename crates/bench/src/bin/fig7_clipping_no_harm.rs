//! Figure 7 (Appendix F): adaptive clipping does not hurt on objectives
//! without instabilities — YellowFin with and without adaptive clipping
//! converges to the same loss on the PTB-like LSTM and the CIFAR10-like
//! ResNet.

use yf_bench::{averaged_run, scaled, window_for, yellowfin, yellowfin_clipped};
use yf_experiments::report;
use yf_experiments::smoothing::smooth;
use yf_experiments::trainer::RunConfig;
use yf_experiments::workloads::{cifar10_like, ptb_like, TaskBuilder};
use yf_optim::Optimizer;

fn main() {
    println!("== Figure 7: YellowFin with vs without adaptive clipping ==\n");
    let iters = scaled(1200);
    let window = window_for(iters);
    let seeds = [1u64, 2];
    let cfg = RunConfig::plain(iters);

    for (name, make_task) in [
        ("PTB-like LSTM", ptb_like as TaskBuilder),
        ("CIFAR10-like ResNet", cifar10_like as TaskBuilder),
    ] {
        let (with_losses, _) = averaged_run(&seeds, &cfg, make_task, || {
            Box::new(yellowfin_clipped()) as Box<dyn Optimizer>
        });
        let (without_losses, _) = averaged_run(&seeds, &cfg, make_task, || {
            Box::new(yellowfin()) as Box<dyn Optimizer>
        });
        let with_curve = smooth(&with_losses, window);
        let without_curve = smooth(&without_losses, window);
        report::print_series(
            &format!("{name}: YF with clipping"),
            &report::downsample(&with_curve, 12),
        );
        report::print_series(
            &format!("{name}: YF without clipping"),
            &report::downsample(&without_curve, 12),
        );
        // Paper's claim: "the difference ... diminishes quickly".
        let tail = iters * 3 / 4;
        let gap_late = (with_curve[tail..]
            .iter()
            .zip(&without_curve[tail..])
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>())
            / (iters - tail) as f64;
        let initial = without_curve.first().copied().unwrap_or(1.0);
        println!(
            "{name}: mean |gap| over the last quarter = {} ({}% of the initial loss)\n",
            report::fmt(gap_late),
            report::fmt(100.0 * gap_late / initial.max(1e-12))
        );
        yf_bench::write_curves_csv(
            &format!(
                "fig7_{}.csv",
                name.split('-').next().unwrap_or("x").to_lowercase()
            ),
            &[
                ("yf_with_clip", with_curve.as_slice()),
                ("yf_without_clip", without_curve.as_slice()),
            ],
        );
    }
}
