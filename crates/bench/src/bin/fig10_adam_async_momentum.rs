//! Figure 10 (Appendix J.3): hand-tuning Adam's momentum (beta1) under
//! asynchrony on the PTB-like LSTM with 16 round-robin workers.
//!
//! The paper sweeps beta1 in {-0.2, 0.0, 0.3, 0.5, 0.7, 0.9} with the
//! learning rate fixed at its synchronous optimum and finds that lowering
//! beta1 (even below zero) measurably improves training loss — i.e.
//! prescribed momentum is suboptimal under asynchrony.

use yf_bench::{scaled, window_for};
use yf_experiments::report;
use yf_experiments::smoothing::smooth;
use yf_experiments::trainer::{train_async, RunConfig};
use yf_experiments::workloads::ptb_like;
use yf_optim::Adam;

const WORKERS: usize = 16;

fn main() {
    println!("== Figure 10: Adam's beta1 under asynchrony (PTB-like, 16 workers) ==\n");
    let iters = scaled(1500);
    let window = window_for(iters);
    let seeds = [1u64, 2];
    let cfg = RunConfig::plain(iters);
    let lr = 1e-3; // synchronous optimum from the Appendix I grid
    let betas = [-0.2f32, 0.0, 0.3, 0.5, 0.7, 0.9];

    let mut finals = Vec::new();
    let mut all_curves = Vec::new();
    for &b1 in &betas {
        let mut curves = Vec::new();
        for &seed in &seeds {
            let mut task = ptb_like(seed);
            let mut opt = Adam::with_betas(lr, b1, 0.999);
            let r = train_async(task.as_mut(), &mut opt, WORKERS, &cfg);
            curves.push(r.losses);
        }
        let avg = yf_experiments::grid::average_curves(&curves);
        let smoothed = smooth(&avg, window);
        let lowest = smoothed.iter().copied().fold(f64::INFINITY, f64::min);
        println!(
            "beta1 = {b1:+.1}: lowest smoothed loss = {}",
            report::fmt(lowest)
        );
        report::print_series(
            &format!("beta1 = {b1:+.1}"),
            &report::downsample(&smoothed, 10),
        );
        finals.push((b1, lowest));
        all_curves.push((format!("beta1={b1}"), smoothed));
    }

    let best = finals
        .iter()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("non-empty sweep");
    println!(
        "\nbest beta1 under asynchrony: {:+.1} (paper: values below the prescribed 0.9 \
         win; momentum tuning matters in asynchronous settings)",
        best.0
    );

    let refs: Vec<(&str, &[f64])> = all_curves
        .iter()
        .map(|(l, c)| (l.as_str(), c.as_slice()))
        .collect();
    yf_bench::write_curves_csv("fig10_adam_beta1.csv", &refs);
    report::write_csv(
        "fig10_summary.csv",
        &["beta1", "lowest_smoothed_loss"],
        &finals
            .iter()
            .map(|(b, l)| vec![format!("{b}"), report::fmt(*l)])
            .collect::<Vec<_>>(),
    );
}
