//! Figure 2: spectral radius of the momentum operator on a scalar
//! quadratic (h = 1) as a function of the learning rate, for
//! mu in {0.0, 0.1, 0.3, 0.5}.
//!
//! The paper's plot shows each curve dipping to a flat plateau at
//! sqrt(mu) — the robust region — that widens as momentum grows.

use yellowfin::theory::{momentum_spectral_radius, robust_lr_range};
use yf_experiments::report;

fn main() {
    println!("== Figure 2: spectral radius of the momentum operator (h = 1) ==\n");
    let h = 1.0;
    let mus = [0.0, 0.1, 0.3, 0.5];
    let alphas: Vec<f64> = (0..=300).map(|i| i as f64 * 0.01).collect();

    let mut rows = Vec::new();
    for &alpha in &alphas {
        let mut row = vec![format!("{alpha:.2}")];
        for &mu in &mus {
            row.push(report::fmt(momentum_spectral_radius(alpha, mu, h)));
        }
        rows.push(row);
    }
    report::write_csv(
        "fig2_spectral_radius.csv",
        &["alpha", "mu=0.0", "mu=0.1", "mu=0.3", "mu=0.5"],
        &rows,
    );

    for &mu in &mus {
        let (lo, hi_raw) = robust_lr_range(mu, h, h);
        let hi = (1.0 + mu.sqrt()).powi(2) / h;
        let _ = hi_raw;
        println!(
            "mu = {mu:.1}: robust region alpha in [{lo:.3}, {hi:.3}] (width {:.3}), plateau rho = {:.4}",
            hi - lo,
            mu.sqrt()
        );
        // Print a short series like the plotted curve.
        let sample: Vec<(usize, f64)> = alphas
            .iter()
            .step_by(25)
            .map(|&a| ((a * 100.0) as usize, momentum_spectral_radius(a, mu, h)))
            .collect();
        report::print_series(&format!("rho(A) vs 100*alpha, mu={mu}"), &sample);
    }

    // The headline property: the plateau width grows with momentum.
    println!("\nplateau widths (paper: higher momentum tolerates more lr misspecification):");
    for &mu in &mus {
        let width = (1.0 + mu.sqrt()).powi(2) - (1.0 - mu.sqrt()).powi(2);
        println!("  mu = {mu:.1}: width = {width:.3} (= 4 sqrt(mu))");
    }
    println!("(wrote target/experiments/fig2_spectral_radius.csv)");
}
