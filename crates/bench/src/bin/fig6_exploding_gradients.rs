//! Figure 6 (Appendix F): an LSTM objective with exploding gradients —
//! gradient norms and training loss with and without YellowFin's
//! adaptive clipping.
//!
//! The paper's variant (a ternary-quantized LSTM) has "occasional but
//! very steep slopes": at rare steps the landscape multiplies the
//! gradient by orders of magnitude. At this reproduction's model scale a
//! small LSTM saturates rather than explodes, so we graft the steep
//! region onto the real LSTM objective directly: every `SPIKE_PERIOD`-th
//! minibatch sits on a cliff that scales the true gradient by
//! `SPIKE_FACTOR` (DESIGN.md §3 documents this substitution). Everything
//! downstream — measurement, thresholding, the Eq. 35 growth clamp — is
//! the real tuner code.

use yellowfin::{ClipMode, YellowFin, YellowFinConfig};
use yf_bench::scaled;
use yf_experiments::report;
use yf_experiments::workloads::exploding_lstm_like;
use yf_optim::Optimizer;

const SPIKE_PERIOD: u64 = 97;
const SPIKE_FACTOR: f32 = 300.0;

fn run(clip: ClipMode, iters: usize) -> (Vec<f64>, Vec<f32>) {
    let mut task = exploding_lstm_like(3);
    let mut params = task.init_params();
    let mut opt = YellowFin::new(YellowFinConfig {
        clip,
        ..Default::default()
    });
    let mut norms = Vec::with_capacity(iters);
    let mut losses = Vec::with_capacity(iters);
    for step in 0..iters {
        let (loss, mut grad) = task.loss_grad_at(&params, step as u64);
        if step as u64 % SPIKE_PERIOD == SPIKE_PERIOD - 1 {
            for g in &mut grad {
                *g *= SPIKE_FACTOR;
            }
        }
        opt.step(&mut params, &grad);
        norms.push(opt.last_grad_norm().unwrap_or(0.0));
        losses.push(if loss.is_finite() { loss } else { f32::MAX });
        if !params.iter().all(|p| p.is_finite()) {
            // Divergence: fill the remainder so the curves stay aligned.
            for _ in step + 1..iters {
                norms.push(f64::INFINITY);
                losses.push(f32::MAX);
            }
            break;
        }
    }
    (norms, losses)
}

fn main() {
    println!("== Figure 6: exploding gradients, with vs without adaptive clipping ==\n");
    let iters = scaled(600);
    let (norms_off, losses_off) = run(ClipMode::None, iters);
    let (norms_on, losses_on) = run(ClipMode::Adaptive, iters);

    let peak = |xs: &[f64]| xs.iter().copied().fold(0.0f64, f64::max);
    // A catastrophic spike: smoothed loss rises 30%+ above the best
    // smoothed loss reached so far (training progress destroyed).
    let loss_spikes = |xs: &[f32]| {
        let s = yf_experiments::smoothing::smooth(xs, 10);
        let mut best = f64::INFINITY;
        let mut spikes = 0usize;
        let mut in_spike = false;
        for &v in &s {
            if v > 1.3 * best && best.is_finite() {
                if !in_spike {
                    spikes += 1;
                }
                in_spike = true;
            } else {
                in_spike = false;
            }
            best = best.min(v);
        }
        spikes
    };
    println!(
        "without clipping: peak grad norm = {:.3e}, catastrophic loss spikes = {}",
        peak(&norms_off),
        loss_spikes(&losses_off)
    );
    println!(
        "with adaptive clipping: peak grad norm = {:.3e}, catastrophic loss spikes = {}",
        peak(&norms_on),
        loss_spikes(&losses_on)
    );
    let tail_mean = |xs: &[f32]| {
        let t = &xs[xs.len() * 3 / 4..];
        t.iter().map(|&v| f64::from(v)).sum::<f64>() / t.len() as f64
    };
    println!(
        "final-quarter mean loss: without = {}, with = {}",
        report::fmt(tail_mean(&losses_off)),
        report::fmt(tail_mean(&losses_on))
    );
    println!("(paper: adaptive clipping prevents the catastrophic loss spikes)\n");

    let series = |xs: &[f64]| report::downsample(xs, 15);
    report::print_series("grad norm without clipping", &series(&norms_off));
    report::print_series("grad norm with adaptive clipping", &series(&norms_on));
    let l_off: Vec<f64> = losses_off.iter().map(|&v| f64::from(v)).collect();
    let l_on: Vec<f64> = losses_on.iter().map(|&v| f64::from(v)).collect();
    report::print_series("loss without clipping", &series(&l_off));
    report::print_series("loss with adaptive clipping", &series(&l_on));

    yf_bench::write_curves_csv(
        "fig6_exploding.csv",
        &[
            ("norm_no_clip", norms_off.as_slice()),
            ("norm_adaptive_clip", norms_on.as_slice()),
            ("loss_no_clip", l_off.as_slice()),
            ("loss_adaptive_clip", l_on.as_slice()),
        ],
    );
}
