//! Figure 1: YellowFin vs Adam on the CIFAR100-like ResNet, synchronous
//! (left) and asynchronous with 16 round-robin workers (right), where
//! closed-loop YellowFin additionally compensates asynchrony-induced
//! momentum.

use yellowfin::{ClosedLoopYellowFin, YellowFinConfig};
use yf_bench::{averaged_run, emit_curve, scaled, window_for, yellowfin};
use yf_experiments::speedup::speedup_over;
use yf_experiments::trainer::{train_async, RunConfig};
use yf_experiments::workloads::cifar100_like;
use yf_optim::{Adam, Optimizer};

const WORKERS: usize = 16;

fn main() {
    println!("== Figure 1: CIFAR100-like ResNet, sync (left) and async (right) ==\n");
    let seeds = [1u64, 2];

    // --- Synchronous panel ---
    let iters = scaled(1500);
    let window = window_for(iters);
    let cfg = RunConfig::plain(iters);
    let (_, adam_curve, _) = yf_bench::mini_grid(
        &[1e-4, 1e-3, 1e-2],
        &seeds,
        &cfg,
        window,
        cifar100_like,
        |lr| Box::new(Adam::new(lr)) as Box<dyn Optimizer>,
    );
    let (yf_losses, _) = averaged_run(&seeds, &cfg, cifar100_like, || {
        Box::new(yellowfin()) as Box<dyn Optimizer>
    });
    let yf_curve = emit_curve("sync: YellowFin", &yf_losses, window);
    yf_experiments::report::print_series(
        "sync: Adam (best lr)",
        &yf_experiments::report::downsample(&adam_curve, 20),
    );
    let s = speedup_over(&adam_curve, &yf_curve).unwrap_or(f64::NAN);
    println!("sync speedup of YellowFin over tuned Adam: {s:.2}x (paper: 1.38x)\n");

    // --- Asynchronous panel ---
    let iters_a = scaled(2000);
    let window_a = window_for(iters_a);
    let cfg_a = RunConfig::plain(iters_a);
    let async_run = |make_opt: &dyn Fn() -> Box<dyn Optimizer>| -> Vec<f64> {
        let mut curves = Vec::new();
        for &seed in &seeds {
            let mut task = cifar100_like(seed);
            let mut opt = make_opt();
            let r = train_async(task.as_mut(), opt.as_mut(), WORKERS, &cfg_a);
            curves.push(r.losses);
        }
        let avg = yf_experiments::grid::average_curves(&curves);
        yf_experiments::smoothing::smooth(&avg, window_a)
    };

    let adam_async = async_run(&|| Box::new(Adam::new(1e-3)));
    let yf_async_curve = async_run(&|| Box::new(yellowfin()));
    let cl_async = async_run(&|| {
        Box::new(ClosedLoopYellowFin::new(
            YellowFinConfig::default(),
            WORKERS - 1,
            0.01,
        ))
    });

    for (label, curve) in [
        ("async: Adam", &adam_async),
        ("async: YellowFin", &yf_async_curve),
        ("async: closed-loop YellowFin", &cl_async),
    ] {
        yf_experiments::report::print_series(label, &yf_experiments::report::downsample(curve, 20));
    }
    let s_cl_yf = speedup_over(&yf_async_curve, &cl_async).unwrap_or(f64::NAN);
    let s_cl_adam = speedup_over(&adam_async, &cl_async).unwrap_or(f64::NAN);
    println!("\nasync speedups: closed-loop over open-loop YF {s_cl_yf:.2}x (paper: 20.1x),");
    println!("                closed-loop over Adam {s_cl_adam:.2}x (paper: 2.69x)");

    yf_bench::write_curves_csv(
        "fig1_sync.csv",
        &[
            ("adam", adam_curve.as_slice()),
            ("yellowfin", yf_curve.as_slice()),
        ],
    );
    yf_bench::write_curves_csv(
        "fig1_async.csv",
        &[
            ("adam", adam_async.as_slice()),
            ("yellowfin", yf_async_curve.as_slice()),
            ("closed_loop", cl_async.as_slice()),
        ],
    );
}
