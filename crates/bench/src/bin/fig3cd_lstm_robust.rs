//! Figure 3(c, d): per-variable convergence of an LSTM under momentum
//! 0.9 vs 0.99.
//!
//! The paper's observation: raising the global momentum puts the (global
//! lr, mu) pair inside the robust region of *more* model variables, so a
//! larger fraction of per-variable distances |x_i,t - x_i,final| decay at
//! (or slower than, but tracking) the robust rate sqrt(mu). The paper
//! uses an MNIST LSTM; we use the char-LM LSTM (DESIGN.md §3.5).

use yf_bench::{scaled, window_for};
use yf_experiments::report;
use yf_experiments::workloads::ts_like;
use yf_optim::{MomentumSgd, Optimizer};

struct VarTrack {
    /// Snapshots of sampled coordinates, one row per recorded step.
    rows: Vec<Vec<f32>>,
    indices: Vec<usize>,
}

fn run(mu: f32, lr: f32, iters: usize, record_every: usize) -> (Vec<f32>, VarTrack) {
    let mut task = ts_like(11);
    let mut params = task.init_params();
    let dim = params.len();
    // ~200 evenly spaced coordinates.
    let stride = (dim / 200).max(1);
    let indices: Vec<usize> = (0..dim).step_by(stride).collect();
    let mut opt = MomentumSgd::new(lr, mu);
    let mut losses = Vec::with_capacity(iters);
    let mut rows = Vec::new();
    for step in 0..iters {
        let (loss, grad) = task.loss_grad_at(&params, step as u64);
        opt.step(&mut params, &grad);
        losses.push(loss);
        if step % record_every == 0 {
            rows.push(indices.iter().map(|&i| params[i]).collect());
        }
    }
    rows.push(indices.iter().map(|&i| params[i]).collect());
    (losses, VarTrack { rows, indices })
}

/// Per-variable decay-rate estimate of |x_i,t - x_i,final| between two
/// recorded checkpoints, in per-iteration units.
fn per_variable_rates(track: &VarTrack, record_every: usize) -> Vec<f64> {
    let last = track.rows.last().expect("rows recorded");
    let n_rows = track.rows.len();
    // Compare an early and a late checkpoint (25% / 75% of the run).
    let (a, b) = (n_rows / 4, 3 * n_rows / 4);
    let steps = ((b - a) * record_every) as f64;
    let mut rates = Vec::new();
    for (k, _) in track.indices.iter().enumerate() {
        let da = f64::from((track.rows[a][k] - last[k]).abs()).max(1e-12);
        let db = f64::from((track.rows[b][k] - last[k]).abs()).max(1e-12);
        if da > 1e-9 {
            rates.push((db / da).powf(1.0 / steps));
        }
    }
    rates
}

fn main() {
    println!("== Figure 3(c,d): per-variable sqrt(mu) convergence on an LSTM ==\n");
    let iters = scaled(1500);
    let record_every = (iters / 60).max(1);
    for &(mu, lr) in &[(0.9f32, 0.05f32), (0.99, 0.005)] {
        let (losses, track) = run(mu, lr, iters, record_every);
        let rates = per_variable_rates(&track, record_every);
        let robust = f64::from(mu).sqrt();
        // A variable "follows" the robust rate if its decay constant is
        // within half of the robust gap-to-1 of sqrt(mu).
        let following = rates
            .iter()
            .filter(|&&r| (r - robust).abs() < (1.0 - robust) * 0.5)
            .count();
        let mut sorted = rates.clone();
        sorted.sort_by(f64::total_cmp);
        let median = sorted.get(sorted.len() / 2).copied().unwrap_or(f64::NAN);
        println!(
            "mu = {mu}: sqrt(mu) = {robust:.4}, median per-variable rate = {median:.4} \
             (gap {:.4}), {following}/{} variables follow the robust rate",
            (median - robust).abs(),
            rates.len()
        );
        let window = window_for(iters);
        let smoothed = yf_experiments::smoothing::smooth(&losses, window);
        report::print_series(
            &format!("training loss (mu = {mu})"),
            &report::downsample(&smoothed, 10),
        );
        let rows: Vec<Vec<String>> = rates.iter().map(|r| vec![report::fmt(*r)]).collect();
        report::write_csv(
            &format!(
                "fig3cd_rates_mu{}.csv",
                if mu > 0.95 { "099" } else { "09" }
            ),
            &["per_variable_rate"],
            &rows,
        );
    }
    println!(
        "\npaper's claim: with mu = 0.99 the median per-variable rate sits closer to \
         sqrt(mu) than with mu = 0.9 — more variables inside the robust region."
    );
}
