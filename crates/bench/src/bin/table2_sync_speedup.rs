//! Table 2: speedup of tuned momentum SGD and of YellowFin over tuned
//! Adam on the five synchronous workloads.
//!
//! Protocol (Section 5.1): tune Adam and momentum SGD (momentum fixed at
//! 0.9) on a learning-rate grid, averaging losses over seeds; smooth with
//! a uniform window; record the lowest smoothed loss achieved by *both*
//! algorithms being compared; report the ratio of iterations to reach it.
//! YellowFin runs with zero hand tuning.

use yf_bench::{averaged_run, scaled, window_for, yellowfin};
use yf_experiments::report;
use yf_experiments::speedup::speedup_over;
use yf_experiments::trainer::RunConfig;
use yf_experiments::workloads::table2_workloads;
use yf_optim::{Adam, MomentumSgd, Optimizer};

fn main() {
    println!("== Table 2: speedup over tuned Adam (synchronous) ==\n");
    let iters = scaled(1200);
    let window = window_for(iters);
    let seeds = [1u64, 2];
    let cfg = RunConfig::plain(iters);
    // Reduced Appendix I grids (log-spaced around each method's scale).
    let adam_grid = [1e-4f32, 1e-3, 1e-2, 1e-1];
    let sgd_grid = [1e-3f32, 1e-2, 1e-1, 1.0];

    let mut rows = Vec::new();
    for (name, make_task) in table2_workloads() {
        let (adam_lr, adam_curve, _) =
            yf_bench::mini_grid(&adam_grid, &seeds, &cfg, window, make_task, |lr| {
                Box::new(Adam::new(lr)) as Box<dyn Optimizer>
            });
        let (sgd_lr, sgd_curve, _) =
            yf_bench::mini_grid(&sgd_grid, &seeds, &cfg, window, make_task, |lr| {
                Box::new(MomentumSgd::new(lr, 0.9)) as Box<dyn Optimizer>
            });
        let (yf_losses, _) = averaged_run(&seeds, &cfg, make_task, || {
            Box::new(yellowfin()) as Box<dyn Optimizer>
        });
        let yf_curve = yf_experiments::smoothing::smooth(&yf_losses, window);

        let sgd_speedup = speedup_over(&adam_curve, &sgd_curve).unwrap_or(f64::NAN);
        let yf_speedup = speedup_over(&adam_curve, &yf_curve).unwrap_or(f64::NAN);
        println!(
            "{name}: Adam best lr = {adam_lr:.0e}, mom-SGD best lr = {sgd_lr:.0e} | \
             mom-SGD speedup {sgd_speedup:.2}x, YF speedup {yf_speedup:.2}x"
        );
        rows.push(vec![
            name.to_string(),
            "1.00x".to_string(),
            format!("{sgd_speedup:.2}x"),
            format!("{yf_speedup:.2}x"),
        ]);
        yf_bench::write_curves_csv(
            &format!("table2_{}.csv", name.to_lowercase()),
            &[
                ("adam", adam_curve.as_slice()),
                ("momentum_sgd", sgd_curve.as_slice()),
                ("yellowfin", yf_curve.as_slice()),
            ],
        );
    }

    println!(
        "\n{}",
        report::markdown_table(&["workload", "Adam", "mom. SGD", "YellowFin"], &rows,)
    );
    report::write_csv(
        "table2_speedups.csv",
        &["workload", "adam", "momentum_sgd", "yellowfin"],
        &rows,
    );
    println!(
        "paper (Table 2): mom-SGD 1.71/1.87/0.88/2.49/1.33x, YF 1.93/1.38/0.77/3.28/2.33x \
         on CIFAR10/CIFAR100/PTB/TS/WSJ; the *shape* to reproduce is momentum methods \
         >= Adam everywhere except the PTB-like workload."
    );
}
