//! Table 3: model specifications for every workload in the reproduction,
//! paired with the paper's original architecture.

use yf_experiments::report;
use yf_experiments::workloads::spec_table;

fn main() {
    println!("== Table 3: model specifications (reproduction scale) ==\n");
    let specs = spec_table();
    let rows: Vec<Vec<String>> = specs
        .iter()
        .map(|s| {
            vec![
                s.name.to_string(),
                s.paper_counterpart.to_string(),
                s.architecture.clone(),
                s.parameters.to_string(),
                s.metric.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        report::markdown_table(
            &[
                "workload",
                "paper counterpart",
                "architecture here",
                "params",
                "metric"
            ],
            &rows
        )
    );
    report::write_csv(
        "table3_model_specs.csv",
        &[
            "workload",
            "paper_counterpart",
            "architecture",
            "parameters",
            "metric",
        ],
        &rows,
    );
    println!("\n(wrote target/experiments/table3_model_specs.csv)");
}
