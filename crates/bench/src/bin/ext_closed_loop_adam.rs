//! Extension (paper §7, Discussion): closed-loop momentum control
//! applied to Adam in an asynchronous setting.
//!
//! Figure 10 shows that Adam's prescribed β1 = 0.9 is suboptimal under
//! staleness and must be hand-lowered. The paper suggests its closed-loop
//! mechanism "could accelerate other adaptive methods in
//! asynchronous-parallel settings" — this regenerator implements that:
//! [`yellowfin::ClosedLoopAdam`] measures total momentum with the Eq. 37
//! estimator (fed Adam's *effective* preconditioned gradient) and steers
//! β1 automatically.

use yellowfin::ClosedLoopAdam;
use yf_bench::{scaled, window_for};
use yf_experiments::report;
use yf_experiments::smoothing::smooth;
use yf_experiments::trainer::{train_async, RunConfig};
use yf_experiments::workloads::ptb_like;
use yf_optim::{Adam, Optimizer};

const WORKERS: usize = 16;

fn main() {
    println!("== Extension: closed-loop Adam under asynchrony (PTB-like, 16 workers) ==\n");
    let iters = scaled(1500);
    let window = window_for(iters);
    let seeds = [1u64, 2];
    let cfg = RunConfig::plain(iters);
    let lr = 1e-3;

    let run = |make_opt: &dyn Fn() -> Box<dyn Optimizer>| -> Vec<f64> {
        let mut curves = Vec::new();
        for &seed in &seeds {
            let mut task = ptb_like(seed);
            let mut opt = make_opt();
            let r = train_async(task.as_mut(), opt.as_mut(), WORKERS, &cfg);
            curves.push(r.losses);
        }
        smooth(&yf_experiments::grid::average_curves(&curves), window)
    };

    let fixed = run(&|| Box::new(Adam::new(lr)));
    let closed = run(&|| Box::new(ClosedLoopAdam::new(lr, 0.9, WORKERS - 1, 0.005)));

    report::print_series(
        "async Adam (beta1 = 0.9 fixed)",
        &report::downsample(&fixed, 12),
    );
    report::print_series(
        "async closed-loop Adam (target 0.9)",
        &report::downsample(&closed, 12),
    );

    // Where does the controller settle?
    let mut task = ptb_like(3);
    let mut probe = ClosedLoopAdam::new(lr, 0.9, WORKERS - 1, 0.005);
    train_async(task.as_mut(), &mut probe, WORKERS, &cfg);
    println!(
        "\ncontrolled beta1 settled at {:.3} (fixed baseline uses 0.9); \
         measured total momentum {:?}",
        probe.beta1(),
        probe
            .total_momentum()
            .map(|m| (m * 1000.0).round() / 1000.0)
    );
    let lowest = |c: &[f64]| c.iter().copied().fold(f64::INFINITY, f64::min);
    println!(
        "lowest smoothed loss: fixed {} vs closed-loop {}",
        report::fmt(lowest(&fixed)),
        report::fmt(lowest(&closed))
    );
    yf_bench::write_curves_csv(
        "ext_closed_loop_adam.csv",
        &[
            ("adam_fixed", fixed.as_slice()),
            ("adam_closed_loop", closed.as_slice()),
        ],
    );
}
