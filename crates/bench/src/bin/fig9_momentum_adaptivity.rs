//! Figure 9 (Appendix J.2): the importance of momentum adaptivity.
//!
//! YellowFin with its own adaptive momentum vs YellowFin forced to feed
//! fixed momentum (0.0 or 0.9) into the underlying momentum SGD while the
//! learning rate continues to auto-tune — on the TS-like char LSTM and
//! the CIFAR100-like ResNet.

use yellowfin::{YellowFin, YellowFinConfig};
use yf_bench::{averaged_run, scaled, window_for};
use yf_experiments::report;
use yf_experiments::smoothing::smooth;
use yf_experiments::speedup::speedup_over;
use yf_experiments::trainer::RunConfig;
use yf_experiments::workloads::{cifar100_like, ts_like, TaskBuilder};
use yf_optim::Optimizer;

fn yf_with_override(mu: Option<f64>) -> Box<dyn Optimizer> {
    Box::new(YellowFin::new(YellowFinConfig {
        momentum_override: mu,
        ..Default::default()
    }))
}

fn main() {
    println!("== Figure 9: adaptive momentum vs frozen momentum ==\n");
    let iters = scaled(1500);
    let window = window_for(iters);
    let seeds = [1u64, 2];
    let cfg = RunConfig::plain(iters);

    for (name, make_task) in [
        ("TS-like LSTM", ts_like as TaskBuilder),
        ("CIFAR100-like ResNet", cifar100_like as TaskBuilder),
    ] {
        let mut curves = Vec::new();
        for (label, mu) in [
            ("YellowFin (adaptive mu)", None),
            ("YF mom. = 0.0", Some(0.0)),
            ("YF mom. = 0.9", Some(0.9)),
        ] {
            let (losses, _) = averaged_run(&seeds, &cfg, make_task, || yf_with_override(mu));
            curves.push((label, smooth(&losses, window)));
        }
        println!("--- {name} ---");
        for (label, curve) in &curves {
            report::print_series(&format!("{name}: {label}"), &report::downsample(curve, 12));
        }
        let s0 = speedup_over(&curves[1].1, &curves[0].1).unwrap_or(f64::NAN);
        let s9 = speedup_over(&curves[2].1, &curves[0].1).unwrap_or(f64::NAN);
        println!(
            "{name}: adaptive-momentum speedup over frozen 0.0 = {s0:.2}x, \
             over frozen 0.9 = {s9:.2}x (paper: adaptive wins on both models)\n"
        );
        yf_bench::write_curves_csv(
            &format!(
                "fig9_{}.csv",
                name.split('-').next().unwrap_or("x").to_lowercase()
            ),
            &[
                ("adaptive", curves[0].1.as_slice()),
                ("frozen_0.0", curves[1].1.as_slice()),
                ("frozen_0.9", curves[2].1.as_slice()),
            ],
        );
    }
}
