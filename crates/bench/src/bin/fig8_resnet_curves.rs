//! Figure 8 (Appendix J.1): training-loss curves on the CIFAR10-like
//! (basic blocks) and CIFAR100-like (bottleneck blocks) ResNets for
//! tuned momentum SGD, tuned Adam and YellowFin.

use yf_bench::{averaged_run, scaled, window_for, yellowfin};
use yf_experiments::report;
use yf_experiments::smoothing::smooth;
use yf_experiments::speedup::speedup_over;
use yf_experiments::trainer::RunConfig;
use yf_experiments::workloads::{cifar100_like, cifar10_like, TaskBuilder};
use yf_optim::{Adam, MomentumSgd, Optimizer};

fn main() {
    println!("== Figure 8: ResNet training-loss curves ==\n");
    let iters = scaled(1500);
    let window = window_for(iters);
    let seeds = [1u64, 2];
    let cfg = RunConfig::plain(iters);

    for (name, make_task) in [
        ("CIFAR10-like", cifar10_like as TaskBuilder),
        ("CIFAR100-like", cifar100_like as TaskBuilder),
    ] {
        let (lr_sgd, sgd_curve, _) = yf_bench::mini_grid(
            &[1e-3, 1e-2, 1e-1, 1.0],
            &seeds,
            &cfg,
            window,
            make_task,
            |lr| Box::new(MomentumSgd::new(lr, 0.9)) as Box<dyn Optimizer>,
        );
        let (lr_adam, adam_curve, _) = yf_bench::mini_grid(
            &[1e-4, 1e-3, 1e-2, 1e-1],
            &seeds,
            &cfg,
            window,
            make_task,
            |lr| Box::new(Adam::new(lr)) as Box<dyn Optimizer>,
        );
        let (yf_losses, _) = averaged_run(&seeds, &cfg, make_task, || {
            Box::new(yellowfin()) as Box<dyn Optimizer>
        });
        let yf_curve = smooth(&yf_losses, window);

        println!("--- {name} (mom-SGD lr {lr_sgd:.0e}, Adam lr {lr_adam:.0e}) ---");
        for (label, curve) in [
            ("momentum SGD", &sgd_curve),
            ("Adam", &adam_curve),
            ("YellowFin", &yf_curve),
        ] {
            report::print_series(&format!("{name}: {label}"), &report::downsample(curve, 12));
        }
        let s_sgd = speedup_over(&adam_curve, &sgd_curve).unwrap_or(f64::NAN);
        let s_yf = speedup_over(&adam_curve, &yf_curve).unwrap_or(f64::NAN);
        println!(
            "{name}: mom-SGD speedup over Adam {s_sgd:.2}x, YF speedup {s_yf:.2}x \
             (paper: 1.71x/1.93x on CIFAR10, 1.87x/1.38x on CIFAR100)\n"
        );
        yf_bench::write_curves_csv(
            &format!("fig8_{}.csv", name.to_lowercase().replace('-', "_")),
            &[
                ("momentum_sgd", sgd_curve.as_slice()),
                ("adam", adam_curve.as_slice()),
                ("yellowfin", yf_curve.as_slice()),
            ],
        );
    }
}
