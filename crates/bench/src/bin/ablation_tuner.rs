//! Ablation of YellowFin's design choices (DESIGN.md §6).
//!
//! Not a paper figure: this sweeps the tuner's internal knobs — sliding
//! window width, smoothing beta, slow start — around the paper's fixed
//! constants (window 20, beta 0.999, slow start on) to show the defaults
//! sit on a robustness plateau. Each variant trains the TS-like char LM
//! and the CIFAR10-like ResNet; we report the lowest smoothed loss.

use yellowfin::{YellowFin, YellowFinConfig};
use yf_bench::{averaged_run, scaled, window_for};
use yf_experiments::report;
use yf_experiments::smoothing::smooth;
use yf_experiments::trainer::RunConfig;
use yf_experiments::workloads::{cifar10_like, ts_like, TaskBuilder};
use yf_optim::Optimizer;

fn variant(name: &'static str, cfg: YellowFinConfig) -> (&'static str, YellowFinConfig) {
    (name, cfg)
}

fn main() {
    println!("== Ablation: YellowFin's fixed constants ==\n");
    let iters = scaled(900);
    let window = window_for(iters);
    let seeds = [1u64, 2];
    let run_cfg = RunConfig::plain(iters);

    let variants = vec![
        variant(
            "paper defaults (w=20, beta=0.999, slow start)",
            YellowFinConfig::default(),
        ),
        variant(
            "window 5",
            YellowFinConfig {
                window: 5,
                ..Default::default()
            },
        ),
        variant(
            "window 100",
            YellowFinConfig {
                window: 100,
                ..Default::default()
            },
        ),
        variant(
            "beta 0.9",
            YellowFinConfig {
                beta: 0.9,
                ..Default::default()
            },
        ),
        variant(
            "beta 0.9999",
            YellowFinConfig {
                beta: 0.9999,
                ..Default::default()
            },
        ),
        variant(
            "no slow start",
            YellowFinConfig {
                slow_start: false,
                ..Default::default()
            },
        ),
    ];

    let mut rows = Vec::new();
    for (wname, make_task) in [
        ("TS-like LSTM", ts_like as TaskBuilder),
        ("CIFAR10-like ResNet", cifar10_like as TaskBuilder),
    ] {
        println!("--- {wname} ---");
        for (vname, cfg) in &variants {
            let cfg = cfg.clone();
            let (losses, _) = averaged_run(&seeds, &run_cfg, make_task, move || {
                Box::new(YellowFin::new(cfg.clone())) as Box<dyn Optimizer>
            });
            let lowest = smooth(&losses, window)
                .iter()
                .copied()
                .fold(f64::INFINITY, f64::min);
            println!(
                "  {vname:45} lowest smoothed loss = {}",
                report::fmt(lowest)
            );
            rows.push(vec![
                wname.to_string(),
                vname.to_string(),
                report::fmt(lowest),
            ]);
        }
        println!();
    }
    report::write_csv(
        "ablation_tuner.csv",
        &["workload", "variant", "lowest_smoothed_loss"],
        &rows,
    );
    println!("(wrote target/experiments/ablation_tuner.csv)");
}
