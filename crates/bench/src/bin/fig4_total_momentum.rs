//! Figure 4: total momentum vs target momentum.
//!
//! Left: synchronous YellowFin — measured total momentum equals the
//! algorithmic (target) value. Middle: 16 asynchronous workers running
//! open-loop YellowFin — total momentum exceeds the target
//! (asynchrony-induced momentum). Right: closed-loop YellowFin lowers
//! the algorithmic momentum until the measured total matches the target.

use yellowfin::{ClosedLoopYellowFin, TotalMomentumEstimator, YellowFinConfig};
use yf_async::RoundRobinSimulator;
use yf_bench::{scaled, yellowfin};
use yf_experiments::report;
use yf_experiments::task::TaskSource;
use yf_experiments::workloads::cifar100_like;
use yf_optim::Optimizer;

const WORKERS: usize = 16;

/// An optimizer wrapper that measures total momentum (Eq. 37) before
/// delegating, recording `(target, measured_total, algorithmic)` series.
struct Instrumented<O> {
    inner: O,
    estimator: TotalMomentumEstimator,
    series: Vec<(f64, f64)>, // (target, measured total)
    target_fn: fn(&O) -> f64,
}

impl<O: Optimizer> Instrumented<O> {
    fn new(inner: O, staleness: usize, target_fn: fn(&O) -> f64) -> Self {
        Instrumented {
            inner,
            estimator: TotalMomentumEstimator::new(staleness),
            series: Vec::new(),
            target_fn,
        }
    }
}

impl<O: Optimizer> Optimizer for Instrumented<O> {
    fn observe(&mut self, params: &[f32], grads: &[f32]) -> yf_optim::Hyper {
        // The measure phase sees exactly the (pre-update params, applied
        // gradient) pair Eq. 37 needs — instrumentation composes with the
        // two-phase API without shadowing the update.
        let lr = self.inner.learning_rate();
        if let Some(total) = self.estimator.observe(params, grads, lr) {
            self.series.push(((self.target_fn)(&self.inner), total));
        }
        self.inner.observe(params, grads)
    }

    fn step_shard(
        &self,
        shard: yf_optim::ParamShard,
        params: &mut [f32],
        grads: &[f32],
        hyper: yf_optim::Hyper,
    ) {
        self.inner.step_shard(shard, params, grads, hyper);
    }

    fn learning_rate(&self) -> f32 {
        self.inner.learning_rate()
    }

    fn is_self_tuning(&self) -> bool {
        self.inner.is_self_tuning()
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.inner.set_learning_rate(lr);
    }

    fn name(&self) -> &'static str {
        "instrumented"
    }
}

fn smooth_pairs(series: &[(f64, f64)], w: usize) -> Vec<(usize, f64, f64)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i + w <= series.len() {
        let t: f64 = series[i..i + w].iter().map(|p| p.0).sum::<f64>() / w as f64;
        let m: f64 = series[i..i + w].iter().map(|p| p.1).sum::<f64>() / w as f64;
        out.push((i, t, m));
        i += w;
    }
    out
}

fn print_panel(label: &str, series: &[(f64, f64)]) -> (f64, f64) {
    let w = (series.len() / 12).max(1);
    println!("# {label} (iter, target mu, measured total mu)");
    for (i, t, m) in smooth_pairs(series, w) {
        println!("{i}\t{}\t{}", report::fmt(t), report::fmt(m));
    }
    let tail = &series[series.len() / 2..];
    let avg_t = tail.iter().map(|p| p.0).sum::<f64>() / tail.len() as f64;
    let avg_m = tail.iter().map(|p| p.1).sum::<f64>() / tail.len() as f64;
    println!("tail averages: target = {avg_t:.3}, measured total = {avg_m:.3}\n");
    (avg_t, avg_m)
}

fn main() {
    println!("== Figure 4: total vs algorithmic momentum (CIFAR100-like ResNet) ==\n");
    let iters = scaled(700);

    // Left: synchronous YellowFin.
    let mut task = cifar100_like(5);
    let mut params = task.init_params();
    let mut opt = Instrumented::new(yellowfin(), 0, |o| o.momentum());
    for step in 0..iters {
        let (_, grad) = task.loss_grad_at(&params, step as u64);
        opt.step(&mut params, &grad);
    }
    let (t_sync, m_sync) = print_panel("synchronous YellowFin", &opt.series);

    // Middle: asynchronous open-loop YellowFin.
    let mut task = cifar100_like(5);
    let mut opt = Instrumented::new(yellowfin(), WORKERS - 1, |o| o.momentum());
    let mut sim = RoundRobinSimulator::new(WORKERS, task.init_params());
    for _ in 0..iters {
        let mut source = TaskSource::new(task.as_mut());
        sim.step(&mut source, &mut opt);
    }
    let (t_async, m_async) = print_panel("async (16 workers) open-loop YellowFin", &opt.series);

    // Right: closed-loop YellowFin.
    let mut task = cifar100_like(5);
    let mut cl = ClosedLoopYellowFin::new(YellowFinConfig::default(), WORKERS - 1, 0.01);
    let mut sim = RoundRobinSimulator::new(WORKERS, task.init_params());
    let mut cl_series = Vec::new();
    for _ in 0..iters {
        let mut source = TaskSource::new(task.as_mut());
        sim.step(&mut source, &mut cl);
        if let Some(total) = cl.total_momentum() {
            cl_series.push((cl.target_momentum(), total));
        }
    }
    let (t_cl, m_cl) = print_panel("async closed-loop YellowFin", &cl_series);
    println!(
        "closed-loop algorithmic momentum ended at {:.3} (below the target {:.3}, \
         compensating asynchrony)",
        cl.algorithmic_momentum(),
        cl.target_momentum()
    );

    println!("\nsummary (tail averages, target vs measured):");
    println!("  sync:        {t_sync:.3} vs {m_sync:.3}  (paper: equal)");
    println!("  async open:  {t_async:.3} vs {m_async:.3}  (paper: measured > target)");
    println!("  async closed:{t_cl:.3} vs {m_cl:.3}  (paper: closed loop re-matches target)");

    report::write_csv(
        "fig4_summary.csv",
        &["panel", "target_mu", "measured_total_mu"],
        &[
            vec!["sync".into(), report::fmt(t_sync), report::fmt(m_sync)],
            vec![
                "async_open".into(),
                report::fmt(t_async),
                report::fmt(m_async),
            ],
            vec!["async_closed".into(), report::fmt(t_cl), report::fmt(m_cl)],
        ],
    );
    println!("(wrote target/experiments/fig4_summary.csv)");
}
