//! Figure 11 (Appendix J.4): finer-grain learning-rate-factor tuning.
//!
//! YellowFin's auto-tuned learning rate is multiplied by a factor from
//! {1/3, 0.5, 1, 2, 3, 10}; Adam sweeps the matching grid around its
//! default. Validation metrics on the tied-embedding LSTM and the
//! grouped-convolution ResNeXt. The paper's finding: a searched factor
//! improves YellowFin beyond searched Adam on both models.

use yellowfin::{YellowFin, YellowFinConfig};
use yf_bench::{scaled, window_for};
use yf_experiments::report;
use yf_experiments::trainer::{train, RunConfig};
use yf_experiments::workloads::{resnext_like, tied_lstm_like, TaskBuilder};
use yf_optim::{Adam, Optimizer};

fn best_metric_over(
    values: &[f32],
    seeds: &[u64],
    cfg: &RunConfig,
    lower_better: bool,
    make_task: TaskBuilder,
    mut make_opt: impl FnMut(f32) -> Box<dyn Optimizer>,
) -> Vec<(f32, f64)> {
    values
        .iter()
        .map(|&v| {
            let mut acc = 0.0;
            for &seed in seeds {
                let mut task = make_task(seed);
                let mut opt = make_opt(v);
                let r = train(task.as_mut(), opt.as_mut(), cfg);
                acc += r.best_metric(lower_better).unwrap_or(if lower_better {
                    f64::INFINITY
                } else {
                    0.0
                });
            }
            (v, acc / seeds.len() as f64)
        })
        .collect()
}

fn pick(results: &[(f32, f64)], lower_better: bool) -> (f32, f64) {
    *results
        .iter()
        .min_by(|a, b| {
            if lower_better {
                a.1.total_cmp(&b.1)
            } else {
                b.1.total_cmp(&a.1)
            }
        })
        .expect("non-empty sweep")
}

fn main() {
    println!("== Figure 11: learning-rate-factor search for YellowFin vs Adam ==\n");
    let iters = scaled(1000);
    let _ = window_for(iters);
    let seeds = [1u64, 2];
    let eval_every = (iters / 8).max(1);
    let cfg = RunConfig::plain(iters).with_eval(eval_every);
    let factors = [1.0f32 / 3.0, 0.5, 1.0, 2.0, 3.0, 10.0];
    let adam_lrs = [1e-4f32, 5e-4, 1e-3, 5e-3, 1e-2];

    for (name, make_task, lower_better) in [
        (
            "Tied-LSTM (perplexity)",
            tied_lstm_like as TaskBuilder,
            true,
        ),
        ("ResNeXt (accuracy)", resnext_like as TaskBuilder, false),
    ] {
        let yf_results = best_metric_over(&factors, &seeds, &cfg, lower_better, make_task, |f| {
            Box::new(YellowFin::new(YellowFinConfig {
                lr_factor: f64::from(f),
                ..Default::default()
            }))
        });
        let adam_results =
            best_metric_over(&adam_lrs, &seeds, &cfg, lower_better, make_task, |lr| {
                Box::new(Adam::new(lr))
            });

        println!("--- {name} ---");
        for (f, m) in &yf_results {
            println!("  YF factor {f:.3}: best metric = {}", report::fmt(*m));
        }
        for (lr, m) in &adam_results {
            println!("  Adam lr {lr:.0e}: best metric = {}", report::fmt(*m));
        }
        let (yf_default, yf_default_m) = yf_results
            .iter()
            .find(|(f, _)| (*f - 1.0).abs() < 1e-6)
            .copied()
            .expect("factor 1 in grid");
        let _ = yf_default;
        let (best_f, best_yf) = pick(&yf_results, lower_better);
        let (best_lr, best_adam) = pick(&adam_results, lower_better);
        println!(
            "{name}: YF default {} -> searched (factor {best_f:.2}) {} | searched Adam \
             (lr {best_lr:.0e}) {}\n",
            report::fmt(yf_default_m),
            report::fmt(best_yf),
            report::fmt(best_adam),
        );
        report::write_csv(
            &format!(
                "fig11_{}.csv",
                name.split(['-', ' ']).next().unwrap_or("x").to_lowercase()
            ),
            &["config", "best_metric"],
            &yf_results
                .iter()
                .map(|(f, m)| vec![format!("yf_factor_{f}"), report::fmt(*m)])
                .chain(
                    adam_results
                        .iter()
                        .map(|(lr, m)| vec![format!("adam_lr_{lr}"), report::fmt(*m)]),
                )
                .collect::<Vec<_>>(),
        );
    }
    println!(
        "paper: factor search lifts YF above searched Adam on both models \
         (88.7 -> 80.5 perplexity on Tied LSTM; 92.63 -> 94.75 accuracy on ResNeXt)."
    );
}
