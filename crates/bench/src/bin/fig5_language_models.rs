//! Figure 5: training loss and validation metrics on the three language
//! workloads (PTB-like word LM, TS-like char LM, WSJ-like parsing LM)
//! for momentum SGD, Adam and YellowFin — plus vanilla SGD and AdaGrad
//! on the parsing task, as in the paper's right column.

use yf_bench::{averaged_run, scaled, window_for, yellowfin};
use yf_experiments::report;
use yf_experiments::smoothing::{best_so_far, smooth};
use yf_experiments::trainer::RunConfig;
use yf_experiments::workloads::{ptb_like, ts_like, wsj_like, TaskBuilder};
use yf_optim::{AdaGrad, Adam, MomentumSgd, Optimizer, Sgd};

fn main() {
    println!("== Figure 5: language-model workloads ==\n");
    let iters = scaled(1500);
    let window = window_for(iters);
    let seeds = [1u64, 2];
    let eval_every = (iters / 10).max(1);
    let cfg = RunConfig::plain(iters).with_eval(eval_every);

    // (label, smoothed loss curve, (step, metric) validation points).
    type NamedCurve = (String, Vec<f64>, Vec<(u64, f64)>);
    let workloads: [(&str, TaskBuilder, bool); 3] = [
        ("PTB-like (word LM)", ptb_like, true),
        ("TS-like (char LM)", ts_like, true),
        ("WSJ-like (parsing LM)", wsj_like, false),
    ];

    for (name, make_task, lower_better) in workloads {
        println!("--- {name} ---");
        let mut named_curves: Vec<NamedCurve> = Vec::new();

        let (lr_sgd, sgd_curve, sgd_metrics) =
            yf_bench::mini_grid(&[1e-2, 1e-1, 1.0], &seeds, &cfg, window, make_task, |lr| {
                Box::new(MomentumSgd::new(lr, 0.9)) as Box<dyn Optimizer>
            });
        named_curves.push((
            format!("momentum SGD (lr {lr_sgd:.0e})"),
            sgd_curve,
            sgd_metrics,
        ));

        let (lr_adam, adam_curve, adam_metrics) =
            yf_bench::mini_grid(&[1e-4, 1e-3, 1e-2], &seeds, &cfg, window, make_task, |lr| {
                Box::new(Adam::new(lr)) as Box<dyn Optimizer>
            });
        named_curves.push((format!("Adam (lr {lr_adam:.0e})"), adam_curve, adam_metrics));

        let (yf_losses, yf_metrics) = averaged_run(&seeds, &cfg, make_task, || {
            Box::new(yellowfin()) as Box<dyn Optimizer>
        });
        named_curves.push((
            "YellowFin".to_string(),
            smooth(&yf_losses, window),
            yf_metrics,
        ));

        if !lower_better {
            // WSJ panel adds vanilla SGD and AdaGrad (paper right column).
            let (lr_v, v_curve, v_metrics) =
                yf_bench::mini_grid(&[1e-2, 1e-1, 1.0], &seeds, &cfg, window, make_task, |lr| {
                    Box::new(Sgd::new(lr)) as Box<dyn Optimizer>
                });
            named_curves.push((format!("vanilla SGD (lr {lr_v:.0e})"), v_curve, v_metrics));
            let (lr_a, a_curve, a_metrics) =
                yf_bench::mini_grid(&[1e-2, 1e-1, 1.0], &seeds, &cfg, window, make_task, |lr| {
                    Box::new(AdaGrad::new(lr)) as Box<dyn Optimizer>
                });
            named_curves.push((format!("AdaGrad (lr {lr_a:.0e})"), a_curve, a_metrics));
        }

        let metric_name = make_task(0).metric_name();
        for (label, curve, metrics) in &named_curves {
            report::print_series(
                &format!("{name} loss: {label}"),
                &report::downsample(curve, 12),
            );
            let vals: Vec<f64> = metrics.iter().map(|&(_, v)| v).collect();
            let mono = best_so_far(&vals, lower_better);
            if let Some(best) = mono.last() {
                println!("  best {metric_name} [{label}]: {}", report::fmt(*best));
            }
        }

        let curve_refs: Vec<(&str, &[f64])> = named_curves
            .iter()
            .map(|(l, c, _)| (l.as_str(), c.as_slice()))
            .collect();
        yf_bench::write_curves_csv(
            &format!(
                "fig5_{}.csv",
                name.split_whitespace().next().unwrap_or("x").to_lowercase()
            ),
            &curve_refs,
        );
        println!();
    }
    println!(
        "paper's shape: momentum methods beat Adam on TS and WSJ; Adam leads slightly \
         on PTB; YellowFin matches tuned momentum SGD without any tuning."
    );
}
