//! Figure 3(a, b): the non-convex toy objective (two quadratics with
//! curvatures 1 and 1000, GCN = 1000) and the linear convergence achieved
//! by momentum GD tuned with the rule of Eq. 9.

use yellowfin::theory::mu_star;
use yf_data::toy::{Objective1d, PiecewiseQuadratic};
use yf_experiments::report;

fn main() {
    println!("== Figure 3(a,b): non-convex toy objective, tuned by Eq. 9 ==\n");
    let f = PiecewiseQuadratic::figure3();
    let nu = f.gcn();
    let mu = mu_star(nu);
    // Eq. 9: (1 - sqrt(mu))^2 / h_min <= alpha <= (1 + sqrt(mu))^2 / h_max.
    let lo = (1.0 - mu.sqrt()).powi(2) / f.h_small;
    let hi = (1.0 + mu.sqrt()).powi(2) / f.h_large;
    let alpha = lo; // for nu = 1000 the interval collapses to a point
    assert!(
        alpha <= hi * (1.0 + 1e-9),
        "rule (9) interval must be nonempty"
    );
    println!("GCN nu = {nu}, mu* = {mu:.5}, robust lr in [{lo:.3e}, {hi:.3e}], using alpha = {alpha:.3e}");
    println!("predicted linear rate sqrt(mu) = {:.5}\n", mu.sqrt());

    // Figure 3(a): the objective's shape.
    let shape: Vec<(usize, f64)> = (0..=16)
        .map(|i| {
            let x = -20.0 + 2.5 * i as f64;
            ((x + 20.0) as usize, f.value(x))
        })
        .collect();
    report::print_series("f(x) at x = -20..20 (key = x + 20)", &shape);

    // Figure 3(b): distance from optimum under momentum GD.
    let iters = 500;
    let mut x = 15.0f64;
    let mut x_prev = x;
    let mut distances = Vec::with_capacity(iters);
    for _ in 0..iters {
        let g = f.grad(x);
        let x_next = x - alpha * g + mu * (x - x_prev);
        x_prev = x;
        x = x_next;
        distances.push((x - f.minimizer()).abs().max(1e-300));
    }
    let logd: Vec<f64> = distances.iter().map(|d| d.ln()).collect();
    report::print_series(
        "|x_t - x*| (log shown every 25 iters)",
        &(0..iters)
            .step_by(25)
            .map(|t| (t, logd[t]))
            .collect::<Vec<_>>(),
    );

    // Fit the empirical rate over the linear segment (skip the first 50
    // transient steps, stop before numerical floor).
    let (a, b) = (50usize, 400usize);
    let slope = (logd[b] - logd[a]) / (b - a) as f64;
    let empirical_rate = slope.exp();
    println!(
        "\nempirical rate = {empirical_rate:.5} vs predicted sqrt(mu) = {:.5} (ratio {:.3})",
        mu.sqrt(),
        empirical_rate / mu.sqrt()
    );

    let rows: Vec<Vec<String>> = distances
        .iter()
        .enumerate()
        .map(|(t, d)| vec![t.to_string(), report::fmt(*d)])
        .collect();
    report::write_csv(
        "fig3b_toy_convergence.csv",
        &["iteration", "distance"],
        &rows,
    );
    println!("(wrote target/experiments/fig3b_toy_convergence.csv)");
}
