//! Table 1: stability on the translation seq2seq model.
//!
//! The paper's rows: the default optimizer (momentum 0.99, lr 0.25)
//! diverges without clipping; with a manually chosen norm threshold (0.1)
//! it stabilizes; YellowFin with *adaptive* clipping stabilizes and
//! reaches better loss/BLEU. We reproduce the same three rows on the
//! synthetic translation task (DESIGN.md §3.3).

use yf_bench::{scaled, yellowfin_clipped};
use yf_experiments::report;
use yf_experiments::trainer::{train, RunConfig};
use yf_experiments::workloads::translation_like;
use yf_optim::clip::Clipped;
use yf_optim::{MomentumSgd, Optimizer};

fn final_loss(losses: &[f32]) -> f64 {
    let tail = losses.len().saturating_sub(losses.len() / 10).max(1) - 1;
    let slice = &losses[tail..];
    if slice.iter().any(|l| !l.is_finite()) {
        return f64::INFINITY;
    }
    slice.iter().map(|&l| f64::from(l)).sum::<f64>() / slice.len() as f64
}

fn run(mut opt: Box<dyn Optimizer>, iters: usize, seed: u64) -> (f64, f64) {
    let mut task = translation_like(seed, 1.6);
    let cfg = RunConfig::plain(iters).with_eval((iters / 6).max(1));
    let result = train(task.as_mut(), opt.as_mut(), &cfg);
    let diverged = result.final_params.iter().any(|p| !p.is_finite());
    if diverged {
        return (f64::INFINITY, 0.0);
    }
    // Best-checkpoint reporting, matching the paper's monotone validation
    // convention ("we report the best values up to each number of
    // iterations").
    let loss = final_loss(&result.losses);
    let bleu = result.best_metric(false).unwrap_or(0.0);
    (loss, bleu)
}

fn main() {
    println!("== Table 1: German-English-like translation, stability rows ==\n");
    let iters = scaled(1200);
    let seed = 7;

    // Row 1: the paper's default optimizer, no clipping.
    let (loss_def, bleu_def) = run(Box::new(MomentumSgd::nesterov(0.25, 0.99)), iters, seed);
    // Row 2: same optimizer with the manually tuned threshold 0.1.
    let (loss_clip, bleu_clip) = run(
        Box::new(Clipped::new(MomentumSgd::nesterov(0.25, 0.99), 0.1)),
        iters,
        seed,
    );
    // Row 3: YellowFin with adaptive clipping, no hand tuning.
    let (loss_yf, bleu_yf) = run(Box::new(yellowfin_clipped()), iters, seed);

    let fmt_loss = |l: f64| {
        if l.is_finite() {
            report::fmt(l)
        } else {
            "diverge".to_string()
        }
    };
    let rows = vec![
        vec![
            "Default w/o clip.".to_string(),
            fmt_loss(loss_def),
            report::fmt(100.0 * bleu_def),
        ],
        vec![
            "Default w/ clip.".to_string(),
            fmt_loss(loss_clip),
            report::fmt(100.0 * bleu_clip),
        ],
        vec![
            "YF (adaptive clip.)".to_string(),
            fmt_loss(loss_yf),
            report::fmt(100.0 * bleu_yf),
        ],
    ];
    print!(
        "{}",
        report::markdown_table(&["optimizer", "loss", "BLEU4"], &rows)
    );
    report::write_csv("table1_seq2seq.csv", &["optimizer", "loss", "bleu4"], &rows);
    println!(
        "\npaper (Table 1): default w/o clip diverges; default w/ clip 2.86 loss / 30.75 BLEU; \
         YF 2.75 loss / 31.59 BLEU. The shape to reproduce: row 1 diverges (or is far worse), \
         row 3 <= row 2 in loss and >= in BLEU."
    );
}
