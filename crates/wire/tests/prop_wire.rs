//! Property tests pinning the wire dialect: arbitrary bit patterns
//! (including NaN payloads, ±inf, signed zeros, subnormals) must
//! round-trip bit-exactly through the hex codecs and the JSON layer,
//! and torn frames/files must be rejected, never silently accepted.

use proptest::prelude::*;
use yf_wire::hex;
use yf_wire::json::{self, Json};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn f32_bits_round_trip(bits in any::<u32>()) {
        let v = f32::from_bits(bits);
        let back = hex::f32_unhex(&hex::f32_hex(v)).unwrap();
        prop_assert_eq!(back.to_bits(), bits);
    }

    #[test]
    fn f64_bits_round_trip(bits in any::<u64>()) {
        let v = f64::from_bits(bits);
        let back = hex::f64_unhex(&hex::f64_hex(v)).unwrap();
        prop_assert_eq!(back.to_bits(), bits);
    }

    #[test]
    fn f32_rows_round_trip(bits in prop::collection::vec(any::<u32>(), 0..40)) {
        let values: Vec<f32> = bits.iter().map(|&b| f32::from_bits(b)).collect();
        let back = hex::f32_unrow(&hex::f32_row(&values)).unwrap();
        let back_bits: Vec<u32> = back.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(back_bits, bits);
    }

    #[test]
    fn f64_rows_round_trip(bits in prop::collection::vec(any::<u64>(), 0..40)) {
        let values: Vec<f64> = bits.iter().map(|&b| f64::from_bits(b)).collect();
        let back = hex::f64_unrow(&hex::f64_row(&values)).unwrap();
        let back_bits: Vec<u64> = back.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(back_bits, bits);
    }

    #[test]
    fn metric_rows_round_trip(pairs in prop::collection::vec((any::<u64>(), any::<u64>()), 0..20)) {
        let metrics: Vec<(u64, f64)> = pairs
            .iter()
            .map(|&(i, b)| (i, f64::from_bits(b)))
            .collect();
        let back = hex::metric_unrow(&hex::metric_row(&metrics)).unwrap();
        prop_assert_eq!(back.len(), metrics.len());
        for (got, want) in back.iter().zip(metrics.iter()) {
            prop_assert_eq!(got.0, want.0);
            prop_assert_eq!(got.1.to_bits(), want.1.to_bits());
        }
    }

    #[test]
    fn hex_floats_survive_a_json_frame(bits in prop::collection::vec(any::<u32>(), 1..20)) {
        // The dialect in one frame: floats as hex strings inside a
        // protocol-shaped object, serialized to a line and parsed back.
        let values: Vec<f32> = bits.iter().map(|&b| f32::from_bits(b)).collect();
        let frame = Json::obj(vec![
            ("type", Json::str("measure")),
            ("step", Json::u64(bits.len() as u64)),
            ("grads", Json::str(hex::f32_row(&values))),
        ]);
        let line = frame.to_string();
        let back = json::parse(&line).unwrap();
        let row = hex::f32_unrow(back.str_field("grads").unwrap()).unwrap();
        let back_bits: Vec<u32> = row.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(back_bits, bits);
    }

    #[test]
    fn torn_json_frames_are_rejected(bits in any::<u32>(), cut_seed in any::<u64>()) {
        // Any strict prefix of an object frame is torn and must fail to
        // parse; only the full line parses.
        let frame = Json::obj(vec![
            ("type", Json::str("hyper")),
            ("lr", Json::str(hex::f32_hex(f32::from_bits(bits)))),
        ]);
        let line = frame.to_string();
        prop_assert!(json::parse(&line).is_ok());
        let cut = 1 + (cut_seed as usize) % (line.len() - 1);
        if line.is_char_boundary(cut) {
            prop_assert!(json::parse(&line[..cut]).is_err(), "cut at {}", cut);
        }
    }

    #[test]
    fn mutated_frames_parse_or_error_but_never_panic(
        bits in prop::collection::vec(any::<u32>(), 1..12),
        step in any::<u64>(),
        pos_seed in any::<u64>(),
        byte in any::<u8>(),
        cut_seed in any::<u64>(),
    ) {
        // The chaos proxy's corrupt-frame fault hands the decoder
        // arbitrary line damage; this pins the decoder's contract under
        // it: a typed `JsonError` or a (possibly nonsensical but valid)
        // value — never a panic, for any truncation or byte mutation.
        let values: Vec<f32> = bits.iter().map(|&b| f32::from_bits(b)).collect();
        let frame = Json::obj(vec![
            ("type", Json::str("measure")),
            ("session", Json::str("fuzz \"target\" \\ line")),
            ("step", Json::u64(step)),
            ("grads", Json::str(hex::f32_row(&values))),
        ]);
        let line = frame.to_string();

        // Truncation at every byte offset the seed lands on.
        let cut = (cut_seed as usize) % (line.len() + 1);
        if line.is_char_boundary(cut) {
            let _ = json::parse(&line[..cut]);
        }

        // Single-byte overwrite anywhere in the frame. The damaged
        // bytes may no longer be UTF-8, so they re-enter the decoder
        // the way a socket read would: lossily re-decoded.
        let mut damaged = line.clone().into_bytes();
        let pos = (pos_seed as usize) % damaged.len();
        damaged[pos] = byte;
        let damaged = String::from_utf8_lossy(&damaged);
        if let Ok(parsed) = json::parse(&damaged) {
            // A frame that still parses may still carry a mangled hex
            // row; the row decoder must also fail typed, not panic.
            if let Ok(row) = parsed.str_field("grads") {
                let _ = hex::f32_unrow(row);
            }
        }
    }

    #[test]
    fn mutated_hex_rows_error_but_never_panic(
        bits in prop::collection::vec(any::<u32>(), 1..12),
        pos_seed in any::<u64>(),
        byte in any::<u8>(),
    ) {
        let values: Vec<f32> = bits.iter().map(|&b| f32::from_bits(b)).collect();
        let mut row = hex::f32_row(&values).into_bytes();
        let pos = (pos_seed as usize) % row.len();
        row[pos] = byte;
        let row = String::from_utf8_lossy(&row);
        match hex::f32_unrow(&row) {
            Ok(back) => prop_assert!(back.len() <= values.len() + 1),
            Err(e) => prop_assert!(!e.to_string().is_empty(), "typed error with a message"),
        }
    }

    #[test]
    fn torn_sealed_files_are_rejected(body_bits in prop::collection::vec(any::<u64>(), 1..16),
                                      cut_seed in any::<u64>()) {
        // A sealed file truncated anywhere strictly inside must come
        // back `Torn`, never as silently shortened content.
        let body: String = body_bits
            .iter()
            .map(|&b| format!("v {}\n", hex::f64_hex(f64::from_bits(b))))
            .collect();
        let dir = std::env::temp_dir().join(format!("yf-wire-prop-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sealed.txt");
        yf_wire::fsio::write_sealed(&path, &body).unwrap();
        let sealed = std::fs::read_to_string(&path).unwrap();
        prop_assert_eq!(yf_wire::fsio::read_sealed(&path).unwrap(), body.clone());
        let cut = (cut_seed as usize) % sealed.len();
        std::fs::write(&path, &sealed[..cut]).unwrap();
        match yf_wire::fsio::read_sealed(&path) {
            Err(yf_wire::fsio::SealedFileError::Torn { .. }) => {}
            other => prop_assert!(false, "cut at {} must be Torn, got {:?}", cut, other.is_ok()),
        }
        let _ = std::fs::remove_file(&path);
    }
}
