//! Property tests pinning the wire dialect: arbitrary bit patterns
//! (including NaN payloads, ±inf, signed zeros, subnormals) must
//! round-trip bit-exactly through the hex codecs and the JSON layer,
//! and torn frames/files must be rejected, never silently accepted.
//! The binary dialect gets the same treatment: framed payloads and
//! delta runs round-trip bit-exactly, and every truncation, length
//! mutation, or checksum flip yields a typed [`binary::BinError`] —
//! the decoders never panic and never read past the frame.

use proptest::prelude::*;
use std::io::Cursor;
use yf_wire::binary::{self, RawFrame};
use yf_wire::hex;
use yf_wire::json::{self, Json};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn f32_bits_round_trip(bits in any::<u32>()) {
        let v = f32::from_bits(bits);
        let back = hex::f32_unhex(&hex::f32_hex(v)).unwrap();
        prop_assert_eq!(back.to_bits(), bits);
    }

    #[test]
    fn f64_bits_round_trip(bits in any::<u64>()) {
        let v = f64::from_bits(bits);
        let back = hex::f64_unhex(&hex::f64_hex(v)).unwrap();
        prop_assert_eq!(back.to_bits(), bits);
    }

    #[test]
    fn f32_rows_round_trip(bits in prop::collection::vec(any::<u32>(), 0..40)) {
        let values: Vec<f32> = bits.iter().map(|&b| f32::from_bits(b)).collect();
        let back = hex::f32_unrow(&hex::f32_row(&values)).unwrap();
        let back_bits: Vec<u32> = back.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(back_bits, bits);
    }

    #[test]
    fn f64_rows_round_trip(bits in prop::collection::vec(any::<u64>(), 0..40)) {
        let values: Vec<f64> = bits.iter().map(|&b| f64::from_bits(b)).collect();
        let back = hex::f64_unrow(&hex::f64_row(&values)).unwrap();
        let back_bits: Vec<u64> = back.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(back_bits, bits);
    }

    #[test]
    fn metric_rows_round_trip(pairs in prop::collection::vec((any::<u64>(), any::<u64>()), 0..20)) {
        let metrics: Vec<(u64, f64)> = pairs
            .iter()
            .map(|&(i, b)| (i, f64::from_bits(b)))
            .collect();
        let back = hex::metric_unrow(&hex::metric_row(&metrics)).unwrap();
        prop_assert_eq!(back.len(), metrics.len());
        for (got, want) in back.iter().zip(metrics.iter()) {
            prop_assert_eq!(got.0, want.0);
            prop_assert_eq!(got.1.to_bits(), want.1.to_bits());
        }
    }

    #[test]
    fn hex_floats_survive_a_json_frame(bits in prop::collection::vec(any::<u32>(), 1..20)) {
        // The dialect in one frame: floats as hex strings inside a
        // protocol-shaped object, serialized to a line and parsed back.
        let values: Vec<f32> = bits.iter().map(|&b| f32::from_bits(b)).collect();
        let frame = Json::obj(vec![
            ("type", Json::str("measure")),
            ("step", Json::u64(bits.len() as u64)),
            ("grads", Json::str(hex::f32_row(&values))),
        ]);
        let line = frame.to_string();
        let back = json::parse(&line).unwrap();
        let row = hex::f32_unrow(back.str_field("grads").unwrap()).unwrap();
        let back_bits: Vec<u32> = row.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(back_bits, bits);
    }

    #[test]
    fn torn_json_frames_are_rejected(bits in any::<u32>(), cut_seed in any::<u64>()) {
        // Any strict prefix of an object frame is torn and must fail to
        // parse; only the full line parses.
        let frame = Json::obj(vec![
            ("type", Json::str("hyper")),
            ("lr", Json::str(hex::f32_hex(f32::from_bits(bits)))),
        ]);
        let line = frame.to_string();
        prop_assert!(json::parse(&line).is_ok());
        let cut = 1 + (cut_seed as usize) % (line.len() - 1);
        if line.is_char_boundary(cut) {
            prop_assert!(json::parse(&line[..cut]).is_err(), "cut at {}", cut);
        }
    }

    #[test]
    fn mutated_frames_parse_or_error_but_never_panic(
        bits in prop::collection::vec(any::<u32>(), 1..12),
        step in any::<u64>(),
        pos_seed in any::<u64>(),
        byte in any::<u8>(),
        cut_seed in any::<u64>(),
    ) {
        // The chaos proxy's corrupt-frame fault hands the decoder
        // arbitrary line damage; this pins the decoder's contract under
        // it: a typed `JsonError` or a (possibly nonsensical but valid)
        // value — never a panic, for any truncation or byte mutation.
        let values: Vec<f32> = bits.iter().map(|&b| f32::from_bits(b)).collect();
        let frame = Json::obj(vec![
            ("type", Json::str("measure")),
            ("session", Json::str("fuzz \"target\" \\ line")),
            ("step", Json::u64(step)),
            ("grads", Json::str(hex::f32_row(&values))),
        ]);
        let line = frame.to_string();

        // Truncation at every byte offset the seed lands on.
        let cut = (cut_seed as usize) % (line.len() + 1);
        if line.is_char_boundary(cut) {
            let _ = json::parse(&line[..cut]);
        }

        // Single-byte overwrite anywhere in the frame. The damaged
        // bytes may no longer be UTF-8, so they re-enter the decoder
        // the way a socket read would: lossily re-decoded.
        let mut damaged = line.clone().into_bytes();
        let pos = (pos_seed as usize) % damaged.len();
        damaged[pos] = byte;
        let damaged = String::from_utf8_lossy(&damaged);
        if let Ok(parsed) = json::parse(&damaged) {
            // A frame that still parses may still carry a mangled hex
            // row; the row decoder must also fail typed, not panic.
            if let Ok(row) = parsed.str_field("grads") {
                let _ = hex::f32_unrow(row);
            }
        }
    }

    #[test]
    fn mutated_hex_rows_error_but_never_panic(
        bits in prop::collection::vec(any::<u32>(), 1..12),
        pos_seed in any::<u64>(),
        byte in any::<u8>(),
    ) {
        let values: Vec<f32> = bits.iter().map(|&b| f32::from_bits(b)).collect();
        let mut row = hex::f32_row(&values).into_bytes();
        let pos = (pos_seed as usize) % row.len();
        row[pos] = byte;
        let row = String::from_utf8_lossy(&row);
        match hex::f32_unrow(&row) {
            Ok(back) => prop_assert!(back.len() <= values.len() + 1),
            Err(e) => prop_assert!(!e.to_string().is_empty(), "typed error with a message"),
        }
    }

    #[test]
    fn torn_sealed_files_are_rejected(body_bits in prop::collection::vec(any::<u64>(), 1..16),
                                      cut_seed in any::<u64>()) {
        // A sealed file truncated anywhere strictly inside must come
        // back `Torn`, never as silently shortened content.
        let body: String = body_bits
            .iter()
            .map(|&b| format!("v {}\n", hex::f64_hex(f64::from_bits(b))))
            .collect();
        let dir = std::env::temp_dir().join(format!("yf-wire-prop-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sealed.txt");
        yf_wire::fsio::write_sealed(&path, &body).unwrap();
        let sealed = std::fs::read_to_string(&path).unwrap();
        prop_assert_eq!(yf_wire::fsio::read_sealed(&path).unwrap(), body.clone());
        let cut = (cut_seed as usize) % sealed.len();
        std::fs::write(&path, &sealed[..cut]).unwrap();
        match yf_wire::fsio::read_sealed(&path) {
            Err(yf_wire::fsio::SealedFileError::Torn { .. }) => {}
            other => prop_assert!(false, "cut at {} must be Torn, got {:?}", cut, other.is_ok()),
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn binary_frames_round_trip_any_payload(tag in any::<u8>(),
                                            payload in prop::collection::vec(any::<u8>(), 0..512)) {
        let framed = binary::frame(tag, &payload);
        let (t, p) = binary::decode(&framed).unwrap();
        prop_assert_eq!(t, tag);
        prop_assert_eq!(p, &payload[..]);
        // And through the mixed-dialect reader: one frame, then EOF.
        let mut reader = Cursor::new(framed.clone());
        match binary::read_frame(&mut reader).unwrap() {
            Some(RawFrame::Binary(raw)) => prop_assert_eq!(raw, framed),
            other => prop_assert!(false, "expected binary frame, got {:?}", other),
        }
        prop_assert!(binary::read_frame(&mut reader).unwrap().is_none());
    }

    #[test]
    fn mutated_binary_frames_error_typed_but_never_panic(
        tag in any::<u8>(),
        payload in prop::collection::vec(any::<u8>(), 0..256),
        pos_seed in any::<u64>(),
        byte in any::<u8>(),
        cut_seed in any::<u64>(),
    ) {
        // Every single-byte overwrite (including the length prefix and
        // the checksum trailer) and every truncation must come back as
        // a typed error or a different-but-valid frame — never a panic,
        // and never an over-read past the buffer.
        let framed = binary::frame(tag, &payload);

        let cut = (cut_seed as usize) % framed.len();
        prop_assert!(binary::decode(&framed[..cut]).is_err(), "strict prefix must be torn");

        let mut damaged = framed.clone();
        let pos = (pos_seed as usize) % damaged.len();
        damaged[pos] = byte;
        match binary::decode(&damaged) {
            // A mutation that lands on the payload byte it already had,
            // or forges a consistent frame, may still decode; anything
            // else must be one of the typed failures.
            Ok(_) | Err(_) => {}
        }

        // The streaming reader on the same damage: reads a frame, hits
        // a typed framing error, or reports clean EOF — never panics,
        // never blocks past the buffer.
        let mut reader = Cursor::new(damaged);
        let _ = binary::read_frame(&mut reader);

        // Truncation through the reader, too (torn stream => Io error
        // or a clean EOF when the cut lands on a frame boundary).
        let mut reader = Cursor::new(framed[..cut].to_vec());
        let _ = binary::read_frame(&mut reader);
    }

    #[test]
    fn oversize_length_prefixes_are_rejected_before_allocation(
        len_bits in (binary::MAX_PAYLOAD as u32 + 1)..u32::MAX,
        tag in any::<u8>(),
    ) {
        // A forged length prefix above the cap must be rejected from
        // the 8 header bytes alone — not by attempting the allocation.
        let mut header = Vec::new();
        header.extend_from_slice(&binary::MAGIC);
        header.push(binary::VERSION);
        header.push(tag);
        header.extend_from_slice(&len_bits.to_le_bytes());
        let mut reader = Cursor::new(header.clone());
        match binary::read_frame(&mut reader) {
            Err(binary::ReadError::Frame(binary::BinError::Oversize(n))) =>
                prop_assert_eq!(n, len_bits),
            other => prop_assert!(false, "expected Oversize, got {:?}", other.is_ok()),
        }
        prop_assert!(matches!(
            binary::decode(&header),
            Err(binary::BinError::Oversize(_)) | Err(binary::BinError::Truncated { .. })
        ));
    }

    #[test]
    fn delta_runs_round_trip_any_bit_patterns(
        prev_bits in prop::collection::vec(any::<u32>(), 1..64),
        flips in prop::collection::vec((any::<u64>(), any::<u32>()), 0..16),
    ) {
        // XOR-delta encoding must reconstruct any current gradient from
        // any previous one bit-exactly, whatever the patterns (NaNs,
        // infinities, signed zeros included).
        let prev: Vec<f32> = prev_bits.iter().map(|&b| f32::from_bits(b)).collect();
        let mut cur = prev.clone();
        for &(pos, bits) in &flips {
            let i = (pos as usize) % cur.len();
            cur[i] = f32::from_bits(bits);
        }
        let runs = binary::delta_encode(&prev, &cur);
        let back = binary::delta_decode(&prev, &runs).unwrap();
        prop_assert_eq!(back.len(), cur.len());
        for (got, want) in back.iter().zip(cur.iter()) {
            prop_assert_eq!(got.to_bits(), want.to_bits());
        }
    }

    #[test]
    fn malformed_delta_runs_error_typed_but_never_panic(
        prev_bits in prop::collection::vec(any::<u32>(), 1..32),
        runs in prop::collection::vec(any::<u8>(), 0..96),
        pos_seed in any::<u64>(),
        byte in any::<u8>(),
    ) {
        // Arbitrary bytes as a run list: decode must either produce a
        // dim-length vector or a typed error — no panic, no over-read.
        let prev: Vec<f32> = prev_bits.iter().map(|&b| f32::from_bits(b)).collect();
        if let Ok(back) = binary::delta_decode(&prev, &runs) {
            prop_assert_eq!(back.len(), prev.len());
        }

        // And a mutated *valid* run list: flip one byte of a genuine
        // encoding and demand the same contract.
        let mut cur = prev.clone();
        cur[0] = f32::from_bits(prev_bits[0] ^ 0xdead_beef);
        let mut encoded = binary::delta_encode(&prev, &cur);
        if !encoded.is_empty() {
            let pos = (pos_seed as usize) % encoded.len();
            encoded[pos] = byte;
        }
        if let Ok(back) = binary::delta_decode(&prev, &encoded) {
            prop_assert_eq!(back.len(), prev.len());
        }
    }
}
