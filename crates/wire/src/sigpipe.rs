//! Explicit SIGPIPE handling for long-running network processes.
//!
//! Rust's runtime ignores SIGPIPE at process start, so a write to a
//! closed socket surfaces as an `EPIPE` [`std::io::Error`] instead of
//! killing the process — which is exactly the behavior the serve and
//! fleet binaries rely on to shed a dead connection and keep serving.
//! That protection is *inherited state*, though, not a guarantee: a
//! parent that restored `SIG_DFL` before exec (shells and process
//! supervisors do, and `std::process::Command` resets the disposition
//! for its children) hands the child a configuration where the first
//! broken pipe is fatal. Every yf binary that writes to sockets or
//! pipes therefore calls [`ignore`] first thing in `main`, making the
//! contract explicit rather than inherited.

/// `SIGPIPE` on every Unix the workspace targets.
#[cfg(unix)]
const SIGPIPE: i32 = 13;
/// `SIG_IGN` as the C library defines it (`(void (*)(int))1`).
#[cfg(unix)]
const SIG_IGN: usize = 1;

#[cfg(unix)]
extern "C" {
    /// ISO C `signal(2)`, linked from the C runtime the platform already
    /// ships (the workspace carries no libc crate).
    fn signal(signum: i32, handler: usize) -> usize;
}

/// Forces the process to ignore SIGPIPE so writes to closed sockets and
/// pipes return `EPIPE` errors instead of terminating the process. Safe
/// to call repeatedly; a no-op on non-Unix targets.
pub fn ignore() {
    #[cfg(unix)]
    // SAFETY: setting a signal disposition to SIG_IGN is async-signal
    // safe and has no preconditions; no Rust-side state is involved.
    unsafe {
        signal(SIGPIPE, SIG_IGN);
    }
}

#[cfg(all(test, unix))]
mod tests {
    use std::io::Write;

    #[test]
    fn writes_to_a_closed_pipe_error_instead_of_killing_the_process() {
        super::ignore();
        let mut child = std::process::Command::new("true")
            .stdin(std::process::Stdio::piped())
            .spawn()
            .expect("spawning /bin/true");
        let mut stdin = child.stdin.take().expect("piped stdin");
        child.wait().expect("waiting for /bin/true");
        // The reader is gone; with SIGPIPE ignored these writes must
        // come back as EPIPE errors, not terminate the test runner.
        let payload = vec![b'x'; 1 << 16];
        let mut saw_error = false;
        for _ in 0..8 {
            if stdin.write_all(&payload).is_err() {
                saw_error = true;
                break;
            }
        }
        assert!(saw_error, "writes to a dead pipe must surface as errors");
    }
}
