//! Length-prefixed binary frames — the wire dialect's fast path.
//!
//! Line JSON (see [`crate::json`]) stays the control-plane encoding:
//! it is greppable, debuggable with `nc`, and forward-compatible. But
//! hex-encoding a dim-4096 gradient costs ~9 bytes per float plus a
//! UTF-8 decode on the far side, and PR 8's `serve_measure_*` perf
//! entries showed the serve stack spending ~99% of its time in exactly
//! that framing. This module adds a binary frame format for the data
//! path, designed to coexist byte-by-byte with JSON lines on the same
//! stream:
//!
//! ```text
//! offset  size  field
//! 0       1     magic0 = 0xF5   (invalid UTF-8 lead byte: can never
//!                                start a JSON line, which begins '{')
//! 1       1     magic1 = 0x59   ('Y')
//! 2       1     version = 1
//! 3       1     frame tag       (meaning assigned by the protocol layer)
//! 4       4     payload length, u32 little-endian
//! 8       len   payload         (f32/f64 carried as LE bit patterns)
//! 8+len   8     FNV-1a 64 checksum of bytes [0, 8+len), u64 LE —
//!               the same seal as [`crate::fsio`]'s sealed files
//! ```
//!
//! Because `0xF5` cannot begin a UTF-8 sequence, a reader can dispatch
//! on the first byte of a stream position: `0xF5` starts a binary
//! frame, anything else starts a text line. [`read_frame`] implements
//! that mixed-dialect reader; servers, clients, and the chaos proxy
//! all share it so every layer frames binary traffic identically.
//!
//! Everything here returns typed [`BinError`]s — decoding attacker- or
//! chaos-controlled bytes must never panic and never over-read (the
//! payload length is capped at [`MAX_PAYLOAD`] before any allocation).
//!
//! The module also carries [`delta_encode`]/[`delta_decode`]: an XOR of
//! consecutive gradients' f32 bit patterns with run-length-encoded zero
//! runs. XOR deltas are bit-exact by construction (no rounding, NaN
//! payloads and signed zeros included), so a reconstructed gradient is
//! indistinguishable from a full one.

use std::fmt;
use std::io::{self, BufRead};

use crate::fsio::fnv1a;

/// First two bytes of every binary frame. `MAGIC[0]` is an invalid
/// UTF-8 lead byte, which is what lets binary frames share a stream
/// with JSON lines.
pub const MAGIC: [u8; 2] = [0xF5, 0x59];

/// Binary frame format version carried in byte 2.
pub const VERSION: u8 = 1;

/// Header length: magic (2) + version (1) + tag (1) + payload len (4).
pub const HEADER_LEN: usize = 8;

/// Trailer length: one u64 LE FNV-1a checksum.
pub const TRAILER_LEN: usize = 8;

/// Upper bound on a frame's payload (64 MiB). A mutated length prefix
/// is rejected against this cap before any buffer is allocated, so a
/// corrupt frame can neither over-read nor balloon memory.
pub const MAX_PAYLOAD: usize = 1 << 26;

/// A typed binary-decode failure. Decoding never panics; every
/// malformed input maps to one of these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BinError {
    /// The buffer ended before the frame (or payload field) did.
    Truncated { need: usize, have: usize },
    /// The first two bytes were not [`MAGIC`].
    BadMagic([u8; 2]),
    /// Unknown format version byte.
    BadVersion(u8),
    /// The length prefix exceeds [`MAX_PAYLOAD`].
    Oversize(u32),
    /// The FNV-1a trailer does not match the frame bytes.
    BadChecksum { want: u64, got: u64 },
    /// The frame tag is not one the caller understands.
    BadTag(u8),
    /// Structurally invalid payload contents.
    Malformed(String),
}

impl fmt::Display for BinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BinError::Truncated { need, have } => {
                write!(f, "truncated frame: need {need} bytes, have {have}")
            }
            BinError::BadMagic(m) => {
                write!(f, "bad frame magic {:#04x} {:#04x}", m[0], m[1])
            }
            BinError::BadVersion(v) => write!(f, "unsupported frame version {v}"),
            BinError::Oversize(len) => {
                write!(
                    f,
                    "frame payload of {len} bytes exceeds the {MAX_PAYLOAD} byte cap"
                )
            }
            BinError::BadChecksum { want, got } => {
                write!(
                    f,
                    "frame checksum mismatch: computed {want:#018x}, frame says {got:#018x}"
                )
            }
            BinError::BadTag(t) => write!(f, "unknown frame tag {t}"),
            BinError::Malformed(msg) => write!(f, "malformed frame payload: {msg}"),
        }
    }
}

impl std::error::Error for BinError {}

/// Encodes one complete frame: header, payload, checksum trailer.
/// Encoding is deterministic — identical input bytes produce identical
/// frames — which is what lets tests pin bitwise stream equality.
///
/// # Panics
///
/// If `payload` exceeds [`MAX_PAYLOAD`]; frame payloads are produced by
/// this codebase (gradients are dimension-bounded), never by a peer.
pub fn frame(tag: u8, payload: &[u8]) -> Vec<u8> {
    assert!(
        payload.len() <= MAX_PAYLOAD,
        "frame payload exceeds MAX_PAYLOAD"
    );
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + TRAILER_LEN);
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(tag);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    let sum = fnv1a(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Validates and decodes one complete frame, returning `(tag, payload)`
/// borrowed from the input. The input must be exactly one frame;
/// trailing bytes are rejected (a stream reader hands this function
/// frames it already length-delimited).
pub fn decode(buf: &[u8]) -> Result<(u8, &[u8]), BinError> {
    if buf.len() < HEADER_LEN + TRAILER_LEN {
        return Err(BinError::Truncated {
            need: HEADER_LEN + TRAILER_LEN,
            have: buf.len(),
        });
    }
    if buf[..2] != MAGIC {
        return Err(BinError::BadMagic([buf[0], buf[1]]));
    }
    if buf[2] != VERSION {
        return Err(BinError::BadVersion(buf[2]));
    }
    let len32 = u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]);
    let len = len32 as usize;
    if len > MAX_PAYLOAD {
        return Err(BinError::Oversize(len32));
    }
    let total = HEADER_LEN + len + TRAILER_LEN;
    if buf.len() < total {
        return Err(BinError::Truncated {
            need: total,
            have: buf.len(),
        });
    }
    if buf.len() > total {
        return Err(BinError::Malformed(format!(
            "{} trailing bytes after the frame",
            buf.len() - total
        )));
    }
    let want = fnv1a(&buf[..HEADER_LEN + len]);
    let got = u64::from_le_bytes(
        buf[HEADER_LEN + len..total]
            .try_into()
            .expect("trailer is 8 bytes"),
    );
    if want != got {
        return Err(BinError::BadChecksum { want, got });
    }
    Ok((buf[3], &buf[HEADER_LEN..HEADER_LEN + len]))
}

/// One unit read from a mixed-dialect stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RawFrame {
    /// A text line, with the trailing `\n`/`\r` already stripped.
    Line(String),
    /// A complete binary frame, raw bytes including header and trailer.
    /// Only the *framing* (magic, version, length cap) has been
    /// validated — the checksum has not, so a forwarding proxy can pass
    /// damaged frames through verbatim and let the endpoint's
    /// [`decode`] report the typed failure.
    Binary(Vec<u8>),
}

/// A mixed-dialect read failure.
#[derive(Debug)]
pub enum ReadError {
    /// Transport failure (including timeouts, surfaced as
    /// `WouldBlock`/`TimedOut` by the socket layer).
    Io(io::Error),
    /// The stream positioned us at a binary frame whose framing itself
    /// is invalid; the stream can no longer be re-synchronized.
    Frame(BinError),
}

impl fmt::Display for ReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadError::Io(e) => write!(f, "transport: {e}"),
            ReadError::Frame(e) => write!(f, "framing: {e}"),
        }
    }
}

impl std::error::Error for ReadError {}

/// Reads the next unit from a stream that may interleave JSON lines
/// and binary frames: a leading `0xF5` byte starts a binary frame,
/// anything else a text line. Returns `Ok(None)` at a clean EOF.
///
/// Binary frames are read to their declared length (validated against
/// [`MAX_PAYLOAD`] *before* the payload is buffered) and returned raw;
/// call [`decode`] to checksum-verify and extract the payload. An EOF
/// in the middle of a binary frame is an `UnexpectedEof` I/O error,
/// mirroring how a torn line read fails.
pub fn read_frame<R: BufRead>(reader: &mut R) -> Result<Option<RawFrame>, ReadError> {
    let first = {
        let buf = reader.fill_buf().map_err(ReadError::Io)?;
        match buf.first() {
            None => return Ok(None),
            Some(&b) => b,
        }
    };
    if first != MAGIC[0] {
        let mut line = String::new();
        reader.read_line(&mut line).map_err(ReadError::Io)?;
        while line.ends_with(['\n', '\r']) {
            line.pop();
        }
        return Ok(Some(RawFrame::Line(line)));
    }
    let mut header = [0u8; HEADER_LEN];
    reader.read_exact(&mut header).map_err(ReadError::Io)?;
    if header[..2] != MAGIC {
        return Err(ReadError::Frame(BinError::BadMagic([header[0], header[1]])));
    }
    if header[2] != VERSION {
        return Err(ReadError::Frame(BinError::BadVersion(header[2])));
    }
    let len32 = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
    let len = len32 as usize;
    if len > MAX_PAYLOAD {
        return Err(ReadError::Frame(BinError::Oversize(len32)));
    }
    let mut raw = vec![0u8; HEADER_LEN + len + TRAILER_LEN];
    raw[..HEADER_LEN].copy_from_slice(&header);
    reader
        .read_exact(&mut raw[HEADER_LEN..])
        .map_err(ReadError::Io)?;
    Ok(Some(RawFrame::Binary(raw)))
}

/// A little-endian payload reader. Every accessor is bounds-checked
/// and returns [`BinError::Truncated`] instead of slicing past the
/// end, so payload decoding inherits the never-panic contract.
pub struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Takes the next `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], BinError> {
        if self.remaining() < n {
            return Err(BinError::Truncated {
                need: n,
                have: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub fn u8(&mut self) -> Result<u8, BinError> {
        Ok(self.take(1)?[0])
    }

    pub fn u16(&mut self) -> Result<u16, BinError> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }

    pub fn u32(&mut self) -> Result<u32, BinError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    pub fn u64(&mut self) -> Result<u64, BinError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// A length-prefixed string: u16 LE byte count, then UTF-8 bytes.
    pub fn str16(&mut self) -> Result<&'a str, BinError> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes)
            .map_err(|e| BinError::Malformed(format!("str16 is not UTF-8: {e}")))
    }

    /// Everything left, consuming it.
    pub fn rest(&mut self) -> &'a [u8] {
        let out = &self.buf[self.pos..];
        self.pos = self.buf.len();
        out
    }

    /// Succeeds only if the whole payload was consumed — trailing
    /// bytes mean the peer and we disagree about the layout.
    pub fn finish(self) -> Result<(), BinError> {
        if self.pos != self.buf.len() {
            return Err(BinError::Malformed(format!(
                "{} trailing payload bytes",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

/// The write-side twin of [`Cursor`]: appends little-endian fields to
/// a payload buffer.
#[derive(Default)]
pub struct Builder(Vec<u8>);

impl Builder {
    pub fn new() -> Self {
        Builder(Vec::new())
    }

    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.0.push(v);
        self
    }

    pub fn u16(&mut self, v: u16) -> &mut Self {
        self.0.extend_from_slice(&v.to_le_bytes());
        self
    }

    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.0.extend_from_slice(&v.to_le_bytes());
        self
    }

    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.0.extend_from_slice(&v.to_le_bytes());
        self
    }

    pub fn bytes(&mut self, v: &[u8]) -> &mut Self {
        self.0.extend_from_slice(v);
        self
    }

    /// A contiguous run of f32s as LE bit-pattern words — the gradient
    /// payload hot path: one resize, then a flat vectorizable copy
    /// instead of a bounds-checked `u32` append per coordinate.
    pub fn f32_words(&mut self, values: &[f32]) -> &mut Self {
        let start = self.0.len();
        self.0.resize(start + values.len() * 4, 0);
        for (chunk, &v) in self.0[start..].chunks_exact_mut(4).zip(values) {
            chunk.copy_from_slice(&v.to_bits().to_le_bytes());
        }
        self
    }

    /// A length-prefixed string (u16 LE byte count + UTF-8 bytes).
    ///
    /// # Panics
    ///
    /// If `v` exceeds 65535 bytes; str16 fields carry session names and
    /// rejection reasons, both bounded well below that by validation.
    pub fn str16(&mut self, v: &str) -> &mut Self {
        assert!(
            v.len() <= u16::MAX as usize,
            "str16 field exceeds 65535 bytes"
        );
        self.u16(v.len() as u16);
        self.0.extend_from_slice(v.as_bytes());
        self
    }

    pub fn into_payload(self) -> Vec<u8> {
        self.0
    }
}

/// Minimum zero-run length worth breaking a literal run for. A run
/// header costs 8 bytes (two u32 counts), the same as two literal
/// words, so runs of one or two zero words are cheaper left inline.
const ZERO_RUN_BREAK: usize = 3;

/// Delta-encodes `cur` against `prev` (equal lengths required): the
/// XOR of their f32 bit patterns, written as a sequence of runs
///
/// ```text
/// [u32 zero_words][u32 literal_words][literal_words x u32 xor_bits]
/// ```
///
/// whose word counts sum to exactly the gradient dimension. Unchanged
/// entries XOR to zero, so a slowly-varying or sparse gradient
/// collapses to a few literal islands. The encoding is bit-exact:
/// `delta_decode(prev, delta_encode(prev, cur)) == cur` at the bit
/// level for every f32, NaNs and signed zeros included.
///
/// # Panics
///
/// If `prev.len() != cur.len()`; the caller (the serve client) checks
/// dimensions before choosing the delta path.
pub fn delta_encode(prev: &[f32], cur: &[f32]) -> Vec<u8> {
    assert_eq!(
        prev.len(),
        cur.len(),
        "delta_encode requires equal dimensions"
    );
    let n = prev.len();
    let xor: Vec<u32> = prev
        .iter()
        .zip(cur.iter())
        .map(|(p, c)| p.to_bits() ^ c.to_bits())
        .collect();
    let mut b = Builder::new();
    let mut i = 0;
    while i < n {
        let z0 = i;
        while i < n && xor[i] == 0 {
            i += 1;
        }
        let zeros = i - z0;
        // Extend the literal run until a zero run long enough to be
        // worth its own header begins (or the payload ends; trailing
        // short zero runs become a final zeros-only run).
        let l0 = i;
        while i < n {
            if xor[i] == 0 {
                let mut k = i;
                while k < n && xor[k] == 0 {
                    k += 1;
                }
                if k - i >= ZERO_RUN_BREAK || k == n {
                    break;
                }
                i = k;
            } else {
                i += 1;
            }
        }
        b.u32(zeros as u32).u32((i - l0) as u32);
        for &w in &xor[l0..i] {
            b.u32(w);
        }
    }
    b.into_payload()
}

/// Reconstructs a gradient from `prev` and a [`delta_encode`]d run
/// payload. The runs must cover exactly `prev.len()` words; anything
/// else — overflowing runs, empty runs, truncated literals, trailing
/// bytes — is a typed [`BinError`].
pub fn delta_decode(prev: &[f32], runs: &[u8]) -> Result<Vec<f32>, BinError> {
    let n = prev.len();
    let mut out = Vec::with_capacity(n);
    let mut c = Cursor::new(runs);
    while out.len() < n {
        let zeros = c.u32()? as usize;
        let lits = c.u32()? as usize;
        let span = zeros
            .checked_add(lits)
            .ok_or_else(|| BinError::Malformed("delta run span overflows".to_string()))?;
        if span == 0 {
            return Err(BinError::Malformed("empty delta run".to_string()));
        }
        if span > n - out.len() {
            return Err(BinError::Malformed(format!(
                "delta runs cover {} words past the {n}-word gradient",
                span - (n - out.len())
            )));
        }
        for _ in 0..zeros {
            out.push(prev[out.len()]);
        }
        for _ in 0..lits {
            let w = c.u32()?;
            let idx = out.len();
            out.push(f32::from_bits(prev[idx].to_bits() ^ w));
        }
    }
    c.finish()?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor as IoCursor;

    #[test]
    fn frames_round_trip_with_valid_checksums() {
        for payload in [&b""[..], b"x", b"hello binary world", &[0u8; 1000]] {
            let f = frame(7, payload);
            assert_eq!(f.len(), HEADER_LEN + payload.len() + TRAILER_LEN);
            let (tag, got) = decode(&f).unwrap();
            assert_eq!(tag, 7);
            assert_eq!(got, payload);
        }
    }

    #[test]
    fn magic_lead_byte_is_invalid_utf8_so_json_lines_cannot_collide() {
        // 0xF5..0xFF never appear in well-formed UTF-8, so no JSON line
        // can ever start with the frame magic.
        assert!(std::str::from_utf8(&[MAGIC[0]]).is_err());
        assert!(String::from("{").as_bytes()[0] != MAGIC[0]);
    }

    #[test]
    fn decode_rejects_each_kind_of_damage_with_a_typed_error() {
        let good = frame(3, b"payload");
        assert!(matches!(
            decode(&good[..5]),
            Err(BinError::Truncated { .. })
        ));
        assert!(matches!(
            decode(&good[..good.len() - 1]),
            Err(BinError::Truncated { .. })
        ));

        let mut bad_magic = good.clone();
        bad_magic[0] = b'{';
        assert!(matches!(decode(&bad_magic), Err(BinError::BadMagic(_))));

        let mut bad_version = good.clone();
        bad_version[2] = 9;
        assert_eq!(decode(&bad_version), Err(BinError::BadVersion(9)));

        let mut oversize = good.clone();
        oversize[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(decode(&oversize), Err(BinError::Oversize(_))));

        let mut flipped = good.clone();
        let mid = HEADER_LEN + 3;
        flipped[mid] ^= 0x40;
        assert!(matches!(
            decode(&flipped),
            Err(BinError::BadChecksum { .. })
        ));

        let mut trailing = good.clone();
        trailing.push(0);
        assert!(matches!(decode(&trailing), Err(BinError::Malformed(_))));
    }

    #[test]
    fn read_frame_interleaves_lines_and_binary_frames() {
        let mut stream = Vec::new();
        stream.extend_from_slice(b"{\"type\":\"open\"}\n");
        stream.extend_from_slice(&frame(1, b"abc"));
        stream.extend_from_slice(b"{\"type\":\"close\"}\r\n");
        stream.extend_from_slice(&frame(2, b""));
        let mut r = IoCursor::new(stream);

        assert_eq!(
            read_frame(&mut r).unwrap(),
            Some(RawFrame::Line("{\"type\":\"open\"}".to_string()))
        );
        match read_frame(&mut r).unwrap() {
            Some(RawFrame::Binary(raw)) => assert_eq!(decode(&raw).unwrap(), (1, &b"abc"[..])),
            other => panic!("expected binary frame, got {other:?}"),
        }
        assert_eq!(
            read_frame(&mut r).unwrap(),
            Some(RawFrame::Line("{\"type\":\"close\"}".to_string()))
        );
        match read_frame(&mut r).unwrap() {
            Some(RawFrame::Binary(raw)) => assert_eq!(decode(&raw).unwrap(), (2, &b""[..])),
            other => panic!("expected binary frame, got {other:?}"),
        }
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn read_frame_reports_torn_binary_frames_as_unexpected_eof() {
        let full = frame(1, b"abcdef");
        let mut r = IoCursor::new(full[..full.len() - 2].to_vec());
        match read_frame(&mut r) {
            Err(ReadError::Io(e)) => assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof),
            other => panic!("expected UnexpectedEof, got {other:?}"),
        }
    }

    #[test]
    fn read_frame_caps_a_mutated_length_prefix_before_allocating() {
        let mut f = frame(1, b"abc");
        f[4..8].copy_from_slice(&(u32::MAX).to_le_bytes());
        let mut r = IoCursor::new(f);
        match read_frame(&mut r) {
            Err(ReadError::Frame(BinError::Oversize(_))) => {}
            other => panic!("expected Oversize, got {other:?}"),
        }
    }

    #[test]
    fn cursor_and_builder_are_inverse() {
        let mut b = Builder::new();
        b.u8(5)
            .u16(513)
            .u32(70_000)
            .u64(1 << 40)
            .str16("session-a")
            .bytes(&[9, 9]);
        let payload = b.into_payload();
        let mut c = Cursor::new(&payload);
        assert_eq!(c.u8().unwrap(), 5);
        assert_eq!(c.u16().unwrap(), 513);
        assert_eq!(c.u32().unwrap(), 70_000);
        assert_eq!(c.u64().unwrap(), 1 << 40);
        assert_eq!(c.str16().unwrap(), "session-a");
        assert_eq!(c.rest(), &[9, 9]);
        c.finish().unwrap();
    }

    #[test]
    fn cursor_rejects_short_reads_and_trailing_bytes() {
        let mut c = Cursor::new(&[1, 2]);
        assert!(matches!(c.u32(), Err(BinError::Truncated { .. })));
        let mut c = Cursor::new(&[1, 2, 3]);
        c.u8().unwrap();
        assert!(matches!(c.finish(), Err(BinError::Malformed(_))));
    }

    #[test]
    fn delta_codec_round_trips_bit_exactly() {
        let prev: Vec<f32> = (0..257).map(|i| (i as f32) * 0.25 - 17.0).collect();
        let mut cur = prev.clone();
        // A few literal islands, one NaN, a signed zero, long zero runs.
        cur[0] = f32::NAN;
        cur[3] = -0.0;
        cur[100] += 1.5;
        cur[101] -= 2.5;
        cur[256] = f32::INFINITY;
        let runs = delta_encode(&prev, &cur);
        let back = delta_decode(&prev, &runs).unwrap();
        assert_eq!(back.len(), cur.len());
        for (a, b) in back.iter().zip(cur.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // Sparse change => far smaller than the 4*257-byte full payload.
        assert!(runs.len() < cur.len() * 4 / 4, "runs {} bytes", runs.len());
    }

    #[test]
    fn identical_gradients_collapse_to_one_zero_run() {
        let g: Vec<f32> = (0..4096).map(|i| i as f32).collect();
        let runs = delta_encode(&g, &g);
        assert_eq!(runs.len(), 8);
        let back = delta_decode(&g, &runs).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn short_zero_runs_stay_inline_in_the_literal_run() {
        let prev = [1.0f32; 8];
        let mut cur = prev;
        cur[0] = 2.0;
        cur[2] = 3.0; // one-word zero gap at index 1: cheaper inline
        let runs = delta_encode(&prev, &cur);
        // One run: 0 zeros, 3 literals (indices 0..3), then trailing zeros run.
        let mut c = Cursor::new(&runs);
        assert_eq!(c.u32().unwrap(), 0);
        assert_eq!(c.u32().unwrap(), 3);
        let back = delta_decode(&prev, &runs).unwrap();
        for (a, b) in back.iter().zip(cur.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn malformed_delta_runs_decode_to_typed_errors() {
        let prev = [0.5f32; 16];
        // Overflowing span.
        let mut b = Builder::new();
        b.u32(20).u32(0);
        assert!(matches!(
            delta_decode(&prev, &b.into_payload()),
            Err(BinError::Malformed(_))
        ));
        // Empty run.
        let mut b = Builder::new();
        b.u32(0).u32(0);
        assert!(matches!(
            delta_decode(&prev, &b.into_payload()),
            Err(BinError::Malformed(_))
        ));
        // Truncated literals.
        let mut b = Builder::new();
        b.u32(0).u32(4).u32(7);
        assert!(matches!(
            delta_decode(&prev, &b.into_payload()),
            Err(BinError::Truncated { .. })
        ));
        // Trailing bytes after full coverage.
        let mut b = Builder::new();
        b.u32(16).u32(0).u8(1);
        assert!(matches!(
            delta_decode(&prev, &b.into_payload()),
            Err(BinError::Malformed(_))
        ));
        // Truncated run header.
        assert!(matches!(
            delta_decode(&prev, &[1, 0]),
            Err(BinError::Truncated { .. })
        ));
    }
}
