//! Crash-safe file primitives: atomic whole-file writes and
//! checksum-sealed reads that reject torn files with typed errors.
//!
//! Every durable artifact (fleet checkpoints and per-cell results, serve
//! session snapshots) is written to a temporary sibling, fsynced, and
//! renamed into place, so a crash at any instant leaves either the old
//! file or the new one — never a mix. On top of that, sealed files end
//! with a checksum footer so even a file torn by a non-atomic writer (or
//! a fault injection simulating one) is detected at load time instead of
//! producing silent garbage.

use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// Error loading a sealed file.
#[derive(Debug)]
pub enum SealedFileError {
    /// The file does not exist.
    Missing(PathBuf),
    /// I/O error reading the file.
    Io(PathBuf, io::Error),
    /// The checksum footer is absent or does not match the body — the
    /// file was torn mid-write or corrupted at rest.
    Torn {
        /// The offending file.
        path: PathBuf,
        /// Why the seal was rejected.
        detail: String,
    },
}

impl fmt::Display for SealedFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SealedFileError::Missing(p) => write!(f, "{}: not found", p.display()),
            SealedFileError::Io(p, e) => write!(f, "{}: {e}", p.display()),
            SealedFileError::Torn { path, detail } => {
                write!(f, "{}: torn file rejected ({detail})", path.display())
            }
        }
    }
}

impl std::error::Error for SealedFileError {}

/// FNV-1a 64-bit checksum — stable, dependency-free, and plenty for
/// detecting truncation and bit rot in our own files.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

const SEAL_PREFIX: &str = "#seal fnv1a ";

/// Appends the checksum footer to `body`.
fn seal(body: &str) -> String {
    let mut out = String::with_capacity(body.len() + 32);
    out.push_str(body);
    if !body.is_empty() && !body.ends_with('\n') {
        out.push('\n');
    }
    let hash = fnv1a(out.as_bytes());
    out.push_str(SEAL_PREFIX);
    out.push_str(&format!("{hash:016x}\n"));
    out
}

/// Splits a sealed payload back into its body, verifying the footer.
fn unseal(path: &Path, sealed: &str) -> Result<String, SealedFileError> {
    let torn = |detail: &str| SealedFileError::Torn {
        path: path.to_path_buf(),
        detail: detail.to_string(),
    };
    let without_nl = sealed
        .strip_suffix('\n')
        .ok_or_else(|| torn("no trailing newline"))?;
    let footer_at = without_nl.rfind('\n').map(|i| i + 1).unwrap_or(0);
    let footer = &without_nl[footer_at..];
    let hex = footer
        .strip_prefix(SEAL_PREFIX)
        .ok_or_else(|| torn("checksum footer missing"))?;
    let claimed = u64::from_str_radix(hex, 16).map_err(|_| torn("malformed checksum"))?;
    let body = &sealed[..footer_at];
    if fnv1a(body.as_bytes()) != claimed {
        return Err(torn("checksum mismatch"));
    }
    Ok(body.to_string())
}

/// Atomically replaces `path` with `body` plus a checksum footer: writes
/// a temporary sibling, fsyncs it, renames it over `path`, and fsyncs the
/// directory so the rename itself is durable.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_sealed(path: &Path, body: &str) -> io::Result<()> {
    write_atomic(path, seal(body).as_bytes())
}

/// Loads a file written by [`write_sealed`], rejecting torn or corrupted
/// content with a typed error.
///
/// # Errors
///
/// [`SealedFileError::Missing`] when absent, [`SealedFileError::Torn`]
/// when the checksum footer is absent or wrong.
pub fn read_sealed(path: &Path) -> Result<String, SealedFileError> {
    let mut text = String::new();
    match File::open(path) {
        Ok(mut f) => f
            .read_to_string(&mut text)
            .map_err(|e| SealedFileError::Io(path.to_path_buf(), e))?,
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            return Err(SealedFileError::Missing(path.to_path_buf()))
        }
        Err(e) => return Err(SealedFileError::Io(path.to_path_buf(), e)),
    };
    unseal(path, &text)
}

/// Atomically replaces `path` with `bytes` (tmp + fsync + rename +
/// directory fsync). Use [`write_sealed`] for files that will be read
/// back by the fleet; this raw variant serves reports and other
/// human-facing outputs that only need to never be half-written.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let file_name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let tmp = path.with_file_name(format!(".{file_name}.tmp"));
    {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    if let Some(dir) = dir {
        // Make the rename durable; some filesystems don't support
        // fsync-on-directory, which is fine to ignore.
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Appends `line` (newline added) to `path` and fsyncs, creating the file
/// if needed — the journal's durability primitive.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn append_line_durable(path: &Path, line: &str) -> io::Result<()> {
    let mut f = OpenOptions::new().create(true).append(true).open(path)?;
    let mut buf = String::with_capacity(line.len() + 1);
    buf.push_str(line);
    buf.push('\n');
    f.write_all(buf.as_bytes())?;
    f.sync_data()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("yf-fsio-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn sealed_round_trip_and_replacement() {
        let dir = tmpdir("seal");
        let path = dir.join("state.txt");
        write_sealed(&path, "alpha 1\nbeta 2\n").unwrap();
        assert_eq!(read_sealed(&path).unwrap(), "alpha 1\nbeta 2\n");
        // Overwrite atomically; no tmp residue.
        write_sealed(&path, "gamma 3\n").unwrap();
        assert_eq!(read_sealed(&path).unwrap(), "gamma 3\n");
        assert!(!dir.join(".state.txt.tmp").exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_files_are_rejected_with_typed_errors() {
        let dir = tmpdir("torn");
        let path = dir.join("state.txt");
        write_sealed(&path, "alpha 1\nbeta 2\n").unwrap();
        let sealed = fs::read_to_string(&path).unwrap();
        // Truncate mid-body: footer gone.
        fs::write(&path, &sealed[..sealed.len() / 2]).unwrap();
        assert!(matches!(
            read_sealed(&path),
            Err(SealedFileError::Torn { .. })
        ));
        // Flip a body byte under an intact footer: checksum mismatch.
        let corrupted = sealed.replacen("alpha", "alphA", 1);
        fs::write(&path, corrupted).unwrap();
        assert!(matches!(
            read_sealed(&path),
            Err(SealedFileError::Torn { .. })
        ));
        assert!(matches!(
            read_sealed(&dir.join("absent.txt")),
            Err(SealedFileError::Missing(_))
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn append_line_durable_accumulates() {
        let dir = tmpdir("append");
        let path = dir.join("journal.jsonl");
        append_line_durable(&path, "{\"e\":\"a\"}").unwrap();
        append_line_durable(&path, "{\"e\":\"b\"}").unwrap();
        let text = fs::read_to_string(&path).unwrap();
        assert_eq!(text, "{\"e\":\"a\"}\n{\"e\":\"b\"}\n");
        fs::remove_dir_all(&dir).unwrap();
    }
}
