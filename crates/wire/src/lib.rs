//! The wire dialect shared by every yf process boundary.
//!
//! The fleet coordinator/worker protocol (PR 7) and the `yf-serve` tuning
//! service speak the same three-layer dialect, factored here so the two
//! cannot drift:
//!
//! - [`json`]: a minimal self-contained line-JSON reader/writer (the
//!   build environment is offline, so no serde). Numbers keep their raw
//!   literal text; floats never travel as decimals.
//! - [`hex`]: bit-exact float codecs — every `f32`/`f64` crosses a
//!   process or machine boundary as its hex bit pattern inside a JSON
//!   string, so NaN payloads, signed zeros, and ±inf round-trip
//!   bit-for-bit and results merged across processes are bitwise
//!   identical to in-process ones.
//! - [`fsio`]: crash-safe file primitives — atomic (tmp + fsync +
//!   rename) writes and checksum-sealed loads that reject torn files
//!   with typed errors. Fleet checkpoints/results and serve session
//!   snapshots both live behind these.
//! - [`sigpipe`]: explicit SIGPIPE suppression so a broken pipe is an
//!   `EPIPE` error to shed, never a process death.
//! - [`binary`]: the data-path fast lane — length-prefixed binary
//!   frames (magic + version + tag + LE payload + FNV-1a trailer) that
//!   coexist with JSON lines on one stream, plus the XOR/RLE gradient
//!   delta codec. Control frames stay line JSON; bulk f32 payloads
//!   travel as raw bit patterns.

pub mod binary;
pub mod fsio;
pub mod hex;
pub mod json;
pub mod sigpipe;

pub use hex::{f32_hex, f32_unhex, f64_hex, f64_unhex, HexError};
pub use json::{Json, JsonError};
