//! Bit-exact float codecs: floats cross process boundaries as hex bit
//! patterns (`{:08x}` for `f32`, `{:016x}` for `f64`), never as decimal
//! literals, so NaN payloads, signed zeros, subnormals, and ±inf all
//! round-trip bit-for-bit.

use std::fmt;

/// Error parsing a hex bit pattern or a row of them.
#[derive(Debug, Clone, PartialEq)]
pub struct HexError(String);

impl HexError {
    pub(crate) fn new(msg: impl Into<String>) -> HexError {
        HexError(msg.into())
    }
}

impl fmt::Display for HexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid hex payload: {}", self.0)
    }
}

impl std::error::Error for HexError {}

/// Hex bit pattern of an `f32`.
pub fn f32_hex(v: f32) -> String {
    format!("{:08x}", v.to_bits())
}

/// Parses an `f32` hex bit pattern.
///
/// # Errors
///
/// [`HexError`] when the text is not 8 hex digits.
pub fn f32_unhex(s: &str) -> Result<f32, HexError> {
    if s.len() != 8 {
        return Err(HexError::new(format!("bad f32 bits {s:?}")));
    }
    u32::from_str_radix(s, 16)
        .map(f32::from_bits)
        .map_err(|_| HexError::new(format!("bad f32 bits {s:?}")))
}

/// Hex bit pattern of an `f64`.
pub fn f64_hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

/// Parses an `f64` hex bit pattern.
///
/// # Errors
///
/// [`HexError`] when the text is not 16 hex digits.
pub fn f64_unhex(s: &str) -> Result<f64, HexError> {
    if s.len() != 16 {
        return Err(HexError::new(format!("bad f64 bits {s:?}")));
    }
    u64::from_str_radix(s, 16)
        .map(f64::from_bits)
        .map_err(|_| HexError::new(format!("bad f64 bits {s:?}")))
}

/// Comma-joined hex row of an `f32` slice (empty slice → empty string).
pub fn f32_row(values: &[f32]) -> String {
    values
        .iter()
        .map(|&v| f32_hex(v))
        .collect::<Vec<_>>()
        .join(",")
}

/// Parses [`f32_row`] output.
///
/// # Errors
///
/// [`HexError`] on any malformed element.
pub fn f32_unrow(text: &str) -> Result<Vec<f32>, HexError> {
    if text.is_empty() {
        return Ok(Vec::new());
    }
    text.split(',').map(f32_unhex).collect()
}

/// Comma-joined hex row of an `f64` slice (empty slice → empty string).
pub fn f64_row(values: &[f64]) -> String {
    values
        .iter()
        .map(|&v| f64_hex(v))
        .collect::<Vec<_>>()
        .join(",")
}

/// Parses [`f64_row`] output.
///
/// # Errors
///
/// [`HexError`] on any malformed element.
pub fn f64_unrow(text: &str) -> Result<Vec<f64>, HexError> {
    if text.is_empty() {
        return Ok(Vec::new());
    }
    text.split(',').map(f64_unhex).collect()
}

/// Comma-joined `step@bits` row of `(step, value)` metric pairs.
pub fn metric_row(metrics: &[(u64, f64)]) -> String {
    metrics
        .iter()
        .map(|&(i, v)| format!("{i}@{}", f64_hex(v)))
        .collect::<Vec<_>>()
        .join(",")
}

/// Parses [`metric_row`] output.
///
/// # Errors
///
/// [`HexError`] on any malformed pair.
pub fn metric_unrow(text: &str) -> Result<Vec<(u64, f64)>, HexError> {
    if text.is_empty() {
        return Ok(Vec::new());
    }
    text.split(',')
        .map(|pair| {
            let (i, v) = pair
                .split_once('@')
                .ok_or_else(|| HexError::new(format!("bad metric pair {pair:?}")))?;
            let i = i
                .parse()
                .map_err(|_| HexError::new(format!("bad metric step {i:?}")))?;
            Ok((i, f64_unhex(v)?))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn special_values_round_trip_bitwise() {
        for v in [
            0.0f32,
            -0.0,
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::NAN,
            f32::MIN_POSITIVE,
            f32::from_bits(0x7fc0_dead), // NaN with payload
        ] {
            let back = f32_unhex(&f32_hex(v)).unwrap();
            assert_eq!(back.to_bits(), v.to_bits());
        }
        for v in [
            0.0f64,
            -0.0,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
            f64::from_bits(0x7ff8_0000_0000_beef),
        ] {
            let back = f64_unhex(&f64_hex(v)).unwrap();
            assert_eq!(back.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn malformed_patterns_are_rejected() {
        assert!(f32_unhex("3dcccc").is_err()); // too short
        assert!(f32_unhex("3dcccccdff").is_err()); // too long
        assert!(f32_unhex("3dccccgg").is_err()); // non-hex
        assert!(f64_unhex("0123").is_err());
        assert!(f32_unrow("3dcccccd,zz").is_err());
        assert!(metric_unrow("5@0123").is_err());
        assert!(metric_unrow("x@3ff0000000000000").is_err());
        assert!(metric_unrow("nopair").is_err());
    }

    #[test]
    fn empty_rows_round_trip() {
        assert_eq!(f32_unrow("").unwrap(), Vec::<f32>::new());
        assert_eq!(f64_unrow("").unwrap(), Vec::<f64>::new());
        assert_eq!(metric_unrow("").unwrap(), Vec::<(u64, f64)>::new());
        assert_eq!(f32_row(&[]), "");
    }
}
