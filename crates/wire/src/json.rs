//! A minimal JSON reader/writer for the line-delimited wire protocols
//! (fleet coordinator/worker, serve sessions) and the fleet journal.
//!
//! The workspace deliberately has no third-party runtime dependencies, so
//! the line-delimited JSON the processes exchange is handled by this
//! small self-contained codec. Numbers are kept as their raw literal
//! text ([`Json::Num`]) — the wire dialect never round-trips a float
//! through decimal (floats travel as hex bit patterns inside JSON
//! strings, see [`crate::hex`]), so no precision policy is needed here.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw literal text.
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (insertion-ordered).
    Obj(Vec<(String, Json)>),
}

/// Parse error with byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Byte offset of the error in the input.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid json at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An unsigned integer value.
    pub fn u64(n: u64) -> Json {
        Json::Num(n.to_string())
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is an unsigned integer literal.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) => n.parse().ok(),
            _ => None,
        }
    }

    /// Required string field of an object.
    pub fn str_field(&self, key: &str) -> Result<&str, JsonError> {
        self.get(key)
            .and_then(Json::as_str)
            .ok_or_else(|| JsonError {
                at: 0,
                message: format!("missing string field {key:?}"),
            })
    }

    /// Required unsigned-integer field of an object.
    pub fn u64_field(&self, key: &str) -> Result<u64, JsonError> {
        self.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| JsonError {
                at: 0,
                message: format!("missing integer field {key:?}"),
            })
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => f.write_str(n),
            Json::Str(s) => {
                f.write_str("\"")?;
                for c in s.chars() {
                    match c {
                        '"' => f.write_str("\\\"")?,
                        '\\' => f.write_str("\\\\")?,
                        '\n' => f.write_str("\\n")?,
                        '\r' => f.write_str("\\r")?,
                        '\t' => f.write_str("\\t")?,
                        c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
                        c => write!(f, "{c}")?,
                    }
                }
                f.write_str("\"")
            }
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{}:{v}", Json::Str(k.clone()))?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
///
/// # Errors
///
/// [`JsonError`] with the byte offset of the first offending character.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err(pos, "trailing characters"));
    }
    Ok(value)
}

fn err(at: usize, message: &str) -> JsonError {
    JsonError {
        at,
        message: message.to_string(),
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), JsonError> {
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(err(*pos, &format!("expected {:?}", c as char)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_num(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(err(*pos, &format!("expected {lit:?}")))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits_start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    if *pos == digits_start {
        return Err(err(start, "expected a value"));
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii digits");
    // Validate by parsing; the raw text is preserved.
    text.parse::<f64>()
        .map_err(|_| err(start, "malformed number"))?;
    Ok(Json::Num(text.to_string()))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| err(*pos, "truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| err(*pos, "non-ascii \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err(*pos, "bad \\u escape"))?;
                        // Surrogates are not paired; the fleet never emits them.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(err(*pos, "bad escape")),
                }
                *pos += 1;
            }
            Some(&c) => {
                // Consume one UTF-8 scalar (input is a &str, so this is safe).
                let width = utf8_width(c);
                let s = std::str::from_utf8(&bytes[*pos..*pos + width])
                    .map_err(|_| err(*pos, "invalid utf-8"))?;
                out.push_str(s);
                *pos += width;
            }
        }
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(err(*pos, "expected ',' or ']'")),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'{')?;
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            _ => return Err(err(*pos, "expected ',' or '}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_protocol_shaped_objects() {
        let msg = Json::obj(vec![
            ("type", Json::str("run")),
            ("cell", Json::u64(17)),
            ("value", Json::str("3dcccccd")),
            ("note", Json::str("line1\nline2\t\"quoted\"")),
        ]);
        let text = msg.to_string();
        let back = parse(&text).unwrap();
        assert_eq!(back, msg);
        assert_eq!(back.u64_field("cell").unwrap(), 17);
        assert_eq!(back.str_field("value").unwrap(), "3dcccccd");
    }

    #[test]
    fn rejects_torn_lines() {
        assert!(parse("{\"type\":\"done\",\"cel").is_err());
        assert!(parse("{\"a\":1}garbage").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn parses_nested_values() {
        let v = parse(r#"{"a":[1,2,{"b":null}],"c":true,"d":-3.5e2}"#).unwrap();
        assert_eq!(v.get("c"), Some(&Json::Bool(true)));
        assert_eq!(v.get("d"), Some(&Json::Num("-3.5e2".to_string())));
    }
}
