//! Loss-curve smoothing (Section 5.1).
//!
//! "For visualization purposes, we smooth training losses with a uniform
//! window" — and the speedup protocol operates on the smoothed curves.
//! The window is trailing (causal), so smoothed value `t` uses losses
//! `t-w+1..=t`, which keeps "iterations to reach a loss" well defined.

/// Trailing uniform-window average of a loss curve.
///
/// The first `window - 1` entries average over the (shorter) available
/// prefix. `window == 0` is treated as 1 (no smoothing).
pub fn smooth(losses: &[f32], window: usize) -> Vec<f64> {
    let w = window.max(1);
    let mut out = Vec::with_capacity(losses.len());
    let mut acc = 0.0f64;
    for (i, &l) in losses.iter().enumerate() {
        acc += f64::from(l);
        if i >= w {
            acc -= f64::from(losses[i - w]);
        }
        let n = (i + 1).min(w);
        out.push(acc / n as f64);
    }
    out
}

/// Monotone best-so-far transform for validation metrics ("the validation
/// metrics are monotonic as we report the best values up to each number
/// of iterations", Figure 5 caption).
pub fn best_so_far(values: &[f64], lower_is_better: bool) -> Vec<f64> {
    let mut out = Vec::with_capacity(values.len());
    let mut best = if lower_is_better {
        f64::INFINITY
    } else {
        f64::NEG_INFINITY
    };
    for &v in values {
        best = if lower_is_better {
            best.min(v)
        } else {
            best.max(v)
        };
        out.push(best);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smooth_window_one_is_identity() {
        let xs = [3.0f32, 1.0, 2.0];
        assert_eq!(smooth(&xs, 1), vec![3.0, 1.0, 2.0]);
        assert_eq!(smooth(&xs, 0), vec![3.0, 1.0, 2.0]);
    }

    #[test]
    fn smooth_matches_hand_computation() {
        let xs = [4.0f32, 2.0, 6.0, 0.0];
        let s = smooth(&xs, 2);
        assert_eq!(s, vec![4.0, 3.0, 4.0, 3.0]);
    }

    #[test]
    fn smooth_reduces_oscillation() {
        let xs: Vec<f32> = (0..200)
            .map(|i| 1.0 + if i % 2 == 0 { 0.5 } else { -0.5 })
            .collect();
        let s = smooth(&xs, 50);
        let spread = s[100..]
            .iter()
            .fold((f64::MAX, f64::MIN), |(lo, hi), &v| (lo.min(v), hi.max(v)));
        assert!(spread.1 - spread.0 < 0.05, "spread {spread:?}");
    }

    #[test]
    fn best_so_far_monotone_both_directions() {
        let v = [5.0, 7.0, 3.0, 4.0];
        assert_eq!(best_so_far(&v, true), vec![5.0, 5.0, 3.0, 3.0]);
        assert_eq!(best_so_far(&v, false), vec![5.0, 7.0, 7.0, 7.0]);
    }

    #[test]
    fn empty_inputs() {
        assert!(smooth(&[], 5).is_empty());
        assert!(best_so_far(&[], true).is_empty());
    }
}
